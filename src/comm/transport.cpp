#include "comm/transport.hpp"

#include "util/assert.hpp"

namespace coupon::comm {

InProcessTransport::InProcessTransport(InProcNetwork& network,
                                       std::size_t rank)
    : network_(network), rank_(rank) {
  COUPON_ASSERT(rank < network.num_ranks());
}

bool InProcessTransport::send(Message m) {
  m.source = static_cast<std::int32_t>(rank_);
  return network_.send(std::move(m));
}

RecvEvent InProcessTransport::recv() {
  RecvEvent event;
  if (network_.recv(rank_, event.message) != PopStatus::kItem) {
    event.status = RecvStatus::kClosed;
    return event;
  }
  event.status = RecvStatus::kMessage;
  event.peer = static_cast<std::size_t>(event.message.source);
  return event;
}

RecvEvent InProcessTransport::recv_for(std::chrono::milliseconds timeout) {
  RecvEvent event;
  switch (network_.recv_for(rank_, timeout, event.message)) {
    case PopStatus::kItem:
      event.status = RecvStatus::kMessage;
      event.peer = static_cast<std::size_t>(event.message.source);
      return event;
    case PopStatus::kTimeout:
      event.status = RecvStatus::kTimeout;
      return event;
    case PopStatus::kClosed:
      break;
  }
  event.status = RecvStatus::kClosed;
  return event;
}

void InProcessTransport::close() { network_.close_rank(rank_); }

TrafficStats InProcessTransport::stats() const {
  return network_.stats(rank_);
}

}  // namespace coupon::comm
