#pragma once

/// \file network.hpp
/// In-process rank-addressed message-passing fabric.
///
/// This substitutes for MPI in the threaded runtime: every participant
/// (rank 0 = master, ranks 1..n = workers) owns a mailbox; `send` routes a
/// message to the destination mailbox; `recv` blocks on the caller's own
/// mailbox. Messages round-trip through byte serialization so the code
/// path exercised is the same one a socket transport would use, and
/// per-rank traffic counters feed the communication-load accounting.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/message.hpp"
#include "comm/queue.hpp"

namespace coupon::comm {

/// Per-rank cumulative traffic counters.
struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t payload_units_sent = 0;  ///< Σ payload sizes (Definition 3)
};

/// A fixed-size set of endpoints with reliable in-order unicast delivery.
///
/// Thread safety: any thread may send to any rank; `recv`/`try_recv` for a
/// given rank should be called by that rank's owning thread (the usual MPI
/// discipline).
class InProcNetwork {
 public:
  /// Creates `num_ranks` endpoints (rank ids 0 .. num_ranks-1).
  explicit InProcNetwork(std::size_t num_ranks);

  std::size_t num_ranks() const { return mailboxes_.size(); }

  /// Routes `m` to `m.dest`. `m.source` must be a valid rank. Serializes
  /// and deserializes the message to exercise the wire path. Returns false
  /// if the destination mailbox is closed.
  bool send(Message m);

  /// Blocking receive on `rank`'s mailbox; nullopt once closed and drained.
  std::optional<Message> recv(std::size_t rank);

  /// Receive with timeout; nullopt on timeout or closed.
  std::optional<Message> recv_for(std::size_t rank,
                                  std::chrono::milliseconds timeout);

  /// Blocking receive with a distinguishable outcome: kItem with `out`
  /// assigned, or kClosed once the mailbox is closed and drained.
  PopStatus recv(std::size_t rank, Message& out);

  /// Deadline receive that keeps EOF distinct from timeout: kItem with
  /// `out` assigned, kTimeout when the deadline passed with the mailbox
  /// open, kClosed once closed and drained.
  PopStatus recv_for(std::size_t rank, std::chrono::milliseconds timeout,
                     Message& out);

  /// Non-blocking receive.
  std::optional<Message> try_recv(std::size_t rank);

  /// Closes one mailbox (wakes its blocked receiver).
  void close_rank(std::size_t rank);

  /// Closes all mailboxes.
  void close_all();

  /// Snapshot of `rank`'s traffic counters.
  TrafficStats stats(std::size_t rank) const;

 private:
  struct Endpoint {
    BlockingQueue<Message> mailbox;
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> payload_units_sent{0};
  };

  std::vector<std::unique_ptr<Endpoint>> mailboxes_;
};

}  // namespace coupon::comm
