#pragma once

/// \file message.hpp
/// Typed message exchanged between master and workers.
///
/// Mirrors the shape of the paper's MPI traffic: the master broadcasts the
/// current model (payload = w_t), workers reply with encoded gradients
/// (payload = z_i, meta = scheme-specific identifiers such as the batch
/// index a BCC worker processed).

#include <cstdint>
#include <vector>

namespace coupon::comm {

/// Well-known tags used by the distributed-GD runtime. User code may use
/// any other non-negative value.
enum MessageTag : std::int32_t {
  kTagModelBroadcast = 1,  ///< master -> worker: current weight vector
  kTagGradient = 2,        ///< worker -> master: encoded gradient message
  kTagShutdown = 3,        ///< master -> worker: terminate worker loop
  kTagHello = 4,           ///< worker -> master: rank announcement on a
                           ///< fresh TCP connection (meta = {rank})
};

/// One routed message. `payload` carries dense numeric data; `meta` carries
/// small scheme-specific integers (batch id, example indices, ...).
struct Message {
  std::int32_t source = -1;
  std::int32_t dest = -1;
  std::int32_t tag = 0;
  std::int64_t iteration = -1;
  std::vector<std::int64_t> meta;
  std::vector<double> payload;

  bool operator==(const Message& other) const = default;

  /// Wire size in bytes if serialized (header + meta + payload).
  std::size_t wire_size() const;

  /// Size of the payload normalized to gradient units; the communication
  /// load L of Definition 3 sums this over received messages.
  std::size_t payload_size() const { return payload.size(); }
};

/// Serializes `m` into a portable little-endian byte buffer.
std::vector<std::uint8_t> serialize(const Message& m);

/// Parses a buffer produced by `serialize`. Returns false on malformed
/// input (short buffer, bad magic, truncated arrays) without touching `out`.
bool deserialize(const std::vector<std::uint8_t>& bytes, Message& out);

}  // namespace coupon::comm
