#include "comm/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>

#include "util/assert.hpp"

namespace coupon::comm {

namespace {

/// Frames above this are treated as stream corruption, not messages: the
/// largest legitimate payload (a model broadcast) is n_features doubles.
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 31;

/// Writes all `n` bytes, riding out EINTR and short writes; never raises
/// SIGPIPE. False when the peer is gone.
bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t wrote =
        ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Reads exactly `n` bytes. 1 = done, 0 = EOF or error (stream over).
int read_all(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, data + done, n - done);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return 0;
    }
    if (got == 0) {
      return 0;  // EOF mid-frame: the peer is gone
    }
    done += static_cast<std::size_t>(got);
  }
  return 1;
}

/// Waits for `fd` to become readable. 1 = readable (or hung up — the
/// subsequent read observes the EOF), 0 = timeout, -1 = poll error.
int wait_readable(int fd, std::chrono::milliseconds timeout) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (rc < 0 && errno == EINTR) {
      continue;
    }
    return rc < 0 ? -1 : (rc == 0 ? 0 : 1);
  }
}

bool send_frame_bytes(int fd, const std::vector<std::uint8_t>& wire) {
  std::uint8_t prefix[8];
  const std::uint64_t length = wire.size();
  for (int i = 0; i < 8; ++i) {
    prefix[i] = static_cast<std::uint8_t>(length >> (8 * i));
  }
  return write_all(fd, prefix, sizeof(prefix)) &&
         write_all(fd, wire.data(), wire.size());
}

/// Turns off Nagle on TCP streams; a no-op on AF_UNIX (where the option
/// does not exist) — each iteration is a small latency-bound exchange.
void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void close_fd(int fd) {
  if (fd >= 0) {
    ::close(fd);
  }
}

}  // namespace

bool send_frame(int fd, const Message& m) {
  if (fd < 0) {
    return false;
  }
  return send_frame_bytes(fd, serialize(m));
}

FrameStatus recv_frame(int fd, std::chrono::milliseconds timeout,
                       Message& out) {
  if (fd < 0) {
    return FrameStatus::kClosed;
  }
  if (timeout.count() >= 0) {
    const int ready = wait_readable(fd, timeout);
    if (ready == 0) {
      return FrameStatus::kTimeout;
    }
    if (ready < 0) {
      return FrameStatus::kClosed;
    }
  }
  std::uint8_t prefix[8];
  if (read_all(fd, prefix, sizeof(prefix)) != 1) {
    return FrameStatus::kClosed;
  }
  std::uint64_t length = 0;
  for (int i = 0; i < 8; ++i) {
    length |= static_cast<std::uint64_t>(prefix[i]) << (8 * i);
  }
  if (length == 0 || length > kMaxFrameBytes) {
    return FrameStatus::kClosed;  // corrupt stream; resync is impossible
  }
  std::vector<std::uint8_t> body(static_cast<std::size_t>(length));
  if (read_all(fd, body.data(), body.size()) != 1) {
    return FrameStatus::kClosed;
  }
  return deserialize(body, out) ? FrameStatus::kMessage
                                : FrameStatus::kClosed;
}

bool make_stream_socketpair(int fds[2]) {
  return ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0;
}

bool socketpair_available() {
  static const bool available = [] {
    int fds[2];
    if (!make_stream_socketpair(fds)) {
      return false;
    }
    close_fd(fds[0]);
    close_fd(fds[1]);
    return true;
  }();
  return available;
}

bool tcp_loopback_available() {
  static const bool available = [] {
    auto listener = TcpListener::open();
    if (listener == nullptr) {
      return false;
    }
    const int client = tcp_connect_loopback(listener->port(),
                                            std::chrono::milliseconds(500));
    if (client < 0) {
      return false;
    }
    const int accepted =
        listener->accept_fd(std::chrono::milliseconds(500));
    close_fd(client);
    close_fd(accepted);
    return accepted >= 0;
  }();
  return available;
}

std::unique_ptr<TcpListener> TcpListener::open() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return nullptr;
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // let the kernel pick
  socklen_t addr_len = sizeof(addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, SOMAXCONN) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) !=
          0) {
    close_fd(fd);
    return nullptr;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(addr.sin_port)));
}

TcpListener::~TcpListener() { close_fd(fd_); }

int TcpListener::accept_fd(std::chrono::milliseconds timeout) {
  if (wait_readable(fd_, timeout) != 1) {
    return -1;
  }
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0 || errno != EINTR) {
      return fd;
    }
  }
}

int tcp_connect_loopback(std::uint16_t port,
                         std::chrono::milliseconds timeout) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    close_fd(fd);
    // The listener's backlog can briefly overflow while every worker
    // connects at once; retry until the deadline.
    if (errno != ECONNREFUSED && errno != EINTR && errno != EAGAIN) {
      return -1;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return -1;
    }
    struct timespec nap = {0, 2 * 1000 * 1000};  // 2 ms
    ::nanosleep(&nap, nullptr);
  }
}

TcpTransport::TcpTransport(std::size_t rank, std::size_t num_ranks,
                           std::vector<int> fds)
    : rank_(rank), num_ranks_(num_ranks), fds_(std::move(fds)) {}

std::unique_ptr<TcpTransport> TcpTransport::master(
    std::vector<int> worker_fds) {
  COUPON_ASSERT(!worker_fds.empty());
  const std::size_t num_ranks = worker_fds.size() + 1;
  auto transport = std::unique_ptr<TcpTransport>(
      new TcpTransport(/*rank=*/0, num_ranks, std::move(worker_fds)));
  transport->readers_.reserve(transport->fds_.size());
  for (std::size_t i = 0; i < transport->fds_.size(); ++i) {
    const int fd = transport->fds_[i];
    COUPON_ASSERT(fd >= 0);
    set_nodelay(fd);
    TcpTransport* self = transport.get();
    transport->readers_.emplace_back(
        [self, i, fd] { self->reader_loop(i + 1, fd); });
  }
  return transport;
}

std::unique_ptr<TcpTransport> TcpTransport::worker(int fd, std::size_t rank,
                                                   std::size_t num_ranks) {
  COUPON_ASSERT(fd >= 0);
  COUPON_ASSERT(rank >= 1 && rank < num_ranks);
  set_nodelay(fd);
  return std::unique_ptr<TcpTransport>(
      new TcpTransport(rank, num_ranks, std::vector<int>{fd}));
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::reader_loop(std::size_t peer_rank, int fd) {
  for (;;) {
    RecvEvent event;
    const FrameStatus status =
        recv_frame(fd, std::chrono::milliseconds(-1), event.message);
    if (status != FrameStatus::kMessage) {
      // EOF (or stream corruption): exactly one crash/leave signal, then
      // the reader retires.
      event.status = RecvStatus::kPeerClosed;
      event.peer = peer_rank;
      event.message = Message{};
      inbox_.push(std::move(event));
      return;
    }
    event.status = RecvStatus::kMessage;
    event.peer = peer_rank;
    inbox_.push(std::move(event));
  }
}

int TcpTransport::fd_for(std::size_t dest) const {
  if (rank_ == 0) {
    COUPON_ASSERT_MSG(dest >= 1 && dest < num_ranks_,
                      "master send to bad rank " << dest);
    return fds_[dest - 1];
  }
  COUPON_ASSERT_MSG(dest == 0, "workers may only send to the master");
  return fds_[0];
}

bool TcpTransport::send(Message m) {
  if (closed_) {
    return false;
  }
  m.source = static_cast<std::int32_t>(rank_);
  const int fd = fd_for(static_cast<std::size_t>(m.dest));
  const std::vector<std::uint8_t> wire = serialize(m);
  if (!send_frame_bytes(fd, wire)) {
    return false;
  }
  ++messages_sent_;
  bytes_sent_ += wire.size();
  payload_units_sent_ += m.payload.size();
  return true;
}

RecvEvent TcpTransport::recv() {
  return recv_for(std::chrono::milliseconds(-1));
}

RecvEvent TcpTransport::recv_for(std::chrono::milliseconds timeout) {
  RecvEvent event;
  if (closed_) {
    event.status = RecvStatus::kClosed;
    return event;
  }
  if (rank_ == 0) {
    // Master: drain the inbox the readers feed.
    const PopStatus status =
        timeout.count() < 0 ? inbox_.pop(event)
                            : inbox_.pop_for(timeout, event);
    if (status == PopStatus::kTimeout) {
      event.status = RecvStatus::kTimeout;
    } else if (status == PopStatus::kClosed) {
      event.status = RecvStatus::kClosed;
    } else if (event.status == RecvStatus::kMessage) {
      ++messages_received_;
    }
    return event;
  }
  // Worker: read the master stream directly. Master EOF is terminal for
  // a worker — there is no one left to hear from.
  switch (recv_frame(fds_[0], timeout, event.message)) {
    case FrameStatus::kMessage:
      event.status = RecvStatus::kMessage;
      event.peer = 0;
      ++messages_received_;
      return event;
    case FrameStatus::kTimeout:
      event.status = RecvStatus::kTimeout;
      return event;
    case FrameStatus::kClosed:
      break;
  }
  event.status = RecvStatus::kClosed;
  return event;
}

void TcpTransport::close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  for (int fd : fds_) {
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);  // unblocks the reader of this stream
    }
  }
  for (auto& reader : readers_) {
    reader.join();
  }
  readers_.clear();
  for (int& fd : fds_) {
    close_fd(fd);
    fd = -1;
  }
  inbox_.close();
}

TrafficStats TcpTransport::stats() const {
  TrafficStats s;
  s.messages_sent = messages_sent_;
  s.bytes_sent = bytes_sent_;
  s.payload_units_sent = payload_units_sent_;
  s.messages_received = messages_received_;
  return s;
}

}  // namespace coupon::comm
