#pragma once

/// \file queue.hpp
/// Multi-producer multi-consumer blocking queue — the delivery primitive
/// behind each network endpoint's mailbox.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace coupon::comm {

/// Why a deadline pop returned without an item — or with one. Crash
/// detection needs "the peer went away" (kClosed, terminal) to be
/// distinguishable from "the peer is slow" (kTimeout, retryable); the
/// optional-returning pops conflate the two.
enum class PopStatus {
  kItem,     ///< an item was delivered
  kTimeout,  ///< the deadline passed with the queue open and empty
  kClosed,   ///< the queue is closed and drained — nothing will ever arrive
};

/// Unbounded MPMC FIFO with blocking pop and close semantics.
///
/// After `close()`, pushes are rejected and pops drain the remaining
/// items, then return nullopt — the standard graceful-shutdown contract
/// for worker loops.
template <typename T>
class BlockingQueue {
 public:
  /// Enqueues an item. Returns false if the queue is closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Like pop() but gives up after `timeout`; nullopt on timeout or closed
  /// and drained.
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout,
                      [this] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocking pop with a distinguishable outcome: kItem with `out`
  /// assigned, or kClosed once the queue is closed and drained.
  PopStatus pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return take_locked(out);
  }

  /// Deadline pop with a distinguishable outcome: kItem with `out`
  /// assigned, kTimeout when the deadline passed with the queue still
  /// open, or kClosed once closed and drained.
  PopStatus pop_for(std::chrono::milliseconds timeout, T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout,
                      [this] { return closed_ || !items_.empty(); })) {
      return PopStatus::kTimeout;
    }
    return take_locked(out);
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Marks the queue closed and wakes all waiters.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  /// Predicate already satisfied under `lock`: either an item exists
  /// (closed queues still drain) or the queue is closed and empty.
  PopStatus take_locked(T& out) {
    if (items_.empty()) {
      return PopStatus::kClosed;
    }
    out = std::move(items_.front());
    items_.pop_front();
    return PopStatus::kItem;
  }

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace coupon::comm
