#pragma once

/// \file queue.hpp
/// Multi-producer multi-consumer blocking queue — the delivery primitive
/// behind each network endpoint's mailbox.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace coupon::comm {

/// Unbounded MPMC FIFO with blocking pop and close semantics.
///
/// After `close()`, pushes are rejected and pops drain the remaining
/// items, then return nullopt — the standard graceful-shutdown contract
/// for worker loops.
template <typename T>
class BlockingQueue {
 public:
  /// Enqueues an item. Returns false if the queue is closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Like pop() but gives up after `timeout`; nullopt on timeout or closed
  /// and drained.
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout,
                      [this] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Marks the queue closed and wakes all waiters.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace coupon::comm
