#pragma once

/// \file transport.hpp
/// The endpoint-level transport seam (DESIGN.md §9).
///
/// A `Transport` is one participant's view of the fabric: it routes
/// outgoing messages by `Message::dest` and surfaces incoming traffic as
/// `RecvEvent`s whose status keeps the three ways a wait can end apart —
/// a message arrived, the deadline passed, or an endpoint went away. The
/// master-side iteration provider (runtime/transport_provider.hpp) is
/// written against this interface only, so the threaded runtime (an
/// `InProcessTransport` over the in-process fabric) and the multi-process
/// runtime (a `TcpTransport` over stream sockets) share one protocol
/// implementation; framing and connection management never leak upward.

#include <chrono>
#include <cstddef>
#include <string_view>

#include "comm/message.hpp"
#include "comm/network.hpp"

namespace coupon::comm {

/// What a `Transport::recv` wait produced.
enum class RecvStatus {
  kMessage,     ///< `message` holds a delivered message from `peer`
  kTimeout,     ///< the deadline passed; every peer is still connected
  kPeerClosed,  ///< `peer`'s connection reached EOF — a crash/leave signal
  kClosed,      ///< this endpoint is shut down; no further events
};

/// One receive outcome. `peer` is the rank the event concerns (the sender
/// for kMessage, the vanished rank for kPeerClosed; unspecified
/// otherwise).
struct RecvEvent {
  RecvStatus status = RecvStatus::kClosed;
  std::size_t peer = static_cast<std::size_t>(-1);
  Message message;
};

/// One endpoint of a rank-addressed message fabric.
///
/// Thread safety follows the MPI discipline of InProcNetwork: any thread
/// may send, but `recv`/`recv_for` belong to the endpoint's owning
/// thread.
class Transport {
 public:
  virtual ~Transport() = default;

  /// This endpoint's rank (0 = master).
  virtual std::size_t rank() const = 0;

  /// Total participants, master included.
  virtual std::size_t num_ranks() const = 0;

  /// Implementation tag for records and diagnostics ("inproc", "tcp").
  virtual std::string_view kind() const = 0;

  /// Routes `m` to `m.dest`, stamping `m.source` with this endpoint's
  /// rank. Returns false when the destination is gone (closed mailbox,
  /// broken pipe) — the caller decides whether that is fatal.
  virtual bool send(Message m) = 0;

  /// Blocks until a message arrives or a terminal event occurs. Never
  /// returns kTimeout.
  virtual RecvEvent recv() = 0;

  /// Like recv() but gives up after `timeout`, returning kTimeout with
  /// every connection intact — distinct from kPeerClosed/kClosed, which
  /// are terminal for the peer / the endpoint respectively.
  virtual RecvEvent recv_for(std::chrono::milliseconds timeout) = 0;

  /// Shuts the endpoint down: subsequent receives return kClosed and
  /// peers observe EOF where the fabric supports it. Idempotent.
  virtual void close() = 0;

  /// Cumulative traffic counters for this endpoint.
  virtual TrafficStats stats() const = 0;
};

/// `Transport` endpoint over the in-process fabric backing the threaded
/// runtime. Peers are threads of one process, so peer death is not
/// observable: receives never return kPeerClosed, and a closed-and-
/// drained mailbox surfaces as kClosed.
class InProcessTransport final : public Transport {
 public:
  /// Binds to `rank`'s mailbox in `network`, which must outlive this
  /// endpoint.
  InProcessTransport(InProcNetwork& network, std::size_t rank);

  std::size_t rank() const override { return rank_; }
  std::size_t num_ranks() const override { return network_.num_ranks(); }
  std::string_view kind() const override { return "inproc"; }
  bool send(Message m) override;
  RecvEvent recv() override;
  RecvEvent recv_for(std::chrono::milliseconds timeout) override;
  void close() override;
  TrafficStats stats() const override;

 private:
  InProcNetwork& network_;
  std::size_t rank_;
};

}  // namespace coupon::comm
