#include "comm/network.hpp"

#include "util/assert.hpp"

namespace coupon::comm {

InProcNetwork::InProcNetwork(std::size_t num_ranks) {
  COUPON_ASSERT(num_ranks > 0);
  mailboxes_.reserve(num_ranks);
  for (std::size_t i = 0; i < num_ranks; ++i) {
    mailboxes_.push_back(std::make_unique<Endpoint>());
  }
}

bool InProcNetwork::send(Message m) {
  COUPON_ASSERT_MSG(m.source >= 0 &&
                        static_cast<std::size_t>(m.source) < num_ranks(),
                    "bad source rank " << m.source);
  COUPON_ASSERT_MSG(m.dest >= 0 &&
                        static_cast<std::size_t>(m.dest) < num_ranks(),
                    "bad dest rank " << m.dest);
  Endpoint& src = *mailboxes_[static_cast<std::size_t>(m.source)];
  Endpoint& dst = *mailboxes_[static_cast<std::size_t>(m.dest)];

  // Round-trip through the wire format: catches any non-serializable state
  // early and keeps byte accounting faithful to a socket transport.
  const std::vector<std::uint8_t> wire = serialize(m);
  Message delivered;
  const bool ok = deserialize(wire, delivered);
  COUPON_ASSERT_MSG(ok, "message failed serialization round-trip");

  src.messages_sent.fetch_add(1, std::memory_order_relaxed);
  src.bytes_sent.fetch_add(wire.size(), std::memory_order_relaxed);
  src.payload_units_sent.fetch_add(delivered.payload.size(),
                                   std::memory_order_relaxed);
  if (!dst.mailbox.push(std::move(delivered))) {
    return false;
  }
  return true;
}

std::optional<Message> InProcNetwork::recv(std::size_t rank) {
  COUPON_ASSERT(rank < num_ranks());
  auto m = mailboxes_[rank]->mailbox.pop();
  if (m) {
    mailboxes_[rank]->messages_received.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  return m;
}

std::optional<Message> InProcNetwork::recv_for(
    std::size_t rank, std::chrono::milliseconds timeout) {
  COUPON_ASSERT(rank < num_ranks());
  auto m = mailboxes_[rank]->mailbox.pop_for(timeout);
  if (m) {
    mailboxes_[rank]->messages_received.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  return m;
}

PopStatus InProcNetwork::recv(std::size_t rank, Message& out) {
  COUPON_ASSERT(rank < num_ranks());
  const PopStatus status = mailboxes_[rank]->mailbox.pop(out);
  if (status == PopStatus::kItem) {
    mailboxes_[rank]->messages_received.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  return status;
}

PopStatus InProcNetwork::recv_for(std::size_t rank,
                                  std::chrono::milliseconds timeout,
                                  Message& out) {
  COUPON_ASSERT(rank < num_ranks());
  const PopStatus status = mailboxes_[rank]->mailbox.pop_for(timeout, out);
  if (status == PopStatus::kItem) {
    mailboxes_[rank]->messages_received.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  return status;
}

std::optional<Message> InProcNetwork::try_recv(std::size_t rank) {
  COUPON_ASSERT(rank < num_ranks());
  auto m = mailboxes_[rank]->mailbox.try_pop();
  if (m) {
    mailboxes_[rank]->messages_received.fetch_add(1,
                                                  std::memory_order_relaxed);
  }
  return m;
}

void InProcNetwork::close_rank(std::size_t rank) {
  COUPON_ASSERT(rank < num_ranks());
  mailboxes_[rank]->mailbox.close();
}

void InProcNetwork::close_all() {
  for (auto& ep : mailboxes_) {
    ep->mailbox.close();
  }
}

TrafficStats InProcNetwork::stats(std::size_t rank) const {
  COUPON_ASSERT(rank < num_ranks());
  const Endpoint& ep = *mailboxes_[rank];
  TrafficStats s;
  s.messages_sent = ep.messages_sent.load(std::memory_order_relaxed);
  s.messages_received = ep.messages_received.load(std::memory_order_relaxed);
  s.bytes_sent = ep.bytes_sent.load(std::memory_order_relaxed);
  s.payload_units_sent =
      ep.payload_units_sent.load(std::memory_order_relaxed);
  return s;
}

}  // namespace coupon::comm
