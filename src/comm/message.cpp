#include "comm/message.hpp"

#include <cstring>

namespace coupon::comm {

namespace {

constexpr std::uint32_t kMagic = 0xBCCC0DE5u;

template <typename T>
void append_raw(std::vector<std::uint8_t>& buf, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  // resize + memcpy instead of insert(pointer range): GCC 12 -O3 flags the
  // insert form with a spurious -Wstringop-overflow.
  const std::size_t old_size = buf.size();
  buf.resize(old_size + sizeof(T));
  std::memcpy(buf.data() + old_size, &value, sizeof(T));
}

template <typename T>
bool read_raw(const std::vector<std::uint8_t>& buf, std::size_t& pos,
              T& value) {
  if (pos + sizeof(T) > buf.size()) {
    return false;
  }
  std::memcpy(&value, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

std::size_t Message::wire_size() const {
  return sizeof(std::uint32_t)                 // magic
         + 3 * sizeof(std::int32_t)            // source, dest, tag
         + sizeof(std::int64_t)                // iteration
         + 2 * sizeof(std::uint64_t)           // array lengths
         + meta.size() * sizeof(std::int64_t)  //
         + payload.size() * sizeof(double);
}

std::vector<std::uint8_t> serialize(const Message& m) {
  std::vector<std::uint8_t> buf;
  buf.reserve(m.wire_size());
  append_raw(buf, kMagic);
  append_raw(buf, m.source);
  append_raw(buf, m.dest);
  append_raw(buf, m.tag);
  append_raw(buf, m.iteration);
  append_raw(buf, static_cast<std::uint64_t>(m.meta.size()));
  append_raw(buf, static_cast<std::uint64_t>(m.payload.size()));
  for (std::int64_t v : m.meta) {
    append_raw(buf, v);
  }
  for (double v : m.payload) {
    append_raw(buf, v);
  }
  return buf;
}

bool deserialize(const std::vector<std::uint8_t>& bytes, Message& out) {
  std::size_t pos = 0;
  std::uint32_t magic = 0;
  Message m;
  std::uint64_t meta_len = 0;
  std::uint64_t payload_len = 0;
  if (!read_raw(bytes, pos, magic) || magic != kMagic ||
      !read_raw(bytes, pos, m.source) || !read_raw(bytes, pos, m.dest) ||
      !read_raw(bytes, pos, m.tag) || !read_raw(bytes, pos, m.iteration) ||
      !read_raw(bytes, pos, meta_len) || !read_raw(bytes, pos, payload_len)) {
    return false;
  }
  // Reject length prefixes that overrun the actual buffer before resizing.
  const std::size_t need = meta_len * sizeof(std::int64_t) +
                           payload_len * sizeof(double);
  if (pos + need != bytes.size()) {
    return false;
  }
  m.meta.resize(meta_len);
  for (auto& v : m.meta) {
    if (!read_raw(bytes, pos, v)) {
      return false;
    }
  }
  m.payload.resize(payload_len);
  for (auto& v : m.payload) {
    if (!read_raw(bytes, pos, v)) {
      return false;
    }
  }
  out = std::move(m);
  return true;
}

}  // namespace coupon::comm
