#pragma once

/// \file comm.hpp
/// Umbrella header for the comm module.

#include "comm/message.hpp"       // IWYU pragma: export
#include "comm/network.hpp"       // IWYU pragma: export
#include "comm/queue.hpp"         // IWYU pragma: export
#include "comm/tcp_transport.hpp" // IWYU pragma: export
#include "comm/transport.hpp"     // IWYU pragma: export
