#pragma once

/// \file tcp_transport.hpp
/// Stream-socket `Transport` for the multi-process runtime (DESIGN.md §9).
///
/// Wire format: each message travels as one length-prefixed frame,
/// `[u64 length, little-endian][serialize(Message)]` — the explicit
/// prefix is what lets a byte stream be cut back into the exact-size
/// buffers `deserialize` demands. Both loopback TCP connections and
/// AF_UNIX stream socketpairs carry the identical framing, so sandboxes
/// that forbid binding a listening socket fall back to socketpairs
/// created before fork() with no protocol change.
///
/// Crash detection is the kernel's: when a worker process dies (SIGKILL
/// included), its socket closes and the master's reader observes EOF —
/// surfaced as one `RecvStatus::kPeerClosed` event for that rank, kept
/// distinct from `kTimeout` (peer slow) and `kClosed` (endpoint shut
/// down by its owner).

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "comm/queue.hpp"
#include "comm/transport.hpp"

namespace coupon::comm {

/// True when this sandbox can create (and connect over) loopback TCP
/// sockets. Probed once.
bool tcp_loopback_available();

/// True when AF_UNIX stream socketpairs can be created. Probed once.
bool socketpair_available();

/// Creates a connected AF_UNIX stream pair with SIGPIPE-free semantics;
/// false when the sandbox forbids it.
bool make_stream_socketpair(int fds[2]);

/// Writes one length-prefixed frame to `fd`. Returns false when the peer
/// is gone (EPIPE/ECONNRESET) or the fd is invalid; never raises SIGPIPE.
bool send_frame(int fd, const Message& m);

/// Outcome of a frame read, mirroring PopStatus for a byte stream.
enum class FrameStatus {
  kMessage,  ///< a complete, well-formed frame was read into `out`
  kTimeout,  ///< the deadline passed before the frame started
  kClosed,   ///< EOF, a malformed frame, or a read error — terminal
};

/// Reads one frame from `fd`. A negative `timeout` blocks indefinitely;
/// otherwise the deadline applies to the frame's first byte (a started
/// frame is always read to completion). Malformed input (oversized
/// length, bytes `deserialize` rejects) is terminal: the stream offset
/// can no longer be trusted.
FrameStatus recv_frame(int fd, std::chrono::milliseconds timeout,
                       Message& out);

/// A loopback TCP listener on an ephemeral port, for collecting worker
/// connections at cluster start.
class TcpListener {
 public:
  /// Binds 127.0.0.1:0 and listens; nullptr when the sandbox forbids it.
  static std::unique_ptr<TcpListener> open();

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The ephemeral port the kernel assigned.
  std::uint16_t port() const { return port_; }

  /// Accepts one connection; -1 on timeout or error.
  int accept_fd(std::chrono::milliseconds timeout);

  /// The listening socket, for closing in forked children.
  int fd() const { return fd_; }

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_;
  std::uint16_t port_;
};

/// Connects to 127.0.0.1:`port`; -1 on failure within `timeout`.
int tcp_connect_loopback(std::uint16_t port,
                         std::chrono::milliseconds timeout);

/// Stream-socket `Transport` endpoint. Two shapes share the class:
///
///  - `master()` owns one connected stream per worker and a reader
///    thread per stream; readers funnel frames (and EOFs, as
///    kPeerClosed) into one inbox the master's `recv` drains.
///  - `worker()` owns the single stream to the master and reads it
///    directly — no threads; master EOF surfaces as kClosed.
class TcpTransport final : public Transport {
 public:
  /// Master endpoint (rank 0). `worker_fds[i]` is the connected stream
  /// to worker rank i+1; the transport takes ownership of every fd.
  static std::unique_ptr<TcpTransport> master(std::vector<int> worker_fds);

  /// Worker endpoint over the single stream to the master. Takes
  /// ownership of `fd`.
  static std::unique_ptr<TcpTransport> worker(int fd, std::size_t rank,
                                              std::size_t num_ranks);

  ~TcpTransport() override;
  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  std::size_t rank() const override { return rank_; }
  std::size_t num_ranks() const override { return num_ranks_; }
  std::string_view kind() const override { return "tcp"; }
  bool send(Message m) override;
  RecvEvent recv() override;
  RecvEvent recv_for(std::chrono::milliseconds timeout) override;
  void close() override;
  TrafficStats stats() const override;

 private:
  TcpTransport(std::size_t rank, std::size_t num_ranks,
               std::vector<int> fds);

  /// Reader-thread body for one master-side stream: frames -> inbox,
  /// EOF -> one kPeerClosed event.
  void reader_loop(std::size_t peer_rank, int fd);

  /// Stream to `dest`: fds_[0] on a worker, fds_[dest-1] on the master.
  int fd_for(std::size_t dest) const;

  std::size_t rank_;
  std::size_t num_ranks_;
  std::vector<int> fds_;
  std::vector<std::thread> readers_;          // master only
  BlockingQueue<RecvEvent> inbox_;            // master only
  bool closed_ = false;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t payload_units_sent_ = 0;
  std::uint64_t messages_received_ = 0;
};

}  // namespace coupon::comm
