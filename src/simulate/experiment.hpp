#pragma once

/// \file experiment.hpp
/// Scenario harness reproducing the paper's EC2 experiments (Section
/// III-C): run several schemes over the same simulated cluster and report
/// Table I/II-style rows (recovery threshold, communication time,
/// computation time, total running time).
///
/// Calibration: the cluster constants below were chosen so that the
/// simulated per-message ingress time and per-unit compute time land in
/// the regime the paper reports for t2.micro instances (communication
/// dominates computation by an order of magnitude; see EXPERIMENTS.md for
/// the measured-vs-paper comparison). The *shape* of the results — the
/// scheme ranking and the proportionality of total time to the recovery
/// threshold — does not depend on the exact constants; see
/// bench/ablation_master_bw for the sensitivity sweep.

#include <cstdint>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "simulate/cluster_sim.hpp"

namespace coupon::simulate {

/// One experiment scenario (a cluster, a workload, a set of schemes).
struct ScenarioConfig {
  std::string name;
  std::size_t num_workers = 0;  ///< n
  std::size_t num_units = 0;    ///< m (data batches / super-examples)
  std::size_t load = 0;         ///< r for the coded schemes (units)
  std::size_t iterations = 100;
  ClusterConfig cluster;
  std::uint64_t seed = 1;
};

/// The shared EC2 cluster calibration behind both scenarios (and the
/// driver's "shifted_exp" straggler scenario).
ClusterConfig ec2_cluster();

/// Scenario one of the paper: n = 50 workers, m = 50 data batches (100
/// points each), r = 10 for CR and BCC, 100 iterations.
ScenarioConfig ec2_scenario_one();

/// Scenario two of the paper: n = 100 workers, m = 100 data batches.
ScenarioConfig ec2_scenario_two();

/// One Table I/II row.
struct SchemeRunRow {
  std::string scheme_name;  ///< SchemeRegistry name, e.g. "bcc"
  std::string scheme;       ///< display name, e.g. "BCC"
  double recovery_threshold = 0.0;  ///< mean workers heard per iteration
  double comm_time = 0.0;           ///< total over the run, seconds
  double compute_time = 0.0;        ///< total over the run, seconds
  double total_time = 0.0;          ///< total running time, seconds
  double mean_units = 0.0;          ///< mean communication load L
  std::size_t failures = 0;         ///< unrecovered iterations
};

/// Runs each scheme (by `core::SchemeRegistry` name) through the
/// scenario (fresh deterministic RNG stream per scheme, placement drawn
/// once per run as in the paper's setup) and returns one row per scheme,
/// in input order.
std::vector<SchemeRunRow> run_scenario(const ScenarioConfig& scenario,
                                       const std::vector<std::string>&
                                           scheme_names);

/// Percentage speedup of `ours` over `baseline` in total running time
/// (e.g. 0.854 means 85.4% faster, the paper's headline comparison).
double speedup_fraction(const SchemeRunRow& ours, const SchemeRunRow& baseline);

/// Column names of the per-iteration trace CSV: iteration,total_time,
/// compute_time,comm_time,workers_heard,units_received,recovered. Shared
/// by `write_iteration_csv` and the driver's CSV emitter so the schema
/// cannot drift.
const std::vector<std::string>& iteration_csv_header();

/// Renders iteration `index` as CSV fields matching
/// `iteration_csv_header()`.
std::vector<std::string> iteration_csv_fields(std::size_t index,
                                              const IterationReport& it);

/// Exports a run's per-iteration reports as CSV (header above) — for
/// external plotting of latency traces.
void write_iteration_csv(std::ostream& os, const RunReport& run);

}  // namespace coupon::simulate
