#pragma once

/// \file cluster_sim.hpp
/// Discrete-event model of one master + n workers running synchronous
/// distributed GD — the EC2-testbed substitute (see DESIGN.md §2).
///
/// Per iteration:
///   1. The master broadcasts the model; every worker starts computing
///      after `broadcast_seconds`.
///   2. Worker i's compute time is drawn from the cluster's pluggable
///      `LatencyModel` (latency_model.hpp). The default reproduces the
///      paper: shift-exponential in the load (Eq. 15 applied per unit),
///      shift = compute_shift * load_units, rate = compute_straggle /
///      load_units, redrawn each iteration — stragglers move around, as
///      in a real cluster. Other models give heavy tails, bursty or
///      Markov-persistent stragglers, or replayed traces.
///   3. Finished workers ship their encoded message to the master. The
///      master's ingress link is a serialized FIFO resource: receiving a
///      message occupies it for message_units * unit_transfer_seconds.
///      This is what makes the communication phase proportional to the
///      number of messages the master must sit through — exactly the
///      effect behind Tables I/II, where total time tracks the recovery
///      threshold K.
///   4. Each fully received message is offered to the scheme's Collector;
///      the iteration completes when the collector is ready.
///
/// Per-iteration accounting mirrors the paper's: computation time is the
/// maximum compute duration among workers whose messages were received
/// before the iteration ended; communication time is the remainder.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/scheme.hpp"
#include "simulate/event_queue.hpp"
#include "simulate/latency_model.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace coupon::simulate {

/// Latency parameters of the simulated cluster.
struct ClusterConfig {
  /// Seconds of deterministic compute per unit of load (a in Eq. 15).
  double compute_shift = 1e-3;
  /// Straggle parameter (mu in Eq. 15); the exponential tail of a
  /// worker's compute time has scale load/mu.
  double compute_straggle = 1.0;
  /// Master ingress service seconds per gradient unit received.
  double unit_transfer_seconds = 3e-3;
  /// Fixed model-broadcast latency at the start of each iteration.
  double broadcast_seconds = 0.0;
  /// Probability that a worker's message is lost this iteration (worker
  /// crash / packet drop). Independent across workers and iterations.
  /// Wait-for-all schemes fail the iteration on any loss; BCC/FR only
  /// fail when every replica of some batch/block is lost.
  double drop_probability = 0.0;
  /// Optional per-worker latency profiles (heterogeneous cluster). When
  /// non-empty, must have exactly one entry per worker and overrides the
  /// homogeneous compute_shift/compute_straggle above.
  std::vector<WorkerLatency> worker_overrides;
  /// Optional compute-latency law. When set, each run builds a fresh
  /// model from this factory and the shift/straggle/override fields above
  /// are ignored; when empty (the default) the simulator uses
  /// `ShiftedExpModel` built from those fields — the paper's Eq. 15,
  /// bit-identical to the pre-refactor behaviour.
  LatencyModelFactory latency_model;
};

/// Validates the cluster knobs for an `num_workers`-worker simulation:
/// compute_shift/broadcast_seconds/unit_transfer_seconds >= 0,
/// compute_straggle > 0, drop_probability in [0, 1], and worker_overrides
/// empty or exactly one valid entry per worker. Throws
/// coupon::AssertionError with the offending knob and value instead of
/// letting a bad config silently produce NaN or degenerate traces.
/// Called by simulate_iteration/simulate_run on entry.
void validate_cluster_config(const ClusterConfig& config,
                             std::size_t num_workers);

/// Builds the run's latency model: `config.latency_model(num_workers)`
/// when set, otherwise the default `ShiftedExpModel` over the config's
/// shift/straggle/override fields.
std::unique_ptr<LatencyModel> make_latency_model(const ClusterConfig& config,
                                                 std::size_t num_workers);

/// Outcome of a single simulated GD iteration.
struct IterationReport {
  double total_time = 0.0;
  double compute_time = 0.0;  ///< max compute among workers heard in time
  double comm_time = 0.0;     ///< total - compute
  std::size_t workers_heard = 0;  ///< |W| (recovery threshold sample)
  double units_received = 0.0;    ///< L sample
  bool recovered = true;  ///< false if all n messages left the collector
                          ///< unsatisfied (BCC coverage failure)
};

/// Aggregates over a multi-iteration run.
struct RunReport {
  std::vector<IterationReport> iterations;
  double total_time = 0.0;
  double total_compute_time = 0.0;
  double total_comm_time = 0.0;
  stats::OnlineStats workers_heard;   ///< empirical K
  stats::OnlineStats units_received;  ///< empirical L
  std::size_t failures = 0;           ///< iterations without recovery
};

/// Simulates one iteration of distributed GD for `scheme` on a cluster
/// described by `config`. Uses the scheme's combinatorial interface only
/// (no gradients are computed). Builds a fresh latency model for the
/// single iteration; multi-iteration runs must use `simulate_run` (or the
/// model-threading overload below) so stateful models keep their state.
IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   stats::Rng& rng);

/// As above, but samples compute times from the caller's `model` for GD
/// iteration `iteration` (calls `model.begin_iteration` first). This is
/// the primitive `simulate_run` loops over; it assumes `config` was
/// already validated (use `make_latency_model`, which validates, to
/// obtain the model).
IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   LatencyModel& model, std::size_t iteration,
                                   stats::Rng& rng);

/// Simulates `iterations` iterations against one latency-model instance
/// (independent draws for memoryless models; correlated across iterations
/// for Markov/trace models) and aggregates.
RunReport simulate_run(const core::Scheme& scheme, const ClusterConfig& config,
                       std::size_t iterations, stats::Rng& rng);

}  // namespace coupon::simulate
