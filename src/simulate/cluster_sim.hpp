#pragma once

/// \file cluster_sim.hpp
/// Model of one master + n workers running synchronous distributed GD —
/// the EC2-testbed substitute (see DESIGN.md §2).
///
/// Per iteration:
///   1. The master broadcasts the model; every worker starts computing
///      after `broadcast_seconds`.
///   2. Worker i's compute time is drawn from the cluster's pluggable
///      `LatencyModel` (latency_model.hpp). The default reproduces the
///      paper: shift-exponential in the load (Eq. 15 applied per unit),
///      shift = compute_shift * load_units, rate = compute_straggle /
///      load_units, redrawn each iteration — stragglers move around, as
///      in a real cluster. Other models give heavy tails, bursty or
///      Markov-persistent stragglers, or replayed traces.
///   3. Finished workers ship their encoded message to the master. The
///      master's ingress link is a serialized FIFO resource: receiving a
///      message occupies it for message_units * unit_transfer_seconds.
///      This is what makes the communication phase proportional to the
///      number of messages the master must sit through — exactly the
///      effect behind Tables I/II, where total time tracks the recovery
///      threshold K.
///   4. Each fully received message is offered to the scheme's Collector;
///      the iteration completes when the collector is ready.
///
/// Per-iteration accounting mirrors the paper's: computation time is the
/// maximum compute duration among workers whose messages were received
/// before the iteration ended; communication time is the remainder.
///
/// Execution: iterations run on the allocation-free `IterationKernel`, a
/// typed sort-based engine that draws compute times in the historical
/// event-loop RNG order and resolves the serialized FIFO ingress by an
/// arrival-sorted scan — provably trace-equivalent to the old
/// `EventQueue`-based loop (equivalence argument in DESIGN.md §7, pinned
/// byte-for-byte by tests/golden/sweep_2x2.jsonl) but with zero
/// steady-state heap allocations per iteration.
///
/// Large-n scaling (n = 10^5..10^6, ROADMAP's million-worker regime):
/// recovery needs only the earliest K arrivals (K ≈ n - r + 1 for the
/// threshold schemes, ~(m/r) H_{m/r} for the coverage schemes), so the
/// kernel sorts just the scheme's `min_arrivals_hint()` prefix up front
/// (`std::nth_element` + prefix sort) and extends the sorted prefix
/// geometrically when drops or coverage failure push recovery past it —
/// bit-identical to the full sort because arrival keys (time, worker)
/// are unique (DESIGN.md §7.4). `BatchedKernel` additionally carries
/// many same-n cells (different schemes/seeds) through one lockstep
/// draw+selection pass over flat per-cell arenas, which is how sweep
/// grids amortize RNG and memory traffic (driver/sweep.hpp wires it in).

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/scheme.hpp"
#include "simulate/cluster_config.hpp"
#include "simulate/event_queue.hpp"
#include "simulate/iteration_report.hpp"
#include "simulate/latency_model.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace coupon::simulate {

/// Aggregates over a multi-iteration run.
struct RunReport {
  /// Per-iteration reports — populated only when the run was executed
  /// with `RunOptions::record_trace` (the legacy iteration-count overload
  /// of `simulate_run` records it for back-compat).
  std::vector<IterationReport> iterations;
  double total_time = 0.0;
  double total_compute_time = 0.0;
  double total_comm_time = 0.0;
  stats::OnlineStats workers_heard;   ///< empirical K
  stats::OnlineStats units_received;  ///< empirical L
  std::size_t failures = 0;           ///< iterations without recovery
};

/// Options for `simulate_run`.
struct RunOptions {
  /// GD iterations to simulate.
  std::size_t iterations = 100;
  /// Opt-in per-iteration trace: when true, `RunReport::iterations` gets
  /// one `IterationReport` per iteration. Off by default — summary-only
  /// consumers (sweeps feeding summary CSV/JSONL sinks) should not pay
  /// for materializing traces they never render.
  bool record_trace = false;
};

/// Tuning knobs for `IterationKernel` (and, implicitly, `BatchedKernel`,
/// which always selects).
struct KernelOptions {
  /// Sort only the scheme's minimum-arrivals prefix up front and extend
  /// it geometrically on demand (DESIGN.md §7.4) instead of fully
  /// sorting all n arrivals every iteration. Bit-identical either way —
  /// the off position exists as the reference the equivalence tests
  /// compare against, and as an escape hatch for profiling.
  bool threshold_selection = true;
};

/// Allocation-free iteration engine for one (scheme, cluster) run
/// (DESIGN.md §7). Construction precomputes what the old event loop
/// recomputed per iteration — per-worker placement loads, message service
/// times (`message_units * unit_transfer_seconds`), message metadata in
/// one flat arena, and one reusable `Collector` — and each `run` call
/// then executes a full GD iteration with zero heap allocations in
/// steady state:
///
///   1. drops and compute times are drawn in the exact per-worker RNG
///      order of the historical event loop;
///   2. the earliest arrivals are materialized in (finish time, worker
///      index) order — identical to the DES heap's (time,
///      scheduling-seq) order, because compute completions were
///      scheduled in worker order. With threshold selection on, only
///      the scheme's recovery prefix is sorted up front
///      (`std::nth_element` + prefix sort from `min_arrivals_hint()` /
///      `expected_recovery_threshold()`), and the sorted prefix doubles
///      whenever the scan exhausts it without recovery; unique keys
///      make every prefix bit-identical to the full sort's.
///   3. the master's serialized FIFO ingress is resolved by a linear scan
///      (`busy-until = max(arrival, busy-until) + service`), offering each
///      message to the collector in completion order and stopping at
///      recovery — exactly when the old loop's run_until stopped.
///
/// The scheme and config must outlive the kernel; the config must already
/// have been validated (`make_latency_model` validates).
class IterationKernel {
 public:
  /// One master-side arrival: a worker's message reaching the ingress
  /// link. Produced by `draw_arrivals` in completion order.
  struct Arrival {
    double time = 0.0;     ///< broadcast_seconds + compute
    double compute = 0.0;  ///< the model draw (0 for unloaded workers)
    std::size_t worker = 0;
  };

  IterationKernel(const core::Scheme& scheme, const ClusterConfig& config,
                  KernelOptions options = {});

  /// Simulates GD iteration `iteration`, drawing compute times from
  /// `model` (calls `model.begin_iteration` first) and all randomness
  /// from `rng`. Bit-identical to the historical DES event loop.
  IterationReport run(LatencyModel& model, std::size_t iteration,
                      stats::Rng& rng);

  /// The kernel's first two phases only: draws drops + compute times in
  /// the historical per-worker RNG order and returns the iteration's
  /// arrivals sorted by (time, worker) — the order the master observes
  /// them. The view is valid until the next draw_arrivals/run call.
  /// Used by the training engine's simulated provider, which couples
  /// these arrival times with real gradient payloads and runs the
  /// ingress scan itself (engine/simulated_provider.hpp); `run` stays
  /// the timing-only fast path over the same draws.
  std::span<const Arrival> draw_arrivals(LatencyModel& model,
                                         std::size_t iteration,
                                         stats::Rng& rng);

  /// Lazy variant of `draw_arrivals` for consumers that stop early (the
  /// simulated provider stops at recovery, typically after a small
  /// prefix). Draws the iteration's arrivals in the same RNG order but
  /// sorts only the kernel's selection prefix up front; `sorted_arrival`
  /// then serves the k-th earliest arrival, extending the sorted prefix
  /// geometrically exactly like `run`'s selection phase. Unique (time,
  /// worker) keys make every served prefix bit-identical to the full
  /// sort's. Returns the number of arrivals this iteration.
  std::size_t begin_lazy_arrivals(LatencyModel& model, std::size_t iteration,
                                  stats::Rng& rng);

  /// The k-th earliest arrival of the current lazy iteration. Requires
  /// `k < begin_lazy_arrivals(...)`; invalidated by the next
  /// draw_arrivals/begin_lazy_arrivals/run call.
  const Arrival& sorted_arrival(std::size_t k);

  /// Master-ingress occupancy of worker `i`'s message, in seconds
  /// (message_units(i) * unit_transfer_seconds, precomputed per run).
  double service_seconds(std::size_t worker) const {
    return service_seconds_[worker];
  }

  /// Worker `i`'s message metadata (scheme.message_meta(i), precomputed
  /// per run into one flat arena — at n = 10^6 per-worker vectors would
  /// mean a million pointer-chased allocations).
  std::span<const std::int64_t> meta(std::size_t worker) const {
    return {meta_flat_.data() + meta_offsets_[worker],
            meta_offsets_[worker + 1] - meta_offsets_[worker]};
  }

  /// The selection start prefix in use: how many earliest arrivals `run`
  /// sorts before the first scan (n when threshold selection is off or
  /// the scheme is wait-for-all). Exposed for tests and diagnostics.
  std::size_t start_prefix() const { return start_prefix_; }

 private:
  const core::Scheme& scheme_;
  const ClusterConfig& config_;
  std::unique_ptr<core::Collector> collector_;  ///< reset() per iteration
  std::vector<double> loads_;            ///< |G_i| per worker
  std::vector<double> service_seconds_;  ///< ingress occupancy per worker
  std::vector<std::int64_t> meta_flat_;    ///< all metadata, concatenated
  std::vector<std::size_t> meta_offsets_;  ///< n + 1 bounds into meta_flat_
  std::vector<Arrival> arrivals_;  ///< reused scratch arena, size n
  std::size_t count_ = 0;          ///< arrivals drawn this iteration
  std::size_t start_prefix_ = 0;   ///< initial sorted-prefix length
  std::size_t lazy_sorted_ = 0;    ///< sorted-prefix length (lazy mode)
};

/// Simulates one iteration of distributed GD for `scheme` on a cluster
/// described by `config`. Uses the scheme's combinatorial interface only
/// (no gradients are computed). Builds a fresh latency model for the
/// single iteration; multi-iteration runs must use `simulate_run` (or the
/// model-threading overload below) so stateful models keep their state.
IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   stats::Rng& rng);

/// As above, but samples compute times from the caller's `model` for GD
/// iteration `iteration` (calls `model.begin_iteration` first). One-shot
/// convenience over a throwaway `IterationKernel`; it assumes `config`
/// was already validated (use `make_latency_model`, which validates, to
/// obtain the model). Loops should hold their own kernel instead.
IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   LatencyModel& model, std::size_t iteration,
                                   stats::Rng& rng);

/// Simulates `options.iterations` iterations against one latency-model
/// instance (independent draws for memoryless models; correlated across
/// iterations for Markov/trace models) and one reused `IterationKernel`
/// — the steady-state loop performs no heap allocations — then
/// aggregates. Records the per-iteration trace only when
/// `options.record_trace` is set.
RunReport simulate_run(const core::Scheme& scheme, const ClusterConfig& config,
                       const RunOptions& options, stats::Rng& rng);

/// Back-compat overload: `iterations` iterations WITH the per-iteration
/// trace recorded (the historical behaviour of this signature).
RunReport simulate_run(const core::Scheme& scheme, const ClusterConfig& config,
                       std::size_t iterations, stats::Rng& rng);

/// One cell of a `BatchedKernel` run: a (scheme, cluster, RNG stream)
/// tuple positioned exactly where `simulate_run` would start drawing —
/// i.e. `rng` is a copy of the caller's generator *after* scheme
/// construction consumed its share. `scheme` and `config` must outlive
/// the kernel; all cells must share one worker count n.
struct BatchedCell {
  const core::Scheme* scheme = nullptr;
  const ClusterConfig* config = nullptr;
  stats::Rng rng{0};
  RunOptions options;
};

/// Structure-of-arrays batch engine: carries many same-n sweep cells
/// (different schemes/seeds/latency models) through one lockstep
/// draw+selection pass per iteration (DESIGN.md §7.5). All per-cell
/// scratch lives in flat C x n arenas carved at construction — arrival
/// rows, service times, loads, metadata — so the steady-state loop
/// performs zero heap allocations (traces off) and a fig2-style grid
/// walks memory sequentially instead of bouncing between C kernels.
///
/// Determinism: each cell owns its RNG stream, latency model, and
/// collector, so interleaving cells within an iteration cannot perturb
/// any cell's draws — `run()` is bit-identical to running every cell
/// through its own `IterationKernel` via `simulate_run`, in any order.
class BatchedKernel {
 public:
  /// Validates the batch (non-empty, uniform n) and builds the arenas,
  /// per-cell collectors, and latency models. Threshold selection is
  /// always on (it is bit-identical to the full sort).
  explicit BatchedKernel(std::vector<BatchedCell> cells);

  std::size_t num_cells() const { return cells_.size(); }

  /// Runs every cell's iterations in lockstep (iteration-major, cell-
  /// minor) and returns one `RunReport` per cell, in cell order. One-
  /// shot: each call continues the cells' RNG/model state, so call it
  /// once per kernel for `simulate_run`-equivalent results.
  std::vector<RunReport> run();

 private:
  struct CellState {
    BatchedCell cell;
    std::unique_ptr<core::Collector> collector;
    std::unique_ptr<LatencyModel> model;
    std::size_t start_prefix = 0;
    RunReport report;
  };

  std::size_t num_workers_ = 0;
  std::vector<CellState> cells_;
  /// Flat C x n arenas; cell c's row occupies [c * n, (c + 1) * n).
  std::vector<IterationKernel::Arrival> arrivals_;
  std::vector<double> loads_;
  std::vector<double> service_seconds_;
  std::vector<std::int64_t> meta_flat_;    ///< all cells' metadata
  std::vector<std::size_t> meta_offsets_;  ///< C x n + 1 bounds
};

}  // namespace coupon::simulate
