#pragma once

/// \file cluster_sim.hpp
/// Model of one master + n workers running synchronous distributed GD —
/// the EC2-testbed substitute (see DESIGN.md §2).
///
/// Per iteration:
///   1. The master broadcasts the model; every worker starts computing
///      after `broadcast_seconds`.
///   2. Worker i's compute time is drawn from the cluster's pluggable
///      `LatencyModel` (latency_model.hpp). The default reproduces the
///      paper: shift-exponential in the load (Eq. 15 applied per unit),
///      shift = compute_shift * load_units, rate = compute_straggle /
///      load_units, redrawn each iteration — stragglers move around, as
///      in a real cluster. Other models give heavy tails, bursty or
///      Markov-persistent stragglers, or replayed traces.
///   3. Finished workers ship their encoded message to the master. The
///      master's ingress link is a serialized FIFO resource: receiving a
///      message occupies it for message_units * unit_transfer_seconds.
///      This is what makes the communication phase proportional to the
///      number of messages the master must sit through — exactly the
///      effect behind Tables I/II, where total time tracks the recovery
///      threshold K.
///   4. Each fully received message is offered to the scheme's Collector;
///      the iteration completes when the collector is ready.
///
/// Per-iteration accounting mirrors the paper's: computation time is the
/// maximum compute duration among workers whose messages were received
/// before the iteration ended; communication time is the remainder.
///
/// Execution: iterations run on the allocation-free `IterationKernel`, a
/// typed sort-based engine that draws compute times in the historical
/// event-loop RNG order and resolves the serialized FIFO ingress by an
/// arrival-sorted scan — provably trace-equivalent to the old
/// `EventQueue`-based loop (equivalence argument in DESIGN.md §7, pinned
/// byte-for-byte by tests/golden/sweep_2x2.jsonl) but with zero
/// steady-state heap allocations per iteration.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/scheme.hpp"
#include "simulate/event_queue.hpp"
#include "simulate/latency_model.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace coupon::simulate {

/// Latency parameters of the simulated cluster.
struct ClusterConfig {
  /// Seconds of deterministic compute per unit of load (a in Eq. 15).
  double compute_shift = 1e-3;
  /// Straggle parameter (mu in Eq. 15); the exponential tail of a
  /// worker's compute time has scale load/mu.
  double compute_straggle = 1.0;
  /// Master ingress service seconds per gradient unit received.
  double unit_transfer_seconds = 3e-3;
  /// Fixed model-broadcast latency at the start of each iteration.
  double broadcast_seconds = 0.0;
  /// Probability that a worker's message is lost this iteration (worker
  /// crash / packet drop). Independent across workers and iterations.
  /// Wait-for-all schemes fail the iteration on any loss; BCC/FR only
  /// fail when every replica of some batch/block is lost.
  double drop_probability = 0.0;
  /// Optional per-worker latency profiles (heterogeneous cluster). When
  /// non-empty, must have exactly one entry per worker and overrides the
  /// homogeneous compute_shift/compute_straggle above.
  std::vector<WorkerLatency> worker_overrides;
  /// Optional compute-latency law. When set, each run builds a fresh
  /// model from this factory and the shift/straggle/override fields above
  /// are ignored; when empty (the default) the simulator uses
  /// `ShiftedExpModel` built from those fields — the paper's Eq. 15,
  /// bit-identical to the pre-refactor behaviour.
  LatencyModelFactory latency_model;
};

/// Validates the cluster knobs for an `num_workers`-worker simulation:
/// compute_shift/broadcast_seconds/unit_transfer_seconds >= 0,
/// compute_straggle > 0, drop_probability in [0, 1], and worker_overrides
/// empty or exactly one valid entry per worker. Throws
/// coupon::AssertionError with the offending knob and value instead of
/// letting a bad config silently produce NaN or degenerate traces.
/// Called by simulate_iteration/simulate_run on entry.
void validate_cluster_config(const ClusterConfig& config,
                             std::size_t num_workers);

/// Builds the run's latency model: `config.latency_model(num_workers)`
/// when set, otherwise the default `ShiftedExpModel` over the config's
/// shift/straggle/override fields.
std::unique_ptr<LatencyModel> make_latency_model(const ClusterConfig& config,
                                                 std::size_t num_workers);

/// Outcome of a single simulated GD iteration.
struct IterationReport {
  double total_time = 0.0;
  double compute_time = 0.0;  ///< max compute among workers heard in time
  double comm_time = 0.0;     ///< total - compute
  std::size_t workers_heard = 0;  ///< |W| (recovery threshold sample)
  double units_received = 0.0;    ///< L sample
  bool recovered = true;  ///< false if all n messages left the collector
                          ///< unsatisfied (BCC coverage failure)
};

/// Aggregates over a multi-iteration run.
struct RunReport {
  /// Per-iteration reports — populated only when the run was executed
  /// with `RunOptions::record_trace` (the legacy iteration-count overload
  /// of `simulate_run` records it for back-compat).
  std::vector<IterationReport> iterations;
  double total_time = 0.0;
  double total_compute_time = 0.0;
  double total_comm_time = 0.0;
  stats::OnlineStats workers_heard;   ///< empirical K
  stats::OnlineStats units_received;  ///< empirical L
  std::size_t failures = 0;           ///< iterations without recovery
};

/// Options for `simulate_run`.
struct RunOptions {
  /// GD iterations to simulate.
  std::size_t iterations = 100;
  /// Opt-in per-iteration trace: when true, `RunReport::iterations` gets
  /// one `IterationReport` per iteration. Off by default — summary-only
  /// consumers (sweeps feeding summary CSV/JSONL sinks) should not pay
  /// for materializing traces they never render.
  bool record_trace = false;
};

/// Allocation-free iteration engine for one (scheme, cluster) run
/// (DESIGN.md §7). Construction precomputes what the old event loop
/// recomputed per iteration — per-worker placement loads, message service
/// times (`message_units * unit_transfer_seconds`), message metadata, and
/// one reusable `Collector` — and each `run` call then executes a full GD
/// iteration with zero heap allocations in steady state:
///
///   1. drops and compute times are drawn in the exact per-worker RNG
///      order of the historical event loop;
///   2. arrivals are sorted by (finish time, worker index) — identical to
///      the DES heap's (time, scheduling-seq) order, because compute
///      completions were scheduled in worker order;
///   3. the master's serialized FIFO ingress is resolved by a linear scan
///      (`busy-until = max(arrival, busy-until) + service`), offering each
///      message to the collector in completion order and stopping at
///      recovery — exactly when the old loop's run_until stopped.
///
/// The scheme and config must outlive the kernel; the config must already
/// have been validated (`make_latency_model` validates).
class IterationKernel {
 public:
  IterationKernel(const core::Scheme& scheme, const ClusterConfig& config);

  /// Simulates GD iteration `iteration`, drawing compute times from
  /// `model` (calls `model.begin_iteration` first) and all randomness
  /// from `rng`. Bit-identical to the historical DES event loop.
  IterationReport run(LatencyModel& model, std::size_t iteration,
                      stats::Rng& rng);

 private:
  struct Arrival {
    double time = 0.0;     ///< broadcast_seconds + compute
    double compute = 0.0;  ///< the model draw (0 for unloaded workers)
    std::size_t worker = 0;
  };

  const core::Scheme& scheme_;
  const ClusterConfig& config_;
  std::unique_ptr<core::Collector> collector_;  ///< reset() per iteration
  std::vector<double> loads_;            ///< |G_i| per worker
  std::vector<double> service_seconds_;  ///< ingress occupancy per worker
  std::vector<std::vector<std::int64_t>> metas_;  ///< message_meta(i)
  std::vector<Arrival> arrivals_;  ///< reused scratch, capacity n
};

/// Simulates one iteration of distributed GD for `scheme` on a cluster
/// described by `config`. Uses the scheme's combinatorial interface only
/// (no gradients are computed). Builds a fresh latency model for the
/// single iteration; multi-iteration runs must use `simulate_run` (or the
/// model-threading overload below) so stateful models keep their state.
IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   stats::Rng& rng);

/// As above, but samples compute times from the caller's `model` for GD
/// iteration `iteration` (calls `model.begin_iteration` first). One-shot
/// convenience over a throwaway `IterationKernel`; it assumes `config`
/// was already validated (use `make_latency_model`, which validates, to
/// obtain the model). Loops should hold their own kernel instead.
IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   LatencyModel& model, std::size_t iteration,
                                   stats::Rng& rng);

/// Simulates `options.iterations` iterations against one latency-model
/// instance (independent draws for memoryless models; correlated across
/// iterations for Markov/trace models) and one reused `IterationKernel`
/// — the steady-state loop performs no heap allocations — then
/// aggregates. Records the per-iteration trace only when
/// `options.record_trace` is set.
RunReport simulate_run(const core::Scheme& scheme, const ClusterConfig& config,
                       const RunOptions& options, stats::Rng& rng);

/// Back-compat overload: `iterations` iterations WITH the per-iteration
/// trace recorded (the historical behaviour of this signature).
RunReport simulate_run(const core::Scheme& scheme, const ClusterConfig& config,
                       std::size_t iterations, stats::Rng& rng);

}  // namespace coupon::simulate
