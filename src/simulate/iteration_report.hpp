#pragma once

/// \file iteration_report.hpp
/// The per-iteration outcome record of the cluster simulator, split out
/// of cluster_sim.hpp so result-carrying layers (driver/record.hpp) can
/// depend on the report type without rebuilding on simulator-engine
/// edits.

#include <cstddef>

namespace coupon::simulate {

/// Outcome of a single simulated GD iteration.
struct IterationReport {
  double total_time = 0.0;
  double compute_time = 0.0;  ///< max compute among workers heard in time
  double comm_time = 0.0;     ///< total - compute
  std::size_t workers_heard = 0;  ///< |W| (recovery threshold sample)
  double units_received = 0.0;    ///< L sample
  bool recovered = true;  ///< false if all n messages left the collector
                          ///< unsatisfied (BCC coverage failure)
};

}  // namespace coupon::simulate
