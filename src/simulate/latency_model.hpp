#pragma once

/// \file latency_model.hpp
/// Pluggable per-worker compute-latency laws for the cluster simulator
/// (DESIGN.md §6).
///
/// The paper's runtime analysis (Eq. 15, Tables I/II) assumes every
/// worker's compute time is shifted-exponential in its load. That law is
/// exactly one `LatencyModel` implementation here (`ShiftedExpModel`, the
/// default — bit-identical to the pre-refactor hard-coded draw); the
/// interface opens the simulator to the regimes related work cares
/// about: heavy tails (Pareto, Karakus et al.), stretched-exponential
/// tails (Weibull), sporadic per-iteration slowdowns (Bitar et al.'s
/// bimodal stragglers), slowness that persists across iterations
/// (two-state Markov), and measured traces replayed from CSV.
///
/// Contract:
///   * One model instance serves one run. `simulate_run` constructs it
///     from `ClusterConfig::latency_model` (or defaults to
///     `ShiftedExpModel`) and reuses it across iterations, so models may
///     carry cross-iteration state.
///   * Per iteration, the simulator calls `begin_iteration` once, before
///     any other random draw of that iteration, then
///     `sample_compute_seconds` once per loaded, non-dropped worker, in
///     worker order. All randomness must come from the passed `Rng` so a
///     seed fully determines the trace (replay needs none and ignores it).
///   * Samples must be finite and >= 0 seconds; `ClusterConfig`
///     validation guarantees models are constructed from sane parameters.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "stats/distributions.hpp"
#include "stats/rng.hpp"

namespace coupon::simulate {

/// Per-worker compute-latency override (Eq. 15 parameters); used by the
/// heterogeneous-cluster scenarios of Fig. 5.
struct WorkerLatency {
  double compute_shift = 1e-3;    ///< a_i, seconds per unit of load
  double compute_straggle = 1.0;  ///< mu_i
};

/// Machine-readable description of a model's compute-time law, exposed
/// via `LatencyModel::law()` so the analytic oracle (src/analytic/) can
/// recover the distribution family and parameters from an already-built
/// model — `ClusterConfig::latency_model` is an opaque factory, so the
/// model instance itself is the only place the law can be asked for.
/// Families map onto the built-in models; out-of-tree models default to
/// `kOpaque`, which the analytic layer reports as Monte-Carlo-only.
struct LatencyLaw {
  enum class Family {
    kShiftedExp,  ///< Eq. 15: shift a*load, rate mu/load
    kPareto,      ///< Pareto(scale_per_unit*load, shape)
    kWeibull,     ///< Weibull(shape, scale_per_unit*load)
    kBimodal,     ///< shifted-exp, x slow_factor w.p. slow_probability
    kMarkov,      ///< two-state persistent stragglers over shifted-exp
    kOpaque,      ///< trace replay / unknown: no analytic form
  };

  Family family = Family::kOpaque;
  double compute_shift = 0.0;      ///< a (per unit); shifted-exp families
  double compute_straggle = 0.0;   ///< mu; shifted-exp families
  double scale_per_unit = 0.0;     ///< Pareto/Weibull scale per unit
  double shape = 0.0;              ///< Pareto tail index / Weibull k
  double slow_probability = 0.0;   ///< bimodal per-iteration slow chance
  double slow_factor = 0.0;        ///< bimodal/markov slowdown multiple
  double p_enter = 0.0;            ///< markov fast->slow per iteration
  double p_exit = 0.0;             ///< markov slow->fast per iteration
  /// Per-worker (a_i, mu_i) overrides are active: draws are independent
  /// but not identically distributed, outside the exact order-statistic
  /// reduction (the analytic layer reports the pair unsupported).
  bool heterogeneous = false;
};

/// Everything a model may condition one draw on.
struct LatencyContext {
  std::size_t worker = 0;     ///< worker id in [0, n)
  std::size_t iteration = 0;  ///< GD iteration index within the run
  double load = 0.0;          ///< units of work assigned; always > 0
};

/// A per-worker compute-time law. See the file comment for the calling
/// contract.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// Stable identifier ("shifted_exp", "pareto", ...) for diagnostics.
  virtual std::string_view name() const = 0;

  /// Called once at the start of iteration `iteration`, before any drop
  /// or latency draw. Stateful models (Markov) advance cross-iteration
  /// state here; the default is a no-op that draws nothing, which keeps
  /// stateless models bit-compatible with the pre-refactor RNG stream.
  virtual void begin_iteration(std::size_t iteration, stats::Rng& rng);

  /// Draws the compute time (seconds) of `ctx.worker` this iteration.
  virtual double sample_compute_seconds(const LatencyContext& ctx,
                                        stats::Rng& rng) = 0;

  /// The model's distribution family and parameters, for the analytic
  /// oracle. Defaults to `LatencyLaw::Family::kOpaque` (no exact form),
  /// which is always a safe answer for out-of-tree models.
  virtual LatencyLaw law() const;
};

/// Builds a fresh model for an `n`-worker cluster. Stored on
/// `ClusterConfig` (value semantics: copying a config copies the factory,
/// and every run gets its own model instance with fresh state).
using LatencyModelFactory =
    std::function<std::unique_ptr<LatencyModel>(std::size_t num_workers)>;

/// The paper's law (Eq. 15): shift a*r plus an Exp(mu/r) tail, redrawn
/// every iteration. With `worker_overrides` non-empty, worker i uses its
/// own (a_i, mu_i) — the heterogeneous clusters of Fig. 5. Bit-identical
/// to the pre-refactor hard-coded draw (one exponential per sample).
class ShiftedExpModel final : public LatencyModel {
 public:
  ShiftedExpModel(double compute_shift, double compute_straggle,
                  std::vector<WorkerLatency> worker_overrides = {});

  std::string_view name() const override { return "shifted_exp"; }
  double sample_compute_seconds(const LatencyContext& ctx,
                                stats::Rng& rng) override;
  LatencyLaw law() const override;

 private:
  double compute_shift_;
  double compute_straggle_;
  std::vector<WorkerLatency> worker_overrides_;
};

/// Heavy-tailed compute: Pareto with left endpoint `scale_per_unit *
/// load` and tail index `shape`. For shape <= 2 the variance is infinite;
/// Eq. 15's H_n waiting-time predictions do not apply (see theory.hpp).
class ParetoModel final : public LatencyModel {
 public:
  ParetoModel(double scale_per_unit, double shape);

  std::string_view name() const override { return "pareto"; }
  double sample_compute_seconds(const LatencyContext& ctx,
                                stats::Rng& rng) override;
  LatencyLaw law() const override;

 private:
  double scale_per_unit_;
  double shape_;
};

/// Weibull compute with scale `scale_per_unit * load`; shape < 1 gives a
/// stretched-exponential tail (between Eq. 15 and Pareto in severity).
class WeibullModel final : public LatencyModel {
 public:
  WeibullModel(double shape, double scale_per_unit);

  std::string_view name() const override { return "weibull"; }
  double sample_compute_seconds(const LatencyContext& ctx,
                                stats::Rng& rng) override;
  LatencyLaw law() const override;

 private:
  double shape_;
  double scale_per_unit_;
};

/// Bitar et al.'s sporadic-straggler shape: each worker is independently
/// slow *this iteration* with probability `slow_probability`, multiplying
/// its shifted-exponential draw by `slow_factor`. Draw order per sample:
/// one Bernoulli, then one exponential.
class BimodalSlowdownModel final : public LatencyModel {
 public:
  BimodalSlowdownModel(double compute_shift, double compute_straggle,
                       double slow_probability, double slow_factor);

  std::string_view name() const override { return "bimodal"; }
  double sample_compute_seconds(const LatencyContext& ctx,
                                stats::Rng& rng) override;
  LatencyLaw law() const override;

 private:
  ShiftedExpModel base_;
  double slow_probability_;
  double slow_factor_;
};

/// Persistent stragglers: each worker carries a two-state (fast/slow)
/// Markov chain across iterations — slow workers' draws are multiplied
/// by `slow_factor`. `begin_iteration` initializes every worker from the
/// stationary law on its first call, then applies one fast->slow /
/// slow->fast transition per worker per iteration (n Bernoullis, worker
/// order). Expected slow-spell length is 1/p_exit iterations; the
/// stationary slow fraction is p_enter / (p_enter + p_exit). This is the
/// regime where redrawing stragglers every iteration — the independence
/// assumption behind the paper's per-iteration analysis — breaks down.
class MarkovStragglerModel final : public LatencyModel {
 public:
  MarkovStragglerModel(std::size_t num_workers, double compute_shift,
                       double compute_straggle, double slow_factor,
                       double p_enter, double p_exit);

  std::string_view name() const override { return "markov"; }
  void begin_iteration(std::size_t iteration, stats::Rng& rng) override;
  double sample_compute_seconds(const LatencyContext& ctx,
                                stats::Rng& rng) override;
  LatencyLaw law() const override;

  /// Test hook: worker states after the last begin_iteration.
  const std::vector<char>& slow_states() const { return slow_; }

 private:
  ShiftedExpModel base_;
  double slow_factor_;
  double p_enter_;
  double p_exit_;
  bool initialized_ = false;
  std::vector<char> slow_;  // one flag per worker
};

/// Replays measured per-worker compute latencies from a CSV file: one row
/// per iteration, one column per worker, values in seconds (blank lines
/// and '#' comments skipped). Iterations wrap around modulo the row
/// count; the load is ignored (the trace already reflects it) and no
/// randomness is consumed. Throws std::invalid_argument on an unreadable
/// file, a row whose width differs from `num_workers`, or a negative /
/// non-numeric value.
class TraceReplayModel final : public LatencyModel {
 public:
  TraceReplayModel(const std::string& csv_path, std::size_t num_workers);

  std::string_view name() const override { return "trace"; }
  double sample_compute_seconds(const LatencyContext& ctx,
                                stats::Rng& rng) override;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::vector<double>> rows_;
};

}  // namespace coupon::simulate
