#include "simulate/experiment.hpp"

#include <ostream>

#include "core/scheme_registry.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace coupon::simulate {

ClusterConfig ec2_cluster() {
  ClusterConfig c;
  c.compute_shift = 1.0e-3;        // 1 ms deterministic compute per unit
  c.compute_straggle = 950.0;      // tail scale load/mu ~ 10.5 ms at r=10
  c.unit_transfer_seconds = 3.2e-3;  // 3.2 ms to receive one gradient
  c.broadcast_seconds = 0.0;
  return c;
}

ScenarioConfig ec2_scenario_one() {
  ScenarioConfig s;
  s.name = "scenario one (n=50, m=50 batches)";
  s.num_workers = 50;
  s.num_units = 50;
  s.load = 10;
  s.iterations = 100;
  s.cluster = ec2_cluster();
  s.seed = 0xEC2001;
  return s;
}

ScenarioConfig ec2_scenario_two() {
  ScenarioConfig s;
  s.name = "scenario two (n=100, m=100 batches)";
  s.num_workers = 100;
  s.num_units = 100;
  s.load = 10;
  s.iterations = 100;
  s.cluster = ec2_cluster();
  s.seed = 0xEC2002;
  return s;
}

std::vector<SchemeRunRow> run_scenario(
    const ScenarioConfig& scenario,
    const std::vector<std::string>& scheme_names) {
  COUPON_ASSERT(!scheme_names.empty());
  std::vector<SchemeRunRow> rows;
  rows.reserve(scheme_names.size());

  stats::Rng root(scenario.seed);
  for (const std::string& name : scheme_names) {
    stats::Rng rng = root.split();  // disjoint stream per scheme

    core::SchemeConfig config;
    config.num_workers = scenario.num_workers;
    config.num_units = scenario.num_units;
    config.load = scenario.load;
    auto scheme = core::SchemeRegistry::instance().create(name, config, rng);

    // Summary-only harness: the rows below read aggregates, never the
    // per-iteration trace, so run without recording one.
    RunOptions options;
    options.iterations = scenario.iterations;
    options.record_trace = false;
    const RunReport run =
        simulate_run(*scheme, scenario.cluster, options, rng);

    SchemeRunRow row;
    row.scheme_name = std::string(scheme->registry_name());
    row.scheme = std::string(scheme->name());
    row.recovery_threshold = run.workers_heard.mean();
    row.comm_time = run.total_comm_time;
    row.compute_time = run.total_compute_time;
    row.total_time = run.total_time;
    row.mean_units = run.units_received.mean();
    row.failures = run.failures;
    rows.push_back(std::move(row));
  }
  return rows;
}

double speedup_fraction(const SchemeRunRow& ours,
                        const SchemeRunRow& baseline) {
  COUPON_ASSERT(baseline.total_time > 0.0);
  return 1.0 - ours.total_time / baseline.total_time;
}

const std::vector<std::string>& iteration_csv_header() {
  static const std::vector<std::string> header = {
      "iteration",     "total_time",     "compute_time", "comm_time",
      "workers_heard", "units_received", "recovered"};
  return header;
}

std::vector<std::string> iteration_csv_fields(std::size_t index,
                                              const IterationReport& it) {
  return {std::to_string(index),          format_double(it.total_time, 9),
          format_double(it.compute_time, 9), format_double(it.comm_time, 9),
          std::to_string(it.workers_heard),
          format_double(it.units_received, 3), it.recovered ? "1" : "0"};
}

void write_iteration_csv(std::ostream& os, const RunReport& run) {
  CsvWriter csv(os);
  csv.row(iteration_csv_header());
  for (std::size_t t = 0; t < run.iterations.size(); ++t) {
    csv.row(iteration_csv_fields(t, run.iterations[t]));
  }
}

}  // namespace coupon::simulate
