#include "simulate/event_queue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace coupon::simulate {

void EventQueue::schedule(double time, Callback cb) {
  COUPON_ASSERT_MSG(time >= now_, "cannot schedule into the past: "
                                      << time << " < " << now_);
  heap_.push_back(Event{time, next_seq_++, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

bool EventQueue::run_next() {
  if (heap_.empty()) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_ = ev.time;
  ev.cb();
  return true;
}

void EventQueue::run_until(const std::function<bool()>& predicate) {
  while (!predicate() && run_next()) {
  }
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

}  // namespace coupon::simulate
