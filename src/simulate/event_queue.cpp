#include "simulate/event_queue.hpp"

#include "util/assert.hpp"

namespace coupon::simulate {

void EventQueue::schedule(double time, Callback cb) {
  COUPON_ASSERT_MSG(time >= now_, "cannot schedule into the past: "
                                      << time << " < " << now_);
  heap_.push(Event{time, next_seq_++, std::move(cb)});
}

bool EventQueue::run_next() {
  if (heap_.empty()) {
    return false;
  }
  // priority_queue::top is const; the callback is moved out via a copy of
  // the wrapper (std::function copy), then popped.
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ev.cb();
  return true;
}

void EventQueue::run_until(const std::function<bool()>& predicate) {
  while (!predicate() && run_next()) {
  }
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

}  // namespace coupon::simulate
