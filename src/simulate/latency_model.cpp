#include "simulate/latency_model.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace coupon::simulate {

void LatencyModel::begin_iteration(std::size_t /*iteration*/,
                                   stats::Rng& /*rng*/) {}

LatencyLaw LatencyModel::law() const { return {}; }  // kOpaque

ShiftedExpModel::ShiftedExpModel(double compute_shift,
                                 double compute_straggle,
                                 std::vector<WorkerLatency> worker_overrides)
    : compute_shift_(compute_shift),
      compute_straggle_(compute_straggle),
      worker_overrides_(std::move(worker_overrides)) {
  COUPON_ASSERT_MSG(compute_shift_ >= 0.0 && compute_straggle_ > 0.0,
                    "shift=" << compute_shift_
                             << " straggle=" << compute_straggle_);
}

double ShiftedExpModel::sample_compute_seconds(const LatencyContext& ctx,
                                               stats::Rng& rng) {
  const bool overridden = !worker_overrides_.empty();
  COUPON_ASSERT_MSG(!overridden || ctx.worker < worker_overrides_.size(),
                    "worker " << ctx.worker << " has no override");
  const double a =
      overridden ? worker_overrides_[ctx.worker].compute_shift
                 : compute_shift_;
  const double mu =
      overridden ? worker_overrides_[ctx.worker].compute_straggle
                 : compute_straggle_;
  return stats::ShiftedExponential::for_load(a, mu, ctx.load).sample(rng);
}

LatencyLaw ShiftedExpModel::law() const {
  LatencyLaw law;
  law.family = LatencyLaw::Family::kShiftedExp;
  law.compute_shift = compute_shift_;
  law.compute_straggle = compute_straggle_;
  law.heterogeneous = !worker_overrides_.empty();
  return law;
}

ParetoModel::ParetoModel(double scale_per_unit, double shape)
    : scale_per_unit_(scale_per_unit), shape_(shape) {
  COUPON_ASSERT_MSG(scale_per_unit_ > 0.0 && shape_ > 0.0,
                    "scale=" << scale_per_unit_ << " shape=" << shape_);
}

double ParetoModel::sample_compute_seconds(const LatencyContext& ctx,
                                           stats::Rng& rng) {
  return stats::Pareto{scale_per_unit_ * ctx.load, shape_}.sample(rng);
}

LatencyLaw ParetoModel::law() const {
  LatencyLaw law;
  law.family = LatencyLaw::Family::kPareto;
  law.scale_per_unit = scale_per_unit_;
  law.shape = shape_;
  return law;
}

WeibullModel::WeibullModel(double shape, double scale_per_unit)
    : shape_(shape), scale_per_unit_(scale_per_unit) {
  COUPON_ASSERT_MSG(shape_ > 0.0 && scale_per_unit_ > 0.0,
                    "shape=" << shape_ << " scale=" << scale_per_unit_);
}

double WeibullModel::sample_compute_seconds(const LatencyContext& ctx,
                                            stats::Rng& rng) {
  return stats::Weibull{shape_, scale_per_unit_ * ctx.load}.sample(rng);
}

LatencyLaw WeibullModel::law() const {
  LatencyLaw law;
  law.family = LatencyLaw::Family::kWeibull;
  law.scale_per_unit = scale_per_unit_;
  law.shape = shape_;
  return law;
}

BimodalSlowdownModel::BimodalSlowdownModel(double compute_shift,
                                           double compute_straggle,
                                           double slow_probability,
                                           double slow_factor)
    : base_(compute_shift, compute_straggle),
      slow_probability_(slow_probability),
      slow_factor_(slow_factor) {
  COUPON_ASSERT_MSG(
      slow_probability_ >= 0.0 && slow_probability_ <= 1.0 &&
          slow_factor_ >= 1.0,
      "p=" << slow_probability_ << " factor=" << slow_factor_);
}

double BimodalSlowdownModel::sample_compute_seconds(const LatencyContext& ctx,
                                                    stats::Rng& rng) {
  const bool slow = rng.bernoulli(slow_probability_);
  const double base = base_.sample_compute_seconds(ctx, rng);
  return slow ? slow_factor_ * base : base;
}

LatencyLaw BimodalSlowdownModel::law() const {
  LatencyLaw law = base_.law();
  law.family = LatencyLaw::Family::kBimodal;
  law.slow_probability = slow_probability_;
  law.slow_factor = slow_factor_;
  return law;
}

MarkovStragglerModel::MarkovStragglerModel(std::size_t num_workers,
                                           double compute_shift,
                                           double compute_straggle,
                                           double slow_factor, double p_enter,
                                           double p_exit)
    : base_(compute_shift, compute_straggle),
      slow_factor_(slow_factor),
      p_enter_(p_enter),
      p_exit_(p_exit),
      slow_(num_workers, 0) {
  COUPON_ASSERT_MSG(slow_factor_ >= 1.0 && p_enter_ >= 0.0 &&
                        p_enter_ <= 1.0 && p_exit_ > 0.0 && p_exit_ <= 1.0,
                    "factor=" << slow_factor_ << " p_enter=" << p_enter_
                              << " p_exit=" << p_exit_);
}

void MarkovStragglerModel::begin_iteration(std::size_t /*iteration*/,
                                           stats::Rng& rng) {
  if (!initialized_) {
    // First iteration: draw each worker's state from the stationary law
    // so the run has no warm-up transient.
    const double stationary_slow = p_enter_ / (p_enter_ + p_exit_);
    for (auto& slow : slow_) {
      slow = rng.bernoulli(stationary_slow) ? 1 : 0;
    }
    initialized_ = true;
    return;
  }
  for (auto& slow : slow_) {
    slow = slow ? (rng.bernoulli(p_exit_) ? 0 : 1)
                : (rng.bernoulli(p_enter_) ? 1 : 0);
  }
}

double MarkovStragglerModel::sample_compute_seconds(const LatencyContext& ctx,
                                                    stats::Rng& rng) {
  COUPON_ASSERT_MSG(ctx.worker < slow_.size(),
                    "worker " << ctx.worker << " outside the "
                              << slow_.size() << "-worker Markov chain");
  const double base = base_.sample_compute_seconds(ctx, rng);
  return slow_[ctx.worker] ? slow_factor_ * base : base;
}

LatencyLaw MarkovStragglerModel::law() const {
  LatencyLaw law = base_.law();
  law.family = LatencyLaw::Family::kMarkov;
  law.slow_factor = slow_factor_;
  law.p_enter = p_enter_;
  law.p_exit = p_exit_;
  return law;
}

TraceReplayModel::TraceReplayModel(const std::string& csv_path,
                                   std::size_t num_workers) {
  std::ifstream in(csv_path);
  if (!in) {
    throw std::invalid_argument("latency trace '" + csv_path +
                                "' cannot be opened");
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Tolerate trailing carriage returns from Windows-edited traces.
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::vector<double> row;
    std::istringstream fields(line);
    std::string field;
    while (std::getline(fields, field, ',')) {
      std::size_t pos = 0;
      double value = 0.0;
      try {
        value = std::stod(field, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      // std::isfinite, not just >= 0: std::stod parses "inf" and "nan",
      // and an infinite latency would poison the whole trace.
      if (pos != field.size() || field.empty() || !std::isfinite(value) ||
          value < 0.0) {
        throw std::invalid_argument(
            "latency trace '" + csv_path + "' line " +
            std::to_string(line_no) + ": '" + field +
            "' is not a finite non-negative latency in seconds");
      }
      row.push_back(value);
    }
    if (row.size() != num_workers) {
      throw std::invalid_argument(
          "latency trace '" + csv_path + "' line " +
          std::to_string(line_no) + ": " + std::to_string(row.size()) +
          " columns for " + std::to_string(num_workers) + " workers");
    }
    rows_.push_back(std::move(row));
  }
  if (rows_.empty()) {
    throw std::invalid_argument("latency trace '" + csv_path +
                                "' has no data rows");
  }
}

double TraceReplayModel::sample_compute_seconds(const LatencyContext& ctx,
                                                stats::Rng& /*rng*/) {
  return rows_[ctx.iteration % rows_.size()][ctx.worker];
}

}  // namespace coupon::simulate
