#include "simulate/cluster_sim.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace coupon::simulate {

void validate_cluster_config(const ClusterConfig& config,
                             std::size_t num_workers) {
  COUPON_ASSERT_MSG(config.compute_shift >= 0.0,
                    "compute_shift must be >= 0, got "
                        << config.compute_shift);
  COUPON_ASSERT_MSG(config.compute_straggle > 0.0,
                    "compute_straggle must be > 0, got "
                        << config.compute_straggle);
  COUPON_ASSERT_MSG(config.unit_transfer_seconds >= 0.0,
                    "unit_transfer_seconds must be >= 0, got "
                        << config.unit_transfer_seconds);
  COUPON_ASSERT_MSG(config.broadcast_seconds >= 0.0,
                    "broadcast_seconds must be >= 0, got "
                        << config.broadcast_seconds);
  COUPON_ASSERT_MSG(
      config.drop_probability >= 0.0 && config.drop_probability <= 1.0,
      "drop_probability must be in [0, 1], got " << config.drop_probability);
  COUPON_ASSERT_MSG(config.worker_overrides.empty() ||
                        config.worker_overrides.size() == num_workers,
                    "worker_overrides must be empty or size n");
  for (std::size_t i = 0; i < config.worker_overrides.size(); ++i) {
    const auto& o = config.worker_overrides[i];
    COUPON_ASSERT_MSG(o.compute_shift >= 0.0 && o.compute_straggle > 0.0,
                      "worker_overrides[" << i << "]: shift="
                                          << o.compute_shift << " straggle="
                                          << o.compute_straggle);
  }
}

std::unique_ptr<LatencyModel> make_latency_model(const ClusterConfig& config,
                                                 std::size_t num_workers) {
  validate_cluster_config(config, num_workers);
  if (config.latency_model) {
    auto model = config.latency_model(num_workers);
    COUPON_ASSERT_MSG(model != nullptr,
                      "ClusterConfig::latency_model returned null");
    return model;
  }
  return std::make_unique<ShiftedExpModel>(config.compute_shift,
                                           config.compute_straggle,
                                           config.worker_overrides);
}

IterationKernel::IterationKernel(const core::Scheme& scheme,
                                 const ClusterConfig& config)
    : scheme_(scheme),
      config_(config),
      collector_(scheme.make_collector()) {
  const std::size_t n = scheme.num_workers();
  loads_.resize(n);
  service_seconds_.resize(n);
  metas_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    loads_[i] = static_cast<double>(scheme.placement().worker(i).size());
    service_seconds_[i] =
        scheme.message_units(i) * config.unit_transfer_seconds;
    metas_[i] = scheme.message_meta(i);
  }
  arrivals_.reserve(n);
}

std::span<const IterationKernel::Arrival> IterationKernel::draw_arrivals(
    LatencyModel& model, std::size_t iteration, stats::Rng& rng) {
  const std::size_t n = scheme_.num_workers();
  arrivals_.clear();

  // Stateful models advance here, before any drop/latency draw.
  model.begin_iteration(iteration, rng);

  // Draw phase — one drop Bernoulli then (for loaded workers) one model
  // sample per worker, in worker order: the exact RNG consumption order
  // of the historical event loop's scheduling pass.
  for (std::size_t i = 0; i < n; ++i) {
    if (config_.drop_probability > 0.0 &&
        rng.bernoulli(config_.drop_probability)) {
      continue;  // message lost: this worker never reports
    }
    double compute = 0.0;
    if (loads_[i] > 0.0) {
      compute = model.sample_compute_seconds({i, iteration, loads_[i]}, rng);
      COUPON_ASSERT_MSG(compute >= 0.0 && std::isfinite(compute),
                        "latency model '" << model.name() << "' drew "
                                          << compute << " for worker " << i);
    }
    Arrival arrival;
    arrival.time = config_.broadcast_seconds + compute;
    arrival.compute = compute;
    arrival.worker = i;
    arrivals_.push_back(arrival);
  }

  // Order phase — the DES heap executed compute completions in
  // (time, scheduling-seq) order, and completions were scheduled in
  // worker order, so (time, worker) reproduces it exactly. std::sort
  // (not stable_sort, which allocates) is safe: keys are unique.
  std::sort(arrivals_.begin(), arrivals_.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.time != b.time) {
                return a.time < b.time;
              }
              return a.worker < b.worker;
            });
  return arrivals_;
}

IterationReport IterationKernel::run(LatencyModel& model,
                                     std::size_t iteration, stats::Rng& rng) {
  collector_->reset();
  draw_arrivals(model, iteration, rng);

  // Ingress phase — the serialized master link is a FIFO: each arrival
  // waits for the link, occupies it for its service time, and the fully
  // received message is offered to the collector. Completion order equals
  // arrival-processing order (the link frees monotonically), so a linear
  // scan replaces the event heap. The scan stops at recovery — exactly
  // where run_until() stopped the DES.
  IterationReport report;
  report.recovered = false;
  double ingress_free_at = 0.0;
  double completion_time = 0.0;
  double max_compute = 0.0;
  bool any_received = false;
  for (const Arrival& arrival : arrivals_) {
    const double start = std::max(arrival.time, ingress_free_at);
    ingress_free_at = start + service_seconds_[arrival.worker];
    collector_->offer(arrival.worker, metas_[arrival.worker], {});
    max_compute = std::max(max_compute, arrival.compute);
    any_received = true;
    if (collector_->ready()) {
      report.recovered = true;
      completion_time = ingress_free_at;
      break;
    }
  }
  if (!report.recovered) {
    // All messages consumed without recovery (e.g. BCC coverage failure,
    // or every worker dropped). The DES drained fully: its clock ended on
    // the last ingress completion — the final busy-until — or stayed 0
    // when nothing was ever scheduled.
    completion_time = any_received ? ingress_free_at : 0.0;
  }

  report.total_time = completion_time;
  report.workers_heard = collector_->workers_heard();
  report.units_received = collector_->units_received();
  report.compute_time = max_compute;
  report.comm_time = report.total_time - report.compute_time;
  return report;
}

IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   stats::Rng& rng) {
  const auto model = make_latency_model(config, scheme.num_workers());
  return simulate_iteration(scheme, config, *model, /*iteration=*/0, rng);
}

IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   LatencyModel& model, std::size_t iteration,
                                   stats::Rng& rng) {
  IterationKernel kernel(scheme, config);
  return kernel.run(model, iteration, rng);
}

RunReport simulate_run(const core::Scheme& scheme,
                       const ClusterConfig& config, const RunOptions& options,
                       stats::Rng& rng) {
  const auto model = make_latency_model(config, scheme.num_workers());
  IterationKernel kernel(scheme, config);
  RunReport run;
  if (options.record_trace) {
    run.iterations.reserve(options.iterations);
  }
  for (std::size_t t = 0; t < options.iterations; ++t) {
    const IterationReport it = kernel.run(*model, t, rng);
    run.total_time += it.total_time;
    run.total_compute_time += it.compute_time;
    run.total_comm_time += it.comm_time;
    run.workers_heard.add(static_cast<double>(it.workers_heard));
    run.units_received.add(it.units_received);
    if (!it.recovered) {
      ++run.failures;
    }
    if (options.record_trace) {
      run.iterations.push_back(it);
    }
  }
  return run;
}

RunReport simulate_run(const core::Scheme& scheme,
                       const ClusterConfig& config, std::size_t iterations,
                       stats::Rng& rng) {
  RunOptions options;
  options.iterations = iterations;
  options.record_trace = true;
  return simulate_run(scheme, config, options, rng);
}

}  // namespace coupon::simulate
