#include "simulate/cluster_sim.hpp"

#include <algorithm>

#include "stats/distributions.hpp"
#include "util/assert.hpp"

namespace coupon::simulate {

IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   stats::Rng& rng) {
  const std::size_t n = scheme.num_workers();
  COUPON_ASSERT_MSG(config.worker_overrides.empty() ||
                        config.worker_overrides.size() == n,
                    "worker_overrides must be empty or size n");
  auto collector = scheme.make_collector();

  EventQueue queue;
  IterationReport report;
  report.recovered = false;

  // Master ingress: serialized FIFO resource.
  double ingress_free_at = 0.0;
  // Compute durations of workers whose messages have been fully received.
  std::vector<double> received_compute;
  received_compute.reserve(n);
  double completion_time = 0.0;

  // Schedule every worker's compute completion.
  for (std::size_t i = 0; i < n; ++i) {
    if (config.drop_probability > 0.0 &&
        rng.bernoulli(config.drop_probability)) {
      continue;  // message lost: this worker never reports
    }
    const auto load =
        static_cast<double>(scheme.placement().worker(i).size());
    double compute = 0.0;
    if (load > 0.0) {
      const double a = config.worker_overrides.empty()
                           ? config.compute_shift
                           : config.worker_overrides[i].compute_shift;
      const double mu = config.worker_overrides.empty()
                            ? config.compute_straggle
                            : config.worker_overrides[i].compute_straggle;
      const auto dist = stats::ShiftedExponential::for_load(a, mu, load);
      compute = dist.sample(rng);
    }
    const double finish = config.broadcast_seconds + compute;
    queue.schedule(finish, [&, i, compute] {
      if (collector->ready()) {
        return;  // iteration already complete; message is ignored
      }
      // Transfer: wait for the ingress link, then occupy it.
      const double service =
          scheme.message_units(i) * config.unit_transfer_seconds;
      const double start = std::max(queue.now(), ingress_free_at);
      ingress_free_at = start + service;
      queue.schedule(ingress_free_at, [&, i, compute] {
        if (collector->ready()) {
          return;
        }
        const auto meta = scheme.message_meta(i);
        collector->offer(i, meta, {});
        received_compute.push_back(compute);
        if (collector->ready()) {
          report.recovered = true;
          completion_time = queue.now();
        }
      });
    });
  }

  queue.run_until([&] { return report.recovered; });

  if (!report.recovered) {
    // All n messages consumed without recovery (e.g. BCC coverage
    // failure). Report the full drain time; the caller counts it.
    completion_time = queue.now();
  }

  report.total_time = completion_time;
  report.workers_heard = collector->workers_heard();
  report.units_received = collector->units_received();
  report.compute_time =
      received_compute.empty()
          ? 0.0
          : *std::max_element(received_compute.begin(),
                              received_compute.end());
  report.comm_time = report.total_time - report.compute_time;
  return report;
}

RunReport simulate_run(const core::Scheme& scheme,
                       const ClusterConfig& config, std::size_t iterations,
                       stats::Rng& rng) {
  RunReport run;
  run.iterations.reserve(iterations);
  for (std::size_t t = 0; t < iterations; ++t) {
    IterationReport it = simulate_iteration(scheme, config, rng);
    run.total_time += it.total_time;
    run.total_compute_time += it.compute_time;
    run.total_comm_time += it.comm_time;
    run.workers_heard.add(static_cast<double>(it.workers_heard));
    run.units_received.add(it.units_received);
    if (!it.recovered) {
      ++run.failures;
    }
    run.iterations.push_back(std::move(it));
  }
  return run;
}

}  // namespace coupon::simulate
