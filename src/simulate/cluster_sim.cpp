#include "simulate/cluster_sim.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace coupon::simulate {

void validate_cluster_config(const ClusterConfig& config,
                             std::size_t num_workers) {
  COUPON_ASSERT_MSG(config.compute_shift >= 0.0,
                    "compute_shift must be >= 0, got "
                        << config.compute_shift);
  COUPON_ASSERT_MSG(config.compute_straggle > 0.0,
                    "compute_straggle must be > 0, got "
                        << config.compute_straggle);
  COUPON_ASSERT_MSG(config.unit_transfer_seconds >= 0.0,
                    "unit_transfer_seconds must be >= 0, got "
                        << config.unit_transfer_seconds);
  COUPON_ASSERT_MSG(config.broadcast_seconds >= 0.0,
                    "broadcast_seconds must be >= 0, got "
                        << config.broadcast_seconds);
  COUPON_ASSERT_MSG(
      config.drop_probability >= 0.0 && config.drop_probability <= 1.0,
      "drop_probability must be in [0, 1], got " << config.drop_probability);
  COUPON_ASSERT_MSG(config.worker_overrides.empty() ||
                        config.worker_overrides.size() == num_workers,
                    "worker_overrides must be empty or size n");
  for (std::size_t i = 0; i < config.worker_overrides.size(); ++i) {
    const auto& o = config.worker_overrides[i];
    COUPON_ASSERT_MSG(o.compute_shift >= 0.0 && o.compute_straggle > 0.0,
                      "worker_overrides[" << i << "]: shift="
                                          << o.compute_shift << " straggle="
                                          << o.compute_straggle);
  }
}

std::unique_ptr<LatencyModel> make_latency_model(const ClusterConfig& config,
                                                 std::size_t num_workers) {
  validate_cluster_config(config, num_workers);
  if (config.latency_model) {
    auto model = config.latency_model(num_workers);
    COUPON_ASSERT_MSG(model != nullptr,
                      "ClusterConfig::latency_model returned null");
    return model;
  }
  return std::make_unique<ShiftedExpModel>(config.compute_shift,
                                           config.compute_straggle,
                                           config.worker_overrides);
}

namespace {

using Arrival = IterationKernel::Arrival;

/// The DES heap executed compute completions in (time, scheduling-seq)
/// order, and completions were scheduled in worker order, so
/// (time, worker) reproduces it exactly. Keys are unique — at most one
/// arrival per worker — which makes every sorted prefix a deterministic
/// function of the draw, whether produced by a full sort or by
/// selection (DESIGN.md §7.4).
inline bool arrival_less(const Arrival& a, const Arrival& b) {
  if (a.time != b.time) {
    return a.time < b.time;
  }
  return a.worker < b.worker;
}

/// Draw phase — one drop Bernoulli then (for loaded workers) one model
/// sample per worker, in worker order: the exact RNG consumption order
/// of the historical event loop's scheduling pass. Fills `out` (size n)
/// front-to-first and returns the number of arrivals; `model` is
/// advanced (`begin_iteration`) before any draw.
std::size_t draw_arrivals_into(std::span<Arrival> out,
                               std::span<const double> loads,
                               const ClusterConfig& config, LatencyModel& model,
                               std::size_t iteration, stats::Rng& rng) {
  model.begin_iteration(iteration, rng);
  const std::size_t n = loads.size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (config.drop_probability > 0.0 &&
        rng.bernoulli(config.drop_probability)) {
      continue;  // message lost: this worker never reports
    }
    double compute = 0.0;
    if (loads[i] > 0.0) {
      compute = model.sample_compute_seconds({i, iteration, loads[i]}, rng);
      COUPON_ASSERT_MSG(compute >= 0.0 && std::isfinite(compute),
                        "latency model '" << model.name() << "' drew "
                                          << compute << " for worker " << i);
    }
    out[count].time = config.broadcast_seconds + compute;
    out[count].compute = compute;
    out[count].worker = i;
    ++count;
  }
  return count;
}

/// Per-worker metadata spans over a flat arena (offsets are global
/// positions into `flat`, one n+1 window per kernel/cell).
struct MetaView {
  std::span<const std::int64_t> flat;
  std::span<const std::size_t> offsets;  ///< n + 1 bounds

  std::span<const std::int64_t> of(std::size_t worker) const {
    return flat.subspan(offsets[worker],
                        offsets[worker + 1] - offsets[worker]);
  }
};

/// Appends `scheme`'s per-worker metadata to the flat arena, pushing one
/// end bound per worker onto `offsets` (which must already carry the
/// current start bound — `{0}` for a fresh arena).
void append_metas(const core::Scheme& scheme, std::vector<std::int64_t>& flat,
                  std::vector<std::size_t>& offsets) {
  for (std::size_t i = 0; i < scheme.num_workers(); ++i) {
    const std::vector<std::int64_t> meta = scheme.message_meta(i);
    flat.insert(flat.end(), meta.begin(), meta.end());
    offsets.push_back(flat.size());
  }
}

/// The initial sorted-prefix length: the scheme's provable arrival floor
/// (`min_arrivals_hint`), raised to the expected recovery threshold when
/// one is known — starting below E[K] would make geometric extension the
/// common case instead of the fallback. Wait-for-all schemes (and
/// threshold_selection = false) land on n, i.e. a plain full sort.
std::size_t start_prefix_for(const core::Scheme& scheme,
                             bool threshold_selection) {
  const std::size_t n = scheme.num_workers();
  if (!threshold_selection || n == 0) {
    return n;
  }
  std::size_t start = std::clamp<std::size_t>(scheme.min_arrivals_hint(), 1, n);
  const std::optional<double> expected = scheme.expected_recovery_threshold();
  if (expected && *expected > static_cast<double>(start)) {
    start = std::min(n, static_cast<std::size_t>(std::ceil(*expected)));
  }
  return start;
}

/// Selection + ingress phases over one iteration's unsorted arrivals.
///
/// Selection: materialize the first `start_prefix` arrivals in sorted
/// order (`std::nth_element` partitions the prefix in O(count), then a
/// prefix sort orders it); because keys are unique, the result is
/// bit-identical to the same prefix of a full sort. Whenever the scan
/// exhausts the sorted prefix without recovery — drops, BCC coverage
/// failure, a conservative hint — the prefix doubles: [sorted, count)
/// holds exactly the arrivals ranked >= sorted, so selecting inside it
/// extends the unique sorted order (DESIGN.md §7.4).
///
/// Ingress: the serialized master link is a FIFO — each arrival waits
/// for the link, occupies it for its service time, and the fully
/// received message is offered to the collector. Completion order equals
/// arrival-processing order (the link frees monotonically), so a linear
/// scan replaces the event heap. The scan stops at recovery — exactly
/// where the historical DES run_until() stopped.
IterationReport scan_selected(std::span<Arrival> arrivals,
                              std::size_t start_prefix,
                              core::Collector& collector,
                              std::span<const double> service,
                              const MetaView& metas) {
  const std::size_t count = arrivals.size();
  const auto first = arrivals.begin();
  std::size_t sorted = std::min(start_prefix, count);
  if (sorted >= count) {
    std::sort(first, arrivals.end(), arrival_less);
    sorted = count;
  } else {
    std::nth_element(first, first + sorted, arrivals.end(), arrival_less);
    std::sort(first, first + sorted, arrival_less);
  }

  IterationReport report;
  report.recovered = false;
  double ingress_free_at = 0.0;
  double max_compute = 0.0;
  bool any_received = false;
  std::size_t cursor = 0;
  for (;;) {
    for (; cursor < sorted; ++cursor) {
      const Arrival& arrival = arrivals[cursor];
      const double start = std::max(arrival.time, ingress_free_at);
      ingress_free_at = start + service[arrival.worker];
      collector.offer(arrival.worker, metas.of(arrival.worker), {});
      max_compute = std::max(max_compute, arrival.compute);
      any_received = true;
      if (collector.ready()) {
        report.recovered = true;
        break;
      }
    }
    if (report.recovered || sorted == count) {
      break;
    }
    // Adaptive fallback: extend the sorted prefix geometrically
    // (sorted >= 1 here — an empty prefix only happens with count == 0,
    // which took the full-sort branch above).
    const std::size_t next = std::min(count, sorted * 2);
    if (next < count) {
      std::nth_element(first + sorted, first + next, arrivals.end(),
                       arrival_less);
      std::sort(first + sorted, first + next, arrival_less);
    } else {
      std::sort(first + sorted, arrivals.end(), arrival_less);
    }
    sorted = next;
  }

  // Without recovery the DES drained fully: its clock ended on the last
  // ingress completion — the final busy-until — or stayed 0 when nothing
  // was ever scheduled. With recovery, the clock is the busy-until of
  // the message that flipped ready().
  report.total_time = any_received ? ingress_free_at : 0.0;
  report.workers_heard = collector.workers_heard();
  report.units_received = collector.units_received();
  report.compute_time = max_compute;
  report.comm_time = report.total_time - report.compute_time;
  return report;
}

/// Folds one iteration into a run aggregate (shared by `simulate_run`
/// and `BatchedKernel::run`, so batched and sequential runs aggregate in
/// exactly the same operation order).
void accumulate(RunReport& run, const IterationReport& it, bool record_trace) {
  run.total_time += it.total_time;
  run.total_compute_time += it.compute_time;
  run.total_comm_time += it.comm_time;
  run.workers_heard.add(static_cast<double>(it.workers_heard));
  run.units_received.add(it.units_received);
  if (!it.recovered) {
    ++run.failures;
  }
  if (record_trace) {
    run.iterations.push_back(it);
  }
}

}  // namespace

IterationKernel::IterationKernel(const core::Scheme& scheme,
                                 const ClusterConfig& config,
                                 KernelOptions options)
    : scheme_(scheme),
      config_(config),
      collector_(scheme.make_collector()) {
  const std::size_t n = scheme.num_workers();
  loads_.resize(n);
  service_seconds_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    loads_[i] = static_cast<double>(scheme.placement().worker(i).size());
    service_seconds_[i] =
        scheme.message_units(i) * config.unit_transfer_seconds;
  }
  meta_offsets_.reserve(n + 1);
  meta_offsets_.push_back(0);
  append_metas(scheme, meta_flat_, meta_offsets_);
  arrivals_.resize(n);
  start_prefix_ = start_prefix_for(scheme, options.threshold_selection);
}

std::span<const IterationKernel::Arrival> IterationKernel::draw_arrivals(
    LatencyModel& model, std::size_t iteration, stats::Rng& rng) {
  count_ =
      draw_arrivals_into(arrivals_, loads_, config_, model, iteration, rng);
  // Order phase — this span is the simulated provider's contract: every
  // arrival, fully sorted, because the provider couples the whole order
  // with real gradient payloads. std::sort (not stable_sort, which
  // allocates) is safe: keys are unique.
  std::sort(arrivals_.begin(), arrivals_.begin() + count_, arrival_less);
  return {arrivals_.data(), count_};
}

std::size_t IterationKernel::begin_lazy_arrivals(LatencyModel& model,
                                                 std::size_t iteration,
                                                 stats::Rng& rng) {
  count_ =
      draw_arrivals_into(arrivals_, loads_, config_, model, iteration, rng);
  const auto first = arrivals_.begin();
  lazy_sorted_ = std::min(start_prefix_, count_);
  if (lazy_sorted_ >= count_) {
    std::sort(first, first + count_, arrival_less);
    lazy_sorted_ = count_;
  } else {
    std::nth_element(first, first + lazy_sorted_, first + count_,
                     arrival_less);
    std::sort(first, first + lazy_sorted_, arrival_less);
  }
  return count_;
}

const IterationKernel::Arrival& IterationKernel::sorted_arrival(
    std::size_t k) {
  COUPON_ASSERT(k < count_);
  // Same geometric extension as scan_selected: [lazy_sorted_, count_)
  // holds exactly the arrivals ranked >= lazy_sorted_, so selecting
  // inside it extends the unique sorted order (lazy_sorted_ >= 1 here:
  // start_prefix_for never returns 0 for a non-empty draw).
  while (k >= lazy_sorted_) {
    const auto first = arrivals_.begin();
    const std::size_t next = std::min(count_, lazy_sorted_ * 2);
    if (next < count_) {
      std::nth_element(first + lazy_sorted_, first + next, first + count_,
                       arrival_less);
      std::sort(first + lazy_sorted_, first + next, arrival_less);
    } else {
      std::sort(first + lazy_sorted_, first + count_, arrival_less);
    }
    lazy_sorted_ = next;
  }
  return arrivals_[k];
}

IterationReport IterationKernel::run(LatencyModel& model,
                                     std::size_t iteration, stats::Rng& rng) {
  collector_->reset();
  count_ =
      draw_arrivals_into(arrivals_, loads_, config_, model, iteration, rng);
  return scan_selected({arrivals_.data(), count_}, start_prefix_, *collector_,
                       service_seconds_, MetaView{meta_flat_, meta_offsets_});
}

IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   stats::Rng& rng) {
  const auto model = make_latency_model(config, scheme.num_workers());
  return simulate_iteration(scheme, config, *model, /*iteration=*/0, rng);
}

IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   LatencyModel& model, std::size_t iteration,
                                   stats::Rng& rng) {
  IterationKernel kernel(scheme, config);
  return kernel.run(model, iteration, rng);
}

RunReport simulate_run(const core::Scheme& scheme,
                       const ClusterConfig& config, const RunOptions& options,
                       stats::Rng& rng) {
  const auto model = make_latency_model(config, scheme.num_workers());
  IterationKernel kernel(scheme, config);
  RunReport run;
  if (options.record_trace) {
    run.iterations.reserve(options.iterations);
  }
  for (std::size_t t = 0; t < options.iterations; ++t) {
    accumulate(run, kernel.run(*model, t, rng), options.record_trace);
  }
  return run;
}

RunReport simulate_run(const core::Scheme& scheme,
                       const ClusterConfig& config, std::size_t iterations,
                       stats::Rng& rng) {
  RunOptions options;
  options.iterations = iterations;
  options.record_trace = true;
  return simulate_run(scheme, config, options, rng);
}

BatchedKernel::BatchedKernel(std::vector<BatchedCell> cells) {
  COUPON_ASSERT_MSG(!cells.empty(), "BatchedKernel needs at least one cell");
  COUPON_ASSERT_MSG(cells.front().scheme != nullptr,
                    "BatchedCell needs a scheme");
  num_workers_ = cells.front().scheme->num_workers();
  const std::size_t n = num_workers_;
  cells_.reserve(cells.size());
  arrivals_.resize(cells.size() * n);
  loads_.resize(cells.size() * n);
  service_seconds_.resize(cells.size() * n);
  meta_offsets_.reserve(cells.size() * n + 1);
  meta_offsets_.push_back(0);
  for (BatchedCell& cell : cells) {
    COUPON_ASSERT_MSG(cell.scheme != nullptr && cell.config != nullptr,
                      "BatchedCell needs a scheme and a cluster config");
    COUPON_ASSERT_MSG(
        cell.scheme->num_workers() == n,
        "BatchedKernel cells must share one worker count, got n="
            << cell.scheme->num_workers() << " vs " << n);
    const std::size_t base = cells_.size() * n;
    const core::Scheme& scheme = *cell.scheme;
    for (std::size_t i = 0; i < n; ++i) {
      loads_[base + i] =
          static_cast<double>(scheme.placement().worker(i).size());
      service_seconds_[base + i] =
          scheme.message_units(i) * cell.config->unit_transfer_seconds;
    }
    append_metas(scheme, meta_flat_, meta_offsets_);

    CellState state;
    state.cell = std::move(cell);
    state.collector = scheme.make_collector();
    state.model = make_latency_model(*state.cell.config, n);
    state.start_prefix = start_prefix_for(scheme, /*threshold_selection=*/true);
    if (state.cell.options.record_trace) {
      state.report.iterations.reserve(state.cell.options.iterations);
    }
    cells_.push_back(std::move(state));
  }
}

std::vector<RunReport> BatchedKernel::run() {
  const std::size_t n = num_workers_;
  std::size_t max_iterations = 0;
  for (const CellState& state : cells_) {
    max_iterations = std::max(max_iterations, state.cell.options.iterations);
  }
  // Lockstep, iteration-major: one pass streams every cell's arena row
  // once, so the batch shares RNG/model/sort code paths (and their
  // instruction cache) across cells instead of alternating whole runs.
  // Per-cell RNG, model, and collector state make the interleaving
  // invisible: every cell sees exactly the sequence simulate_run gives.
  for (std::size_t t = 0; t < max_iterations; ++t) {
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      CellState& state = cells_[c];
      if (t >= state.cell.options.iterations) {
        continue;  // this cell's run already finished
      }
      state.collector->reset();
      const std::span<Arrival> row{arrivals_.data() + c * n, n};
      const std::size_t count = draw_arrivals_into(
          row, {loads_.data() + c * n, n}, *state.cell.config, *state.model, t,
          state.cell.rng);
      const IterationReport it = scan_selected(
          row.first(count), state.start_prefix, *state.collector,
          {service_seconds_.data() + c * n, n},
          MetaView{meta_flat_, {meta_offsets_.data() + c * n, n + 1}});
      accumulate(state.report, it, state.cell.options.record_trace);
    }
  }
  std::vector<RunReport> reports;
  reports.reserve(cells_.size());
  for (CellState& state : cells_) {
    reports.push_back(std::move(state.report));
  }
  return reports;
}

}  // namespace coupon::simulate
