#include "simulate/cluster_sim.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace coupon::simulate {

void validate_cluster_config(const ClusterConfig& config,
                             std::size_t num_workers) {
  COUPON_ASSERT_MSG(config.compute_shift >= 0.0,
                    "compute_shift must be >= 0, got "
                        << config.compute_shift);
  COUPON_ASSERT_MSG(config.compute_straggle > 0.0,
                    "compute_straggle must be > 0, got "
                        << config.compute_straggle);
  COUPON_ASSERT_MSG(config.unit_transfer_seconds >= 0.0,
                    "unit_transfer_seconds must be >= 0, got "
                        << config.unit_transfer_seconds);
  COUPON_ASSERT_MSG(config.broadcast_seconds >= 0.0,
                    "broadcast_seconds must be >= 0, got "
                        << config.broadcast_seconds);
  COUPON_ASSERT_MSG(
      config.drop_probability >= 0.0 && config.drop_probability <= 1.0,
      "drop_probability must be in [0, 1], got " << config.drop_probability);
  COUPON_ASSERT_MSG(config.worker_overrides.empty() ||
                        config.worker_overrides.size() == num_workers,
                    "worker_overrides must be empty or size n");
  for (std::size_t i = 0; i < config.worker_overrides.size(); ++i) {
    const auto& o = config.worker_overrides[i];
    COUPON_ASSERT_MSG(o.compute_shift >= 0.0 && o.compute_straggle > 0.0,
                      "worker_overrides[" << i << "]: shift="
                                          << o.compute_shift << " straggle="
                                          << o.compute_straggle);
  }
}

std::unique_ptr<LatencyModel> make_latency_model(const ClusterConfig& config,
                                                 std::size_t num_workers) {
  validate_cluster_config(config, num_workers);
  if (config.latency_model) {
    auto model = config.latency_model(num_workers);
    COUPON_ASSERT_MSG(model != nullptr,
                      "ClusterConfig::latency_model returned null");
    return model;
  }
  return std::make_unique<ShiftedExpModel>(config.compute_shift,
                                           config.compute_straggle,
                                           config.worker_overrides);
}

IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   stats::Rng& rng) {
  const auto model = make_latency_model(config, scheme.num_workers());
  return simulate_iteration(scheme, config, *model, /*iteration=*/0, rng);
}

IterationReport simulate_iteration(const core::Scheme& scheme,
                                   const ClusterConfig& config,
                                   LatencyModel& model, std::size_t iteration,
                                   stats::Rng& rng) {
  // No validate_cluster_config here: both entry points that reach this
  // overload (simulate_run and the model-building simulate_iteration)
  // already validated via make_latency_model, and the config cannot
  // change between iterations — re-walking worker_overrides every
  // iteration would be pure overhead in the run loop.
  const std::size_t n = scheme.num_workers();
  auto collector = scheme.make_collector();

  EventQueue queue;
  IterationReport report;
  report.recovered = false;

  // Master ingress: serialized FIFO resource.
  double ingress_free_at = 0.0;
  // Compute durations of workers whose messages have been fully received.
  std::vector<double> received_compute;
  received_compute.reserve(n);
  double completion_time = 0.0;

  // Stateful models advance here, before any drop/latency draw.
  model.begin_iteration(iteration, rng);

  // Schedule every worker's compute completion.
  for (std::size_t i = 0; i < n; ++i) {
    if (config.drop_probability > 0.0 &&
        rng.bernoulli(config.drop_probability)) {
      continue;  // message lost: this worker never reports
    }
    const auto load =
        static_cast<double>(scheme.placement().worker(i).size());
    double compute = 0.0;
    if (load > 0.0) {
      compute = model.sample_compute_seconds({i, iteration, load}, rng);
      COUPON_ASSERT_MSG(compute >= 0.0 && std::isfinite(compute),
                        "latency model '" << model.name() << "' drew "
                                          << compute << " for worker " << i);
    }
    const double finish = config.broadcast_seconds + compute;
    queue.schedule(finish, [&, i, compute] {
      if (collector->ready()) {
        return;  // iteration already complete; message is ignored
      }
      // Transfer: wait for the ingress link, then occupy it.
      const double service =
          scheme.message_units(i) * config.unit_transfer_seconds;
      const double start = std::max(queue.now(), ingress_free_at);
      ingress_free_at = start + service;
      queue.schedule(ingress_free_at, [&, i, compute] {
        if (collector->ready()) {
          return;
        }
        const auto meta = scheme.message_meta(i);
        collector->offer(i, meta, {});
        received_compute.push_back(compute);
        if (collector->ready()) {
          report.recovered = true;
          completion_time = queue.now();
        }
      });
    });
  }

  queue.run_until([&] { return report.recovered; });

  if (!report.recovered) {
    // All n messages consumed without recovery (e.g. BCC coverage
    // failure). Report the full drain time; the caller counts it.
    completion_time = queue.now();
  }

  report.total_time = completion_time;
  report.workers_heard = collector->workers_heard();
  report.units_received = collector->units_received();
  report.compute_time =
      received_compute.empty()
          ? 0.0
          : *std::max_element(received_compute.begin(),
                              received_compute.end());
  report.comm_time = report.total_time - report.compute_time;
  return report;
}

RunReport simulate_run(const core::Scheme& scheme,
                       const ClusterConfig& config, std::size_t iterations,
                       stats::Rng& rng) {
  const auto model = make_latency_model(config, scheme.num_workers());
  RunReport run;
  run.iterations.reserve(iterations);
  for (std::size_t t = 0; t < iterations; ++t) {
    IterationReport it = simulate_iteration(scheme, config, *model, t, rng);
    run.total_time += it.total_time;
    run.total_compute_time += it.compute_time;
    run.total_comm_time += it.comm_time;
    run.workers_heard.add(static_cast<double>(it.workers_heard));
    run.units_received.add(it.units_received);
    if (!it.recovered) {
      ++run.failures;
    }
    run.iterations.push_back(std::move(it));
  }
  return run;
}

}  // namespace coupon::simulate
