#pragma once

/// \file simulate.hpp
/// Umbrella header for the simulate module.

#include "simulate/cluster_sim.hpp"   // IWYU pragma: export
#include "simulate/event_queue.hpp"   // IWYU pragma: export
#include "simulate/experiment.hpp"    // IWYU pragma: export
#include "simulate/latency_model.hpp" // IWYU pragma: export
