#pragma once

/// \file event_queue.hpp
/// Minimal discrete-event simulation engine.
///
/// Events are (virtual-time, callback) pairs executed in nondecreasing
/// time order; ties break by scheduling order (FIFO), which keeps runs
/// fully deterministic for a fixed seed. Callbacks may schedule further
/// events (at or after the current time).

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace coupon::simulate {

/// Deterministic virtual-time event loop.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute virtual time `time` (must be >= now()).
  void schedule(double time, Callback cb);

  /// Schedules `cb` `delay` seconds after now().
  void schedule_after(double delay, Callback cb) {
    schedule(now_ + delay, std::move(cb));
  }

  /// Runs the earliest event. Returns false when the queue is empty.
  bool run_next();

  /// Runs events until the queue empties or `predicate` returns true
  /// (checked after each event).
  void run_until(const std::function<bool()>& predicate);

  /// Drains the queue completely.
  void run_all();

  /// Current virtual time (time of the last executed event).
  double now() const { return now_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tiebreak
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace coupon::simulate
