#pragma once

/// \file event_queue.hpp
/// Minimal discrete-event simulation engine.
///
/// Events are (virtual-time, callback) pairs executed in nondecreasing
/// time order; ties break by scheduling order (FIFO), which keeps runs
/// fully deterministic for a fixed seed. Callbacks may schedule further
/// events (at or after the current time).
///
/// The iteration hot path of the cluster simulator no longer goes through
/// this queue (it uses the arrival-sorted `IterationKernel`, see
/// cluster_sim.hpp and DESIGN.md §7); the queue remains the
/// general-purpose engine for irregular event graphs. Its callbacks are
/// stored in a move-only small-buffer-optimized wrapper
/// (`InplaceCallback`), so scheduling a lambda whose captures fit the
/// inline buffer performs no heap allocation — `std::function`'s copy
/// requirement and its allocation for non-trivial captures are gone.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace coupon::simulate {

/// Move-only callable wrapper with a small-buffer optimization. Callables
/// whose size fits `kInlineCapacity` (and that are nothrow-movable) are
/// stored inline; larger ones fall back to one heap allocation. Unlike
/// `std::function`, the wrapped callable never needs to be copyable, and
/// typical simulator lambdas (a few captured references and scalars)
/// never touch the heap.
class InplaceCallback {
 public:
  /// Inline storage, sized for the event-loop lambdas of the simulator
  /// (a handful of pointers/doubles) with headroom for user code.
  static constexpr std::size_t kInlineCapacity = 56;

  InplaceCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InplaceCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  InplaceCallback(InplaceCallback&& other) noexcept { take(other); }

  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      destroy();
      take(other);
    }
    return *this;
  }

  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;

  ~InplaceCallback() { destroy(); }

  /// Invokes the wrapped callable. Calling an empty (default-constructed
  /// or moved-from) callback asserts loudly, matching the old
  /// std::function Callback's bad_function_call instead of UB.
  void operator()() {
    COUPON_ASSERT_MSG(ops_ != nullptr, "invoking an empty InplaceCallback");
    ops_->invoke(storage_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  /// Type-erased operations; `relocate` move-constructs into `dest` and
  /// destroys the source (the only move flavor a heap queue needs).
  struct Ops {
    void (*invoke)(void* self);
    void (*relocate)(void* self, void* dest);
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*static_cast<Fn*>(self))(); },
      [](void* self, void* dest) {
        ::new (dest) Fn(std::move(*static_cast<Fn*>(self)));
        static_cast<Fn*>(self)->~Fn();
      },
      [](void* self) { static_cast<Fn*>(self)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**static_cast<Fn**>(self))(); },
      [](void* self, void* dest) {
        ::new (dest) Fn*(*static_cast<Fn**>(self));
      },
      [](void* self) { delete *static_cast<Fn**>(self); }};

  void take(InplaceCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  void destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

/// Deterministic virtual-time event loop.
class EventQueue {
 public:
  using Callback = InplaceCallback;

  /// Schedules `cb` at absolute virtual time `time` (must be >= now()).
  void schedule(double time, Callback cb);

  /// Schedules `cb` `delay` seconds after now().
  void schedule_after(double delay, Callback cb) {
    schedule(now_ + delay, std::move(cb));
  }

  /// Runs the earliest event. Returns false when the queue is empty.
  bool run_next();

  /// Runs events until the queue empties or `predicate` returns true
  /// (checked after each event).
  void run_until(const std::function<bool()>& predicate);

  /// Drains the queue completely.
  void run_all();

  /// Current virtual time (time of the last executed event).
  double now() const { return now_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tiebreak
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  // A plain vector managed with std::push_heap/pop_heap rather than
  // std::priority_queue: priority_queue::top() is const, which forces a
  // *copy* of the event (and its callback) on every pop — incompatible
  // with move-only callbacks and a needless allocation besides.
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace coupon::simulate
