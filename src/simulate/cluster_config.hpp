#pragma once

/// \file cluster_config.hpp
/// Latency parameters of the simulated cluster (`ClusterConfig`), split
/// out of cluster_sim.hpp so scenario/driver layers that only *describe*
/// clusters need not rebuild when the simulation engine changes.

#include <cstddef>
#include <memory>
#include <vector>

#include "simulate/latency_model.hpp"

namespace coupon::simulate {

/// Latency parameters of the simulated cluster.
struct ClusterConfig {
  /// Seconds of deterministic compute per unit of load (a in Eq. 15).
  double compute_shift = 1e-3;
  /// Straggle parameter (mu in Eq. 15); the exponential tail of a
  /// worker's compute time has scale load/mu.
  double compute_straggle = 1.0;
  /// Master ingress service seconds per gradient unit received.
  double unit_transfer_seconds = 3e-3;
  /// Fixed model-broadcast latency at the start of each iteration.
  double broadcast_seconds = 0.0;
  /// Probability that a worker's message is lost this iteration (worker
  /// crash / packet drop). Independent across workers and iterations.
  /// Wait-for-all schemes fail the iteration on any loss; BCC/FR only
  /// fail when every replica of some batch/block is lost.
  double drop_probability = 0.0;
  /// Optional per-worker latency profiles (heterogeneous cluster). When
  /// non-empty, must have exactly one entry per worker and overrides the
  /// homogeneous compute_shift/compute_straggle above.
  std::vector<WorkerLatency> worker_overrides;
  /// Optional compute-latency law. When set, each run builds a fresh
  /// model from this factory and the shift/straggle/override fields above
  /// are ignored; when empty (the default) the simulator uses
  /// `ShiftedExpModel` built from those fields — the paper's Eq. 15,
  /// bit-identical to the pre-refactor behaviour.
  LatencyModelFactory latency_model;
};

/// Validates the cluster knobs for an `num_workers`-worker simulation:
/// compute_shift/broadcast_seconds/unit_transfer_seconds >= 0,
/// compute_straggle > 0, drop_probability in [0, 1], and worker_overrides
/// empty or exactly one valid entry per worker. Throws
/// coupon::AssertionError with the offending knob and value instead of
/// letting a bad config silently produce NaN or degenerate traces.
/// Called by simulate_iteration/simulate_run on entry.
void validate_cluster_config(const ClusterConfig& config,
                             std::size_t num_workers);

/// Builds the run's latency model: `config.latency_model(num_workers)`
/// when set, otherwise the default `ShiftedExpModel` over the config's
/// shift/straggle/override fields.
std::unique_ptr<LatencyModel> make_latency_model(const ClusterConfig& config,
                                                 std::size_t num_workers);

}  // namespace coupon::simulate
