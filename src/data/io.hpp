#pragma once

/// \file io.hpp
/// Dataset import/export in CSV form, so users can train on their own
/// data instead of the synthetic generators.
///
/// Format: one example per line, label first, then the feature values:
///     y,x_1,x_2,...,x_p
/// No header. All rows must have the same number of columns; labels are
/// arbitrary reals (use {-1, +1} for the logistic loss).

#include <iosfwd>
#include <optional>

#include "data/dataset.hpp"

namespace coupon::data {

/// Writes `dataset` as CSV rows (label first).
void save_csv(std::ostream& os, const Dataset& dataset);

/// Parses a CSV stream produced by `save_csv` (or any numeric CSV with
/// the label in the first column). Returns nullopt on any malformed
/// input: empty stream, non-numeric field, or ragged rows.
std::optional<Dataset> load_csv(std::istream& is);

}  // namespace coupon::data
