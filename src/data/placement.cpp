#include "data/placement.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace coupon::data {

std::size_t Placement::computational_load() const {
  std::size_t r = 0;
  for (const auto& g : assignments_) {
    r = std::max(r, g.size());
  }
  return r;
}

std::size_t Placement::total_assigned() const {
  std::size_t total = 0;
  for (const auto& g : assignments_) {
    total += g.size();
  }
  return total;
}

bool Placement::covers_all_examples() const {
  std::vector<bool> seen(num_examples_, false);
  for (const auto& g : assignments_) {
    for (std::size_t j : g) {
      COUPON_ASSERT(j < num_examples_);
      seen[j] = true;
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

std::vector<std::size_t> Placement::example_multiplicities() const {
  std::vector<std::size_t> mult(num_examples_, 0);
  for (const auto& g : assignments_) {
    for (std::size_t j : g) {
      COUPON_ASSERT(j < num_examples_);
      ++mult[j];
    }
  }
  return mult;
}

}  // namespace coupon::data
