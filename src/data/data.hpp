#pragma once

/// \file data.hpp
/// Umbrella header for the data module.

#include "data/batching.hpp"  // IWYU pragma: export
#include "data/dataset.hpp"   // IWYU pragma: export
#include "data/io.hpp"        // IWYU pragma: export
#include "data/placement.hpp" // IWYU pragma: export
#include "data/synthetic.hpp" // IWYU pragma: export
