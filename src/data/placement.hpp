#pragma once

/// \file placement.hpp
/// Data placement: which examples each worker stores and processes.
///
/// This is the bipartite graph G of Section II — data vertices on one
/// side, worker vertices on the other, with an edge (d_j, k_i) when
/// worker i computes the partial gradient g_j. Definition 1's
/// computational load r is the maximum worker degree.

#include <cstddef>
#include <vector>

namespace coupon::data {

/// Per-worker example assignment (the sets G_i of the paper).
class Placement {
 public:
  Placement() = default;

  /// Creates a placement for `num_workers` workers over `num_examples`
  /// examples with all G_i initially empty.
  Placement(std::size_t num_workers, std::size_t num_examples)
      : num_examples_(num_examples), assignments_(num_workers) {}

  std::size_t num_workers() const { return assignments_.size(); }
  std::size_t num_examples() const { return num_examples_; }

  /// Mutable/const access to G_i.
  std::vector<std::size_t>& worker(std::size_t i) { return assignments_[i]; }
  const std::vector<std::size_t>& worker(std::size_t i) const {
    return assignments_[i];
  }

  /// Definition 1: the computational load r = max_i |G_i|.
  std::size_t computational_load() const;

  /// Total stored examples Σ_i |G_i| (the redundancy factor is this / m).
  std::size_t total_assigned() const;

  /// True when every example is assigned to at least one worker
  /// (the paper's requirement N(k_1) ∪ ... ∪ N(k_n) = {d_1, ..., d_m}).
  bool covers_all_examples() const;

  /// Number of workers processing each example (data-vertex degrees).
  std::vector<std::size_t> example_multiplicities() const;

 private:
  std::size_t num_examples_ = 0;
  std::vector<std::vector<std::size_t>> assignments_;
};

}  // namespace coupon::data
