#include "data/batching.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace coupon::data {

BatchPartition::BatchPartition(std::size_t num_examples,
                               std::size_t batch_size)
    : num_examples_(num_examples), batch_size_(batch_size) {
  COUPON_ASSERT_MSG(num_examples > 0 && batch_size > 0,
                    "m=" << num_examples << " r=" << batch_size);
  num_batches_ = (num_examples + batch_size - 1) / batch_size;
  flat_.resize(num_examples);
  for (std::size_t j = 0; j < num_examples; ++j) {
    flat_[j] = j;
  }
}

std::span<const std::size_t> BatchPartition::indices(std::size_t b) const {
  COUPON_ASSERT(b < num_batches_);
  const std::size_t begin = b * batch_size_;
  const std::size_t end = std::min(begin + batch_size_, num_examples_);
  return {flat_.data() + begin, end - begin};
}

std::size_t BatchPartition::actual_size(std::size_t b) const {
  return indices(b).size();
}

std::size_t BatchPartition::batch_of(std::size_t j) const {
  COUPON_ASSERT(j < num_examples_);
  return j / batch_size_;
}

}  // namespace coupon::data
