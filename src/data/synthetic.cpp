#include "data/synthetic.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace coupon::data {

SyntheticProblem generate_logreg(std::size_t num_examples,
                                 const SyntheticConfig& config,
                                 stats::Rng& rng) {
  const std::size_t p = config.num_features;
  COUPON_ASSERT(p > 0 && num_examples > 0);

  SyntheticProblem problem;
  problem.w_star.resize(p);
  for (double& w : problem.w_star) {
    w = rng.bernoulli(0.5) ? 1.0 : -1.0;
  }

  const double scale = config.separation / static_cast<double>(p);
  problem.dataset.x = linalg::Matrix(num_examples, p);
  problem.dataset.y.resize(num_examples);

  for (std::size_t j = 0; j < num_examples; ++j) {
    // Mixture component: mu1 = +scale*w* with prob 1/2, else mu2 = -scale*w*.
    const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
    auto row = problem.dataset.x.row(j);
    double xtw = 0.0;
    for (std::size_t c = 0; c < p; ++c) {
      const double mean = sign * scale * problem.w_star[c];
      row[c] = rng.normal(mean, 1.0);
      xtw += row[c] * problem.w_star[c];
    }
    // kappa = 1 / (exp(x^T w*) + 1); y = +1 w.p. kappa, else -1.
    const double kappa = 1.0 / (std::exp(xtw) + 1.0);
    problem.dataset.y[j] = rng.bernoulli(kappa) ? 1.0 : -1.0;
  }
  return problem;
}

SyntheticProblem generate_linreg(std::size_t num_examples,
                                 const SyntheticConfig& config,
                                 double noise_stddev, stats::Rng& rng) {
  const std::size_t p = config.num_features;
  COUPON_ASSERT(p > 0 && num_examples > 0 && noise_stddev >= 0.0);

  SyntheticProblem problem;
  problem.w_star.resize(p);
  for (double& w : problem.w_star) {
    w = rng.bernoulli(0.5) ? 1.0 : -1.0;
  }
  problem.dataset.x = linalg::Matrix(num_examples, p);
  problem.dataset.y.resize(num_examples);
  for (std::size_t j = 0; j < num_examples; ++j) {
    auto row = problem.dataset.x.row(j);
    double xtw = 0.0;
    for (std::size_t c = 0; c < p; ++c) {
      row[c] = rng.normal();
      xtw += row[c] * problem.w_star[c];
    }
    problem.dataset.y[j] = xtw + rng.normal(0.0, noise_stddev);
  }
  return problem;
}

}  // namespace coupon::data
