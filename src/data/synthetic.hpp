#pragma once

/// \file synthetic.hpp
/// The paper's synthetic logistic-regression data model (Section III-C).
///
/// To create the dataset the paper first draws a ground-truth weight
/// vector w* with coordinates uniform in {-1, +1}, then per example:
///
///     x ~ 0.5 * N(mu1, I) + 0.5 * N(mu2, I),
///     mu1 = (1.5/p)  * w*,   mu2 = (-1.5/p) * w*,
///     y ~ Ber(kappa) with kappa = 1 / (exp(x^T w*) + 1),
///
/// where y = +1 with probability kappa and -1 otherwise. The experiments
/// use p = 8000 features. We reproduce the model exactly (including the
/// direction of the Bernoulli, which anti-correlates y with x^T w*; it is
/// faithful to the paper's description).

#include <cstdint>

#include "data/dataset.hpp"
#include "stats/rng.hpp"

namespace coupon::data {

/// Parameters of the generator; defaults match the paper's experiments.
struct SyntheticConfig {
  std::size_t num_features = 8000;  ///< p
  double separation = 1.5;          ///< mixture mean magnitude scale
};

/// A generated dataset together with its ground truth.
struct SyntheticProblem {
  Dataset dataset;
  std::vector<double> w_star;  ///< ground-truth weights in {-1, +1}^p
};

/// Draws `num_examples` i.i.d. examples from the paper's model.
SyntheticProblem generate_logreg(std::size_t num_examples,
                                 const SyntheticConfig& config,
                                 stats::Rng& rng);

/// Linear-regression variant used to exercise the squared loss: w* as
/// above, x ~ N(0, I), y = x^T w* + noise_stddev * N(0, 1). The labels
/// are real-valued (the Dataset's y loses its {-1,+1} meaning here).
SyntheticProblem generate_linreg(std::size_t num_examples,
                                 const SyntheticConfig& config,
                                 double noise_stddev, stats::Rng& rng);

}  // namespace coupon::data
