#pragma once

/// \file dataset.hpp
/// Training dataset container: one row per example, labels in {-1, +1}.

#include <vector>

#include "linalg/matrix.hpp"

namespace coupon::data {

/// Dense supervised dataset for binary classification.
struct Dataset {
  linalg::Matrix x;       ///< m x p feature matrix (row = example)
  std::vector<double> y;  ///< m labels in {-1.0, +1.0}

  std::size_t num_examples() const { return x.rows(); }
  std::size_t num_features() const { return x.cols(); }

  /// Sub-dataset formed by the given example indices (copies rows).
  Dataset select(std::span<const std::size_t> indices) const {
    Dataset d;
    d.x = x.select_rows(indices);
    d.y.reserve(indices.size());
    for (std::size_t j : indices) {
      d.y.push_back(y[j]);
    }
    return d;
  }
};

}  // namespace coupon::data
