#include "data/io.hpp"

#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace coupon::data {

namespace {

/// Parses one CSV line of doubles; returns false on any bad field.
bool parse_line(const std::string& line, std::vector<double>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= line.size()) {
    std::size_t comma = line.find(',', pos);
    if (comma == std::string::npos) {
      comma = line.size();
    }
    const std::string field = line.substr(pos, comma - pos);
    if (field.empty()) {
      return false;
    }
    try {
      std::size_t consumed = 0;
      const double value = std::stod(field, &consumed);
      // Reject trailing garbage like "1.5abc" (allow trailing spaces).
      for (std::size_t k = consumed; k < field.size(); ++k) {
        if (field[k] != ' ' && field[k] != '\r') {
          return false;
        }
      }
      out.push_back(value);
    } catch (const std::exception&) {
      return false;
    }
    if (comma == line.size()) {
      break;
    }
    pos = comma + 1;
  }
  return !out.empty();
}

}  // namespace

void save_csv(std::ostream& os, const Dataset& dataset) {
  char buf[64];
  for (std::size_t j = 0; j < dataset.num_examples(); ++j) {
    std::snprintf(buf, sizeof(buf), "%.17g", dataset.y[j]);
    os << buf;
    for (double v : dataset.x.row(j)) {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      os << ',' << buf;
    }
    os << '\n';
  }
}

std::optional<Dataset> load_csv(std::istream& is) {
  std::vector<std::vector<double>> rows;
  std::string line;
  std::vector<double> fields;
  while (std::getline(is, line)) {
    if (line.empty()) {
      continue;
    }
    if (!parse_line(line, fields)) {
      return std::nullopt;
    }
    if (fields.size() < 2) {
      return std::nullopt;  // need a label and at least one feature
    }
    if (!rows.empty() && fields.size() != rows.front().size()) {
      return std::nullopt;  // ragged rows
    }
    rows.push_back(fields);
  }
  if (rows.empty()) {
    return std::nullopt;
  }
  const std::size_t p = rows.front().size() - 1;
  Dataset dataset;
  dataset.x = linalg::Matrix(rows.size(), p);
  dataset.y.resize(rows.size());
  for (std::size_t j = 0; j < rows.size(); ++j) {
    dataset.y[j] = rows[j][0];
    auto dst = dataset.x.row(j);
    for (std::size_t c = 0; c < p; ++c) {
      dst[c] = rows[j][c + 1];
    }
  }
  return dataset;
}

}  // namespace coupon::data
