#pragma once

/// \file batching.hpp
/// Even partition of example indices into batches of size r — the
/// "batching" half of Batched Coupon's Collector (Fig. 3 of the paper).
///
/// The paper zero-pads the last batch to exactly r examples; because
/// workers transmit the *sum* of per-example gradients and a zero-padded
/// example contributes a zero gradient, we represent the last batch simply
/// by its (possibly fewer) real indices. The tests assert this equivalence.

#include <cstddef>
#include <span>
#include <vector>

namespace coupon::data {

/// Immutable partition of {0, ..., m-1} into ceil(m/r) contiguous batches.
class BatchPartition {
 public:
  /// Partitions `num_examples` indices into batches of nominal size
  /// `batch_size` (the computational load r). Requires both > 0.
  BatchPartition(std::size_t num_examples, std::size_t batch_size);

  std::size_t num_examples() const { return num_examples_; }
  /// Nominal batch size r.
  std::size_t batch_size() const { return batch_size_; }
  /// ceil(m / r).
  std::size_t num_batches() const { return num_batches_; }

  /// Index range of batch `b` as [begin, end) over example indices.
  std::span<const std::size_t> indices(std::size_t b) const;

  /// Number of real (non-padded) examples in batch `b`.
  std::size_t actual_size(std::size_t b) const;

  /// The batch containing example `j`.
  std::size_t batch_of(std::size_t j) const;

 private:
  std::size_t num_examples_;
  std::size_t batch_size_;
  std::size_t num_batches_;
  std::vector<std::size_t> flat_;  // 0..m-1; batch b = slice of this
};

}  // namespace coupon::data
