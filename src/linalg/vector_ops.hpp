#pragma once

/// \file vector_ops.hpp
/// BLAS-1 style kernels over `std::span<double>`.
///
/// These free functions are the building blocks for the gradient
/// computations (sums of per-example gradients) and for the dense solvers.
/// They are deliberately allocation-free; callers own all buffers.

#include <cstddef>
#include <span>
#include <vector>

namespace coupon::linalg {

/// Dot product <x, y>. Requires x.size() == y.size().
double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x. Requires x.size() == y.size().
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scal(double alpha, std::span<double> x);

/// Euclidean norm ||x||_2.
double nrm2(std::span<const double> x);

/// Sum of elements.
double asum_signed(std::span<const double> x);

/// y = x (sizes must match).
void copy(std::span<const double> x, std::span<double> y);

/// x = value everywhere.
void fill(std::span<double> x, double value);

/// out = a + b (sizes must match).
void add(std::span<const double> a, std::span<const double> b,
         std::span<double> out);

/// out = a - b (sizes must match).
void sub(std::span<const double> a, std::span<const double> b,
         std::span<double> out);

/// max_i |a_i - b_i|; 0 for empty spans. Sizes must match.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// max_i |a_i|; 0 for empty spans.
double max_abs(std::span<const double> a);

}  // namespace coupon::linalg
