#pragma once

/// \file vector_ops.hpp
/// BLAS-1 style kernels over `std::span<double>`.
///
/// These free functions are the building blocks for the gradient
/// computations (sums of per-example gradients) and for the dense solvers.
/// They are deliberately allocation-free; callers own all buffers.
///
/// The five hottest kernels (dot, axpy, scal, fill, copy) are defined
/// inline here: they sit on the per-example gradient path, where the call
/// into a separate translation unit costs more than the loop body at the
/// p ~ 20 dimensions the benches run. Bitwise-safe to inline — every TU
/// compiles with the same flags and the loop bodies fix the association
/// order, so inlining cannot change results. Their size checks use
/// `COUPON_DCHECK` (the documented hot-inner-loop idiom in
/// util/assert.hpp): at ~10ns per kernel call an always-on branch per
/// invocation is measurable on the training bench.

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "util/assert.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define COUPON_LINALG_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace coupon::linalg {

#if COUPON_LINALG_X86_DISPATCH
namespace detail {

/// AVX2 dot with the lane layout of the scalar 4-way unroll: vector lane
/// l holds exactly the scalar accumulator s_l (the sum of x[4i+l] *
/// y[4i+l]), the tail folds into s0, and the reduce is the scalar's
/// (s0 + s1) + (s2 + s3). Every lane op is the same IEEE multiply/add as
/// the scalar code, so the result is bit-identical. The target attribute
/// enables avx2 only — not fma — so the compiler cannot contract the
/// mul+add into a fused (differently-rounded) instruction.
__attribute__((target("avx2"))) inline double dot_avx2(const double* x,
                                                       const double* y,
                                                       std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  alignas(32) double s[4];
  _mm256_store_pd(s, acc);
  for (; i < n; ++i) {
    s[0] += x[i] * y[i];
  }
  return (s[0] + s[1]) + (s[2] + s[3]);
}

/// AVX2 axpy. Each element's update is the same two IEEE ops as the
/// scalar loop (no cross-element arithmetic), so vector width cannot
/// change bits; avx2-without-fma again forbids contraction.
__attribute__((target("avx2"))) inline void axpy_avx2(double alpha,
                                                      const double* x,
                                                      double* y,
                                                      std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(va, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

/// AVX2 multi-row dot: out[k] = <rows[k], w> for `count` contiguous rows
/// of length 4*NV. Hoists w into NV ymm registers for the whole pass —
/// the scalar path reloads w per row — and reproduces dot_avx2's chain
/// per row exactly: acc starts at zero, accumulates add(acc, mul(...))
/// in the same vector order, and reduces (s0 + s1) + (s2 + s3). Same
/// lane ops, same association ⇒ same bits as calling dot() per row.
template <int NV>
__attribute__((target("avx2"))) inline void dot_rows_avx2(
    const double* rows, std::size_t count, const double* w, double* out) {
  constexpr std::size_t kP = 4 * NV;
  __m256d wv[NV];
  for (int v = 0; v < NV; ++v) {
    wv[v] = _mm256_loadu_pd(w + 4 * v);
  }
  for (std::size_t k = 0; k < count; ++k, rows += kP) {
    __m256d acc = _mm256_setzero_pd();
    for (int v = 0; v < NV; ++v) {
      acc = _mm256_add_pd(acc,
                          _mm256_mul_pd(wv[v], _mm256_loadu_pd(rows + 4 * v)));
    }
    alignas(32) double s[4];
    _mm256_store_pd(s, acc);
    out[k] = (s[0] + s[1]) + (s[2] + s[3]);
  }
}

/// Row-dot companion to axpy_rows_dispatch: same shape constraints
/// (p = 4*NV, NV in {2..8}), same fallback contract (false ⇒ caller
/// calls dot() per row, which produces the same bits).
inline bool dot_rows_dispatch(const double* rows, std::size_t count,
                              std::size_t p, const double* w, double* out) {
  if (p % 4 != 0 || !__builtin_cpu_supports("avx2")) {
    return false;
  }
  switch (p / 4) {
    case 2: dot_rows_avx2<2>(rows, count, w, out); return true;
    case 3: dot_rows_avx2<3>(rows, count, w, out); return true;
    case 4: dot_rows_avx2<4>(rows, count, w, out); return true;
    case 5: dot_rows_avx2<5>(rows, count, w, out); return true;
    case 6: dot_rows_avx2<6>(rows, count, w, out); return true;
    case 7: dot_rows_avx2<7>(rows, count, w, out); return true;
    case 8: dot_rows_avx2<8>(rows, count, w, out); return true;
    default: return false;
  }
}

/// AVX2 multi-row axpy: out += sum_k coefs[k] * rows[k], rows contiguous
/// with stride 4*NV (= the row length). Keeps `out` in NV ymm
/// accumulators for the whole pass instead of loading/storing it per
/// row. Each element's update sequence is exactly the per-row scalar
/// axpy's (same mul, same add, same k order), so bits cannot change;
/// avx2-without-fma forbids contraction as above.
template <int NV>
__attribute__((target("avx2"))) inline void axpy_rows_avx2(
    const double* coefs, const double* rows, std::size_t count, double* out) {
  constexpr std::size_t kP = 4 * NV;
  __m256d acc[NV];
  for (int v = 0; v < NV; ++v) {
    acc[v] = _mm256_loadu_pd(out + 4 * v);
  }
  for (std::size_t k = 0; k < count; ++k, rows += kP) {
    const __m256d c = _mm256_set1_pd(coefs[k]);
    for (int v = 0; v < NV; ++v) {
      acc[v] = _mm256_add_pd(acc[v],
                             _mm256_mul_pd(c, _mm256_loadu_pd(rows + 4 * v)));
    }
  }
  for (int v = 0; v < NV; ++v) {
    _mm256_storeu_pd(out + 4 * v, acc[v]);
  }
}

/// Dispatch table over the row length p = 4*NV (NV accumulators must fit
/// the 16 ymm registers alongside the row loads; p in {8..32} covers the
/// feature counts the benches and experiments use). Returns false when
/// the shape has no specialized kernel (caller falls back to per-row
/// axpy, which produces the same bits).
inline bool axpy_rows_dispatch(const double* coefs, const double* rows,
                               std::size_t count, std::size_t p,
                               double* out) {
  if (p % 4 != 0 || !__builtin_cpu_supports("avx2")) {
    return false;
  }
  switch (p / 4) {
    case 2: axpy_rows_avx2<2>(coefs, rows, count, out); return true;
    case 3: axpy_rows_avx2<3>(coefs, rows, count, out); return true;
    case 4: axpy_rows_avx2<4>(coefs, rows, count, out); return true;
    case 5: axpy_rows_avx2<5>(coefs, rows, count, out); return true;
    case 6: axpy_rows_avx2<6>(coefs, rows, count, out); return true;
    case 7: axpy_rows_avx2<7>(coefs, rows, count, out); return true;
    case 8: axpy_rows_avx2<8>(coefs, rows, count, out); return true;
    default: return false;
  }
}

}  // namespace detail
#endif  // COUPON_LINALG_X86_DISPATCH

/// Dot product <x, y>. Requires x.size() == y.size().
inline double dot(std::span<const double> x, std::span<const double> y) {
  COUPON_DCHECK(x.size() == y.size());
  const std::size_t n = x.size();
#if COUPON_LINALG_X86_DISPATCH
  // Runtime dispatch: one cached-feature load + predictable branch. The
  // AVX2 kernel reproduces the scalar association order exactly (see
  // detail::dot_avx2), so which path runs never changes results.
  if (n >= 8 && __builtin_cpu_supports("avx2")) {
    return detail::dot_avx2(x.data(), y.data(), n);
  }
#endif
  // Four-way unrolled accumulation: measurably faster than the naive loop
  // at -O2 and keeps rounding deterministic (fixed association order).
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) {
    s0 += x[i] * y[i];
  }
  return (s0 + s1) + (s2 + s3);
}

/// y += alpha * x. Requires x.size() == y.size().
inline void axpy(double alpha, std::span<const double> x,
                 std::span<double> y) {
  COUPON_DCHECK(x.size() == y.size());
  const std::size_t n = x.size();
#if COUPON_LINALG_X86_DISPATCH
  if (n >= 8 && __builtin_cpu_supports("avx2")) {
    detail::axpy_avx2(alpha, x.data(), y.data(), n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

/// x *= alpha.
inline void scal(double alpha, std::span<double> x) {
  for (double& v : x) {
    v *= alpha;
  }
}

/// Euclidean norm ||x||_2.
double nrm2(std::span<const double> x);

/// Sum of elements.
double asum_signed(std::span<const double> x);

/// y = x (sizes must match).
inline void copy(std::span<const double> x, std::span<double> y) {
  COUPON_DCHECK(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

/// x = value everywhere.
inline void fill(std::span<double> x, double value) {
  std::fill(x.begin(), x.end(), value);
}

/// out = a + b (sizes must match).
void add(std::span<const double> a, std::span<const double> b,
         std::span<double> out);

/// out = a - b (sizes must match).
void sub(std::span<const double> a, std::span<const double> b,
         std::span<double> out);

/// max_i |a_i - b_i|; 0 for empty spans. Sizes must match.
double max_abs_diff(std::span<const double> a, std::span<const double> b);

/// max_i |a_i|; 0 for empty spans.
double max_abs(std::span<const double> a);

}  // namespace coupon::linalg
