#pragma once

/// \file matrix.hpp
/// Dense row-major matrix of doubles.
///
/// Row-major layout matches the access pattern of the gradient kernels:
/// each training example is one contiguous row, so per-example gradients
/// and batch GEMVs stream rows sequentially.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace coupon::linalg {

/// Dense rows x cols matrix, row-major, contiguous storage.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix initialized to `value`.
  Matrix(std::size_t rows, std::size_t cols, double value = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Builds from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  /// Reshapes to rows x cols and fills every entry with `value`. Reuses
  /// the existing storage, so a same-or-smaller reshape never allocates —
  /// decode scratch matrices rely on this.
  void resize(std::size_t rows, std::size_t cols, double value = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, value);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    COUPON_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    COUPON_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row `r`.
  std::span<double> row(std::size_t r) {
    COUPON_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    COUPON_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Whole-storage views (row-major).
  std::span<double> data() { return {data_.data(), data_.size()}; }
  std::span<const double> data() const { return {data_.data(), data_.size()}; }

  /// Returns the transpose (new storage).
  Matrix transposed() const;

  /// Extracts the sub-matrix formed by the given rows, in order.
  Matrix select_rows(std::span<const std::size_t> row_indices) const;

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace coupon::linalg
