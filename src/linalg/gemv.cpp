#include "linalg/gemv.hpp"

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::linalg {

void gemv(double alpha, const Matrix& a, std::span<const double> x,
          double beta, std::span<double> y) {
  COUPON_ASSERT(x.size() == a.cols());
  COUPON_ASSERT(y.size() == a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    y[r] = alpha * dot(a.row(r), x) + beta * y[r];
  }
}

void gemv_transposed(double alpha, const Matrix& a, std::span<const double> x,
                     double beta, std::span<double> y) {
  COUPON_ASSERT(x.size() == a.rows());
  COUPON_ASSERT(y.size() == a.cols());
  if (beta != 1.0) {
    scal(beta, y);
  }
  for (std::size_t r = 0; r < a.rows(); ++r) {
    axpy(alpha * x[r], a.row(r), y);
  }
}

void gemv_parallel(ThreadPool& pool, double alpha, const Matrix& a,
                   std::span<const double> x, double beta,
                   std::span<double> y) {
  COUPON_ASSERT(x.size() == a.cols());
  COUPON_ASSERT(y.size() == a.rows());
  // Parallelize only when the total work justifies the fork/join cost.
  const std::size_t work = a.rows() * a.cols();
  if (work < (1u << 16) || pool.size() <= 1) {
    gemv(alpha, a, x, beta, y);
    return;
  }
  parallel_for_chunks(
      pool, 0, a.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          y[r] = alpha * dot(a.row(r), x) + beta * y[r];
        }
      },
      /*serial_threshold=*/1);
}

}  // namespace coupon::linalg
