#include "linalg/matrix.hpp"

namespace coupon::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    COUPON_ASSERT_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::select_rows(std::span<const std::size_t> row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (std::size_t i = 0; i < row_indices.size(); ++i) {
    COUPON_ASSERT(row_indices[i] < rows_);
    auto src = row(row_indices[i]);
    auto dst = out.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

}  // namespace coupon::linalg
