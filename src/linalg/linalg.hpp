#pragma once

/// \file linalg.hpp
/// Umbrella header for the linalg module.

#include "linalg/gemm.hpp"       // IWYU pragma: export
#include "linalg/gemv.hpp"       // IWYU pragma: export
#include "linalg/matrix.hpp"     // IWYU pragma: export
#include "linalg/solve.hpp"      // IWYU pragma: export
#include "linalg/vector_ops.hpp" // IWYU pragma: export
