#pragma once

/// \file gemv.hpp
/// BLAS-2 matrix-vector kernels, serial and thread-pool-parallel.
///
/// Logistic-regression batch gradients are two GEMVs per batch:
/// `s = X_B * w` followed by `g = X_B^T * c` (see opt/logistic.hpp), so
/// these kernels dominate worker compute time in the threaded runtime.

#include <span>

#include "linalg/matrix.hpp"
#include "util/thread_pool.hpp"

namespace coupon::linalg {

/// y = alpha * A * x + beta * y. Requires x.size() == A.cols(),
/// y.size() == A.rows().
void gemv(double alpha, const Matrix& a, std::span<const double> x,
          double beta, std::span<double> y);

/// y = alpha * A^T * x + beta * y. Requires x.size() == A.rows(),
/// y.size() == A.cols(). A is accessed row-wise (cache friendly for the
/// row-major layout): y accumulates alpha * x[r] * A.row(r).
void gemv_transposed(double alpha, const Matrix& a, std::span<const double> x,
                     double beta, std::span<double> y);

/// Parallel y = alpha * A * x + beta * y over row blocks on `pool`.
void gemv_parallel(ThreadPool& pool, double alpha, const Matrix& a,
                   std::span<const double> x, double beta,
                   std::span<double> y);

}  // namespace coupon::linalg
