#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace coupon::linalg {

double nrm2(std::span<const double> x) {
  // Scaled accumulation to avoid overflow/underflow for extreme inputs.
  double scale = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) {
      continue;
    }
    const double a = std::abs(v);
    if (scale < a) {
      ssq = 1.0 + ssq * (scale / a) * (scale / a);
      scale = a;
    } else {
      ssq += (a / scale) * (a / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double asum_signed(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) {
    s += v;
  }
  return s;
}

void add(std::span<const double> a, std::span<const double> b,
         std::span<double> out) {
  COUPON_ASSERT(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] + b[i];
  }
}

void sub(std::span<const double> a, std::span<const double> b,
         std::span<double> out) {
  COUPON_ASSERT(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  COUPON_ASSERT(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

double max_abs(std::span<const double> a) {
  double m = 0.0;
  for (double v : a) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

}  // namespace coupon::linalg
