#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace coupon::linalg {

double dot(std::span<const double> x, std::span<const double> y) {
  COUPON_ASSERT(x.size() == y.size());
  // Four-way unrolled accumulation: measurably faster than the naive loop
  // at -O2 and keeps rounding deterministic (fixed association order).
  const std::size_t n = x.size();
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) {
    s0 += x[i] * y[i];
  }
  return (s0 + s1) + (s2 + s3);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  COUPON_ASSERT(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += alpha * x[i];
  }
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) {
    v *= alpha;
  }
}

double nrm2(std::span<const double> x) {
  // Scaled accumulation to avoid overflow/underflow for extreme inputs.
  double scale = 0.0;
  double ssq = 1.0;
  for (double v : x) {
    if (v == 0.0) {
      continue;
    }
    const double a = std::abs(v);
    if (scale < a) {
      ssq = 1.0 + ssq * (scale / a) * (scale / a);
      scale = a;
    } else {
      ssq += (a / scale) * (a / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

double asum_signed(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) {
    s += v;
  }
  return s;
}

void copy(std::span<const double> x, std::span<double> y) {
  COUPON_ASSERT(x.size() == y.size());
  std::copy(x.begin(), x.end(), y.begin());
}

void fill(std::span<double> x, double value) {
  std::fill(x.begin(), x.end(), value);
}

void add(std::span<const double> a, std::span<const double> b,
         std::span<double> out) {
  COUPON_ASSERT(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] + b[i];
  }
}

void sub(std::span<const double> a, std::span<const double> b,
         std::span<double> out) {
  COUPON_ASSERT(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] - b[i];
  }
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  COUPON_ASSERT(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

double max_abs(std::span<const double> a) {
  double m = 0.0;
  for (double v : a) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

}  // namespace coupon::linalg
