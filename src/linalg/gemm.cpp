#include "linalg/gemm.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace coupon::linalg {

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c) {
  COUPON_ASSERT(a.cols() == b.rows());
  COUPON_ASSERT(c.rows() == a.rows() && c.cols() == b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();

  if (beta != 1.0) {
    for (double& v : c.data()) {
      v *= beta;
    }
  }

  // i-k-j loop order with 64x64x64 blocking: the inner j-loop streams one
  // row of B and one row of C, which is the cache-friendly order for
  // row-major storage.
  constexpr std::size_t kBlock = 64;
  for (std::size_t ii = 0; ii < m; ii += kBlock) {
    const std::size_t i_hi = std::min(ii + kBlock, m);
    for (std::size_t kk = 0; kk < k; kk += kBlock) {
      const std::size_t k_hi = std::min(kk + kBlock, k);
      for (std::size_t jj = 0; jj < n; jj += kBlock) {
        const std::size_t j_hi = std::min(jj + kBlock, n);
        for (std::size_t i = ii; i < i_hi; ++i) {
          for (std::size_t l = kk; l < k_hi; ++l) {
            const double aval = alpha * a(i, l);
            if (aval == 0.0) {
              continue;
            }
            for (std::size_t j = jj; j < j_hi; ++j) {
              c(i, j) += aval * b(l, j);
            }
          }
        }
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  gemm(1.0, a, b, 0.0, c);
  return c;
}

}  // namespace coupon::linalg
