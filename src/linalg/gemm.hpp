#pragma once

/// \file gemm.hpp
/// BLAS-3 matrix-matrix multiply (blocked, serial).
///
/// Used by the dense solvers' tests and the micro benchmarks; the training
/// path itself is GEMV-bound so GEMM stays deliberately simple.

#include "linalg/matrix.hpp"

namespace coupon::linalg {

/// C = alpha * A * B + beta * C. Requires A.cols() == B.rows(),
/// C.rows() == A.rows(), C.cols() == B.cols().
void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c);

/// Convenience: returns A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

}  // namespace coupon::linalg
