#pragma once

/// \file solve.hpp
/// Dense direct solvers: partial-pivot LU, Householder QR least squares,
/// and Cholesky.
///
/// The cyclic-repetition gradient-coding decoder (core/cyclic_repetition)
/// recovers the all-ones combination by solving the overdetermined system
/// `B_W^T a = 1` in the least-squares sense; `lstsq` below is that path.

#include <optional>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace coupon::linalg {

/// LU factorization with partial pivoting: P*A = L*U packed in-place.
/// `piv[k]` records the row swapped into position k at step k.
struct LuFactors {
  Matrix lu;                   ///< L (unit lower, below diag) and U packed
  std::vector<std::size_t> piv;
  bool singular = false;       ///< true if a zero pivot was hit
};

/// Factors a square matrix. Never throws on singularity; check `.singular`.
LuFactors lu_factor(Matrix a);

/// Solves A x = b given factors. Returns nullopt if factors are singular.
std::optional<std::vector<double>> lu_solve(const LuFactors& factors,
                                            std::span<const double> b);

/// Convenience: solve A x = b for square A. Returns nullopt if singular.
std::optional<std::vector<double>> solve(const Matrix& a,
                                         std::span<const double> b);

/// Householder QR of an m x n matrix with m >= n: A = Q * R.
/// Householder vectors are stored below the diagonal of `qr`, the scalar
/// factors in `tau`, and R on/above the diagonal.
struct QrFactors {
  Matrix qr;
  std::vector<double> tau;
  bool rank_deficient = false;  ///< true if an |R_kk| underflowed tolerance
};

/// Factors A (rows >= cols required).
QrFactors qr_factor(Matrix a);

/// Least-squares solve min_x ||A x - b||_2 via the QR factors.
/// Returns nullopt when R is numerically rank deficient.
std::optional<std::vector<double>> qr_solve(const QrFactors& factors,
                                            std::span<const double> b);

/// Convenience: least-squares solution of A x = b (rows >= cols).
std::optional<std::vector<double>> lstsq(const Matrix& a,
                                         std::span<const double> b);

/// Scratch for `lstsq_into`: factor storage and solve temporaries reused
/// across calls, so a warm same-shape solve performs zero allocations.
struct LstsqWorkspace {
  Matrix qr;              ///< factor storage (copy of A, factored in place)
  std::vector<double> tau;
  std::vector<double> v;  ///< Householder reflector scratch
  std::vector<double> y;  ///< Q^T b scratch
};

/// Workspace-reusing least squares: solves min_x ||A x - b||_2 into `x`
/// (size A.cols()), producing bits identical to `lstsq` (same
/// factorization and substitution arithmetic, in the same order). Returns
/// false when A is numerically rank deficient.
bool lstsq_into(const Matrix& a, std::span<const double> b,
                std::span<double> x, LstsqWorkspace& ws);

/// Cholesky factorization A = L L^T of a symmetric positive-definite
/// matrix (lower triangle returned). Returns nullopt if not SPD.
std::optional<Matrix> cholesky(const Matrix& a);

/// Solves A x = b for SPD A via Cholesky. Returns nullopt if not SPD.
std::optional<std::vector<double>> cholesky_solve(const Matrix& a,
                                                  std::span<const double> b);

/// ||A x - b||_2 — residual helper shared by tests and the CR decoder.
double residual_norm(const Matrix& a, std::span<const double> x,
                     std::span<const double> b);

}  // namespace coupon::linalg
