#include "linalg/solve.hpp"

#include <cmath>

#include "linalg/gemv.hpp"
#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::linalg {

namespace {
constexpr double kPivotTol = 1e-12;
}

LuFactors lu_factor(Matrix a) {
  COUPON_ASSERT(a.rows() == a.cols());
  const std::size_t n = a.rows();
  LuFactors f{std::move(a), std::vector<std::size_t>(n), false};
  Matrix& m = f.lu;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t p = k;
    double best = std::abs(m(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(m(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    f.piv[k] = p;
    if (best < kPivotTol) {
      f.singular = true;
      continue;
    }
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(m(k, c), m(p, c));
      }
    }
    const double pivot = m(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double l = m(i, k) / pivot;
      m(i, k) = l;
      if (l == 0.0) {
        continue;
      }
      for (std::size_t c = k + 1; c < n; ++c) {
        m(i, c) -= l * m(k, c);
      }
    }
  }
  return f;
}

std::optional<std::vector<double>> lu_solve(const LuFactors& factors,
                                            std::span<const double> b) {
  if (factors.singular) {
    return std::nullopt;
  }
  const Matrix& m = factors.lu;
  const std::size_t n = m.rows();
  COUPON_ASSERT(b.size() == n);
  std::vector<double> x(b.begin(), b.end());
  // Apply the recorded row swaps, then forward/back substitution.
  for (std::size_t k = 0; k < n; ++k) {
    if (factors.piv[k] != k) {
      std::swap(x[k], x[factors.piv[k]]);
    }
  }
  for (std::size_t i = 1; i < n; ++i) {
    double s = x[i];
    for (std::size_t j = 0; j < i; ++j) {
      s -= m(i, j) * x[j];
    }
    x[i] = s;
  }
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      s -= m(i, j) * x[j];
    }
    x[i] = s / m(i, i);
  }
  return x;
}

std::optional<std::vector<double>> solve(const Matrix& a,
                                         std::span<const double> b) {
  return lu_solve(lu_factor(a), b);
}

namespace {

/// Shared core of `qr_factor` and `lstsq_into`: factors `qr` in place
/// using `v` as reflector scratch. Returns true when rank deficient. The
/// loop bodies are the arithmetic `qr_factor` has always used, so both
/// entry points produce bit-identical factors.
bool qr_factor_inplace(Matrix& qr, std::vector<double>& tau,
                       std::vector<double>& v) {
  COUPON_ASSERT_MSG(qr.rows() >= qr.cols(),
                    "qr_factor requires rows >= cols, got "
                        << qr.rows() << "x" << qr.cols());
  const std::size_t m = qr.rows();
  const std::size_t n = qr.cols();
  tau.assign(n, 0.0);
  v.resize(m);
  bool rank_deficient = false;

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector annihilating column k below row k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      norm = std::hypot(norm, qr(i, k));
    }
    if (norm < kPivotTol) {
      rank_deficient = true;
      tau[k] = 0.0;
      continue;
    }
    const double alpha = qr(k, k) >= 0.0 ? -norm : norm;
    const double vk = qr(k, k) - alpha;
    v[k] = vk;
    for (std::size_t i = k + 1; i < m; ++i) {
      v[i] = qr(i, k);
    }
    const double vnorm2 = vk * vk + [&] {
      double s = 0.0;
      for (std::size_t i = k + 1; i < m; ++i) {
        s += v[i] * v[i];
      }
      return s;
    }();
    if (vnorm2 < kPivotTol * kPivotTol) {
      rank_deficient = true;
      tau[k] = 0.0;
      continue;
    }
    const double t = 2.0 / vnorm2;
    tau[k] = t;

    // Apply H = I - tau v v^T to the trailing block columns [k, n).
    for (std::size_t c = k; c < n; ++c) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) {
        s += v[i] * qr(i, c);
      }
      s *= t;
      for (std::size_t i = k; i < m; ++i) {
        qr(i, c) -= s * v[i];
      }
    }
    // R_kk was just produced in place; store v below the diagonal scaled
    // so the leading entry is implicit (standard compact storage).
    COUPON_ASSERT(std::abs(qr(k, k)) > 0.0);
    for (std::size_t i = k + 1; i < m; ++i) {
      qr(i, k) = v[i] / vk;
    }
    // Keep tau in the convention where the reflector is
    // H = I - tau_eff u u^T with u = [1, qr(k+1..m, k)]; tau_eff = tau*vk^2.
    tau[k] = t * vk * vk;
  }
  return rank_deficient;
}

/// Shared core of `qr_solve` and `lstsq_into`: applies the reflectors to
/// `b` (via scratch `y`) and back-substitutes into `x`. Returns false on a
/// numerically-singular R diagonal.
bool qr_solve_inplace(const Matrix& qr, std::span<const double> tau,
                      std::span<const double> b, std::vector<double>& y,
                      std::span<double> x) {
  const std::size_t m = qr.rows();
  const std::size_t n = qr.cols();
  COUPON_ASSERT(b.size() == m);
  COUPON_ASSERT(x.size() == n);
  y.assign(b.begin(), b.end());

  // y = Q^T b: apply reflectors in order.
  for (std::size_t k = 0; k < n; ++k) {
    const double t = tau[k];
    if (t == 0.0) {
      continue;
    }
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) {
      s += qr(i, k) * y[i];
    }
    s *= t;
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) {
      y[i] -= s * qr(i, k);
    }
  }
  // Back substitution on R x = y[0..n).
  for (std::size_t kk = n; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    double s = y[k];
    for (std::size_t j = k + 1; j < n; ++j) {
      s -= qr(k, j) * x[j];
    }
    const double rkk = qr(k, k);
    if (std::abs(rkk) < kPivotTol) {
      return false;
    }
    x[k] = s / rkk;
  }
  return true;
}

}  // namespace

QrFactors qr_factor(Matrix a) {
  QrFactors f{std::move(a), {}, false};
  std::vector<double> v;
  f.rank_deficient = qr_factor_inplace(f.qr, f.tau, v);
  return f;
}

std::optional<std::vector<double>> qr_solve(const QrFactors& factors,
                                            std::span<const double> b) {
  if (factors.rank_deficient) {
    return std::nullopt;
  }
  std::vector<double> y;
  std::vector<double> x(factors.qr.cols());
  if (!qr_solve_inplace(factors.qr, factors.tau, b, y, x)) {
    return std::nullopt;
  }
  return x;
}

std::optional<std::vector<double>> lstsq(const Matrix& a,
                                         std::span<const double> b) {
  return qr_solve(qr_factor(a), b);
}

bool lstsq_into(const Matrix& a, std::span<const double> b,
                std::span<double> x, LstsqWorkspace& ws) {
  ws.qr = a;  // vector copy-assignment reuses ws.qr's storage
  if (qr_factor_inplace(ws.qr, ws.tau, ws.v)) {
    return false;
  }
  return qr_solve_inplace(ws.qr, ws.tau, b, ws.y, x);
}

std::optional<Matrix> cholesky(const Matrix& a) {
  COUPON_ASSERT(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        s -= l(i, k) * l(j, k);
      }
      if (i == j) {
        if (s <= 0.0) {
          return std::nullopt;  // not positive definite
        }
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

std::optional<std::vector<double>> cholesky_solve(const Matrix& a,
                                                  std::span<const double> b) {
  auto lopt = cholesky(a);
  if (!lopt) {
    return std::nullopt;
  }
  const Matrix& l = *lopt;
  const std::size_t n = l.rows();
  COUPON_ASSERT(b.size() == n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t j = 0; j < i; ++j) {
      s -= l(i, j) * y[j];
    }
    y[i] = s / l(i, i);
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = y[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      s -= l(j, i) * x[j];
    }
    x[i] = s / l(i, i);
  }
  return x;
}

double residual_norm(const Matrix& a, std::span<const double> x,
                     std::span<const double> b) {
  COUPON_ASSERT(x.size() == a.cols() && b.size() == a.rows());
  std::vector<double> r(b.begin(), b.end());
  gemv(1.0, a, x, -1.0, std::span<double>(r));
  // r now holds A x - b (gemv computed 1*A*x + (-1)*b elementwise into r).
  return nrm2(r);
}

}  // namespace coupon::linalg
