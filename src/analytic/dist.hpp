#pragma once

/// \file dist.hpp
/// Exact per-worker compute-time distributions for the analytic oracle
/// (DESIGN.md §10).
///
/// The oracle's order-statistic engine (order_stats.hpp) only needs a
/// CDF, a support minimum, and a high-quantile bracket from the
/// compute-time law, so this type covers every latency model the
/// simulator can describe in closed form:
///
///   * shifted_exp (Eq. 15)                — one shifted-exp component;
///   * bimodal "bursty" slowdowns          — a two-component mixture
///     (scaling a ShiftedExp(shift, rate) by f gives
///     ShiftedExp(f*shift, rate/f));
///   * markov persistent stragglers        — the *same* two-component
///     mixture with the chain's stationary slow weight
///     pi = p_enter/(p_enter+p_exit): every iteration's marginal state
///     is stationary because `MarkovStragglerModel` initializes from the
///     stationary law, so per-iteration expectations are exact (the
///     cross-iteration correlation only affects run-total variance);
///   * pareto / weibull                    — the heavy- and
///     stretched-tail laws, via stats::Pareto / stats::Weibull.
///
/// Everything here is deterministic: no RNG is linked anywhere under
/// src/analytic/ — the subsystem's contract is that two identical calls
/// return bitwise-identical doubles.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "simulate/latency_model.hpp"
#include "stats/distributions.hpp"

namespace coupon::analytic {

/// One shifted-exponential mixture component.
struct ShiftedExpComponent {
  double weight = 1.0;  ///< mixture weight, in (0, 1]
  double shift = 0.0;   ///< deterministic floor (a * load * factor)
  double rate = 1.0;    ///< exponential tail rate (mu / (load * factor))
};

/// A worker's compute-time distribution at a fixed load, in one of the
/// closed forms the oracle can evaluate exactly.
class ComputeDist {
 public:
  /// Mixture of shifted exponentials (1 component = the paper's Eq. 15).
  static ComputeDist shifted_exp_mixture(
      std::vector<ShiftedExpComponent> components);
  static ComputeDist pareto(double scale, double shape);
  static ComputeDist weibull(double shape, double scale);

  /// Reduces a latency law at `load` units to a ComputeDist; nullopt for
  /// laws without a closed form (opaque/trace, heterogeneous overrides),
  /// with `reason` explaining why.
  static std::optional<ComputeDist> from_law(const simulate::LatencyLaw& law,
                                             double load,
                                             std::string* reason);

  double cdf(double x) const;

  /// Infimum of the support (the smallest value a draw can take).
  double support_min() const;

  /// A value x with 1 - cdf(x) <= `epsilon`, for quadrature/bisection
  /// brackets. Deterministic (closed-form per family).
  double upper_bracket(double epsilon) const;

  /// Exact mean of one draw (all supported families have one for the
  /// parameters the scenarios use; Pareto requires shape > 1 — enforced
  /// by from_law).
  double mean() const;

  /// True for a single-component shifted exponential — the family with
  /// the O(R*G) Lindley fast path (order_stats.hpp).
  bool is_pure_shifted_exp() const;

  /// Components of a shifted-exp mixture (empty for pareto/weibull).
  const std::vector<ShiftedExpComponent>& components() const {
    return components_;
  }

 private:
  enum class Kind { kShiftedExpMixture, kPareto, kWeibull };

  ComputeDist() = default;

  Kind kind_ = Kind::kShiftedExpMixture;
  std::vector<ShiftedExpComponent> components_;  // shifted-exp mixture
  stats::Pareto pareto_{};
  stats::Weibull weibull_{};
};

}  // namespace coupon::analytic
