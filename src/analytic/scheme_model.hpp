#pragma once

/// \file scheme_model.hpp
/// Per-scheme analytic runtime models (DESIGN.md §10).
///
/// A `SchemeRuntimeModel` reduces one *realized* scheme instance (its
/// drawn placement included) to the coverage profile A[j] of
/// coverage.hpp plus the common per-message size. That reduction is the
/// only scheme-specific knowledge the oracle needs: everything
/// downstream (expected runtimes, quantiles, failure probabilities under
/// drops) is scheme-agnostic order-statistics work in predictor.cpp.
///
/// The reduction is exact only when workers are exchangeable in the
/// timing process — equal compute loads and equal message sizes — so
/// each model validates the realized structure and reports an
/// explanatory reason instead of a profile when it does not hold
/// (e.g. uncoded with n not dividing m, or a simple_random instance too
/// large for exact 2^n enumeration).
///
/// Models are looked up by the scheme's registry name through
/// `AnalyticModelRegistry`, mirroring `core::SchemeRegistry`: adding an
/// analytic model for a new scheme is one `add()` call, no switch
/// statements. All five built-in schemes ship with models.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/scheme.hpp"

namespace coupon::analytic {

/// The analytic reduction of one realized scheme instance.
struct CoverageProfile {
  /// A[j] = P(a uniform j-subset of workers makes the collector ready),
  /// j = 0..n (see coverage.hpp for the derivation).
  std::vector<double> table;
  /// Per-worker message size in gradient units (equal across workers —
  /// a precondition of the reduction, validated by the model).
  double message_units = 1.0;
};

/// Either a profile or a human-readable reason why the scheme instance
/// has no exact reduction.
struct SchemeModelResult {
  std::optional<CoverageProfile> profile;
  std::string reason;  ///< set iff !profile
};

/// Analytic model for one scheme family (keyed by registry name).
class SchemeRuntimeModel {
 public:
  virtual ~SchemeRuntimeModel() = default;

  /// The `core::SchemeRegistry` name this model covers ("bcc", ...).
  virtual std::string_view scheme_name() const = 0;

  /// One-line description of how the scheme reduces (for --list).
  virtual std::string_view description() const = 0;

  /// Reduces the realized placement of `scheme` to a coverage profile,
  /// or explains why it cannot.
  virtual SchemeModelResult coverage_profile(
      const core::Scheme& scheme) const = 0;
};

/// Process-wide scheme-name -> analytic-model registry. The five
/// built-in models are registered on first access.
class AnalyticModelRegistry {
 public:
  static AnalyticModelRegistry& instance();

  /// Registers `model`; throws std::invalid_argument on a name collision
  /// or a null model.
  void add(std::unique_ptr<SchemeRuntimeModel> model);

  /// nullptr when the scheme has no analytic model.
  const SchemeRuntimeModel* find(std::string_view scheme_name) const;

  /// Covered scheme names in registration order.
  std::vector<std::string> names() const;

 private:
  AnalyticModelRegistry();  // registers the built-ins

  std::vector<std::unique_ptr<SchemeRuntimeModel>> models_;
};

}  // namespace coupon::analytic
