#include "analytic/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "analytic/dist.hpp"
#include "analytic/order_stats.hpp"
#include "analytic/scheme_model.hpp"
#include "util/assert.hpp"

namespace coupon::analytic {

namespace {

/// Slice weights below this are dropped from the exact expansions; the
/// truncated mass (and with it the absolute error on E[T], E[K], and the
/// failure probability) is bounded by n times this.
constexpr double kSliceFloor = 1e-14;
/// Ready-at-k weights below this are skipped in per-k quadrature and CDF
/// sums (same error argument).
constexpr double kReadyFloor = 1e-12;

/// Binomial(n, p) pmf by the ratio recurrence from the heavier end (see
/// order_stats.cpp for the underflow argument).
std::vector<double> binomial_weights(std::size_t n, double p) {
  std::vector<double> pmf(n + 1, 0.0);
  if (p <= 0.0) {
    pmf[0] = 1.0;
    return pmf;
  }
  if (p >= 1.0) {
    pmf[n] = 1.0;
    return pmf;
  }
  if (p <= 0.5) {
    double term = std::pow(1.0 - p, static_cast<double>(n));
    for (std::size_t d = 0; d <= n; ++d) {
      pmf[d] = term;
      term *= (p / (1.0 - p)) * static_cast<double>(n - d) /
              static_cast<double>(d + 1);
    }
  } else {
    double term = std::pow(p, static_cast<double>(n));
    for (std::size_t d = n;; --d) {
      pmf[d] = term;
      if (d == 0) {
        break;
      }
      term *= ((1.0 - p) / p) * static_cast<double>(d) /
              static_cast<double>(n - d + 1);
    }
  }
  return pmf;
}

/// One drop-count slice: R workers present, and the conditional law of
/// the arrival index at which the iteration stops.
struct Slice {
  double weight = 0.0;        ///< P(R present)
  std::size_t present = 0;    ///< R
  std::vector<double> ready;  ///< ready[k-1] = P(stop at arrival k | R)
  double fail = 0.0;          ///< P(coverage failure | R) = 1 - A[R]
};

/// Expands the coverage profile against the drop law. Slices with
/// R == 0 are folded into `zero_weight` (T = 0, K = 0, failure).
std::vector<Slice> make_slices(const std::vector<double>& a, std::size_t n,
                               double drop_probability,
                               double* zero_weight) {
  const std::vector<double> weights =
      binomial_weights(n, 1.0 - drop_probability);
  std::vector<Slice> slices;
  *zero_weight = weights[0];
  for (std::size_t r = 1; r <= n; ++r) {
    if (weights[r] < kSliceFloor) {
      continue;
    }
    Slice slice;
    slice.weight = weights[r];
    slice.present = r;
    slice.ready.resize(r, 0.0);
    for (std::size_t k = 1; k < r; ++k) {
      slice.ready[k - 1] = std::max(0.0, a[k] - a[k - 1]);
    }
    slice.ready[r - 1] = std::max(0.0, 1.0 - a[r - 1]);
    slice.fail = std::max(0.0, 1.0 - a[r]);
    slices.push_back(std::move(slice));
  }
  return slices;
}

/// E[T | R] = sum_k P(stop at k) E[c_k | R present].
double slice_mean(const Slice& slice, const ComputeDist& dist, double service,
                  double broadcast) {
  if (dist.is_pure_shifted_exp()) {
    const ShiftedExpComponent& c = dist.components().front();
    const std::vector<double> means = expected_completions_shifted_exp(
        c.shift, c.rate, slice.present, service, broadcast);
    double mean = 0.0;
    for (std::size_t k = 1; k <= slice.present; ++k) {
      mean += slice.ready[k - 1] * means[k - 1];
    }
    return mean;
  }
  double mean = 0.0;
  for (std::size_t k = 1; k <= slice.present; ++k) {
    if (slice.ready[k - 1] < kReadyFloor) {
      continue;
    }
    mean += slice.ready[k - 1] *
            completion_mean_quadrature(dist, slice.present, k, service,
                                       broadcast);
  }
  return mean;
}

/// P(T <= x) over the retained slices (plus the R = 0 atom at zero).
double mixture_cdf(const std::vector<Slice>& slices, double zero_weight,
                   const ComputeDist& dist, double service, double broadcast,
                   double weight_floor, double x) {
  double p = x >= 0.0 ? zero_weight : 0.0;
  for (const Slice& slice : slices) {
    if (slice.weight < weight_floor) {
      continue;
    }
    double inner = 0.0;
    for (std::size_t k = 1; k <= slice.present; ++k) {
      if (slice.ready[k - 1] < kReadyFloor) {
        continue;
      }
      inner += slice.ready[k - 1] *
               completion_cdf(dist, slice.present, k, service, broadcast, x);
    }
    p += slice.weight * inner;
  }
  return p;
}

double mixture_quantile(const std::vector<Slice>& slices, double zero_weight,
                        const ComputeDist& dist, double service,
                        double broadcast, double weight_floor,
                        std::size_t num_workers, double q) {
  if (zero_weight >= q) {
    return 0.0;
  }
  double lo = 0.0;
  double hi = broadcast +
              static_cast<double>(num_workers) * service +
              dist.upper_bracket(1e-12);
  while ((hi - lo) > 1e-10 * std::max(1.0, hi)) {
    const double mid = 0.5 * (lo + hi);
    if (mixture_cdf(slices, zero_weight, dist, service, broadcast,
                    weight_floor, mid) >= q) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

void fill_quantiles(Prediction* prediction, const std::vector<Slice>& slices,
                    double zero_weight, const ComputeDist& dist,
                    double service, double broadcast, double weight_floor,
                    std::size_t num_workers) {
  prediction->p50 = mixture_quantile(slices, zero_weight, dist, service,
                                     broadcast, weight_floor, num_workers,
                                     0.50);
  prediction->p95 = mixture_quantile(slices, zero_weight, dist, service,
                                     broadcast, weight_floor, num_workers,
                                     0.95);
  prediction->p99 = mixture_quantile(slices, zero_weight, dist, service,
                                     broadcast, weight_floor, num_workers,
                                     0.99);
  prediction->has_quantiles = true;
}

/// Everything needed to evaluate one (scheme, cluster) pair; split from
/// `predict` so `Predictor::rank` can defer quantile work.
struct Evaluation {
  Prediction prediction;
  std::vector<Slice> slices;
  double zero_weight = 0.0;
  ComputeDist dist = ComputeDist::shifted_exp_mixture({{1.0, 0.0, 1.0}});
  double service = 0.0;
  double broadcast = 0.0;
};

std::optional<Evaluation> evaluate(const core::Scheme& scheme,
                                   const simulate::ClusterConfig& cluster,
                                   std::string* reason) {
  const auto set_reason = [&](std::string why) {
    if (reason != nullptr) {
      *reason = std::move(why);
    }
  };
  const SchemeRuntimeModel* model =
      AnalyticModelRegistry::instance().find(scheme.registry_name());
  if (model == nullptr) {
    set_reason("no analytic model registered for scheme '" +
               std::string(scheme.registry_name()) + "'");
    return std::nullopt;
  }
  SchemeModelResult reduced = model->coverage_profile(scheme);
  if (!reduced.profile.has_value()) {
    set_reason(std::move(reduced.reason));
    return std::nullopt;
  }

  const std::size_t n = scheme.num_workers();
  const simulate::LatencyLaw law =
      simulate::make_latency_model(cluster, n)->law();
  const std::size_t load = scheme.placement().worker(0).size();
  std::string law_reason;
  std::optional<ComputeDist> dist = ComputeDist::from_law(
      law, static_cast<double>(load), &law_reason);
  if (!dist.has_value()) {
    set_reason(std::move(law_reason));
    return std::nullopt;
  }

  Evaluation eval;
  eval.dist = *dist;
  eval.service =
      reduced.profile->message_units * cluster.unit_transfer_seconds;
  eval.broadcast = cluster.broadcast_seconds;
  eval.slices = make_slices(reduced.profile->table, n,
                            cluster.drop_probability, &eval.zero_weight);

  Prediction& p = eval.prediction;
  p.scheme = std::string(scheme.registry_name());
  p.load = load;
  p.message_units = reduced.profile->message_units;
  p.failure_probability = eval.zero_weight;
  for (const Slice& slice : eval.slices) {
    p.failure_probability += slice.weight * slice.fail;
    double expected_stop = 0.0;
    for (std::size_t k = 1; k <= slice.present; ++k) {
      expected_stop += slice.ready[k - 1] * static_cast<double>(k);
    }
    p.expected_workers += slice.weight * expected_stop;
    p.expected_time +=
        slice.weight *
        slice_mean(slice, eval.dist, eval.service, eval.broadcast);
  }
  p.expected_units = p.expected_workers * p.message_units;
  return eval;
}

}  // namespace

std::optional<Prediction> predict(const core::Scheme& scheme,
                                  const simulate::ClusterConfig& cluster,
                                  const PredictOptions& options,
                                  std::string* reason) {
  std::optional<Evaluation> eval = evaluate(scheme, cluster, reason);
  if (!eval.has_value()) {
    return std::nullopt;
  }
  if (options.quantiles) {
    fill_quantiles(&eval->prediction, eval->slices, eval->zero_weight,
                   eval->dist, eval->service, eval->broadcast,
                   options.quantile_weight_floor, scheme.num_workers());
  }
  return eval->prediction;
}

std::vector<Prediction> Predictor::rank(
    const std::vector<CandidateSpec>& candidates,
    const PredictOptions& options, std::size_t quantile_top,
    std::vector<UnsupportedCandidate>* unsupported) const {
  COUPON_ASSERT(factory_ != nullptr);
  struct Entry {
    Evaluation eval;
    std::size_t num_workers = 0;
    std::size_t order = 0;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const CandidateSpec& spec = candidates[i];
    std::string reason;
    std::unique_ptr<core::Scheme> scheme = factory_(spec, &reason);
    if (scheme == nullptr) {
      if (unsupported != nullptr) {
        if (reason.empty()) {
          reason = "scheme factory declined the candidate";
        }
        unsupported->push_back({spec, std::move(reason)});
      }
      continue;
    }
    std::optional<Evaluation> eval = evaluate(*scheme, cluster_, &reason);
    if (!eval.has_value()) {
      if (unsupported != nullptr) {
        unsupported->push_back({spec, std::move(reason)});
      }
      continue;
    }
    // Candidates can collapse to the same realized cell (uncoded's load
    // is m/n whatever r was asked for): keep the first occurrence only.
    const bool duplicate = std::any_of(
        entries.begin(), entries.end(), [&](const Entry& entry) {
          return entry.eval.prediction.scheme == eval->prediction.scheme &&
                 entry.eval.prediction.load == eval->prediction.load;
        });
    if (duplicate) {
      continue;
    }
    entries.push_back({std::move(*eval), scheme->num_workers(), i});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.eval.prediction.expected_time !=
                         b.eval.prediction.expected_time) {
                       return a.eval.prediction.expected_time <
                              b.eval.prediction.expected_time;
                     }
                     return a.order < b.order;
                   });
  std::vector<Prediction> ranked;
  ranked.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    Entry& entry = entries[i];
    if (options.quantiles && (quantile_top == 0 || i < quantile_top)) {
      fill_quantiles(&entry.eval.prediction, entry.eval.slices,
                     entry.eval.zero_weight, entry.eval.dist,
                     entry.eval.service, entry.eval.broadcast,
                     options.quantile_weight_floor, entry.num_workers);
    }
    ranked.push_back(std::move(entry.eval.prediction));
  }
  return ranked;
}

}  // namespace coupon::analytic
