#pragma once

/// \file coverage.hpp
/// Exact coverage profiles: the combinatorial half of the analytic
/// oracle (DESIGN.md §10).
///
/// With iid compute times and equal per-worker loads, the identity order
/// in which workers' messages arrive is a uniform random permutation,
/// independent of the sorted arrival times; and conditional on any set
/// of present (non-dropped) workers, the first k arrivals form a uniform
/// k-subset of all n workers. Every scheme's "when is the master ready?"
/// question therefore reduces to one table
///
///     A[j] = P(a uniform j-subset of the n workers makes the
///              scheme's collector ready),       j = 0..n,
///
/// the *coverage profile* of the realized placement. A is nondecreasing,
/// and P(ready exactly at the k-th arrival | R present) = A[k] - A[k-1]
/// for k < R, with the remaining 1 - A[R-1] mass landing on the full
/// drain at k = R (success at R or coverage failure). These functions
/// compute A exactly per combinatorial structure:
///
///   * threshold schemes (uncoded: k = n; CR: k = n-r+1) — indicator;
///   * partition coverage (FR blocks, BCC realized batch choices) — a
///     subset-counting DP over the group-size multiset;
///   * arbitrary unit sets (simple_random) — exact enumeration of all
///     2^n worker subsets via unit bitmasks (n <= 24, m <= 64).
///
/// Counts are carried in doubles (exact up to the usual 1e-15 relative
/// rounding; C(100, 50) ~ 1e29 is far below the double range).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace coupon::analytic {

/// A[j] = [j >= threshold]: ready as soon as `threshold` of the `n`
/// workers are heard (uncoded: threshold = n, CR: threshold = n-r+1).
std::vector<double> coverage_threshold(std::size_t n, std::size_t threshold);

/// Partition coverage: each worker belongs to exactly one group;
/// `group_sizes` lists the number of workers per group (must sum to n).
/// Ready iff every group has at least one member in the subset. A group
/// of size 0 (a BCC batch no worker picked) makes coverage impossible:
/// A[j] = 0 for all j — the realized placement fails every iteration.
std::vector<double> coverage_partition(std::size_t n,
                                       const std::vector<std::size_t>&
                                           group_sizes);

/// General unit-set coverage: worker i covers the units in bitmask
/// `unit_masks[i]`; ready iff the subset's union covers all `num_units`
/// units. Exact 2^n enumeration — requires n <= 24 and num_units <= 64
/// (callers gate and report larger instances as unsupported).
std::vector<double> coverage_union_masks(
    const std::vector<std::uint64_t>& unit_masks, std::size_t num_units);

/// Binomial coefficient table row: C(n, 0..n) in doubles.
std::vector<double> binomial_row(std::size_t n);

}  // namespace coupon::analytic
