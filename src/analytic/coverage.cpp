#include "analytic/coverage.hpp"

#include <bit>
#include <numeric>

#include "util/assert.hpp"

namespace coupon::analytic {

std::vector<double> binomial_row(std::size_t n) {
  std::vector<double> row(n + 1, 0.0);
  row[0] = 1.0;
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = i; j >= 1; --j) {
      row[j] += row[j - 1];
    }
  }
  return row;
}

std::vector<double> coverage_threshold(std::size_t n, std::size_t threshold) {
  COUPON_ASSERT(threshold >= 1 && threshold <= n);
  std::vector<double> a(n + 1, 0.0);
  for (std::size_t j = threshold; j <= n; ++j) {
    a[j] = 1.0;
  }
  return a;
}

std::vector<double> coverage_partition(
    std::size_t n, const std::vector<std::size_t>& group_sizes) {
  COUPON_ASSERT(!group_sizes.empty());
  COUPON_ASSERT(std::accumulate(group_sizes.begin(), group_sizes.end(),
                                std::size_t{0}) == n);
  std::vector<double> a(n + 1, 0.0);
  for (std::size_t size : group_sizes) {
    if (size == 0) {
      return a;  // an uncovered group: no subset is ever ready
    }
  }

  // covering[j] = number of j-subsets of the n workers hitting every
  // group at least once: the coefficient of x^j in
  // prod_groups (sum_{i=1..c_b} C(c_b, i) x^i).
  std::vector<double> covering(n + 1, 0.0);
  covering[0] = 1.0;
  std::size_t degree = 0;  // highest populated coefficient so far
  for (std::size_t size : group_sizes) {
    const std::vector<double> choose = binomial_row(size);
    std::vector<double> next(n + 1, 0.0);
    for (std::size_t j = 0; j <= degree; ++j) {
      if (covering[j] == 0.0) {
        continue;
      }
      for (std::size_t i = 1; i <= size && j + i <= n; ++i) {
        next[j + i] += covering[j] * choose[i];
      }
    }
    covering = std::move(next);
    degree += size;
  }

  const std::vector<double> all = binomial_row(n);
  for (std::size_t j = 1; j <= n; ++j) {
    a[j] = covering[j] / all[j];
  }
  return a;
}

std::vector<double> coverage_union_masks(
    const std::vector<std::uint64_t>& unit_masks, std::size_t num_units) {
  const std::size_t n = unit_masks.size();
  COUPON_ASSERT_MSG(n >= 1 && n <= 24,
                    "2^n subset enumeration needs n <= 24, got n=" << n);
  COUPON_ASSERT_MSG(num_units >= 1 && num_units <= 64,
                    "unit bitmasks need m <= 64, got m=" << num_units);
  const std::uint64_t full = num_units == 64
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << num_units) - 1;

  // union_of[s] built incrementally: union over the workers in subset s.
  const std::size_t subsets = std::size_t{1} << n;
  std::vector<std::uint64_t> union_of(subsets, 0);
  std::vector<double> covering(n + 1, 0.0);
  covering[0] = full == 0 ? 1.0 : 0.0;
  for (std::size_t s = 1; s < subsets; ++s) {
    const std::size_t low = std::countr_zero(s);
    union_of[s] = union_of[s & (s - 1)] | unit_masks[low];
    if (union_of[s] == full) {
      covering[static_cast<std::size_t>(std::popcount(s))] += 1.0;
    }
  }

  const std::vector<double> all = binomial_row(n);
  std::vector<double> a(n + 1, 0.0);
  for (std::size_t j = 0; j <= n; ++j) {
    a[j] = covering[j] / all[j];
  }
  return a;
}

}  // namespace coupon::analytic
