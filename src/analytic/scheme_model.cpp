#include "analytic/scheme_model.hpp"

#include <sstream>
#include <stdexcept>

#include "analytic/coverage.hpp"
#include "core/bcc.hpp"
#include "core/cyclic_repetition.hpp"
#include "core/fractional_repetition.hpp"
#include "core/gc_cyclic.hpp"
#include "core/gc_nested.hpp"
#include "core/sgc.hpp"
#include "core/simple_random.hpp"
#include "core/uncoded.hpp"

namespace coupon::analytic {

namespace {

SchemeModelResult fail(std::string reason) {
  return SchemeModelResult{std::nullopt, std::move(reason)};
}

SchemeModelResult ok(std::vector<double> table, double message_units) {
  return SchemeModelResult{CoverageProfile{std::move(table), message_units},
                           {}};
}

/// The exchangeability preconditions shared by every reduction: all
/// workers compute the same number of units and ship the same-size
/// message. Returns the common message size, or a reason.
std::optional<std::string> check_exchangeable(const core::Scheme& scheme,
                                              double* message_units) {
  const auto& placement = scheme.placement();
  const std::size_t n = scheme.num_workers();
  const std::size_t load0 = placement.worker(0).size();
  for (std::size_t w = 1; w < n; ++w) {
    if (placement.worker(w).size() != load0) {
      std::ostringstream out;
      out << "unequal per-worker loads (|G_0|=" << load0 << ", |G_" << w
          << "|=" << placement.worker(w).size()
          << "): compute times are not iid, so the order-statistic "
             "reduction does not apply";
      return out.str();
    }
  }
  const double units0 = scheme.message_units(0);
  for (std::size_t w = 1; w < n; ++w) {
    if (scheme.message_units(w) != units0) {
      return "unequal per-worker message sizes: the serialized ingress "
             "no longer has one common service time";
    }
  }
  *message_units = units0;
  return std::nullopt;
}

template <typename ConcreteScheme>
const ConcreteScheme* cast_or_reason(const core::Scheme& scheme,
                                     std::string_view expected,
                                     std::string* reason) {
  const auto* concrete = dynamic_cast<const ConcreteScheme*>(&scheme);
  if (concrete == nullptr) {
    std::ostringstream out;
    out << "scheme instance registered as '" << scheme.registry_name()
        << "' is not the built-in " << expected
        << " implementation this model understands";
    *reason = out.str();
  }
  return concrete;
}

class UncodedModel final : public SchemeRuntimeModel {
 public:
  std::string_view scheme_name() const override { return "uncoded"; }
  std::string_view description() const override {
    return "threshold n (wait-for-all; needs n | m for equal loads)";
  }
  SchemeModelResult coverage_profile(
      const core::Scheme& scheme) const override {
    std::string reason;
    if (cast_or_reason<core::UncodedScheme>(scheme, "uncoded", &reason) ==
        nullptr) {
      return fail(std::move(reason));
    }
    double units = 1.0;
    if (auto why = check_exchangeable(scheme, &units)) {
      return fail(std::move(*why));  // n does not divide m
    }
    return ok(coverage_threshold(scheme.num_workers(), scheme.num_workers()),
              units);
  }
};

class CyclicRepetitionModel final : public SchemeRuntimeModel {
 public:
  std::string_view scheme_name() const override { return "cr"; }
  std::string_view description() const override {
    return "threshold n-r+1 (any n-s workers decode)";
  }
  SchemeModelResult coverage_profile(
      const core::Scheme& scheme) const override {
    std::string reason;
    const auto* cr = cast_or_reason<core::CyclicRepetitionScheme>(
        scheme, "cyclic repetition", &reason);
    if (cr == nullptr) {
      return fail(std::move(reason));
    }
    double units = 1.0;
    if (auto why = check_exchangeable(scheme, &units)) {
      return fail(std::move(*why));
    }
    const std::size_t n = scheme.num_workers();
    return ok(coverage_threshold(n, n - cr->stragglers_tolerated()), units);
  }
};

class FractionalRepetitionModel final : public SchemeRuntimeModel {
 public:
  std::string_view scheme_name() const override { return "fr"; }
  std::string_view description() const override {
    return "partition coverage over n/r replicated blocks";
  }
  SchemeModelResult coverage_profile(
      const core::Scheme& scheme) const override {
    std::string reason;
    const auto* fr = cast_or_reason<core::FractionalRepetitionScheme>(
        scheme, "fractional repetition", &reason);
    if (fr == nullptr) {
      return fail(std::move(reason));
    }
    double units = 1.0;
    if (auto why = check_exchangeable(scheme, &units)) {
      return fail(std::move(*why));
    }
    std::vector<std::size_t> group_sizes(fr->num_blocks(), 0);
    for (std::size_t w = 0; w < scheme.num_workers(); ++w) {
      ++group_sizes[fr->block_of_worker(w)];
    }
    return ok(coverage_partition(scheme.num_workers(), group_sizes), units);
  }
};

class BccModel final : public SchemeRuntimeModel {
 public:
  std::string_view scheme_name() const override { return "bcc"; }
  std::string_view description() const override {
    return "partition coverage over the realized batch choices";
  }
  SchemeModelResult coverage_profile(
      const core::Scheme& scheme) const override {
    std::string reason;
    const auto* bcc =
        cast_or_reason<core::BccScheme>(scheme, "BCC", &reason);
    if (bcc == nullptr) {
      return fail(std::move(reason));
    }
    double units = 1.0;
    if (auto why = check_exchangeable(scheme, &units)) {
      return fail(std::move(*why));  // r does not divide m
    }
    // The profile conditions on the drawn batch choices sigma_1..sigma_n,
    // exactly like one simulated run does. A batch no worker picked makes
    // every iteration a coverage failure (A == 0 throughout).
    std::vector<std::size_t> group_sizes(bcc->num_batches(), 0);
    for (std::size_t w = 0; w < scheme.num_workers(); ++w) {
      ++group_sizes[bcc->batch_of_worker(w)];
    }
    return ok(coverage_partition(scheme.num_workers(), group_sizes), units);
  }
};

class SimpleRandomModel final : public SchemeRuntimeModel {
 public:
  std::string_view scheme_name() const override { return "simple_random"; }
  std::string_view description() const override {
    return "exact unit-set coverage by 2^n enumeration (n<=24, m<=64)";
  }
  SchemeModelResult coverage_profile(
      const core::Scheme& scheme) const override {
    std::string reason;
    if (cast_or_reason<core::SimpleRandomScheme>(scheme, "simple randomized",
                                                 &reason) == nullptr) {
      return fail(std::move(reason));
    }
    const std::size_t n = scheme.num_workers();
    const std::size_t m = scheme.num_units();
    if (n > 24 || m > 64) {
      std::ostringstream out;
      out << "exact subset enumeration needs n <= 24 and m <= 64 (got n="
          << n << ", m=" << m
          << "); simple_random has no product structure to exploit — use "
             "Monte Carlo at this size";
      return fail(out.str());
    }
    double units = 1.0;
    if (auto why = check_exchangeable(scheme, &units)) {
      return fail(std::move(*why));
    }
    std::vector<std::uint64_t> masks(n, 0);
    for (std::size_t w = 0; w < n; ++w) {
      for (std::size_t unit : scheme.placement().worker(w)) {
        masks[w] |= std::uint64_t{1} << unit;
      }
    }
    return ok(coverage_union_masks(masks, m), units);
  }
};

class GcCyclicModel final : public SchemeRuntimeModel {
 public:
  std::string_view scheme_name() const override { return "gc_cyclic"; }
  std::string_view description() const override {
    return "threshold n-r+1 (any n-s workers decode; r-unit messages)";
  }
  SchemeModelResult coverage_profile(
      const core::Scheme& scheme) const override {
    std::string reason;
    const auto* gc = cast_or_reason<core::GcCyclicScheme>(
        scheme, "exact gradient coding", &reason);
    if (gc == nullptr) {
      return fail(std::move(reason));
    }
    double units = 1.0;
    if (auto why = check_exchangeable(scheme, &units)) {
      return fail(std::move(*why));
    }
    const std::size_t n = scheme.num_workers();
    return ok(coverage_threshold(n, n - gc->stragglers_tolerated()), units);
  }
};

class SgcModel final : public SchemeRuntimeModel {
 public:
  std::string_view scheme_name() const override { return "sgc"; }
  std::string_view description() const override {
    return "unsupported: approximate decode has no exact-runtime reduction";
  }
  SchemeModelResult coverage_profile(
      const core::Scheme& scheme) const override {
    std::string reason;
    if (cast_or_reason<core::SgcScheme>(scheme, "stochastic gradient coding",
                                        &reason) == nullptr) {
      return fail(std::move(reason));
    }
    // The *timing* law (stop at the first n-r+1 workers) is a plain
    // threshold, but E[T] alone would mislead the --predict ranking:
    // decode_sum returns a noisy estimate, so per-iteration runtime is
    // not comparable against exact-recovery schemes — convergence-per-
    // second is the fair metric, and that needs the gradient-noise/
    // step-size interplay the oracle does not model. Gate SGC with the
    // statistical tests instead.
    return fail(
        "sgc decode is stochastic (unbiased but noisy): iteration time has "
        "a threshold law, but ranking it against exact-recovery schemes on "
        "E[T] alone would ignore the decode noise's convergence cost — "
        "compare via the convergence benches/tests instead");
  }
};

class GcNestedModel final : public SchemeRuntimeModel {
 public:
  std::string_view scheme_name() const override { return "gc_nested"; }
  std::string_view description() const override {
    return "threshold n-r+1 (ladder decodes by n-s; d(r)-unit messages)";
  }
  SchemeModelResult coverage_profile(
      const core::Scheme& scheme) const override {
    std::string reason;
    const auto* gc = cast_or_reason<core::GcNestedScheme>(
        scheme, "nested gradient coding", &reason);
    if (gc == nullptr) {
      return fail(std::move(reason));
    }
    double units = 1.0;
    if (auto why = check_exchangeable(scheme, &units)) {
      return fail(std::move(*why));
    }
    // Timing is level-independent: the master always waits for the
    // n-r+1 quota (the level only picks which arrived components are
    // summed), so the profile is the same threshold as exact GC — with
    // the d(r)-component message size from check_exchangeable.
    const std::size_t n = scheme.num_workers();
    return ok(coverage_threshold(n, n - gc->stragglers_tolerated()), units);
  }
};

}  // namespace

AnalyticModelRegistry& AnalyticModelRegistry::instance() {
  static AnalyticModelRegistry registry;
  return registry;
}

AnalyticModelRegistry::AnalyticModelRegistry() {
  add(std::make_unique<UncodedModel>());
  add(std::make_unique<FractionalRepetitionModel>());
  add(std::make_unique<CyclicRepetitionModel>());
  add(std::make_unique<BccModel>());
  add(std::make_unique<SimpleRandomModel>());
  add(std::make_unique<GcCyclicModel>());
  add(std::make_unique<SgcModel>());
  add(std::make_unique<GcNestedModel>());
}

void AnalyticModelRegistry::add(std::unique_ptr<SchemeRuntimeModel> model) {
  if (model == nullptr) {
    throw std::invalid_argument("analytic model must not be null");
  }
  if (find(model->scheme_name()) != nullptr) {
    throw std::invalid_argument("duplicate analytic model for scheme '" +
                                std::string(model->scheme_name()) + "'");
  }
  models_.push_back(std::move(model));
}

const SchemeRuntimeModel* AnalyticModelRegistry::find(
    std::string_view scheme_name) const {
  for (const auto& model : models_) {
    if (model->scheme_name() == scheme_name) {
      return model.get();
    }
  }
  return nullptr;
}

std::vector<std::string> AnalyticModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& model : models_) {
    out.emplace_back(model->scheme_name());
  }
  return out;
}

}  // namespace coupon::analytic
