#include "analytic/dist.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace coupon::analytic {

namespace {

double shifted_exp_cdf(double shift, double rate, double x) {
  if (x <= shift) {
    return 0.0;
  }
  return -std::expm1(-rate * (x - shift));
}

}  // namespace

ComputeDist ComputeDist::shifted_exp_mixture(
    std::vector<ShiftedExpComponent> components) {
  COUPON_ASSERT(!components.empty());
  double total = 0.0;
  for (const auto& c : components) {
    COUPON_ASSERT_MSG(c.weight > 0.0 && c.shift >= 0.0 && c.rate > 0.0,
                      "weight=" << c.weight << " shift=" << c.shift
                                << " rate=" << c.rate);
    total += c.weight;
  }
  COUPON_ASSERT_MSG(std::abs(total - 1.0) < 1e-12,
                    "mixture weights sum to " << total);
  ComputeDist dist;
  dist.kind_ = Kind::kShiftedExpMixture;
  dist.components_ = std::move(components);
  return dist;
}

ComputeDist ComputeDist::pareto(double scale, double shape) {
  COUPON_ASSERT_MSG(scale > 0.0 && shape > 1.0,
                    "scale=" << scale << " shape=" << shape
                             << " (mean requires shape > 1)");
  ComputeDist dist;
  dist.kind_ = Kind::kPareto;
  dist.pareto_ = stats::Pareto{scale, shape};
  return dist;
}

ComputeDist ComputeDist::weibull(double shape, double scale) {
  COUPON_ASSERT_MSG(shape > 0.0 && scale > 0.0,
                    "shape=" << shape << " scale=" << scale);
  ComputeDist dist;
  dist.kind_ = Kind::kWeibull;
  dist.weibull_ = stats::Weibull{shape, scale};
  return dist;
}

std::optional<ComputeDist> ComputeDist::from_law(
    const simulate::LatencyLaw& law, double load, std::string* reason) {
  using Family = simulate::LatencyLaw::Family;
  COUPON_ASSERT(load > 0.0);
  const auto fail = [&](const std::string& why) -> std::optional<ComputeDist> {
    if (reason != nullptr) {
      *reason = why;
    }
    return std::nullopt;
  };

  switch (law.family) {
    case Family::kShiftedExp: {
      if (law.heterogeneous) {
        return fail(
            "per-worker latency overrides make compute times non-iid; "
            "the order-statistic reduction needs one homogeneous law");
      }
      const auto base = stats::ShiftedExponential::for_load(
          law.compute_shift, law.compute_straggle, load);
      return shifted_exp_mixture({{1.0, base.shift, base.rate}});
    }
    case Family::kBimodal:
    case Family::kMarkov: {
      // Scaling ShiftedExp(shift, rate) by f gives
      // ShiftedExp(f*shift, rate/f). For Markov the mixture weight is the
      // chain's stationary slow fraction — exact per iteration because
      // the model initializes every worker from the stationary law.
      const double slow_weight =
          law.family == Family::kBimodal
              ? law.slow_probability
              : law.p_enter / (law.p_enter + law.p_exit);
      const auto base = stats::ShiftedExponential::for_load(
          law.compute_shift, law.compute_straggle, load);
      const double f = law.slow_factor;
      if (slow_weight <= 0.0) {
        return shifted_exp_mixture({{1.0, base.shift, base.rate}});
      }
      if (slow_weight >= 1.0) {
        return shifted_exp_mixture({{1.0, f * base.shift, base.rate / f}});
      }
      return shifted_exp_mixture(
          {{1.0 - slow_weight, base.shift, base.rate},
           {slow_weight, f * base.shift, base.rate / f}});
    }
    case Family::kPareto:
      if (law.shape <= 1.0) {
        return fail("Pareto shape <= 1 has no finite mean (see theory.hpp)");
      }
      return pareto(law.scale_per_unit * load, law.shape);
    case Family::kWeibull:
      return weibull(law.shape, law.scale_per_unit * load);
    case Family::kOpaque:
      break;
  }
  return fail(
      "latency model reports no closed-form law (trace replay or an "
      "out-of-tree model) — Monte Carlo only");
}

double ComputeDist::cdf(double x) const {
  switch (kind_) {
    case Kind::kShiftedExpMixture: {
      double p = 0.0;
      for (const auto& c : components_) {
        p += c.weight * shifted_exp_cdf(c.shift, c.rate, x);
      }
      return p;
    }
    case Kind::kPareto:
      return pareto_.cdf(x);
    case Kind::kWeibull:
      return weibull_.cdf(x);
  }
  return 0.0;
}

double ComputeDist::support_min() const {
  switch (kind_) {
    case Kind::kShiftedExpMixture: {
      double lo = components_.front().shift;
      for (const auto& c : components_) {
        lo = std::min(lo, c.shift);
      }
      return lo;
    }
    case Kind::kPareto:
      return pareto_.scale;
    case Kind::kWeibull:
      return 0.0;
  }
  return 0.0;
}

double ComputeDist::upper_bracket(double epsilon) const {
  COUPON_ASSERT(epsilon > 0.0 && epsilon < 1.0);
  switch (kind_) {
    case Kind::kShiftedExpMixture: {
      // Each component's tail is below epsilon at its own quantile; the
      // mixture tail is below epsilon at the max of the per-component
      // (epsilon / weight-sum) quantiles — use the conservative max of
      // per-component epsilon-quantiles shifted by -log(weight).
      double hi = 0.0;
      for (const auto& c : components_) {
        const double tail = epsilon / components_.size() / c.weight;
        hi = std::max(hi, c.shift - std::log(std::min(1.0, tail)) / c.rate);
      }
      return hi;
    }
    case Kind::kPareto:
      return pareto_.quantile(1.0 - epsilon);
    case Kind::kWeibull:
      return weibull_.quantile(1.0 - epsilon);
  }
  return 0.0;
}

double ComputeDist::mean() const {
  switch (kind_) {
    case Kind::kShiftedExpMixture: {
      double m = 0.0;
      for (const auto& c : components_) {
        m += c.weight * (c.shift + 1.0 / c.rate);
      }
      return m;
    }
    case Kind::kPareto:
      return pareto_.mean();
    case Kind::kWeibull:
      return weibull_.mean();
  }
  return 0.0;
}

bool ComputeDist::is_pure_shifted_exp() const {
  return kind_ == Kind::kShiftedExpMixture && components_.size() == 1;
}

}  // namespace coupon::analytic
