#pragma once

/// \file predictor.hpp
/// The analytic oracle's front end (DESIGN.md §10): exact per-iteration
/// predictions for a realized scheme on a described cluster, and a
/// ranking over candidate (scheme, load) pairs — the instant auto-tuner
/// behind `coupon_run --predict` and `--scheme auto`.
///
/// `predict` composes the three lower layers with zero simulation:
///
///   1. scheme_model.hpp reduces the realized placement to a coverage
///      profile A[j] and the common message size;
///   2. dist.hpp reduces the cluster's latency law at the scheme's load
///      to an exact compute-time distribution;
///   3. order_stats.hpp supplies the law of the k-th ingress completion.
///
/// Worker drops are marginalized exactly: the number of present workers
/// is Binomial(n, 1 - drop_probability); conditional on R present, the
/// first k arrivals are a uniform k-subset of all n workers (the
/// identity permutation is independent of the sorted times), so one
/// A-table serves every drop rate:
///
///   P(ready at k-th arrival | R) = A[k] - A[k-1]   (k < R),
///   P(drain all R | R)           = 1 - A[R-1],   T = c_R either way,
///   P(coverage failure | R)      = 1 - A[R],     and R = 0 gives T = 0.
///
/// Everything here is deterministic: two identical calls return
/// bitwise-identical doubles, and nothing under src/analytic/ links RNG.

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/scheme.hpp"
#include "simulate/cluster_config.hpp"

namespace coupon::analytic {

/// Exact per-iteration metrics for one (scheme, cluster) pair.
struct Prediction {
  std::string scheme;             ///< registry name
  std::size_t load = 0;           ///< r of the candidate
  double expected_time = 0.0;     ///< E[T] per iteration, seconds
  double expected_workers = 0.0;  ///< E[K] (recovery-threshold accounting)
  double expected_units = 0.0;    ///< E[L] = E[K] * message_units
  double failure_probability = 0.0;  ///< per-iteration coverage failure
  double message_units = 1.0;     ///< per-worker message size, units
  bool has_quantiles = false;     ///< p50/p95/p99 below are valid
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Knobs for `predict` / `Predictor::rank`.
struct PredictOptions {
  /// Compute p50/p95/p99 of T (bisection over the exact CDF — the
  /// costliest part at n = 100; E[T] alone is much cheaper).
  bool quantiles = true;
  /// Drop-count slices below this probability are skipped inside the
  /// quantile bisection only (bias bounded by the skipped mass; means
  /// and failure probabilities always use the full expansion).
  double quantile_weight_floor = 1e-6;
};

/// Predicts per-iteration metrics for the realized `scheme` on
/// `cluster`. Returns nullopt — with `reason` explaining which half of
/// the reduction is missing — when the scheme has no analytic model,
/// the realized placement breaks exchangeability, or the latency law
/// has no closed form.
std::optional<Prediction> predict(const core::Scheme& scheme,
                                  const simulate::ClusterConfig& cluster,
                                  const PredictOptions& options = {},
                                  std::string* reason = nullptr);

/// One auto-tuner candidate.
struct CandidateSpec {
  std::string scheme;  ///< registry name
  std::size_t load = 0;
};

/// A candidate the oracle could not evaluate, and why.
struct UnsupportedCandidate {
  CandidateSpec spec;
  std::string reason;
};

/// Ranks candidate (scheme, load) pairs by predicted E[T].
///
/// The caller supplies the scheme factory so that this layer stays free
/// of RNG: the driver bridge builds each candidate with exactly the
/// seeding discipline `simulate_run` uses, making the oracle condition
/// on the same realized placements the simulator would draw. A factory
/// may return nullptr (with `reason` set) for structurally invalid
/// combinations (e.g. fr when r does not divide n).
class Predictor {
 public:
  using SchemeFactory = std::function<std::unique_ptr<core::Scheme>(
      const CandidateSpec& spec, std::string* reason)>;

  Predictor(simulate::ClusterConfig cluster, SchemeFactory factory)
      : cluster_(std::move(cluster)), factory_(std::move(factory)) {}

  /// Predicts every candidate and returns the supported ones sorted by
  /// ascending E[T] (ties broken by candidate order). Quantiles are
  /// computed only for the best `quantile_top` entries when it is
  /// nonzero (0 = all), since tail bisection dominates the cost at
  /// paper-scale n. Unsupported candidates are appended to
  /// `unsupported` with their reasons when it is non-null.
  std::vector<Prediction> rank(
      const std::vector<CandidateSpec>& candidates,
      const PredictOptions& options = {}, std::size_t quantile_top = 0,
      std::vector<UnsupportedCandidate>* unsupported = nullptr) const;

 private:
  simulate::ClusterConfig cluster_;
  SchemeFactory factory_;
};

}  // namespace coupon::analytic
