#pragma once

/// \file order_stats.hpp
/// Exact distribution of FIFO ingress-completion times over iid compute
/// draws — the order-statistic half of the analytic oracle
/// (DESIGN.md §10).
///
/// Setting (mirrors simulate::IterationKernel exactly): R workers draw
/// iid compute times X_1..X_R from a `ComputeDist`; worker messages
/// arrive at t_(i) = broadcast + X_(i) (the i-th order statistic) and
/// pass one at a time through the master's serialized ingress, each
/// occupying it for `service` seconds. The i-th message finishes ingress
/// at
///
///     c_i = max(c_{i-1}, t_(i)) + service
///         = max_{j<=i} ( t_(j) + (i - j + 1) * service ).
///
/// Two engines compute the law of c_k:
///
///   * `completion_cdf` — P(c_k <= x) for ANY ComputeDist, by the
///     Steck/Noé boundary-crossing recursion: c_k <= x iff
///     X_(i) <= beta_i for all i <= k with increasing boundaries
///     beta_i = x - broadcast - (k-i+1)*service, and
///     P(X_(i) <= beta_i for all i) follows from a DP over the counting
///     process N(beta_i) with conditional-binomial increments —
///     O(k R^2) per evaluation.
///   * `expected_completions_shifted_exp` — E[c_k] for ALL k at once,
///     pure shifted-exponential only, via the Rényi representation:
///     gaps t_(i+1) - t_(i) are Exp((R-i)*rate) independent of the past,
///     so the ingress slack d_i = c_i - t_(i) obeys the Lindley
///     recursion d_{i+1} = service + max(0, d_i - gap), a 1-D Markov
///     chain whose survival function is advanced on a fixed grid with
///     per-panel exact integration — O(R * G) total. This is what makes
///     `--predict` instant at the paper's n = 50 / n = 100 grids.
///
/// Both engines are deterministic (no RNG), and the tests cross-check
/// them against each other and against closed forms.

#include <cstddef>
#include <vector>

#include "analytic/dist.hpp"

namespace coupon::analytic {

/// P(c_k <= x) for `num_draws` iid draws from `dist`. k in [1, num_draws].
double completion_cdf(const ComputeDist& dist, std::size_t num_draws,
                      std::size_t k, double service, double broadcast,
                      double x);

/// E[c_k] for every k = 1..num_draws (result[k-1]) under a pure
/// shifted-exponential law — the Lindley grid DP. `points_per_service`
/// controls the grid (0 = automatic: fine enough for ~1e-5 relative
/// error at the paper's calibration).
std::vector<double> expected_completions_shifted_exp(
    double shift, double rate, std::size_t num_draws, double service,
    double broadcast, std::size_t points_per_service = 0);

/// E[c_k] by adaptive Simpson quadrature over the survival function
/// 1 - completion_cdf. Works for every ComputeDist; O(k R^2) per
/// quadrature node, so intended for small R (tests, mixtures).
double completion_mean_quadrature(const ComputeDist& dist,
                                  std::size_t num_draws, std::size_t k,
                                  double service, double broadcast);

/// E[X_(k)] of `num_draws` iid draws from `dist` (the service = 0
/// reduction of `completion_mean_quadrature`).
double expected_kth_order_statistic(const ComputeDist& dist,
                                    std::size_t num_draws, std::size_t k);

}  // namespace coupon::analytic
