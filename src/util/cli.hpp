#pragma once

/// \file cli.hpp
/// Tiny command-line flag parser for benches and examples.
///
/// Flags use the form `--name=value` or `--name value`; `--flag` alone sets
/// a boolean to true. Unknown flags abort with a usage message so typos in
/// experiment sweeps are caught instead of silently running defaults.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace coupon {

/// Declarative flag registry with typed accessors.
class CliFlags {
 public:
  /// Registers flags with their default values and help strings.
  CliFlags& add_int(const std::string& name, std::int64_t default_value,
                    const std::string& help);
  CliFlags& add_double(const std::string& name, double default_value,
                       const std::string& help);
  CliFlags& add_bool(const std::string& name, bool default_value,
                     const std::string& help);
  CliFlags& add_string(const std::string& name,
                       const std::string& default_value,
                       const std::string& help);

  /// Parses argv. Returns false (after printing usage) on `--help` or on
  /// any malformed/unknown flag.
  bool parse(int argc, const char* const* argv);

  /// Typed lookups; assert if the name was never registered.
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Renders the usage/help text.
  std::string usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };

  const Flag& find(const std::string& name, Type type) const;
  bool set_from_string(Flag& flag, const std::string& text);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace coupon
