#pragma once

/// \file csv.hpp
/// Minimal RFC-4180-style CSV writer for exporting experiment traces
/// (per-iteration simulator reports, sweep results) to external plotting
/// tools.

#include <ostream>
#include <string>
#include <vector>

namespace coupon {

/// Streams rows of string fields as CSV, quoting where required.
class CsvWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row. Fields containing commas, quotes, or newlines are
  /// quoted with internal quotes doubled.
  void row(const std::vector<std::string>& fields);

  /// Number of rows written so far (including any header row).
  std::size_t rows_written() const { return rows_; }

  /// Escapes a single field per RFC 4180 (exposed for tests).
  static std::string escape(const std::string& field);

 private:
  std::ostream& os_;
  std::size_t rows_ = 0;
};

}  // namespace coupon
