#include "util/logging.hpp"

#include <cstdio>

namespace coupon {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(level_)) {
    return;
  }
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kWarn:
      tag = "W";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kDebug:
      tag = "D";
      break;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
}

}  // namespace coupon
