#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/assert.hpp"

namespace coupon {

CliFlags& CliFlags::add_int(const std::string& name, std::int64_t default_value,
                            const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  COUPON_ASSERT_MSG(flags_.emplace(name, std::move(f)).second,
                    "duplicate flag --" << name);
  order_.push_back(name);
  return *this;
}

CliFlags& CliFlags::add_double(const std::string& name, double default_value,
                               const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  COUPON_ASSERT_MSG(flags_.emplace(name, std::move(f)).second,
                    "duplicate flag --" << name);
  order_.push_back(name);
  return *this;
}

CliFlags& CliFlags::add_bool(const std::string& name, bool default_value,
                             const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  COUPON_ASSERT_MSG(flags_.emplace(name, std::move(f)).second,
                    "duplicate flag --" << name);
  order_.push_back(name);
  return *this;
}

CliFlags& CliFlags::add_string(const std::string& name,
                               const std::string& default_value,
                               const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  COUPON_ASSERT_MSG(flags_.emplace(name, std::move(f)).second,
                    "duplicate flag --" << name);
  order_.push_back(name);
  return *this;
}

bool CliFlags::set_from_string(Flag& flag, const std::string& text) {
  try {
    switch (flag.type) {
      case Type::kInt:
        flag.int_value = std::stoll(text);
        return true;
      case Type::kDouble:
        flag.double_value = std::stod(text);
        return true;
      case Type::kBool:
        if (text == "true" || text == "1") {
          flag.bool_value = true;
        } else if (text == "false" || text == "0") {
          flag.bool_value = false;
        } else {
          return false;
        }
        return true;
      case Type::kString:
        flag.string_value = text;
        return true;
    }
  } catch (const std::exception&) {
    return false;
  }
  return false;
}

bool CliFlags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage(argv[0]).c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.type == Type::kBool) {
        flag.bool_value = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!set_from_string(flag, value)) {
      std::fprintf(stderr, "bad value '%s' for flag --%s\n", value.c_str(),
                   name.c_str());
      return false;
    }
  }
  return true;
}

const CliFlags::Flag& CliFlags::find(const std::string& name,
                                     Type type) const {
  auto it = flags_.find(name);
  COUPON_ASSERT_MSG(it != flags_.end(), "flag --" << name << " not registered");
  COUPON_ASSERT_MSG(it->second.type == type,
                    "flag --" << name << " accessed with wrong type");
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return find(name, Type::kInt).int_value;
}

double CliFlags::get_double(const std::string& name) const {
  return find(name, Type::kDouble).double_value;
}

bool CliFlags::get_bool(const std::string& name) const {
  return find(name, Type::kBool).bool_value;
}

const std::string& CliFlags::get_string(const std::string& name) const {
  return find(name, Type::kString).string_value;
}

std::string CliFlags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    switch (f.type) {
      case Type::kInt:
        os << "=<int> (default " << f.int_value << ")";
        break;
      case Type::kDouble:
        os << "=<float> (default " << f.double_value << ")";
        break;
      case Type::kBool:
        os << " (default " << (f.bool_value ? "true" : "false") << ")";
        break;
      case Type::kString:
        os << "=<string> (default '" << f.string_value << "')";
        break;
    }
    os << "\n      " << f.help << "\n";
  }
  return os.str();
}

}  // namespace coupon
