#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool with a blocking task queue, plus a
/// `parallel_for` helper used by the linalg kernels.
///
/// The pool is deliberately simple (mutex + condition variable); the
/// library's parallel sections are coarse-grained (row blocks of GEMV/GEMM,
/// per-worker gradient computation), so queue contention is negligible.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace coupon {

/// Fixed-size thread pool executing `std::function<void()>` tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers after draining outstanding tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Number of worker threads.
  std::size_t size() const { return threads_.size(); }

  /// A process-wide pool sized to the hardware concurrency. Intended for
  /// the linalg kernels; long-running blocking work should use its own
  /// threads (see runtime::ThreadCluster).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs `body(i)` for i in [begin, end) across `pool`, splitting the range
/// into one contiguous chunk per thread. Blocks until all chunks finish.
/// Falls back to a serial loop when the range is small.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t serial_threshold = 1024);

/// Chunked variant: `body(chunk_begin, chunk_end)` once per chunk. Useful
/// when the per-index work is tiny and the body can vectorize internally.
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t serial_threshold = 1024);

}  // namespace coupon
