#pragma once

/// \file table.hpp
/// ASCII table formatting used by the benchmark harnesses to print
/// paper-style result rows (Tables I/II, Fig. 2/4/5 series).

#include <string>
#include <vector>

namespace coupon {

/// Column alignment inside an AsciiTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders them as a boxed ASCII table.
///
/// Example:
///   AsciiTable t({"scheme", "K", "total (s)"});
///   t.add_row({"BCC", "11.4", "4.2"});
///   std::cout << t.render();
class AsciiTable {
 public:
  /// Creates a table with the given column headers.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line between the rows added so far and
  /// the rows added later.
  void add_separator();

  /// Sets the alignment of column `index` (default: kRight for all).
  void set_align(std::size_t index, Align align);

  /// Number of data rows added.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders the table including borders and header separator.
  std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
  std::vector<Align> aligns_;
};

/// Formats `value` with `digits` digits after the decimal point.
std::string format_double(double value, int digits = 3);

/// Formats a ratio (e.g. 0.854) as a percentage string "85.4%".
std::string format_percent(double fraction, int digits = 1);

}  // namespace coupon
