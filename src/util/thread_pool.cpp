#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace coupon {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    COUPON_ASSERT_MSG(!stop_, "submit() on a stopped ThreadPool");
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stop_ set and queue drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // exceptions are captured into the future
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t serial_threshold) {
  parallel_for_chunks(
      pool, begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          body(i);
        }
      },
      serial_threshold);
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t serial_threshold) {
  COUPON_ASSERT(begin <= end);
  const std::size_t total = end - begin;
  if (total == 0) {
    return;
  }
  if (total <= serial_threshold || pool.size() <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t chunks = std::min(pool.size(), total);
  const std::size_t base = total / chunks;
  const std::size_t extra = total % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t lo = begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t hi = lo + len;
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
    lo = hi;
  }
  COUPON_ASSERT(lo == end);
  for (auto& f : futures) {
    f.get();  // rethrows any exception from the chunk body
  }
}

}  // namespace coupon
