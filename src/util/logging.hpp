#pragma once

/// \file logging.hpp
/// Minimal leveled logger writing to stderr.
///
/// The library itself logs nothing at default verbosity; benches and the
/// threaded runtime use `info`/`debug` for progress. Thread-safe: each
/// emitted line is assembled in full before a single locked write.

#include <mutex>
#include <sstream>
#include <string>

namespace coupon {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global logging configuration and sink.
class Logger {
 public:
  /// Returns the process-wide logger.
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Emits one line at `level` if it passes the threshold.
  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {

/// Builds a log line with a stream interface; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }

}  // namespace coupon
