#pragma once

/// \file names.hpp
/// Shared helpers for name registries: choice-list joining and the
/// common "unknown X 'y' (did you mean 'z'? choices: ...)" diagnostic,
/// so every registry (schemes, scenarios, runtimes) speaks the same CLI
/// language.

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace coupon {

/// "a|b|c" — the --help choices spelling.
inline std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) {
      out += "|";
    }
    out += name;
  }
  return out;
}

/// Levenshtein distance (insert/delete/substitute, unit costs) between
/// `a` and `b`. O(|a|·|b|) time, O(|b|) space — name-sized inputs only.
inline std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];  // dist(a[0..i-1), b[0..j-1))
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitute =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

/// The registered name closest to `name` in edit distance, when that
/// distance is small enough to be a plausible typo (<= max(1, |name|/3));
/// "" when no choice qualifies. Ties go to registration order.
inline std::string nearest_name(std::string_view name,
                                const std::vector<std::string>& choices) {
  const std::size_t threshold = std::max<std::size_t>(1, name.size() / 3);
  std::string best;
  std::size_t best_distance = threshold + 1;
  for (const auto& choice : choices) {
    const std::size_t distance = edit_distance(name, choice);
    if (distance < best_distance) {
      best = choice;
      best_distance = distance;
    }
  }
  return best;
}

/// "unknown scheme 'x' (did you mean 'y'? choices: a|b|c)" — the
/// did-you-mean clause appears only when a registered name is a
/// plausible-typo distance away.
inline std::string unknown_name_message(
    std::string_view kind, std::string_view name,
    const std::vector<std::string>& choices) {
  std::string message =
      "unknown " + std::string(kind) + " '" + std::string(name) + "' (";
  const std::string suggestion = nearest_name(name, choices);
  if (!suggestion.empty()) {
    message += "did you mean '" + suggestion + "'? ";
  }
  return message + "choices: " + join_names(choices) + ")";
}

}  // namespace coupon
