#pragma once

/// \file names.hpp
/// Shared helpers for name registries: choice-list joining and the
/// common "unknown X 'y' (choices: ...)" diagnostic, so every registry
/// (schemes, scenarios, runtimes) speaks the same CLI language.

#include <string>
#include <string_view>
#include <vector>

namespace coupon {

/// "a|b|c" — the --help choices spelling.
inline std::string join_names(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) {
      out += "|";
    }
    out += name;
  }
  return out;
}

/// "unknown scheme 'x' (choices: a|b|c)".
inline std::string unknown_name_message(
    std::string_view kind, std::string_view name,
    const std::vector<std::string>& choices) {
  return "unknown " + std::string(kind) + " '" + std::string(name) +
         "' (choices: " + join_names(choices) + ")";
}

}  // namespace coupon
