#pragma once

/// \file timer.hpp
/// Wall-clock timing helpers for benches and the threaded runtime.

#include <chrono>

namespace coupon {

/// Monotonic stopwatch measuring elapsed wall-clock seconds.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace coupon
