#pragma once

/// \file assert.hpp
/// Lightweight always-on assertions for library invariants.
///
/// `COUPON_ASSERT` is used for checking preconditions and internal
/// invariants of the library. Violations throw `coupon::AssertionError`
/// carrying the failed expression and source location, so tests can assert
/// on misuse and long experiment runs fail loudly instead of corrupting
/// results. The checks are cheap (a branch) and stay enabled in release
/// builds; hot inner loops use `COUPON_DCHECK`, which compiles out unless
/// `COUPON_ENABLE_DCHECK` is defined.

#include <sstream>
#include <stdexcept>
#include <string>

namespace coupon {

/// Error thrown when a `COUPON_ASSERT`/`COUPON_DCHECK` condition fails.
class AssertionError : public std::logic_error {
 public:
  explicit AssertionError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw AssertionError(os.str());
}

}  // namespace detail
}  // namespace coupon

/// Asserts `cond`; on failure throws coupon::AssertionError with location.
#define COUPON_ASSERT(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::coupon::detail::assert_fail(#cond, __FILE__, __LINE__, "");      \
    }                                                                    \
  } while (false)

/// Asserts `cond` with a streamed explanatory message.
/// Usage: COUPON_ASSERT_MSG(r <= m, "load " << r << " exceeds " << m);
#define COUPON_ASSERT_MSG(cond, stream_expr)                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream coupon_assert_os_;                              \
      coupon_assert_os_ << stream_expr;                                  \
      ::coupon::detail::assert_fail(#cond, __FILE__, __LINE__,           \
                                    coupon_assert_os_.str());            \
    }                                                                    \
  } while (false)

#ifdef COUPON_ENABLE_DCHECK
#define COUPON_DCHECK(cond) COUPON_ASSERT(cond)
#else
#define COUPON_DCHECK(cond) \
  do {                      \
  } while (false)
#endif
