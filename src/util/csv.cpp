#include "util/csv.hpp"

namespace coupon {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      os_ << ',';
    }
    os_ << escape(fields[i]);
  }
  os_ << '\n';
  ++rows_;
}

}  // namespace coupon
