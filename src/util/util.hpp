#pragma once

/// \file util.hpp
/// Umbrella header for the util module.

#include "util/assert.hpp"      // IWYU pragma: export
#include "util/cli.hpp"         // IWYU pragma: export
#include "util/csv.hpp"         // IWYU pragma: export
#include "util/logging.hpp"     // IWYU pragma: export
#include "util/names.hpp"       // IWYU pragma: export
#include "util/table.hpp"       // IWYU pragma: export
#include "util/thread_pool.hpp" // IWYU pragma: export
#include "util/timer.hpp"       // IWYU pragma: export
