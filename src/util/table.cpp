#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace coupon {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  COUPON_ASSERT(!headers_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  COUPON_ASSERT_MSG(cells.size() == headers_.size(),
                    "row has " << cells.size() << " cells, expected "
                               << headers_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::add_separator() { rows_.emplace_back(); }

void AsciiTable::set_align(std::size_t index, Align align) {
  COUPON_ASSERT(index < aligns_.size());
  aligns_[index] = align;
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : widths) {
      s += std::string(w + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const std::size_t pad = widths[c] - cell.size();
      s += ' ';
      if (aligns_[c] == Align::kRight) {
        s += std::string(pad, ' ') + cell;
      } else {
        s += cell + std::string(pad, ' ');
      }
      s += " |";
    }
    s += '\n';
    return s;
  };

  std::string out = hline();
  out += render_row(headers_);
  out += hline();
  for (const auto& row : rows_) {
    out += row.empty() ? hline() : render_row(row);
  }
  out += hline();
  return out;
}

std::string format_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string format_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace coupon
