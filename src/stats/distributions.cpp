#include "stats/distributions.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace coupon::stats {

double Exponential::cdf(double t) const {
  if (t <= 0.0) {
    return 0.0;
  }
  return 1.0 - std::exp(-lambda * t);
}

double Exponential::quantile(double p) const {
  COUPON_ASSERT(p >= 0.0 && p < 1.0);
  return -std::log(1.0 - p) / lambda;
}

ShiftedExponential ShiftedExponential::for_load(double a, double mu,
                                                double load) {
  COUPON_ASSERT_MSG(a >= 0.0 && mu > 0.0 && load > 0.0,
                    "a=" << a << " mu=" << mu << " load=" << load);
  ShiftedExponential d;
  d.shift = a * load;
  d.rate = mu / load;
  return d;
}

double ShiftedExponential::sample(Rng& rng) const {
  COUPON_ASSERT(rate > 0.0 && shift >= 0.0);
  return shift + rng.exponential(rate);
}

double ShiftedExponential::cdf(double t) const {
  if (t <= shift) {
    return 0.0;
  }
  return 1.0 - std::exp(-rate * (t - shift));
}

double ShiftedExponential::quantile(double p) const {
  COUPON_ASSERT(p >= 0.0 && p < 1.0);
  return shift - std::log(1.0 - p) / rate;
}

}  // namespace coupon::stats
