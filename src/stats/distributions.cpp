#include "stats/distributions.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace coupon::stats {

double Exponential::cdf(double t) const {
  if (t <= 0.0) {
    return 0.0;
  }
  return 1.0 - std::exp(-lambda * t);
}

double Exponential::quantile(double p) const {
  COUPON_ASSERT(p >= 0.0 && p < 1.0);
  return -std::log(1.0 - p) / lambda;
}

ShiftedExponential ShiftedExponential::for_load(double a, double mu,
                                                double load) {
  COUPON_ASSERT_MSG(a >= 0.0 && mu > 0.0 && load > 0.0,
                    "a=" << a << " mu=" << mu << " load=" << load);
  ShiftedExponential d;
  d.shift = a * load;
  d.rate = mu / load;
  return d;
}

double ShiftedExponential::sample(Rng& rng) const {
  COUPON_ASSERT(rate > 0.0 && shift >= 0.0);
  return shift + rng.exponential(rate);
}

double ShiftedExponential::cdf(double t) const {
  if (t <= shift) {
    return 0.0;
  }
  return 1.0 - std::exp(-rate * (t - shift));
}

double ShiftedExponential::quantile(double p) const {
  COUPON_ASSERT(p >= 0.0 && p < 1.0);
  return shift - std::log(1.0 - p) / rate;
}

double Pareto::sample(Rng& rng) const {
  COUPON_ASSERT(scale > 0.0 && shape > 0.0);
  // Inverse-CDF: uniform() < 1, so the argument stays positive.
  return scale * std::pow(1.0 - rng.uniform(), -1.0 / shape);
}

double Pareto::mean() const {
  COUPON_ASSERT_MSG(shape > 1.0, "Pareto mean diverges for shape <= 1");
  return scale * shape / (shape - 1.0);
}

double Pareto::variance() const {
  COUPON_ASSERT_MSG(shape > 2.0, "Pareto variance diverges for shape <= 2");
  return scale * scale * shape / ((shape - 1.0) * (shape - 1.0) *
                                  (shape - 2.0));
}

double Pareto::cdf(double t) const {
  if (t <= scale) {
    return 0.0;
  }
  return 1.0 - std::pow(scale / t, shape);
}

double Pareto::quantile(double p) const {
  COUPON_ASSERT(p >= 0.0 && p < 1.0);
  return scale * std::pow(1.0 - p, -1.0 / shape);
}

double Weibull::sample(Rng& rng) const {
  COUPON_ASSERT(shape > 0.0 && scale > 0.0);
  return scale * std::pow(-std::log(1.0 - rng.uniform()), 1.0 / shape);
}

double Weibull::mean() const { return scale * std::tgamma(1.0 + 1.0 / shape); }

double Weibull::variance() const {
  const double g1 = std::tgamma(1.0 + 1.0 / shape);
  return scale * scale * (std::tgamma(1.0 + 2.0 / shape) - g1 * g1);
}

double Weibull::cdf(double t) const {
  if (t <= 0.0) {
    return 0.0;
  }
  return 1.0 - std::exp(-std::pow(t / scale, shape));
}

double Weibull::quantile(double p) const {
  COUPON_ASSERT(p >= 0.0 && p < 1.0);
  return scale * std::pow(-std::log(1.0 - p), 1.0 / shape);
}

}  // namespace coupon::stats
