#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// All randomness in the library flows through `stats::Rng` (xoshiro256**
/// seeded via splitmix64). We implement our own samplers (uniform, normal,
/// exponential, Bernoulli) instead of using `std::` distributions because
/// the standard leaves distribution algorithms implementation-defined;
/// with our own samplers, a seed fully determines every experiment on any
/// platform, which the tests and the benchmark harnesses rely on.

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace coupon::stats {

/// xoshiro256** 1.0 generator (Blackman & Vigna), seeded with splitmix64.
///
/// Passes BigCrush; period 2^256 − 1. `jump()` provides 2^128 independent
/// subsequences for parallel workers.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state by iterating splitmix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64-bit draw.
  std::uint64_t next_u64();

  /// Equivalent of 2^128 calls to next_u64(); used to derive per-worker
  /// streams that never overlap.
  void jump();

  /// Returns a new generator whose stream is disjoint from this one.
  /// Advances this generator by one jump.
  Rng split();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (no state caching: one fresh pair
  /// member per call keeps replay independent of call sites).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with rate lambda (mean 1/lambda). Requires lambda > 0.
  double exponential(double lambda);

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly at random, in
  /// unspecified order. Requires k <= n. O(k) expected time via a partial
  /// Fisher–Yates over a sparse map for k << n, O(n) otherwise.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t state_[4];
};

}  // namespace coupon::stats
