#include "stats/rng.hpp"

#include <cmath>
#include <numbers>
#include <unordered_map>

namespace coupon::stats {

namespace {

inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
  // All-zero state is invalid for xoshiro; splitmix64 cannot produce four
  // zero outputs in a row, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      next_u64();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

Rng Rng::split() {
  Rng child = *this;
  jump();
  return child;
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  COUPON_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  COUPON_ASSERT(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  COUPON_ASSERT(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() {
  // Box–Muller; draw u1 away from 0 to keep log() finite.
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  COUPON_ASSERT(stddev >= 0.0);
  return mean + stddev * normal();
}

double Rng::exponential(double lambda) {
  COUPON_ASSERT(lambda > 0.0);
  double u = uniform();
  while (u <= 0.0) {
    u = uniform();
  }
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform() < p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  COUPON_ASSERT_MSG(k <= n, "cannot sample " << k << " from " << n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) {
    return out;
  }
  if (k * 3 >= n) {
    // Dense path: full partial shuffle.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) {
      all[i] = i;
    }
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(uniform_int(n - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  // Sparse path: virtual Fisher–Yates over an index map.
  std::unordered_map<std::size_t, std::size_t> remap;
  remap.reserve(k * 2);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
    auto value_of = [&remap](std::size_t idx) {
      auto it = remap.find(idx);
      return it == remap.end() ? idx : it->second;
    };
    const std::size_t vi = value_of(i);
    const std::size_t vj = value_of(j);
    remap[j] = vi;
    out.push_back(vj);
  }
  return out;
}

}  // namespace coupon::stats
