#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace coupon::stats {

void OnlineStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::sem() const {
  if (count_ < 2) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double quantile(std::vector<double> samples, double q) {
  COUPON_ASSERT(!samples.empty());
  COUPON_ASSERT(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) {
    return samples[0];
  }
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double ks_distance(std::vector<double> samples,
                   const std::function<double(double)>& cdf) {
  COUPON_ASSERT(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  return d;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  COUPON_ASSERT(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  raw_.push_back(x);
  ++total_;
}

double Histogram::edge(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::tail_fraction(double x) const {
  if (total_ == 0) {
    return 0.0;
  }
  const auto count = static_cast<double>(
      std::count_if(raw_.begin(), raw_.end(), [x](double v) { return v >= x; }));
  return count / static_cast<double>(total_);
}

}  // namespace coupon::stats
