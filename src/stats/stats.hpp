#pragma once

/// \file stats.hpp
/// Umbrella header for the stats module.

#include "stats/distributions.hpp" // IWYU pragma: export
#include "stats/rng.hpp"           // IWYU pragma: export
#include "stats/summary.hpp"       // IWYU pragma: export
