#pragma once

/// \file summary.hpp
/// Streaming and batch summary statistics for experiment results.

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

namespace coupon::stats {

/// Numerically stable streaming moments (Welford), plus min/max.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Merges another accumulator (parallel reduction).
  void merge(const OnlineStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Standard error of the mean; 0 when fewer than two observations.
  double sem() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the `q`-quantile (0 <= q <= 1) of `samples` using linear
/// interpolation between order statistics. Copies and sorts internally.
double quantile(std::vector<double> samples, double q);

/// One-sample Kolmogorov–Smirnov statistic: the sup-distance between the
/// empirical CDF of `samples` and the reference `cdf`. Used by the tests
/// to validate that simulated latencies follow the Eq. 15 model (a KS
/// distance ~ 1.36/sqrt(n) is the 95% acceptance line for n samples).
double ks_distance(std::vector<double> samples,
                   const std::function<double(double)>& cdf);

/// Fixed-width histogram over [lo, hi); values outside are clamped into
/// the first/last bucket. Used by the latency benches to print tails.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_[bucket]; }
  std::size_t total() const { return total_; }
  /// Lower edge of bucket `i`.
  double edge(std::size_t i) const;
  /// Fraction of observations at or above `x` (empirical tail).
  double tail_fraction(double x) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::vector<double> raw_;  // kept for exact tail queries
  std::size_t total_ = 0;
};

}  // namespace coupon::stats
