#pragma once

/// \file distributions.hpp
/// Parametric distributions used by the latency models.
///
/// The paper models worker completion time with a *shifted exponential*
/// (Eq. 15): for a worker with straggler parameter mu, shift parameter a,
/// and computational load r,
///
///     Pr[T <= t] = 1 - exp(-(mu/r) * (t - a*r)),   t >= a*r.
///
/// i.e. a deterministic ramp `a*r` plus an exponential tail with rate
/// `mu/r` (both the floor and the tail scale linearly in the load).

#include <cstdint>

#include "stats/rng.hpp"

namespace coupon::stats {

/// Exponential distribution with rate `lambda` (mean 1/lambda).
struct Exponential {
  double lambda = 1.0;

  double sample(Rng& rng) const { return rng.exponential(lambda); }
  double mean() const { return 1.0 / lambda; }
  double variance() const { return 1.0 / (lambda * lambda); }
  double cdf(double t) const;
  /// Inverse CDF; p in [0, 1).
  double quantile(double p) const;
};

/// The paper's shifted-exponential completion-time model (Eq. 15).
///
/// `shift` is the deterministic minimum (a*r in the paper) and `rate` the
/// exponential tail rate (mu/r in the paper). Use `for_load` to build the
/// model directly from worker parameters (a, mu) and a load r.
struct ShiftedExponential {
  double shift = 0.0;  ///< deterministic floor, must be >= 0
  double rate = 1.0;   ///< tail rate, must be > 0

  /// Builds the model of Eq. 15 for a worker with shift parameter `a`,
  /// straggler parameter `mu`, processing `load` examples.
  static ShiftedExponential for_load(double a, double mu, double load);

  double sample(Rng& rng) const;
  double mean() const { return shift + 1.0 / rate; }
  double variance() const { return 1.0 / (rate * rate); }
  double cdf(double t) const;
  /// Inverse CDF; p in [0, 1).
  double quantile(double p) const;
};

/// Pareto (type I) distribution: Pr[T <= t] = 1 - (scale/t)^shape for
/// t >= scale. The heavy-tailed completion-time law of the related-work
/// cluster studies (Karakus et al.): for shape <= 2 the variance is
/// infinite and for shape <= 1 even the mean diverges, so none of the
/// paper's shifted-exponential order-statistics predictions (Eq. 15 and
/// the H_n waiting times built on it) apply.
struct Pareto {
  double scale = 1.0;  ///< x_m, the left endpoint; must be > 0
  double shape = 2.0;  ///< alpha, the tail index; must be > 0

  double sample(Rng& rng) const;
  /// Mean scale*shape/(shape-1); requires shape > 1 (diverges otherwise).
  double mean() const;
  /// Variance scale^2*shape/((shape-1)^2(shape-2)); requires shape > 2.
  double variance() const;
  double cdf(double t) const;
  /// Inverse CDF; p in [0, 1).
  double quantile(double p) const;
};

/// Weibull distribution: Pr[T <= t] = 1 - exp(-(t/scale)^shape), t >= 0.
/// shape < 1 gives a subexponential (stretched-exponential) tail — slow
/// workers are rarer than Pareto but far more common than Eq. 15
/// predicts; shape = 1 recovers Exponential{1/scale}.
struct Weibull {
  double shape = 1.0;  ///< k; must be > 0
  double scale = 1.0;  ///< lambda; must be > 0

  double sample(Rng& rng) const;
  double mean() const;      ///< scale * Gamma(1 + 1/shape)
  double variance() const;  ///< scale^2 * (Gamma(1+2/k) - Gamma(1+1/k)^2)
  double cdf(double t) const;
  /// Inverse CDF; p in [0, 1).
  double quantile(double p) const;
};

/// Two-component spherical Gaussian mixture used by the paper's synthetic
/// dataset (Section III-C): x ~ 0.5 N(mu1, I) + 0.5 N(mu2, I).
struct GaussianMixture2 {
  /// Samples one scalar coordinate given the two component means.
  static double sample_coord(Rng& rng, bool first_component, double mean1,
                             double mean2) {
    return rng.normal(first_component ? mean1 : mean2, 1.0);
  }
};

}  // namespace coupon::stats
