#pragma once

/// \file distributions.hpp
/// Parametric distributions used by the latency models.
///
/// The paper models worker completion time with a *shifted exponential*
/// (Eq. 15): for a worker with straggler parameter mu, shift parameter a,
/// and computational load r,
///
///     Pr[T <= t] = 1 - exp(-(mu/r) * (t - a*r)),   t >= a*r.
///
/// i.e. a deterministic ramp `a*r` plus an exponential tail with rate
/// `mu/r` (both the floor and the tail scale linearly in the load).

#include <cstdint>

#include "stats/rng.hpp"

namespace coupon::stats {

/// Exponential distribution with rate `lambda` (mean 1/lambda).
struct Exponential {
  double lambda = 1.0;

  double sample(Rng& rng) const { return rng.exponential(lambda); }
  double mean() const { return 1.0 / lambda; }
  double variance() const { return 1.0 / (lambda * lambda); }
  double cdf(double t) const;
  /// Inverse CDF; p in [0, 1).
  double quantile(double p) const;
};

/// The paper's shifted-exponential completion-time model (Eq. 15).
///
/// `shift` is the deterministic minimum (a*r in the paper) and `rate` the
/// exponential tail rate (mu/r in the paper). Use `for_load` to build the
/// model directly from worker parameters (a, mu) and a load r.
struct ShiftedExponential {
  double shift = 0.0;  ///< deterministic floor, must be >= 0
  double rate = 1.0;   ///< tail rate, must be > 0

  /// Builds the model of Eq. 15 for a worker with shift parameter `a`,
  /// straggler parameter `mu`, processing `load` examples.
  static ShiftedExponential for_load(double a, double mu, double load);

  double sample(Rng& rng) const;
  double mean() const { return shift + 1.0 / rate; }
  double variance() const { return 1.0 / (rate * rate); }
  double cdf(double t) const;
  /// Inverse CDF; p in [0, 1).
  double quantile(double p) const;
};

/// Two-component spherical Gaussian mixture used by the paper's synthetic
/// dataset (Section III-C): x ~ 0.5 N(mu1, I) + 0.5 N(mu2, I).
struct GaussianMixture2 {
  /// Samples one scalar coordinate given the two component means.
  static double sample_coord(Rng& rng, bool first_component, double mean1,
                             double mean2) {
    return rng.normal(first_component ? mean1 : mean2, 1.0);
  }
};

}  // namespace coupon::stats
