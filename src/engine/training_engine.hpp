#pragma once

/// \file training_engine.hpp
/// The shared master-side distributed-GD protocol (DESIGN.md §8).
///
/// Every execution substrate in this codebase runs the same master loop:
/// broadcast the optimizer's query point, collect scheme-encoded worker
/// messages in arrival order until the scheme's `Collector` is ready,
/// resolve coverage failures per `FailurePolicy`, apply the decoded mean
/// gradient through an `IterativeOptimizer`, and track loss against
/// elapsed time. `TrainingEngine` owns that loop once; what varies per
/// substrate — how messages actually move and what "elapsed time" means —
/// hides behind the small `IterationProvider` seam:
///
///   * the threaded provider (runtime/thread_cluster.hpp) ships real
///     messages over an in-process network from real worker threads and
///     reports wall-clock seconds;
///   * the simulated provider (engine/simulated_provider.hpp) replays the
///     allocation-free `IterationKernel`'s arrival order and ingress
///     timing while computing *real* gradients, yielding deterministic
///     loss-vs-simulated-seconds curves at simulator speed.
///
/// Determinism: the engine itself is deterministic — every float it
/// touches comes from decode_sum / the optimizer in a fixed order. A run
/// is therefore exactly as reproducible as its provider's arrival
/// sequence (fully seed-determined for the simulated provider; for the
/// threaded one, schemes whose decode is arrival-order independent —
/// all workers of a batch/block send bitwise-identical messages, or the
/// collector slots per worker — still reproduce bit-for-bit).

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/gradient_source.hpp"
#include "core/scheme.hpp"
#include "engine/types.hpp"
#include "opt/optimizer.hpp"
#include "opt/trainer.hpp"
#include "stats/summary.hpp"

namespace coupon::engine {

/// One worker message as the master observes it. The spans alias
/// provider-owned storage and stay valid until the next
/// `next_arrival` / `begin_iteration` call.
struct ArrivalView {
  std::size_t worker = 0;
  std::span<const std::int64_t> meta;
  std::span<const double> payload;
};

/// What one iteration cost in time. `compute_seconds` is the max worker
/// compute among consumed messages where the substrate can separate
/// phases (simulated provider); 0 where it cannot (threaded provider —
/// wall-clock phases are not separable there).
struct IterationTiming {
  double total_seconds = 0.0;
  double compute_seconds = 0.0;
};

/// The transport/time substrate under the engine. One instance serves
/// one training run; calls arrive strictly as
/// begin_iteration (next_arrival)* end_iteration, once per iteration.
class IterationProvider {
 public:
  virtual ~IterationProvider() = default;

  /// Starts iteration `iteration` at query point `w`: broadcast it to
  /// the workers (threaded) or draw the iteration's arrival schedule and
  /// remember `w` for lazy encoding (simulated). `w` stays valid until
  /// `end_iteration`.
  virtual void begin_iteration(std::size_t iteration,
                               std::span<const double> w) = 0;

  /// Produces the next master-side arrival, or returns false when no
  /// more messages will arrive this iteration (all n workers accounted
  /// for). The engine stops calling as soon as its collector is ready.
  virtual bool next_arrival(ArrivalView& out) = 0;

  /// Ends the iteration after the engine stops consuming arrivals
  /// (recovery or exhaustion) and returns its timing.
  virtual IterationTiming end_iteration() = 0;
};

/// Master-side options of one training run.
struct TrainOptions {
  std::size_t iterations = 10;
  FailurePolicy on_failure = FailurePolicy::kSkipUpdate;
  /// When set, evaluated on the current iterate after every iteration;
  /// enables final_loss / time_to_target / loss_history below.
  std::function<double(std::span<const double>)> loss_fn;
  /// Record one LossPoint per iteration (requires loss_fn).
  bool record_loss_history = false;
  /// When set (requires loss_fn), `time_to_target` captures the elapsed
  /// seconds at the end of the first iteration whose loss <= target.
  std::optional<double> target_loss;
  /// Stop the run right after the target is reached instead of running
  /// all iterations (requires target_loss).
  bool stop_at_target = false;
  /// The scheme's decode_sum is a stochastic estimate (SGC): count every
  /// applied update in TrainReport::approximate_iterations so downstream
  /// records can flag how much of the trajectory rode on noisy gradients.
  bool approximate_recovery = false;
};

/// Result of a training run. `elapsed_seconds` is wall-clock for the
/// threaded provider and simulated seconds for the simulated one.
struct TrainReport {
  std::vector<double> weights;        ///< final model w_T
  stats::OnlineStats workers_heard;   ///< per-iteration K samples
  stats::OnlineStats units_received;  ///< per-iteration L samples
  double elapsed_seconds = 0.0;
  /// Summed per-iteration phase split, meaningful only for providers
  /// that separate phases (simulated). The threaded provider reports
  /// compute = 0 per iteration, which leaves comm == elapsed here —
  /// check compute_seconds > 0 before rendering the split.
  double compute_seconds = 0.0;
  double comm_seconds = 0.0;  ///< elapsed - compute
  std::size_t iterations_run = 0;      ///< < options.iterations on early stop
  std::size_t failed_iterations = 0;   ///< coverage failures (update skipped)
  std::size_t partial_iterations = 0;  ///< updates applied from partial sums
  /// Updates applied from a stochastic decode (options.approximate_recovery
  /// schemes): full and partial applied updates both count.
  std::size_t approximate_iterations = 0;
  std::optional<double> final_loss;     ///< loss_fn on the final iterate
  std::optional<double> time_to_target; ///< seconds to reach target_loss
  std::vector<LossPoint> loss_history;  ///< when record_loss_history
};

/// Stepwise form of the master-side training protocol: construct, call
/// `step()` until `done()`, then `take_report()`. Each `step()` runs
/// exactly one iteration of the loop `TrainingEngine::train` runs — the
/// same statements in the same order, so the trajectory is bitwise
/// identical. The stepwise seam exists so the batched train kernel can
/// advance many runs in lockstep and so the allocation tests can observe
/// per-iteration steady state.
///
/// All referenced objects (scheme, source, provider, optimizer, options)
/// must outlive the loop. When `grad_buffer` is non-empty it is used as
/// the per-iteration gradient buffer (size = source.dim()) instead of an
/// internal vector — the batched kernel passes rows of one flat C x p
/// arena so cells' gradients stay contiguous.
class TrainLoop {
 public:
  TrainLoop(const core::Scheme& scheme, const core::UnitGradientSource& source,
            IterationProvider& provider, opt::IterativeOptimizer& optimizer,
            const TrainOptions& options, std::span<double> grad_buffer = {});

  /// Runs one iteration. Precondition: !done().
  void step();

  /// True once all iterations ran or stop_at_target fired.
  bool done() const { return done_; }

  /// Finalizes the report (final weights + final_loss) and returns it.
  /// Call once, after done().
  TrainReport take_report();

 private:
  const core::Scheme& scheme_;
  const core::UnitGradientSource& source_;
  IterationProvider& provider_;
  opt::IterativeOptimizer& optimizer_;
  const TrainOptions& options_;
  std::unique_ptr<core::Collector> collector_;  ///< reset() per iteration
  std::vector<double> grad_storage_;  ///< backing when no external buffer
  std::span<double> grad_;
  TrainReport report_;
  std::size_t t_ = 0;
  bool done_ = false;
};

/// The master-side iteration protocol, bound to one scheme, one gradient
/// source, and one provider. Single-use-at-a-time: call `train` from one
/// thread.
class TrainingEngine {
 public:
  /// `scheme`, `source`, and `provider` must outlive the engine;
  /// `source.num_units()` must equal `scheme.num_units()`.
  TrainingEngine(const core::Scheme& scheme,
                 const core::UnitGradientSource& source,
                 IterationProvider& provider);

  /// Runs synchronous distributed GD for `options.iterations` iterations
  /// (fewer on stop_at_target), driving `optimizer` master-side.
  TrainReport train(opt::IterativeOptimizer& optimizer,
                    const TrainOptions& options);

 private:
  const core::Scheme& scheme_;
  const core::UnitGradientSource& source_;
  IterationProvider& provider_;
};

/// The serial ground-truth gradient oracle the distributed paths are
/// checked against: sums the unit gradients in unit order 0..m-1 and
/// divides by num_examples — the exact floating-point operation order of
/// a one-unit-per-worker uncoded distributed run, so the comparison is
/// bitwise, not approximate.
opt::GradientOracle reference_oracle(const core::UnitGradientSource& source);

}  // namespace coupon::engine
