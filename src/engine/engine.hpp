#pragma once

/// \file engine.hpp
/// Umbrella header for the engine module (the shared master-side
/// distributed-GD protocol and its providers).

#include "engine/batched_train.hpp"       // IWYU pragma: export
#include "engine/simulated_provider.hpp"  // IWYU pragma: export
#include "engine/training_engine.hpp"     // IWYU pragma: export
#include "engine/types.hpp"               // IWYU pragma: export
