#pragma once

/// \file batched_train.hpp
/// Lockstep multi-seed training kernel (DESIGN.md §12).
///
/// The simulate layer's `BatchedKernel` carries many timing-only sweep
/// cells through one iteration-major pass so a seed-replicated grid walks
/// memory sequentially. This is its training-path sibling: C same-shape
/// *training* runs (typically one scheme at several seeds) advance in
/// lockstep, one `TrainLoop::step()` per cell per iteration, with every
/// cell's per-iteration gradient living in one flat C x p arena row.
///
/// Determinism: each cell owns its RNG stream, provider, collector, and
/// optimizer, so interleaving cells cannot perturb any cell's draws or
/// floats — `run()` is bit-identical to training every cell sequentially
/// through its own `SimulatedProvider` + `TrainingEngine`, in any order.
/// The driver's batched-train test pins that equivalence byte-for-byte.

#include <cstddef>
#include <memory>
#include <vector>

#include "core/gradient_source.hpp"
#include "core/scheme.hpp"
#include "engine/simulated_provider.hpp"
#include "engine/training_engine.hpp"
#include "opt/optimizer.hpp"
#include "simulate/cluster_config.hpp"
#include "stats/rng.hpp"

namespace coupon::engine {

/// One cell of a `BatchedTrainKernel` run: a (scheme, source, cluster,
/// RNG stream, optimizer, options) tuple positioned exactly where a
/// sequential `SimulatedProvider` construction would start drawing —
/// i.e. `rng` is a copy of the caller's generator *after* scheme
/// construction consumed its share. `scheme`, `source`, and `optimizer`
/// must outlive the kernel; the cluster config is shared. All cells must
/// share one model dimension p.
struct BatchedTrainCell {
  const core::Scheme* scheme = nullptr;
  const core::UnitGradientSource* source = nullptr;
  std::shared_ptr<const simulate::ClusterConfig> cluster;
  stats::Rng rng{0};
  opt::IterativeOptimizer* optimizer = nullptr;
  TrainOptions options;
};

/// Advances C training runs in lockstep (iteration-major, cell-minor).
/// Cells that finish early (stop_at_target, shorter iteration budgets)
/// simply sit out the remaining rounds.
class BatchedTrainKernel {
 public:
  /// Validates the batch (non-empty, uniform dim) and builds one
  /// provider + train loop per cell over a flat C x p gradient arena.
  explicit BatchedTrainKernel(std::vector<BatchedTrainCell> cells);

  std::size_t num_cells() const { return cells_.size(); }

  /// Runs every cell to completion and returns one `TrainReport` per
  /// cell, in cell order. One-shot: call once per kernel.
  std::vector<TrainReport> run();

 private:
  struct CellState {
    BatchedTrainCell cell;
    std::unique_ptr<SimulatedProvider> provider;
    std::unique_ptr<TrainLoop> loop;
  };

  std::size_t dim_ = 0;
  std::vector<double> grad_arena_;  ///< flat C x p; cell c owns row c
  std::vector<CellState> cells_;
};

}  // namespace coupon::engine
