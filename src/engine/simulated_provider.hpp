#pragma once

/// \file simulated_provider.hpp
/// Simulated-time `IterationProvider`: the paper's convergence
/// experiments at simulator speed (DESIGN.md §8, §12).
///
/// Couples the allocation-free `IterationKernel`'s arrival order and
/// master-ingress timing (simulate/cluster_sim.hpp) with *real*
/// gradients from a `UnitGradientSource`: each iteration the provider
/// draws the kernel's (drop, compute-time) schedule, then lazily encodes
/// a worker's true message only when the engine actually consumes that
/// arrival. The ingress scan is the kernel's: each message waits for the
/// serialized master link, occupies it for its service time, and the
/// iteration ends at the recovery (or drain) completion.
///
/// The encode path is allocation-free in steady state and avoids
/// recomputing work within an iteration twice:
///
///   * unit gradients flow through a `CachedGradientSource`, so two
///     workers sharing a unit compute its gradient once per iteration
///     (bitwise transparent — see cached_gradient_source.hpp);
///   * schemes whose same-group workers send bitwise-identical messages
///     (BCC batches, FR blocks — `Scheme::encode_group`) are encoded
///     once per group per iteration and replayed from a group slot;
///   * everything else reuses one persistent message buffer through
///     `Scheme::encode_into`.
///
/// `ProviderOptions::cache_encode = false` restores the literal legacy
/// `scheme.encode` path (fresh message per arrival, no caches); the
/// equivalence tests drive both and require identical training
/// trajectories.
///
/// Timing is bit-identical to a timing-only `simulate_run` of the same
/// (scheme, cluster, seed) — the RNG draw order is the kernel's — while
/// the weights evolve exactly as the threaded runtime's would under the
/// same arrival order. A seed fully determines the
/// loss-vs-simulated-seconds curve.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comm/message.hpp"
#include "core/cached_gradient_source.hpp"
#include "core/gradient_source.hpp"
#include "core/scheme.hpp"
#include "engine/training_engine.hpp"
#include "simulate/cluster_sim.hpp"
#include "stats/rng.hpp"

namespace coupon::engine {

/// Knobs for SimulatedProvider construction.
struct ProviderOptions {
  /// Use the cached encode path (gradient memoization + group message
  /// reuse + encode_into). Off = the legacy fresh-encode-per-arrival
  /// path, kept for A/B equivalence testing.
  bool cache_encode = true;
};

/// Drives training over simulated time. One instance serves one run; the
/// scheme, source, and rng must outlive it.
class SimulatedProvider final : public IterationProvider {
 public:
  /// Validates `*cluster` (via make_latency_model) and builds the run's
  /// latency-model instance, so stateful models (Markov, trace replay)
  /// keep their cross-iteration state for the whole run. The config is
  /// shared, not copied — the batched kernels hand the same ClusterConfig
  /// to many providers. scheme/source/rng are referenced and must outlive
  /// the provider.
  SimulatedProvider(const core::Scheme& scheme,
                    const core::UnitGradientSource& source,
                    std::shared_ptr<const simulate::ClusterConfig> cluster,
                    stats::Rng& rng, ProviderOptions options = {});

  /// Convenience overload copying a by-value config into shared storage,
  /// so single-run callers can keep passing temporaries.
  SimulatedProvider(const core::Scheme& scheme,
                    const core::UnitGradientSource& source,
                    simulate::ClusterConfig cluster, stats::Rng& rng,
                    ProviderOptions options = {});

  void begin_iteration(std::size_t iteration,
                       std::span<const double> w) override;
  bool next_arrival(ArrivalView& out) override;
  IterationTiming end_iteration() override;

 private:
  const core::Scheme& scheme_;
  const core::UnitGradientSource& source_;
  std::shared_ptr<const simulate::ClusterConfig> cluster_;
  stats::Rng& rng_;
  ProviderOptions options_;
  core::CachedGradientSource cache_;  ///< memoizes unit gradients over source_
  std::unique_ptr<simulate::LatencyModel> model_;
  simulate::IterationKernel kernel_;

  // Per-iteration state.
  std::span<const double> w_;  ///< query point, valid through the iteration
  std::size_t arrival_count_ = 0;  ///< arrivals drawn this iteration
  std::size_t cursor_ = 0;        ///< next arrival to hand out
  double ingress_free_at_ = 0.0;  ///< the serialized link's busy-until
  double max_compute_ = 0.0;      ///< max compute among consumed arrivals
  bool any_consumed_ = false;
  comm::Message message_;  ///< reused encode buffer (view storage)
  /// Group message cache: one slot per scheme encode group, valid flags
  /// cleared each begin_iteration. Empty for schemes without groups.
  std::vector<comm::Message> group_msgs_;
  std::vector<std::uint8_t> group_valid_;
};

}  // namespace coupon::engine
