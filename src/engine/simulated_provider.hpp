#pragma once

/// \file simulated_provider.hpp
/// Simulated-time `IterationProvider`: the paper's convergence
/// experiments at simulator speed (DESIGN.md §8).
///
/// Couples the allocation-free `IterationKernel`'s arrival order and
/// master-ingress timing (simulate/cluster_sim.hpp) with *real*
/// gradients from a `UnitGradientSource`: each iteration the provider
/// draws the kernel's (drop, compute-time) schedule, then lazily encodes
/// a worker's true message — `scheme.encode(worker, source, w)` — only
/// when the engine actually consumes that arrival. The ingress scan is
/// the kernel's: each message waits for the serialized master link,
/// occupies it for its service time, and the iteration ends at the
/// recovery (or drain) completion.
///
/// Timing is therefore bit-identical to a timing-only `simulate_run` of
/// the same (scheme, cluster, seed) — the RNG draw order is the
/// kernel's — while the weights evolve exactly as the threaded runtime's
/// would under the same arrival order. A seed fully determines the
/// loss-vs-simulated-seconds curve.

#include <span>
#include <vector>

#include "comm/message.hpp"
#include "core/gradient_source.hpp"
#include "core/scheme.hpp"
#include "engine/training_engine.hpp"
#include "simulate/cluster_sim.hpp"
#include "stats/rng.hpp"

namespace coupon::engine {

/// Drives training over simulated time. One instance serves one run; the
/// scheme, source, cluster config, and rng must outlive it.
class SimulatedProvider final : public IterationProvider {
 public:
  /// Validates `cluster` (via make_latency_model) and builds the run's
  /// latency-model instance, so stateful models (Markov, trace replay)
  /// keep their cross-iteration state for the whole run. The config is
  /// copied, so a temporary is fine; scheme/source/rng are referenced
  /// and must outlive the provider.
  SimulatedProvider(const core::Scheme& scheme,
                    const core::UnitGradientSource& source,
                    simulate::ClusterConfig cluster, stats::Rng& rng);

  void begin_iteration(std::size_t iteration,
                       std::span<const double> w) override;
  bool next_arrival(ArrivalView& out) override;
  IterationTiming end_iteration() override;

 private:
  const core::Scheme& scheme_;
  const core::UnitGradientSource& source_;
  const simulate::ClusterConfig cluster_;  ///< owned: kernel_ references it
  stats::Rng& rng_;
  std::unique_ptr<simulate::LatencyModel> model_;
  simulate::IterationKernel kernel_;

  // Per-iteration state.
  std::span<const double> w_;  ///< query point, valid through the iteration
  std::span<const simulate::IterationKernel::Arrival> arrivals_;
  std::size_t cursor_ = 0;        ///< next arrival to hand out
  double ingress_free_at_ = 0.0;  ///< the serialized link's busy-until
  double max_compute_ = 0.0;      ///< max compute among consumed arrivals
  bool any_consumed_ = false;
  comm::Message message_;  ///< the last encoded message (view storage)
};

}  // namespace coupon::engine
