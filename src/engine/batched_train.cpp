#include "engine/batched_train.hpp"

#include <span>
#include <utility>

#include "util/assert.hpp"

namespace coupon::engine {

BatchedTrainKernel::BatchedTrainKernel(std::vector<BatchedTrainCell> cells) {
  COUPON_ASSERT_MSG(!cells.empty(),
                    "BatchedTrainKernel needs at least one cell");
  dim_ = cells.front().source->dim();
  for (const BatchedTrainCell& cell : cells) {
    COUPON_ASSERT(cell.scheme != nullptr && cell.source != nullptr &&
                  cell.optimizer != nullptr && cell.cluster != nullptr);
    COUPON_ASSERT_MSG(cell.source->dim() == dim_,
                      "BatchedTrainKernel cells must share one model dim");
  }

  // The arena must be sized before any TrainLoop captures a row span, and
  // cells_ must never reallocate after a provider captures a cell's RNG —
  // hence the reserve + single pass.
  grad_arena_.assign(cells.size() * dim_, 0.0);
  cells_.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    cells_.push_back(CellState{std::move(cells[c]), nullptr, nullptr});
    CellState& state = cells_.back();
    state.provider = std::make_unique<SimulatedProvider>(
        *state.cell.scheme, *state.cell.source, state.cell.cluster,
        state.cell.rng);
    state.loop = std::make_unique<TrainLoop>(
        *state.cell.scheme, *state.cell.source, *state.provider,
        *state.cell.optimizer, state.cell.options,
        std::span<double>(grad_arena_).subspan(c * dim_, dim_));
  }
}

std::vector<TrainReport> BatchedTrainKernel::run() {
  // Iteration-major, cell-minor: every live cell advances one iteration
  // before any cell advances two. Cells are independent (own RNG, own
  // provider/collector/optimizer state), so this ordering is purely a
  // locality choice and the trajectories match sequential runs bit for
  // bit.
  bool any_live = true;
  while (any_live) {
    any_live = false;
    for (CellState& state : cells_) {
      if (!state.loop->done()) {
        state.loop->step();
        any_live = any_live || !state.loop->done();
      }
    }
  }
  std::vector<TrainReport> reports;
  reports.reserve(cells_.size());
  for (CellState& state : cells_) {
    reports.push_back(state.loop->take_report());
  }
  return reports;
}

}  // namespace coupon::engine
