#include "engine/simulated_provider.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace coupon::engine {

SimulatedProvider::SimulatedProvider(const core::Scheme& scheme,
                                     const core::UnitGradientSource& source,
                                     simulate::ClusterConfig cluster,
                                     stats::Rng& rng)
    : scheme_(scheme),
      source_(source),
      cluster_(std::move(cluster)),
      rng_(rng),
      model_(simulate::make_latency_model(cluster_, scheme.num_workers())),
      kernel_(scheme, cluster_) {
  COUPON_ASSERT(source.num_units() == scheme.num_units());
}

void SimulatedProvider::begin_iteration(std::size_t iteration,
                                        std::span<const double> w) {
  w_ = w;
  arrivals_ = kernel_.draw_arrivals(*model_, iteration, rng_);
  cursor_ = 0;
  ingress_free_at_ = 0.0;
  max_compute_ = 0.0;
  any_consumed_ = false;
}

bool SimulatedProvider::next_arrival(ArrivalView& out) {
  if (cursor_ == arrivals_.size()) {
    return false;
  }
  const auto& arrival = arrivals_[cursor_++];

  // The kernel's ingress recurrence: the message waits for the serialized
  // link, then occupies it for its service time. The busy-until after the
  // last consumed message is the iteration's completion time.
  const double start = std::max(arrival.time, ingress_free_at_);
  ingress_free_at_ = start + kernel_.service_seconds(arrival.worker);
  max_compute_ = std::max(max_compute_, arrival.compute);
  any_consumed_ = true;

  // The real worker computation, evaluated only for messages the master
  // actually sits through — exactly the work a physical cluster performs
  // before the collector becomes ready.
  message_ = scheme_.encode(arrival.worker, source_, w_);
  out.worker = arrival.worker;
  out.meta = message_.meta;
  out.payload = message_.payload;
  return true;
}

IterationTiming SimulatedProvider::end_iteration() {
  IterationTiming timing;
  // Mirrors IterationKernel::run's accounting: completion is the last
  // ingress busy-until (0.0 when every message was dropped and nothing
  // arrived); computation is the max compute among consumed arrivals,
  // communication the remainder.
  timing.total_seconds = any_consumed_ ? ingress_free_at_ : 0.0;
  timing.compute_seconds = max_compute_;
  return timing;
}

}  // namespace coupon::engine
