#include "engine/simulated_provider.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/assert.hpp"

namespace coupon::engine {

SimulatedProvider::SimulatedProvider(
    const core::Scheme& scheme, const core::UnitGradientSource& source,
    std::shared_ptr<const simulate::ClusterConfig> cluster, stats::Rng& rng,
    ProviderOptions options)
    : scheme_(scheme),
      source_(source),
      cluster_(std::move(cluster)),
      rng_(rng),
      options_(options),
      cache_(source),
      model_(simulate::make_latency_model(*cluster_, scheme.num_workers())),
      kernel_(scheme, *cluster_) {
  COUPON_ASSERT(source.num_units() == scheme.num_units());
  if (options_.cache_encode) {
    group_msgs_.resize(scheme.num_encode_groups());
    group_valid_.assign(scheme.num_encode_groups(), 0);
  }
}

SimulatedProvider::SimulatedProvider(const core::Scheme& scheme,
                                     const core::UnitGradientSource& source,
                                     simulate::ClusterConfig cluster,
                                     stats::Rng& rng, ProviderOptions options)
    : SimulatedProvider(
          scheme, source,
          std::make_shared<const simulate::ClusterConfig>(std::move(cluster)),
          rng, options) {}

void SimulatedProvider::begin_iteration(std::size_t iteration,
                                        std::span<const double> w) {
  w_ = w;
  // Lazy arrivals: the engine stops consuming at recovery, so only the
  // kernel's selection prefix is sorted up front (bit-identical order —
  // see IterationKernel::sorted_arrival).
  arrival_count_ = kernel_.begin_lazy_arrivals(*model_, iteration, rng_);
  cursor_ = 0;
  ingress_free_at_ = 0.0;
  max_compute_ = 0.0;
  any_consumed_ = false;
  cache_.begin_iteration();
  std::fill(group_valid_.begin(), group_valid_.end(),
            static_cast<std::uint8_t>(0));
}

bool SimulatedProvider::next_arrival(ArrivalView& out) {
  if (cursor_ == arrival_count_) {
    return false;
  }
  const auto& arrival = kernel_.sorted_arrival(cursor_++);

  // The kernel's ingress recurrence: the message waits for the serialized
  // link, then occupies it for its service time. The busy-until after the
  // last consumed message is the iteration's completion time.
  const double start = std::max(arrival.time, ingress_free_at_);
  ingress_free_at_ = start + kernel_.service_seconds(arrival.worker);
  max_compute_ = std::max(max_compute_, arrival.compute);
  any_consumed_ = true;

  // The real worker computation, evaluated only for messages the master
  // actually sits through — exactly the work a physical cluster performs
  // before the collector becomes ready.
  out.worker = arrival.worker;
  if (!options_.cache_encode) {
    message_ = scheme_.encode(arrival.worker, source_, w_);
    out.meta = message_.meta;
    out.payload = message_.payload;
    return true;
  }
  if (const auto group = scheme_.encode_group(arrival.worker)) {
    // All workers of this group send bitwise-identical messages: encode
    // the first one this iteration into the group's persistent slot and
    // replay it for the rest.
    comm::Message& slot = group_msgs_[*group];
    if (!group_valid_[*group]) {
      scheme_.encode_into(arrival.worker, cache_, w_, slot);
      group_valid_[*group] = 1;
    }
    out.meta = slot.meta;
    out.payload = slot.payload;
    return true;
  }
  scheme_.encode_into(arrival.worker, cache_, w_, message_);
  out.meta = message_.meta;
  out.payload = message_.payload;
  return true;
}

IterationTiming SimulatedProvider::end_iteration() {
  IterationTiming timing;
  // Mirrors IterationKernel::run's accounting: completion is the last
  // ingress busy-until (0.0 when every message was dropped and nothing
  // arrived); computation is the max compute among consumed arrivals,
  // communication the remainder.
  timing.total_seconds = any_consumed_ ? ingress_free_at_ : 0.0;
  timing.compute_seconds = max_compute_;
  return timing;
}

}  // namespace coupon::engine
