#include "engine/training_engine.hpp"

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::engine {

TrainingEngine::TrainingEngine(const core::Scheme& scheme,
                               const core::UnitGradientSource& source,
                               IterationProvider& provider)
    : scheme_(scheme),
      source_(source),
      provider_(provider),
      collector_(scheme.make_collector()) {
  COUPON_ASSERT(source.num_units() == scheme.num_units());
}

TrainReport TrainingEngine::train(opt::IterativeOptimizer& optimizer,
                                  const TrainOptions& options) {
  const std::size_t dim = source_.dim();
  COUPON_ASSERT(optimizer.weights().size() == dim);
  COUPON_ASSERT_MSG(!options.record_loss_history || options.loss_fn,
                    "record_loss_history requires a loss_fn");
  COUPON_ASSERT_MSG(!options.target_loss || options.loss_fn,
                    "target_loss requires a loss_fn");

  TrainReport report;
  std::vector<double> grad(dim);

  for (std::size_t t = 0; t < options.iterations; ++t) {
    collector_->reset();
    provider_.begin_iteration(t, optimizer.query_point());

    ArrivalView arrival;
    while (!collector_->ready() && provider_.next_arrival(arrival)) {
      collector_->offer(arrival.worker, arrival.meta, arrival.payload);
    }
    const IterationTiming timing = provider_.end_iteration();
    report.elapsed_seconds += timing.total_seconds;
    report.compute_seconds += timing.compute_seconds;
    report.comm_seconds += timing.total_seconds - timing.compute_seconds;
    ++report.iterations_run;

    report.workers_heard.add(
        static_cast<double>(collector_->workers_heard()));
    report.units_received.add(collector_->units_received());

    bool applied = false;
    if (collector_->ready()) {
      collector_->decode_sum(grad);
      linalg::scal(1.0 / static_cast<double>(source_.num_examples()), grad);
      optimizer.apply_gradient(grad);
      applied = true;
    } else if (options.on_failure == FailurePolicy::kApplyPartial &&
               collector_->supports_partial_decode()) {
      const std::size_t covered = collector_->decode_partial_sum(grad);
      if (covered > 0) {
        // Mean-gradient estimate: the partial sum spans `covered` of
        // num_units units, i.e. about num_examples * covered/num_units
        // underlying examples.
        const double covered_examples =
            static_cast<double>(source_.num_examples()) *
            static_cast<double>(covered) /
            static_cast<double>(source_.num_units());
        linalg::scal(1.0 / covered_examples, grad);
        optimizer.apply_gradient(grad);
        ++report.partial_iterations;
        applied = true;
      }
    }
    if (!applied && !collector_->ready()) {
      ++report.failed_iterations;
    }
    if (applied && options.approximate_recovery) {
      ++report.approximate_iterations;
    }

    // Per-iteration loss evaluation costs a full-dataset pass — do it
    // only when a consumer asked for the curve or the target crossing;
    // final_loss alone is computed once, after the loop.
    if (options.loss_fn &&
        (options.record_loss_history || options.target_loss)) {
      const double loss = options.loss_fn(optimizer.weights());
      if (options.record_loss_history) {
        report.loss_history.push_back({report.elapsed_seconds, loss});
      }
      if (options.target_loss && !report.time_to_target &&
          loss <= *options.target_loss) {
        report.time_to_target = report.elapsed_seconds;
        if (options.stop_at_target) {
          break;
        }
      }
    }
  }

  auto w = optimizer.weights();
  report.weights.assign(w.begin(), w.end());
  if (options.loss_fn) {
    report.final_loss = options.loss_fn(report.weights);
  }
  return report;
}

opt::GradientOracle reference_oracle(const core::UnitGradientSource& source) {
  return [&source](std::span<const double> w, std::span<double> grad) {
    linalg::fill(grad, 0.0);
    for (std::size_t unit = 0; unit < source.num_units(); ++unit) {
      source.accumulate_unit_gradient(unit, w, grad);
    }
    linalg::scal(1.0 / static_cast<double>(source.num_examples()), grad);
  };
}

}  // namespace coupon::engine
