#include "engine/training_engine.hpp"

#include <utility>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::engine {

TrainLoop::TrainLoop(const core::Scheme& scheme,
                     const core::UnitGradientSource& source,
                     IterationProvider& provider,
                     opt::IterativeOptimizer& optimizer,
                     const TrainOptions& options,
                     std::span<double> grad_buffer)
    : scheme_(scheme),
      source_(source),
      provider_(provider),
      optimizer_(optimizer),
      options_(options),
      collector_(scheme.make_collector()) {
  const std::size_t dim = source.dim();
  COUPON_ASSERT(source.num_units() == scheme.num_units());
  COUPON_ASSERT(optimizer.weights().size() == dim);
  COUPON_ASSERT_MSG(!options.record_loss_history || options.loss_fn,
                    "record_loss_history requires a loss_fn");
  COUPON_ASSERT_MSG(!options.target_loss || options.loss_fn,
                    "target_loss requires a loss_fn");
  if (grad_buffer.empty()) {
    grad_storage_.resize(dim);
    grad_ = grad_storage_;
  } else {
    COUPON_ASSERT(grad_buffer.size() == dim);
    grad_ = grad_buffer;
  }
  if (options.record_loss_history) {
    report_.loss_history.reserve(options.iterations);
  }
  done_ = options.iterations == 0;
}

void TrainLoop::step() {
  COUPON_ASSERT(!done_);
  const std::size_t t = t_;
  collector_->reset();
  provider_.begin_iteration(t, optimizer_.query_point());

  ArrivalView arrival;
  while (!collector_->ready() && provider_.next_arrival(arrival)) {
    collector_->offer(arrival.worker, arrival.meta, arrival.payload);
  }
  const IterationTiming timing = provider_.end_iteration();
  report_.elapsed_seconds += timing.total_seconds;
  report_.compute_seconds += timing.compute_seconds;
  report_.comm_seconds += timing.total_seconds - timing.compute_seconds;
  ++report_.iterations_run;

  report_.workers_heard.add(
      static_cast<double>(collector_->workers_heard()));
  report_.units_received.add(collector_->units_received());

  bool applied = false;
  if (collector_->ready()) {
    collector_->decode_sum(grad_);
    linalg::scal(1.0 / static_cast<double>(source_.num_examples()), grad_);
    optimizer_.apply_gradient(grad_);
    applied = true;
  } else if (options_.on_failure == FailurePolicy::kApplyPartial &&
             collector_->supports_partial_decode()) {
    const std::size_t covered = collector_->decode_partial_sum(grad_);
    if (covered > 0) {
      // Mean-gradient estimate: the partial sum spans `covered` of
      // num_units units, i.e. about num_examples * covered/num_units
      // underlying examples.
      const double covered_examples =
          static_cast<double>(source_.num_examples()) *
          static_cast<double>(covered) /
          static_cast<double>(source_.num_units());
      linalg::scal(1.0 / covered_examples, grad_);
      optimizer_.apply_gradient(grad_);
      ++report_.partial_iterations;
      applied = true;
    }
  }
  if (!applied && !collector_->ready()) {
    ++report_.failed_iterations;
  }
  if (applied && options_.approximate_recovery) {
    ++report_.approximate_iterations;
  }

  // Per-iteration loss evaluation costs a full-dataset pass — do it
  // only when a consumer asked for the curve or the target crossing;
  // final_loss alone is computed once, after the loop.
  if (options_.loss_fn &&
      (options_.record_loss_history || options_.target_loss)) {
    const double loss = options_.loss_fn(optimizer_.weights());
    if (options_.record_loss_history) {
      report_.loss_history.push_back({report_.elapsed_seconds, loss});
    }
    if (options_.target_loss && !report_.time_to_target &&
        loss <= *options_.target_loss) {
      report_.time_to_target = report_.elapsed_seconds;
      if (options_.stop_at_target) {
        done_ = true;
      }
    }
  }

  ++t_;
  if (t_ >= options_.iterations) {
    done_ = true;
  }
}

TrainReport TrainLoop::take_report() {
  COUPON_ASSERT(done_);
  auto w = optimizer_.weights();
  report_.weights.assign(w.begin(), w.end());
  if (options_.loss_fn) {
    report_.final_loss = options_.loss_fn(report_.weights);
  }
  return std::move(report_);
}

TrainingEngine::TrainingEngine(const core::Scheme& scheme,
                               const core::UnitGradientSource& source,
                               IterationProvider& provider)
    : scheme_(scheme), source_(source), provider_(provider) {
  COUPON_ASSERT(source.num_units() == scheme.num_units());
}

TrainReport TrainingEngine::train(opt::IterativeOptimizer& optimizer,
                                  const TrainOptions& options) {
  TrainLoop loop(scheme_, source_, provider_, optimizer, options);
  while (!loop.done()) {
    loop.step();
  }
  return loop.take_report();
}

opt::GradientOracle reference_oracle(const core::UnitGradientSource& source) {
  return [&source](std::span<const double> w, std::span<double> grad) {
    linalg::fill(grad, 0.0);
    for (std::size_t unit = 0; unit < source.num_units(); ++unit) {
      source.accumulate_unit_gradient(unit, w, grad);
    }
    linalg::scal(1.0 / static_cast<double>(source.num_examples()), grad);
  };
}

}  // namespace coupon::engine
