#pragma once

/// \file types.hpp
/// Small, dependency-free engine vocabulary types. Split out of
/// training_engine.hpp so configuration layers (driver/
/// experiment_config.hpp) can name them without pulling the scheme /
/// optimizer / simulator headers the engine itself needs.

namespace coupon::engine {

/// What the master does when an iteration cannot be fully recovered
/// (e.g. a BCC placement that misses a batch at small n).
enum class FailurePolicy {
  /// Drop the iteration entirely — the paper's implicit behaviour.
  kSkipUpdate,
  /// Apply the covered-so-far gradient rescaled to a mean-gradient
  /// estimate (the "ignoring stragglers" approximation; library
  /// extension). Falls back to skipping for schemes without partial
  /// decoding (CR) or when nothing was covered.
  kApplyPartial,
};

/// One point of a loss-vs-time convergence curve: the loss of the
/// current iterate, stamped with the run's elapsed seconds (wall-clock
/// on the threaded provider, simulated seconds on the simulated one).
struct LossPoint {
  double seconds = 0.0;
  double loss = 0.0;
};

}  // namespace coupon::engine
