#include "driver/driver.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "core/gradient_source.hpp"
#include "data/batching.hpp"
#include "data/synthetic.hpp"
#include "opt/logistic.hpp"
#include "opt/optimizer.hpp"
#include "runtime/thread_cluster.hpp"
#include "simulate/cluster_sim.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"
#include "util/csv.hpp"

namespace coupon::driver {

namespace {

Scenario scenario_or_throw(const ExperimentConfig& config) {
  auto scenario = make_scenario(config.scenario, config.num_workers);
  if (!scenario) {
    throw std::invalid_argument("unknown scenario: " + config.scenario);
  }
  return *std::move(scenario);
}

core::SchemeConfig scheme_config(const ExperimentConfig& config,
                                 bool seed_first_batches) {
  core::SchemeConfig sconf;
  sconf.num_workers = config.num_workers;
  sconf.num_units = config.num_units;
  sconf.load = config.load;
  sconf.bcc_seed_first_batches = seed_first_batches;
  return sconf;
}

ExperimentResult run_simulated(const ExperimentConfig& config,
                               const Scenario& scenario) {
  stats::Rng rng(config.seed);
  auto scheme = core::make_scheme(
      config.scheme, scheme_config(config, /*seed_first_batches=*/false), rng);
  const simulate::RunReport run =
      simulate_run(*scheme, scenario.cluster, config.iterations, rng);

  // Trace columns come from simulate::iteration_csv_header/fields so the
  // schema matches write_iteration_csv exactly; we only prefix the run's
  // identity.
  ExperimentResult result;
  result.header = {"scheme", "scenario", "runtime"};
  const auto& trace_header = simulate::iteration_csv_header();
  result.header.insert(result.header.end(), trace_header.begin(),
                       trace_header.end());
  const std::string scheme_name(scheme_cli_name(config.scheme));
  for (std::size_t t = 0; t < run.iterations.size(); ++t) {
    std::vector<std::string> row = {scheme_name, config.scenario, "sim"};
    auto fields = simulate::iteration_csv_fields(t, run.iterations[t]);
    row.insert(row.end(), std::make_move_iterator(fields.begin()),
               std::make_move_iterator(fields.end()));
    result.rows.push_back(std::move(row));
  }

  result.summary.kind = config.scheme;
  result.summary.scheme = std::string(scheme->name());
  result.summary.recovery_threshold = run.workers_heard.mean();
  result.summary.comm_time = run.total_comm_time;
  result.summary.compute_time = run.total_compute_time;
  result.summary.total_time = run.total_time;
  result.summary.mean_units = run.units_received.mean();
  result.summary.failures = run.failures;
  return result;
}

ExperimentResult run_threaded(const ExperimentConfig& config,
                              const Scenario& scenario) {
  if (scenario.sim_only) {
    throw std::invalid_argument(
        "scenario '" + scenario.name +
        "' only varies simulator-side knobs; use --runtime sim");
  }
  stats::Rng rng(config.seed);

  // Synthetic logistic-regression workload: m units of `examples_per_unit`
  // points each ("super examples", footnote 1 of the paper).
  const std::size_t num_examples = config.num_units * config.examples_per_unit;
  data::SyntheticConfig dconf;
  dconf.num_features = config.features;
  const auto problem = data::generate_logreg(num_examples, dconf, rng);
  data::BatchPartition partition(num_examples, config.examples_per_unit);
  COUPON_ASSERT(partition.num_batches() == config.num_units);
  core::GroupedBatchSource source(problem.dataset, partition);

  // Seeded first batches guarantee per-iteration BCC coverage, matching
  // the quickstart's real-training setup.
  auto scheme = core::make_scheme(
      config.scheme, scheme_config(config, /*seed_first_batches=*/true), rng);

  runtime::ThreadCluster cluster(*scheme, source, config.seed + 42);
  opt::NesterovGradient optimizer(
      config.features, opt::LearningRateSchedule::constant(config.learning_rate));

  runtime::TrainOptions options;
  options.iterations = config.iterations;
  options.straggler = scenario.straggler;

  const auto run = cluster.train(optimizer, options);
  const double loss = opt::logistic_loss(problem.dataset, run.weights);
  const double acc = opt::accuracy(problem.dataset, run.weights);

  ExperimentResult result;
  result.header = {"scheme",        "scenario",
                   "runtime",       "workers",
                   "units",         "load",
                   "iterations",    "wall_seconds",
                   "mean_workers_heard", "mean_units_received",
                   "failed_iterations",  "partial_iterations",
                   "final_loss",    "train_accuracy"};
  result.rows.push_back(
      {std::string(scheme_cli_name(config.scheme)), config.scenario,
       "threaded", std::to_string(config.num_workers),
       std::to_string(config.num_units), std::to_string(config.load),
       std::to_string(config.iterations), format_double(run.wall_seconds, 6),
       format_double(run.workers_heard.mean(), 3),
       format_double(run.units_received.mean(), 3),
       std::to_string(run.failed_iterations),
       std::to_string(run.partial_iterations), format_double(loss, 6),
       format_double(acc, 4)});

  result.summary.kind = config.scheme;
  result.summary.scheme = std::string(scheme->name());
  result.summary.recovery_threshold = run.workers_heard.mean();
  result.summary.total_time = run.wall_seconds;
  result.summary.mean_units = run.units_received.mean();
  result.summary.failures = run.failed_iterations;
  return result;
}

}  // namespace

ExperimentConfig config_from_sim_scenario(const simulate::ScenarioConfig& s) {
  ExperimentConfig config;
  config.num_workers = s.num_workers;
  config.num_units = s.num_units;
  config.load = s.load;
  config.iterations = s.iterations;
  config.seed = s.seed;
  return config;
}

void add_experiment_flags(CliFlags& flags) {
  flags.add_string("scheme", "bcc", "gradient-coding scheme (" +
                                        scheme_choices() + ")")
      .add_string("scenario", "shifted_exp",
                  "straggler scenario (" + scenario_choices() + ")")
      .add_string("runtime", "sim",
                  "execution substrate (" + runtime_choices() + ")")
      .add_int("workers", 50, "number of workers n")
      .add_int("units", 50, "number of gradient units m")
      .add_int("load", 10, "computational load r, units per worker")
      .add_int("iterations", 100, "GD iterations per run")
      .add_int("seed", 1, "PRNG seed")
      .add_int("features", 20, "threaded runtime: feature dimension p")
      .add_int("examples_per_unit", 20,
               "threaded runtime: training examples per unit")
      .add_double("learning_rate", 2.0,
                  "threaded runtime: Nesterov learning rate");
}

std::optional<ExperimentConfig> config_from_flags(const CliFlags& flags) {
  ExperimentConfig config;

  const auto scheme = parse_scheme(flags.get_string("scheme"));
  if (!scheme) {
    std::fprintf(stderr, "unknown --scheme '%s' (choices: %s)\n",
                 flags.get_string("scheme").c_str(), scheme_choices().c_str());
    return std::nullopt;
  }
  config.scheme = *scheme;

  config.scenario = flags.get_string("scenario");
  const auto scenario = make_scenario(config.scenario, 1);
  if (!scenario) {
    std::fprintf(stderr, "unknown --scenario '%s' (choices: %s)\n",
                 config.scenario.c_str(), scenario_choices().c_str());
    return std::nullopt;
  }

  const auto runtime = parse_runtime(flags.get_string("runtime"));
  if (!runtime) {
    std::fprintf(stderr, "unknown --runtime '%s' (choices: %s)\n",
                 flags.get_string("runtime").c_str(),
                 runtime_choices().c_str());
    return std::nullopt;
  }
  config.runtime = *runtime;
  if (config.runtime == RuntimeKind::kThreaded && scenario->sim_only) {
    std::fprintf(stderr,
                 "--scenario %s only varies simulator-side knobs; use "
                 "--runtime sim\n",
                 config.scenario.c_str());
    return std::nullopt;
  }

  config.num_workers = static_cast<std::size_t>(flags.get_int("workers"));
  config.num_units = static_cast<std::size_t>(flags.get_int("units"));
  config.load = static_cast<std::size_t>(flags.get_int("load"));
  config.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.features = static_cast<std::size_t>(flags.get_int("features"));
  config.examples_per_unit =
      static_cast<std::size_t>(flags.get_int("examples_per_unit"));
  config.learning_rate = flags.get_double("learning_rate");
  return config;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const Scenario scenario = scenario_or_throw(config);
  switch (config.runtime) {
    case RuntimeKind::kSimulated:
      return run_simulated(config, scenario);
    case RuntimeKind::kThreaded:
      return run_threaded(config, scenario);
  }
  throw std::invalid_argument("unknown runtime");
}

void write_csv(std::ostream& os, const ExperimentResult& result) {
  CsvWriter csv(os);
  csv.row(result.header);
  for (const auto& row : result.rows) {
    csv.row(row);
  }
}

std::vector<simulate::SchemeRunRow> run_scheme_comparison(
    const ExperimentConfig& config,
    const std::vector<core::SchemeKind>& kinds) {
  const Scenario scenario = scenario_or_throw(config);

  simulate::ScenarioConfig sim;
  sim.name = scenario.name;
  sim.num_workers = config.num_workers;
  sim.num_units = config.num_units;
  sim.load = config.load;
  sim.iterations = config.iterations;
  sim.cluster = scenario.cluster;
  sim.seed = config.seed;
  return simulate::run_scenario(sim, kinds);
}

AsciiTable comparison_table(const std::vector<simulate::SchemeRunRow>& rows) {
  AsciiTable table({"scheme", "recovery threshold", "communication time (s)",
                    "computation time (s)", "total running time (s)"});
  table.set_align(0, Align::kLeft);
  for (const auto& row : rows) {
    table.add_row({row.scheme, format_double(row.recovery_threshold, 1),
                   format_double(row.comm_time, 3),
                   format_double(row.compute_time, 3),
                   format_double(row.total_time, 3)});
  }
  return table;
}

void write_comparison_csv(std::ostream& os,
                          const std::vector<simulate::SchemeRunRow>& rows) {
  CsvWriter csv(os);
  csv.row({"scheme", "recovery_threshold", "comm_time", "compute_time",
           "total_time", "mean_units", "failures"});
  for (const auto& row : rows) {
    csv.row({row.scheme, format_double(row.recovery_threshold, 3),
             format_double(row.comm_time, 6), format_double(row.compute_time, 6),
             format_double(row.total_time, 6), format_double(row.mean_units, 3),
             std::to_string(row.failures)});
  }
}

namespace {

template <typename WriteFn>
bool write_to_path(const std::string& path, WriteFn&& write) {
  if (path == "-") {
    write(std::cout);
    std::cout.flush();
    if (!std::cout) {
      std::fprintf(stderr, "error writing CSV to stdout\n");
      return false;
    }
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  write(out);
  out.close();  // flush and surface truncated writes (e.g. full disk)
  if (!out) {
    std::fprintf(stderr, "error writing '%s'\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool write_csv_to_path(const std::string& path,
                       const ExperimentResult& result) {
  return write_to_path(
      path, [&](std::ostream& os) { write_csv(os, result); });
}

bool write_comparison_csv_to_path(
    const std::string& path, const std::vector<simulate::SchemeRunRow>& rows) {
  return write_to_path(
      path, [&](std::ostream& os) { write_comparison_csv(os, rows); });
}

}  // namespace coupon::driver
