#include "driver/driver.hpp"

#include <cstdio>
#include <stdexcept>

#include "core/scheme_registry.hpp"
#include "driver/runtime_registry.hpp"
#include "util/assert.hpp"

namespace coupon::driver {

ExperimentConfig config_from_sim_scenario(const simulate::ScenarioConfig& s) {
  ExperimentConfig config;
  config.num_workers = s.num_workers;
  config.num_units = s.num_units;
  config.load = s.load;
  config.iterations = s.iterations;
  config.seed = s.seed;
  config.cluster_override =
      std::make_shared<const simulate::ClusterConfig>(s.cluster);
  return config;
}

void add_experiment_flags(CliFlags& flags) {
  flags.add_string("scheme", "bcc",
                   "gradient-coding scheme (" + scheme_choices() +
                       "; 'auto' = let the analytic oracle pick)")
      .add_string("scenario", "shifted_exp",
                  "straggler scenario (" + scenario_choices() + ")")
      .add_string("runtime", "sim",
                  "execution substrate (" + runtime_choices() + ")")
      .add_int("workers", 50, "number of workers n")
      .add_int("units", 50, "number of gradient units m")
      .add_int("load", 10, "computational load r, units per worker")
      .add_int("iterations", 100, "GD iterations per run")
      .add_int("seed", 1, "PRNG seed")
      .add_string("on_failure", "skip",
                  "unrecoverable-iteration policy (skip|partial)")
      .add_bool("train", false,
                "sim runtime: train real gradients over simulated time "
                "(loss-vs-simulated-seconds convergence records)")
      .add_string("objective", "logistic",
                  "training objective (logistic|least_squares)")
      .add_string("optimizer", "nesterov",
                  "training optimizer (nesterov|gd|heavy_ball|adagrad)")
      .add_int("features", 20, "training: feature dimension p")
      .add_int("examples_per_unit", 20,
               "training: examples per unit (logistic objective)")
      .add_double("learning_rate", 2.0, "training: learning rate mu0")
      .add_double("lr_decay", 0.0,
                  "training: inverse-time decay (mu_t = mu0/(1+decay*t))")
      .add_double("target_loss", 0.0,
                  "training: report time_to_target for this loss "
                  "(0 = unset)")
      .add_bool("stop_at_target", false,
                "training: stop as soon as target_loss is reached")
      .add_bool("loss_history", false,
                "training: record the per-iteration (seconds, loss) curve")
      .add_int("worker_timeout_ms", 10000,
               "process runtime: per-arrival wait deadline before the "
               "iteration's stragglers are abandoned (0 = wait forever)")
      .add_int("crash_worker", -1,
               "process runtime: SIGKILL this worker mid-iteration "
               "(-1 = no crash drill)")
      .add_int("crash_iteration", 0,
               "process runtime: iteration at which crash_worker dies");
}

std::optional<ExperimentConfig> config_from_flags(const CliFlags& flags) {
  ExperimentConfig config;

  config.scheme = flags.get_string("scheme");
  // "auto" and "all" defer the choice to the analytic oracle: the caller
  // resolves them via predict.hpp (resolve_auto_scheme / --predict)
  // before anything runs.
  if (config.scheme != "auto" && config.scheme != "all" &&
      core::SchemeRegistry::instance().find(config.scheme) == nullptr) {
    std::fprintf(stderr, "%s\n",
                 core::SchemeRegistry::instance()
                     .unknown_message(config.scheme)
                     .c_str());
    return std::nullopt;
  }

  config.scenario = flags.get_string("scenario");
  const auto* scenario =
      ScenarioRegistry::instance().resolve(config.scenario);
  if (scenario == nullptr) {
    std::fprintf(stderr, "%s\n",
                 ScenarioRegistry::instance()
                     .unknown_message(config.scenario)
                     .c_str());
    return std::nullopt;
  }

  config.runtime = flags.get_string("runtime");
  const RuntimeEntry* runtime =
      RuntimeRegistry::instance().find(config.runtime);
  if (runtime == nullptr) {
    std::fprintf(stderr, "%s\n",
                 RuntimeRegistry::instance()
                     .unknown_message(config.runtime)
                     .c_str());
    return std::nullopt;
  }
  config.runtime = runtime->name;  // canonicalize aliases
  // Capability-driven validation: ask what the runtime can do, not what
  // it is called (out-of-tree runtimes get the same checks for free).
  if (scenario->sim_only && !runtime->caps.honours_sim_only_scenarios) {
    std::fprintf(stderr,
                 "--scenario %s only varies simulator-side knobs; use "
                 "--runtime sim\n",
                 config.scenario.c_str());
    return std::nullopt;
  }
  if (scenario->live_only && !runtime->caps.honours_elasticity) {
    std::fprintf(stderr,
                 "--scenario %s needs a live cluster (workers join/leave); "
                 "use --runtime threaded or process\n",
                 config.scenario.c_str());
    return std::nullopt;
  }

  const std::string policy = flags.get_string("on_failure");
  if (policy == "skip") {
    config.on_failure = engine::FailurePolicy::kSkipUpdate;
  } else if (policy == "partial") {
    config.on_failure = engine::FailurePolicy::kApplyPartial;
  } else {
    std::fprintf(stderr, "unknown --on_failure '%s' (choices: skip|partial)\n",
                 policy.c_str());
    return std::nullopt;
  }

  config.train = flags.get_bool("train");
  config.objective = flags.get_string("objective");
  if (config.objective != "logistic" && config.objective != "least_squares") {
    std::fprintf(stderr,
                 "unknown --objective '%s' (choices: logistic|least_squares)\n",
                 config.objective.c_str());
    return std::nullopt;
  }
  config.optimizer = flags.get_string("optimizer");
  if (config.optimizer != "nesterov" && config.optimizer != "gd" &&
      config.optimizer != "heavy_ball" && config.optimizer != "adagrad") {
    std::fprintf(
        stderr,
        "unknown --optimizer '%s' (choices: nesterov|gd|heavy_ball|adagrad)\n",
        config.optimizer.c_str());
    return std::nullopt;
  }

  config.num_workers = static_cast<std::size_t>(flags.get_int("workers"));
  config.num_units = static_cast<std::size_t>(flags.get_int("units"));
  config.load = static_cast<std::size_t>(flags.get_int("load"));
  config.iterations = static_cast<std::size_t>(flags.get_int("iterations"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  config.features = static_cast<std::size_t>(flags.get_int("features"));
  config.examples_per_unit =
      static_cast<std::size_t>(flags.get_int("examples_per_unit"));
  config.learning_rate = flags.get_double("learning_rate");
  config.lr_decay = flags.get_double("lr_decay");
  if (flags.get_double("target_loss") > 0.0) {
    config.target_loss = flags.get_double("target_loss");
  }
  config.stop_at_target = flags.get_bool("stop_at_target");
  config.record_loss_history = flags.get_bool("loss_history");

  config.worker_timeout_ms = flags.get_int("worker_timeout_ms");
  const std::int64_t crash_worker = flags.get_int("crash_worker");
  if (crash_worker >= 0) {
    if (!runtime->caps.spawns_processes) {
      std::fprintf(stderr,
                   "--crash_worker injects a real worker-process SIGKILL; "
                   "the %s runtime has no processes to kill — use "
                   "--runtime process\n",
                   config.runtime.c_str());
      return std::nullopt;
    }
    if (static_cast<std::size_t>(crash_worker) >= config.num_workers) {
      std::fprintf(stderr, "--crash_worker %lld out of range (n = %zu)\n",
                   static_cast<long long>(crash_worker), config.num_workers);
      return std::nullopt;
    }
    config.crash_worker = static_cast<std::size_t>(crash_worker);
  }
  config.crash_iteration =
      static_cast<std::size_t>(flags.get_int("crash_iteration"));
  return config;
}

RunRecord run_experiment(const ExperimentConfig& config) {
  const auto runtime = make_runtime(config.runtime);
  if (runtime == nullptr) {
    throw std::invalid_argument(
        RuntimeRegistry::instance().unknown_message(config.runtime));
  }
  return runtime->run(config);
}

AsciiTable summary_table(const std::vector<RunRecord>& records) {
  AsciiTable table({"scheme", "recovery threshold", "communication time (s)",
                    "computation time (s)", "total running time (s)"});
  table.set_align(0, Align::kLeft);
  for (const auto& record : records) {
    table.add_row({record.scheme_display.empty() ? record.scheme
                                                 : record.scheme_display,
                   format_double(record.recovery_threshold, 1),
                   format_double(record.comm_time, 3),
                   format_double(record.compute_time, 3),
                   format_double(record.total_time, 3)});
  }
  return table;
}

double speedup_fraction(const RunRecord& ours, const RunRecord& baseline) {
  COUPON_ASSERT(baseline.total_time > 0.0);
  return 1.0 - ours.total_time / baseline.total_time;
}

}  // namespace coupon::driver
