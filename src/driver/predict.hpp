#pragma once

/// \file predict.hpp
/// Driver bridge to the analytic oracle (src/analytic/, DESIGN.md §10):
/// resolves an `ExperimentConfig` into the oracle's inputs and renders
/// `coupon_run --predict` output.
///
/// The crucial detail is *seeding fidelity*: the oracle conditions on a
/// realized placement, so candidates are constructed with exactly the
/// RNG discipline `SimulatedRuntime` uses for timing-only runs
/// (`stats::Rng rng(config.seed)` then `SchemeRegistry::create`). A
/// prediction therefore refers to the same drawn placement that
/// `coupon_run` with the same seed would simulate — measured-vs-exact
/// comparisons are apples to apples, including BCC's batch-choice
/// randomness. This layer owns all RNG use; src/analytic/ stays
/// deterministic.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "analytic/predictor.hpp"
#include "driver/experiment_config.hpp"
#include "driver/record.hpp"
#include "util/table.hpp"

namespace coupon::driver {

/// Oracle output for one --predict invocation.
struct PredictReport {
  /// Supported candidates, best (smallest E[T]) first.
  std::vector<analytic::Prediction> ranked;
  /// Candidates the oracle declined, with reasons (and, where a typo is
  /// plausible, a did-you-mean suggestion among analytically-covered
  /// schemes).
  std::vector<analytic::UnsupportedCandidate> unsupported;
};

/// The candidate list for `config`: `loads` when non-empty (a --loads
/// axis sweep), else the config's single load; crossed with either the
/// config's scheme or — when it is "auto" or "all" — every scheme with
/// an analytic model.
std::vector<analytic::CandidateSpec> predict_candidates(
    const ExperimentConfig& config, const std::vector<std::size_t>& loads);

/// Ranks `candidates` on the config's scenario cluster (honouring
/// `cluster_override`). Quantiles are computed for the best
/// `quantile_top` rows (0 = all) when `quantiles` is set. Throws
/// std::invalid_argument on an unknown scenario or a live-only one.
PredictReport predict_report(const ExperimentConfig& config,
                             const std::vector<analytic::CandidateSpec>&
                                 candidates,
                             bool quantiles = true,
                             std::size_t quantile_top = 3);

/// Exact prediction for the single cell `config` describes, without
/// quantiles — the benches' measured-vs-exact column. Returns nullopt
/// (with `reason`) when the cell has no exact reduction.
std::optional<analytic::Prediction> predict_cell(
    const ExperimentConfig& config, std::string* reason = nullptr);

/// Renders the ranked table (and an "unsupported" footer when needed).
std::string render_predict_report(const PredictReport& report);

/// Measured-vs-exact companion table for the Table I/II and Fig. 4
/// benches: one row per record with the oracle's zero-simulation
/// prediction (E[T] x iterations) beside the measured total. Cells the
/// oracle declines render "-". Each record re-resolves against `base`
/// with its own (scheme, n, m, r, seed), so BCC rows condition on the
/// same realized placement the sweep simulated.
AsciiTable measured_vs_predicted_table(const ExperimentConfig& base,
                                       const std::vector<RunRecord>& records);

/// Resolves `--scheme auto`: the analytically best scheme name for the
/// config's (scenario, n, m, r, seed) cell. Throws std::invalid_argument
/// listing every candidate's reason when the oracle supports none.
std::string resolve_auto_scheme(const ExperimentConfig& config);

}  // namespace coupon::driver
