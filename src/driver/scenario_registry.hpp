#pragma once

/// \file scenario_registry.hpp
/// Open registry of straggler scenarios (DESIGN.md §3).
///
/// A *scenario* bundles the two descriptions of the same straggler
/// behaviour the codebase needs: the discrete-event simulator's
/// `ClusterConfig` and the threaded runtime's `StragglerInjection`
/// (injected sleeps standing in for t2.micro latency variance), so one
/// `--scenario` flag drives either runtime. Scenarios are published under
/// a name with a builder that realizes the dual view for a given cluster
/// size; adding one is a single `ScenarioRegistration` call — no switch
/// or name-table edits (the message-drop ablation registers its whole
/// drop-probability axis this way at startup).
///
/// Registration discipline mirrors core::SchemeRegistry: register before
/// experiments run; lookups may then be concurrent.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/thread_cluster.hpp"
#include "simulate/cluster_sim.hpp"

namespace coupon::driver {

/// A named straggler scenario, realized for a given cluster size.
struct Scenario {
  std::string name;
  std::string description;
  simulate::ClusterConfig cluster;        ///< simulated-runtime view
  runtime::StragglerInjection straggler;  ///< threaded-runtime view
  /// True when the scenario only varies simulator-side knobs (message
  /// loss, ingress bandwidth, per-worker latency profiles) that the
  /// threaded runtime cannot express yet; the driver rejects such
  /// scenarios under --runtime threaded instead of silently running
  /// shifted_exp behaviour under a different label.
  bool sim_only = false;
};

/// One registry entry. The builder fills the dual cluster/straggler view
/// for `num_workers` workers; name/description/sim_only are stamped onto
/// the built Scenario by the registry so they stay single-sourced here.
struct ScenarioEntry {
  std::string name;
  std::string description;
  bool sim_only = false;
  std::function<Scenario(std::size_t num_workers)> builder;
};

/// Process-wide scenario registry. Built-ins (shifted_exp, hetero, lossy,
/// fast_network, no_stragglers) are registered on first access.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  /// Registers `entry`; throws std::invalid_argument on a duplicate
  /// name, an empty name, or a missing builder.
  void add(ScenarioEntry entry);

  /// Looks up by name; nullptr when unknown.
  const ScenarioEntry* find(std::string_view name) const;

  /// Realizes the named scenario for `num_workers` workers. Throws
  /// std::invalid_argument listing the valid choices on an unknown name.
  Scenario build(std::string_view name, std::size_t num_workers) const;

  /// Names in registration order.
  std::vector<std::string> names() const;

  /// "shifted_exp|hetero|..." for --help strings.
  std::string choices() const;

  /// "unknown scenario 'x' (choices: ...)" — the shared diagnostic.
  std::string unknown_message(std::string_view name) const;

 private:
  ScenarioRegistry();  // registers the built-ins

  std::vector<ScenarioEntry> entries_;
};

/// Self-registration helper for out-of-tree scenarios.
struct ScenarioRegistration {
  explicit ScenarioRegistration(ScenarioEntry entry) {
    ScenarioRegistry::instance().add(std::move(entry));
  }
};

}  // namespace coupon::driver
