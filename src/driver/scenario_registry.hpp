#pragma once

/// \file scenario_registry.hpp
/// Open registry of straggler scenarios (DESIGN.md §3).
///
/// A *scenario* bundles the two descriptions of the same straggler
/// behaviour the codebase needs: the discrete-event simulator's
/// `ClusterConfig` and the threaded runtime's `StragglerInjection`
/// (injected sleeps standing in for t2.micro latency variance), so one
/// `--scenario` flag drives either runtime. Scenarios are published under
/// a name with a builder that realizes the dual view for a given cluster
/// size; adding one is a single `ScenarioRegistration` call — no switch
/// or name-table edits (the message-drop ablation registers its whole
/// drop-probability axis this way at startup).
///
/// Registration discipline mirrors core::SchemeRegistry: register before
/// experiments run; lookups may then be concurrent.

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/elasticity.hpp"
#include "runtime/straggler.hpp"
#include "simulate/cluster_config.hpp"

namespace coupon::driver {

/// A named straggler scenario, realized for a given cluster size.
struct Scenario {
  std::string name;
  std::string description;
  simulate::ClusterConfig cluster;        ///< simulated-runtime view
  runtime::StragglerInjection straggler;  ///< threaded-runtime view
  /// True when the scenario only varies simulator-side knobs (message
  /// loss, ingress bandwidth, per-worker latency profiles) that the
  /// threaded runtime cannot express yet; the driver rejects such
  /// scenarios under --runtime threaded instead of silently running
  /// shifted_exp behaviour under a different label.
  bool sim_only = false;
  /// True when the scenario needs a live cluster (elasticity plans:
  /// workers join/leave mid-run); the driver rejects such scenarios
  /// under --runtime sim.
  bool live_only = false;
  /// Planned worker absences, honoured by the live runtimes (the master
  /// skips broadcasting to an absent worker; rejoin = next broadcast).
  runtime::ElasticityPlan elasticity;
};

/// One registry entry. The builder fills the dual cluster/straggler view
/// for `num_workers` workers; name/description/sim_only are stamped onto
/// the built Scenario by the registry so they stay single-sourced here.
/// An entry may instead (or additionally) provide `param_builder`, making
/// it selectable as "name:arg" — e.g. "trace:<path>" builds a
/// trace-replay scenario from a CSV file.
struct ScenarioEntry {
  std::string name;
  std::string description;
  bool sim_only = false;
  bool live_only = false;
  std::function<Scenario(std::size_t num_workers)> builder;
  /// Builder for the parameterized "name:arg" spelling; the argument is
  /// everything after the first ':'.
  std::function<Scenario(std::string_view arg, std::size_t num_workers)>
      param_builder;
};

/// Process-wide scenario registry. Built-ins (shifted_exp, hetero, lossy,
/// fast_network, no_stragglers, and one per latency model: heavy_tail,
/// weibull, bursty, markov, trace:<path>) are registered on first access.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  /// Registers `entry`; throws std::invalid_argument on a duplicate
  /// name, an empty name, or no builder of either kind.
  void add(ScenarioEntry entry);

  /// Looks up by exact registered name; nullptr when unknown. (The
  /// "--list" view: a parameterized entry is returned under its bare
  /// name.)
  const ScenarioEntry* find(std::string_view name) const;

  /// Resolves a scenario *selection*: an exact name with a builder, or
  /// "name:arg" for an entry with a param_builder. nullptr when the
  /// selection cannot be built.
  const ScenarioEntry* resolve(std::string_view name) const;

  /// Realizes the named scenario for `num_workers` workers. Accepts both
  /// plain and "name:arg" spellings; the built Scenario's `name` is the
  /// full spelling. Throws std::invalid_argument listing the valid
  /// choices on an unknown name, or explaining the "name:arg" form when
  /// a parameterized entry is selected bare.
  Scenario build(std::string_view name, std::size_t num_workers) const;

  /// Names in registration order.
  std::vector<std::string> names() const;

  /// "shifted_exp|hetero|..." for --help strings.
  std::string choices() const;

  /// "unknown scenario 'x' (did you mean 'y'? choices: ...)" — the
  /// shared diagnostic; a parameterized entry selected bare gets the
  /// "requires an argument; select it as 'name:<arg>'" explanation.
  std::string unknown_message(std::string_view name) const;

 private:
  ScenarioRegistry();  // registers the built-ins

  std::vector<ScenarioEntry> entries_;
};

/// Self-registration helper for out-of-tree scenarios.
struct ScenarioRegistration {
  explicit ScenarioRegistration(ScenarioEntry entry) {
    ScenarioRegistry::instance().add(std::move(entry));
  }
};

}  // namespace coupon::driver
