#include "driver/predict.hpp"

#include <exception>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analytic/scheme_model.hpp"
#include "core/scheme_registry.hpp"
#include "driver/scenario_registry.hpp"
#include "stats/rng.hpp"
#include "util/names.hpp"

namespace coupon::driver {

namespace {

/// The scenario's simulator cluster for this config, with the same
/// precedence `SimulatedRuntime::run` applies: an explicit
/// `cluster_override` wins over the named scenario's model.
simulate::ClusterConfig resolve_cluster(const ExperimentConfig& config) {
  if (config.cluster_override) {
    return *config.cluster_override;
  }
  const Scenario scenario = ScenarioRegistry::instance().build(
      config.scenario, config.num_workers);
  if (scenario.live_only) {
    throw std::invalid_argument(
        "scenario '" + scenario.name +
        "' needs a live cluster; the analytic oracle predicts the "
        "simulated runtime only");
  }
  return scenario.cluster;
}

/// Builds one candidate with the timing-run seeding discipline (see the
/// header): same seed => same realized placement as `simulate_run`.
std::unique_ptr<core::Scheme> build_candidate(
    const ExperimentConfig& config, const analytic::CandidateSpec& spec,
    std::string* reason) {
  core::SchemeConfig sconf;
  sconf.num_workers = config.num_workers;
  sconf.num_units = config.num_units;
  sconf.load = spec.load;
  sconf.bcc_seed_first_batches = config.bcc_seed_first_batches.value_or(false);
  try {
    stats::Rng rng(config.seed);
    return core::SchemeRegistry::instance().create(spec.scheme, sconf, rng);
  } catch (const std::exception& error) {
    if (reason != nullptr) {
      *reason = error.what();
    }
    return nullptr;
  }
}

}  // namespace

std::vector<analytic::CandidateSpec> predict_candidates(
    const ExperimentConfig& config, const std::vector<std::size_t>& loads) {
  std::vector<std::string> schemes;
  if (config.scheme == "auto" || config.scheme == "all") {
    schemes = analytic::AnalyticModelRegistry::instance().names();
  } else {
    schemes.push_back(config.scheme);
  }
  std::vector<std::size_t> axis = loads;
  if (axis.empty()) {
    axis.push_back(config.load);
  }
  std::vector<analytic::CandidateSpec> candidates;
  candidates.reserve(schemes.size() * axis.size());
  for (const std::string& scheme : schemes) {
    for (std::size_t load : axis) {
      candidates.push_back({scheme, load});
    }
  }
  return candidates;
}

PredictReport predict_report(
    const ExperimentConfig& config,
    const std::vector<analytic::CandidateSpec>& candidates, bool quantiles,
    std::size_t quantile_top) {
  const simulate::ClusterConfig cluster = resolve_cluster(config);
  const analytic::Predictor predictor(
      cluster, [&config](const analytic::CandidateSpec& spec,
                         std::string* reason) {
        return build_candidate(config, spec, reason);
      });
  analytic::PredictOptions options;
  options.quantiles = quantiles;
  PredictReport report;
  report.ranked = predictor.rank(candidates, options, quantile_top,
                                 &report.unsupported);

  // A scheme name with no analytic model gets the registry's
  // did-you-mean treatment against the covered schemes.
  const std::vector<std::string> covered =
      analytic::AnalyticModelRegistry::instance().names();
  for (analytic::UnsupportedCandidate& entry : report.unsupported) {
    if (analytic::AnalyticModelRegistry::instance().find(entry.spec.scheme) !=
        nullptr) {
      continue;
    }
    if (core::SchemeRegistry::instance().find(entry.spec.scheme) != nullptr) {
      entry.reason += " (analytic models cover: " + join_names(covered) + ")";
    } else {
      entry.reason =
          unknown_name_message("scheme", entry.spec.scheme, covered);
    }
  }
  return report;
}

std::optional<analytic::Prediction> predict_cell(
    const ExperimentConfig& config, std::string* reason) {
  const analytic::CandidateSpec spec{config.scheme, config.load};
  std::unique_ptr<core::Scheme> scheme =
      build_candidate(config, spec, reason);
  if (scheme == nullptr) {
    return std::nullopt;
  }
  analytic::PredictOptions options;
  options.quantiles = false;
  return analytic::predict(*scheme, resolve_cluster(config), options, reason);
}

std::string render_predict_report(const PredictReport& report) {
  AsciiTable table({"rank", "scheme", "r", "E[T] (s)", "p50", "p95", "p99",
                    "E[K]", "E[L]", "P(fail)"});
  table.set_align(1, Align::kLeft);
  for (std::size_t i = 0; i < report.ranked.size(); ++i) {
    const analytic::Prediction& p = report.ranked[i];
    table.add_row({std::to_string(i + 1), p.scheme, std::to_string(p.load),
                   format_double(p.expected_time, 4),
                   p.has_quantiles ? format_double(p.p50, 4) : "-",
                   p.has_quantiles ? format_double(p.p95, 4) : "-",
                   p.has_quantiles ? format_double(p.p99, 4) : "-",
                   format_double(p.expected_workers, 2),
                   format_double(p.expected_units, 2),
                   format_double(p.failure_probability, 4)});
  }
  std::ostringstream out;
  out << table.render();
  if (!report.unsupported.empty()) {
    out << "not predictable:\n";
    for (const analytic::UnsupportedCandidate& entry : report.unsupported) {
      out << "  " << entry.spec.scheme << " r=" << entry.spec.load << ": "
          << entry.reason << "\n";
    }
  }
  return out.str();
}

AsciiTable measured_vs_predicted_table(const ExperimentConfig& base,
                                       const std::vector<RunRecord>& records) {
  AsciiTable table({"scheme", "r", "measured total (s)",
                    "predicted exact (s)", "rel err"});
  table.set_align(0, Align::kLeft);
  for (const RunRecord& record : records) {
    ExperimentConfig cell = base;
    cell.scheme = record.scheme;
    cell.scenario = record.scenario;
    cell.num_workers = record.num_workers;
    cell.num_units = record.num_units;
    cell.load = record.load;
    cell.seed = record.seed;
    const std::optional<analytic::Prediction> prediction = predict_cell(cell);
    std::string predicted = "-";
    std::string err = "-";
    if (prediction.has_value()) {
      const double total = prediction->expected_time *
                           static_cast<double>(record.iterations);
      predicted = format_double(total, 3);
      if (total > 0.0) {
        err = format_percent((record.total_time - total) / total);
      }
    }
    table.add_row({record.scheme_display.empty() ? record.scheme
                                                 : record.scheme_display,
                   std::to_string(record.load), format_double(
                       record.total_time, 3),
                   predicted, err});
  }
  return table;
}

std::string resolve_auto_scheme(const ExperimentConfig& config) {
  ExperimentConfig all = config;
  all.scheme = "all";
  const std::vector<analytic::CandidateSpec> candidates =
      predict_candidates(all, {});
  const PredictReport report =
      predict_report(all, candidates, /*quantiles=*/false);
  if (report.ranked.empty()) {
    std::ostringstream out;
    out << "--scheme auto: the analytic oracle supports no scheme for "
           "scenario '"
        << config.scenario << "' at n=" << config.num_workers
        << " m=" << config.num_units << " r=" << config.load << ":";
    for (const analytic::UnsupportedCandidate& entry : report.unsupported) {
      out << "\n  " << entry.spec.scheme << ": " << entry.reason;
    }
    throw std::invalid_argument(out.str());
  }
  return report.ranked.front().scheme;
}

}  // namespace coupon::driver
