#pragma once

/// \file driver.hpp
/// Unified experiment driver: one configuration struct + one entry point
/// that runs scheme x scenario x runtime and emits CSV. `tools/coupon_run`
/// is a thin CLI shell over this layer, and the table/figure benches share
/// its scenario handling and rendering instead of each rolling their own.

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/registry.hpp"
#include "simulate/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace coupon::driver {

/// Everything `run_experiment` needs; defaults reproduce the paper's
/// scenario one (n = 50 workers, m = 50 units, r = 10).
struct ExperimentConfig {
  core::SchemeKind scheme = core::SchemeKind::kBcc;
  std::string scenario = "shifted_exp";
  RuntimeKind runtime = RuntimeKind::kSimulated;
  std::size_t num_workers = 50;
  std::size_t num_units = 50;
  std::size_t load = 10;
  std::size_t iterations = 100;
  std::uint64_t seed = 1;
  // Threaded runtime only: the synthetic logistic-regression workload.
  std::size_t features = 20;
  std::size_t examples_per_unit = 20;
  double learning_rate = 2.0;
};

/// A finished experiment: CSV-ready rows plus the Table I/II-style summary
/// (for the threaded runtime, times are wall-clock and comm/compute are
/// not separable, so only total_time is populated).
struct ExperimentResult {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  simulate::SchemeRunRow summary;
};

/// Builds a driver config from a canonical simulate scenario definition
/// (simulate::ec2_scenario_one/two), copying n, m, r, iterations, and
/// seed — so the paper's Table I/II parameters stay single-sourced.
///
/// Only those parameters are copied: the cluster model comes from the
/// driver's *named* scenario (default "shifted_exp", which equals
/// simulate::ec2_cluster()). Callers holding a ScenarioConfig with a
/// customized `cluster` (e.g. the ablation benches' drop/bandwidth
/// sweeps) must keep using simulate::run_scenario directly — this helper
/// would silently discard their cluster overrides.
ExperimentConfig config_from_sim_scenario(const simulate::ScenarioConfig& s);

/// Registers the driver's shared flags (--scheme, --scenario, --runtime,
/// --workers, --units, --load, --iterations, --seed, and the threaded
/// workload knobs) with their paper defaults.
void add_experiment_flags(CliFlags& flags);

/// Reads the flags registered by `add_experiment_flags` back into a
/// config. Prints a diagnostic and returns nullopt on an unknown scheme,
/// scenario, or runtime spelling.
std::optional<ExperimentConfig> config_from_flags(const CliFlags& flags);

/// Runs one (scheme, scenario, runtime) cell. Simulated runs emit one CSV
/// row per iteration; threaded runs emit one summary row including final
/// loss and accuracy. Throws std::invalid_argument on an unknown scenario.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Writes header + rows through util/csv.
void write_csv(std::ostream& os, const ExperimentResult& result);

/// Runs several schemes through the *simulated* runtime on the same
/// scenario (fresh deterministic RNG stream per scheme, as in
/// simulate::run_scenario) and returns one summary row per scheme.
std::vector<simulate::SchemeRunRow> run_scheme_comparison(
    const ExperimentConfig& config, const std::vector<core::SchemeKind>& kinds);

/// Renders comparison rows as the standard Table I/II breakdown.
AsciiTable comparison_table(const std::vector<simulate::SchemeRunRow>& rows);

/// Writes comparison rows as CSV (one row per scheme).
void write_comparison_csv(std::ostream& os,
                          const std::vector<simulate::SchemeRunRow>& rows);

/// Opens `path` ("-" = stdout) and writes `result` as CSV; returns false
/// with a diagnostic on stderr if the file cannot be opened.
bool write_csv_to_path(const std::string& path, const ExperimentResult& result);

/// Same open-or-diagnose contract for comparison rows.
bool write_comparison_csv_to_path(
    const std::string& path, const std::vector<simulate::SchemeRunRow>& rows);

}  // namespace coupon::driver
