#pragma once

/// \file driver.hpp
/// Unified experiment driver: one configuration struct + one entry point
/// that runs scheme x scenario x runtime and returns a typed `RunRecord`
/// (record.hpp sinks render CSV/JSONL). `tools/coupon_run` is a thin CLI
/// shell over this layer plus sweep.hpp, and the table/figure benches
/// share its scenario handling and rendering instead of each rolling
/// their own.

#include <optional>
#include <string>
#include <vector>

#include "driver/experiment_config.hpp"
#include "driver/record.hpp"
#include "driver/registry.hpp"
#include "driver/runtime.hpp"
#include "simulate/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace coupon::driver {

/// Builds a driver config from a canonical simulate scenario definition
/// (simulate::ec2_scenario_one/two), copying n, m, r, iterations, seed —
/// so the paper's Table I/II parameters stay single-sourced — AND the
/// scenario's cluster model, carried through as `cluster_override`.
/// Callers holding a ScenarioConfig with a customized `cluster` (e.g. the
/// ablation benches' drop/bandwidth sweeps) therefore get their overrides
/// honoured by the simulated runtime instead of silently discarded; the
/// threaded runtime rejects such configs loudly.
ExperimentConfig config_from_sim_scenario(const simulate::ScenarioConfig& s);

/// Registers the driver's shared flags (--scheme, --scenario, --runtime,
/// --workers, --units, --load, --iterations, --seed, --on_failure, and
/// the threaded workload knobs) with their paper defaults.
void add_experiment_flags(CliFlags& flags);

/// Reads the flags registered by `add_experiment_flags` back into a
/// config. Prints a diagnostic and returns nullopt on an unknown scheme,
/// scenario, runtime, or failure-policy spelling.
std::optional<ExperimentConfig> config_from_flags(const CliFlags& flags);

/// Runs one (scheme, scenario, runtime) cell through the named runtime.
/// Throws std::invalid_argument on an unknown name (the message lists
/// the registered choices).
RunRecord run_experiment(const ExperimentConfig& config);

/// Renders records as the standard Table I/II breakdown (scheme,
/// recovery threshold, per-phase times, total).
AsciiTable summary_table(const std::vector<RunRecord>& records);

/// Percentage speedup of `ours` over `baseline` in total running time
/// (e.g. 0.854 means 85.4% faster, the paper's headline comparison).
double speedup_fraction(const RunRecord& ours, const RunRecord& baseline);

}  // namespace coupon::driver
