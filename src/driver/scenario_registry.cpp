#include "driver/scenario_registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "simulate/experiment.hpp"
#include "util/names.hpp"

namespace coupon::driver {

namespace {

/// Threaded-runtime counterpart of the EC2 calibration: injected
/// shift-exponential sleeps.
runtime::StragglerInjection shifted_exp_straggler() {
  runtime::StragglerInjection s;
  s.enabled = true;
  s.shift_ms_per_unit = 0.05;
  s.straggle = 1.0;
  return s;
}

/// The baseline dual view every built-in scenario starts from.
Scenario ec2_baseline() {
  Scenario s;
  s.cluster = simulate::ec2_cluster();
  s.straggler = shifted_exp_straggler();
  return s;
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

ScenarioRegistry::ScenarioRegistry() {
  add({.name = "shifted_exp",
       .description =
           "homogeneous shift-exponential compute (Eq. 15), EC2 calibration",
       .sim_only = false,
       .builder = [](std::size_t) { return ec2_baseline(); }});
  add({.name = "hetero",
       .description =
           "5% fast workers (mu=20), 95% slow (mu=1), Fig. 5 shape (sim only)",
       .sim_only = true,
       .builder = [](std::size_t num_workers) {
         Scenario s = ec2_baseline();
         // At least one fast worker even for tiny clusters.
         const std::size_t fast = std::min(
             num_workers, std::max<std::size_t>(1, num_workers / 20));
         s.cluster.worker_overrides.assign(
             num_workers,
             simulate::WorkerLatency{s.cluster.compute_shift, 1.0});
         for (std::size_t i = num_workers - fast; i < num_workers; ++i) {
           s.cluster.worker_overrides[i].compute_straggle = 20.0;
         }
         return s;
       }});
  add({.name = "lossy",
       .description = "shifted_exp plus 5% i.i.d. message loss (sim only)",
       .sim_only = true,
       .builder = [](std::size_t) {
         Scenario s = ec2_baseline();
         s.cluster.drop_probability = 0.05;
         return s;
       }});
  add({.name = "fast_network",
       .description =
           "10x faster master ingress (compute-dominated regime; sim only)",
       .sim_only = true,
       .builder = [](std::size_t) {
         Scenario s = ec2_baseline();
         s.cluster.unit_transfer_seconds /= 10.0;
         return s;
       }});
  add({.name = "no_stragglers",
       .description = "near-deterministic compute, no loss (best case)",
       .sim_only = false,
       .builder = [](std::size_t) {
         Scenario s = ec2_baseline();
         s.cluster.compute_straggle = 1e6;  // exponential tail ~ 0
         s.straggler.enabled = false;
         return s;
       }});
}

void ScenarioRegistry::add(ScenarioEntry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument("scenario registration requires a name");
  }
  if (!entry.builder) {
    throw std::invalid_argument("scenario '" + entry.name +
                                "' registered without a builder");
  }
  if (find(entry.name) != nullptr) {
    throw std::invalid_argument("scenario name '" + entry.name +
                                "' is already registered");
  }
  entries_.push_back(std::move(entry));
}

const ScenarioEntry* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

Scenario ScenarioRegistry::build(std::string_view name,
                                 std::size_t num_workers) const {
  const ScenarioEntry* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument(unknown_message(name));
  }
  Scenario scenario = entry->builder(num_workers);
  scenario.name = entry->name;
  scenario.description = entry->description;
  scenario.sim_only = entry->sim_only;
  return scenario;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(entry.name);
  }
  return out;
}

std::string ScenarioRegistry::choices() const { return join_names(names()); }

std::string ScenarioRegistry::unknown_message(std::string_view name) const {
  return unknown_name_message("scenario", name, names());
}

}  // namespace coupon::driver
