#include "driver/scenario_registry.hpp"

#include <algorithm>
#include <charconv>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "simulate/experiment.hpp"
#include "simulate/latency_model.hpp"
#include "util/names.hpp"

namespace coupon::driver {

namespace {

/// Threaded-runtime counterpart of the EC2 calibration: injected
/// shift-exponential sleeps.
runtime::StragglerInjection shifted_exp_straggler() {
  runtime::StragglerInjection s;
  s.enabled = true;
  s.shift_ms_per_unit = 0.05;
  s.straggle = 1.0;
  return s;
}

/// The baseline dual view every built-in scenario starts from.
Scenario ec2_baseline() {
  Scenario s;
  s.cluster = simulate::ec2_cluster();
  s.straggler = shifted_exp_straggler();
  return s;
}

/// Elastic scenario: `count` workers (the highest-indexed ones) leave at
/// iteration `leave` and rejoin at `rejoin`, under no_stragglers timing
/// so the absence window dominates the trace.
Scenario elastic_scenario(std::size_t count, std::size_t leave,
                          std::size_t rejoin, std::size_t num_workers) {
  Scenario s = ec2_baseline();
  s.cluster.compute_straggle = 1e6;
  s.straggler.enabled = false;
  count = std::min(count, num_workers);
  for (std::size_t k = 0; k < count; ++k) {
    s.elasticity.windows.push_back({.worker = num_workers - 1 - k,
                                    .leave_iteration = leave,
                                    .rejoin_iteration = rejoin});
  }
  return s;
}

std::optional<std::size_t> parse_size(std::string_view text) {
  std::size_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

ScenarioRegistry::ScenarioRegistry() {
  add({.name = "shifted_exp",
       .description =
           "homogeneous shift-exponential compute (Eq. 15), EC2 calibration",
       .sim_only = false,
       .builder = [](std::size_t) { return ec2_baseline(); },
       .param_builder = {}});
  add({.name = "hetero",
       .description =
           "5% fast workers (mu=20), 95% slow (mu=1), Fig. 5 shape (sim only)",
       .sim_only = true,
       .builder = [](std::size_t num_workers) {
         Scenario s = ec2_baseline();
         // At least one fast worker even for tiny clusters.
         const std::size_t fast = std::min(
             num_workers, std::max<std::size_t>(1, num_workers / 20));
         s.cluster.worker_overrides.assign(
             num_workers,
             simulate::WorkerLatency{s.cluster.compute_shift, 1.0});
         for (std::size_t i = num_workers - fast; i < num_workers; ++i) {
           s.cluster.worker_overrides[i].compute_straggle = 20.0;
         }
         return s;
       },
       .param_builder = {}});
  add({.name = "lossy",
       .description = "shifted_exp plus 5% i.i.d. message loss (sim only)",
       .sim_only = true,
       .builder = [](std::size_t) {
         Scenario s = ec2_baseline();
         s.cluster.drop_probability = 0.05;
         return s;
       },
       .param_builder = {}});
  add({.name = "fast_network",
       .description =
           "10x faster master ingress (compute-dominated regime; sim only)",
       .sim_only = true,
       .builder = [](std::size_t) {
         Scenario s = ec2_baseline();
         s.cluster.unit_transfer_seconds /= 10.0;
         return s;
       },
       .param_builder = {}});
  add({.name = "no_stragglers",
       .description = "near-deterministic compute, no loss (best case)",
       .sim_only = false,
       .builder = [](std::size_t) {
         Scenario s = ec2_baseline();
         s.cluster.compute_straggle = 1e6;  // exponential tail ~ 0
         s.straggler.enabled = false;
         return s;
       },
       .param_builder = {}});

  // One scenario per latency model (latency_model.hpp): the regimes the
  // paper's Eq. 15 analysis excludes. All sim-only — the threaded
  // runtime's injected sleeps only speak shift-exponential.
  add({.name = "heavy_tail",
       .description =
           "Pareto(alpha=1.5) compute — infinite variance, Karakus-style "
           "heavy tail (sim only)",
       .sim_only = true,
       .builder = [](std::size_t) {
         Scenario s = ec2_baseline();
         s.cluster.latency_model = [](std::size_t) {
           return std::make_unique<simulate::ParetoModel>(
               /*scale_per_unit=*/1e-3, /*shape=*/1.5);
         };
         return s;
       },
       .param_builder = {}});
  add({.name = "weibull",
       .description =
           "Weibull(k=0.7) compute — stretched-exponential tail (sim only)",
       .sim_only = true,
       .builder = [](std::size_t) {
         Scenario s = ec2_baseline();
         s.cluster.latency_model = [](std::size_t) {
           return std::make_unique<simulate::WeibullModel>(
               /*shape=*/0.7, /*scale_per_unit=*/2e-3);
         };
         return s;
       },
       .param_builder = {}});
  add({.name = "bursty",
       .description =
           "each worker slow this iteration w.p. 0.1, by 10x — transient "
           "slowdowns (sim only)",
       .sim_only = true,
       .builder = [](std::size_t) {
         Scenario s = ec2_baseline();
         const auto base = s.cluster;
         s.cluster.latency_model = [base](std::size_t) {
           return std::make_unique<simulate::BimodalSlowdownModel>(
               base.compute_shift, base.compute_straggle,
               /*slow_probability=*/0.1, /*slow_factor=*/10.0);
         };
         return s;
       },
       .param_builder = {}});
  add({.name = "markov",
       .description =
           "two-state persistent stragglers: enter slow (10x) w.p. 0.05, "
           "exit w.p. 0.25 (sim only)",
       .sim_only = true,
       .builder = [](std::size_t) {
         Scenario s = ec2_baseline();
         const auto base = s.cluster;
         s.cluster.latency_model = [base](std::size_t num_workers) {
           return std::make_unique<simulate::MarkovStragglerModel>(
               num_workers, base.compute_shift, base.compute_straggle,
               /*slow_factor=*/10.0, /*p_enter=*/0.05, /*p_exit=*/0.25);
         };
         return s;
       },
       .param_builder = {}});
  // The join/leave drill for the live runtimes (threaded, process):
  // workers go absent for a window of iterations and re-enlist on the
  // next broadcast. live_only — simulated workers cannot leave.
  add({.name = "elastic",
       .description =
           "n/5 workers leave at iteration 3, rejoin at 8; parameterize "
           "as elastic:<count>@<leave>-<rejoin> (live runtimes only)",
       .live_only = true,
       .builder =
           [](std::size_t num_workers) {
             const std::size_t count =
                 std::max<std::size_t>(1, num_workers / 5);
             return elastic_scenario(count, 3, 8, num_workers);
           },
       .param_builder =
           [](std::string_view arg, std::size_t num_workers) {
             // "<count>@<leave>-<rejoin>", e.g. "2@3-8".
             const std::size_t at = arg.find('@');
             const std::size_t dash = arg.find('-', at + 1);
             std::optional<std::size_t> count, leave, rejoin;
             if (at != std::string_view::npos &&
                 dash != std::string_view::npos) {
               count = parse_size(arg.substr(0, at));
               leave = parse_size(arg.substr(at + 1, dash - at - 1));
               rejoin = parse_size(arg.substr(dash + 1));
             }
             if (!count || !leave || !rejoin || *leave >= *rejoin) {
               throw std::invalid_argument(
                   "elastic scenario argument must be "
                   "'<count>@<leave>-<rejoin>' with leave < rejoin, got "
                   "'elastic:" +
                   std::string(arg) + "'");
             }
             return elastic_scenario(*count, *leave, *rejoin, num_workers);
           }});
  add({.name = "trace",
       .description =
           "replay per-worker compute latencies from a CSV file; select "
           "as trace:<path> (sim only)",
       .sim_only = true,
       .builder = {},
       .param_builder = [](std::string_view arg, std::size_t) {
         Scenario s = ec2_baseline();
         const std::string path(arg);
         s.cluster.latency_model = [path](std::size_t num_workers) {
           return std::make_unique<simulate::TraceReplayModel>(path,
                                                              num_workers);
         };
         return s;
       }});
}

void ScenarioRegistry::add(ScenarioEntry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument("scenario registration requires a name");
  }
  if (!entry.builder && !entry.param_builder) {
    throw std::invalid_argument("scenario '" + entry.name +
                                "' registered without a builder");
  }
  if (find(entry.name) != nullptr) {
    throw std::invalid_argument("scenario name '" + entry.name +
                                "' is already registered");
  }
  entries_.push_back(std::move(entry));
}

const ScenarioEntry* ScenarioRegistry::find(std::string_view name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

const ScenarioEntry* ScenarioRegistry::resolve(std::string_view name) const {
  const ScenarioEntry* exact = find(name);
  if (exact != nullptr) {
    return exact->builder ? exact : nullptr;  // param-only needs an arg
  }
  const std::size_t colon = name.find(':');
  if (colon == std::string_view::npos) {
    return nullptr;
  }
  const ScenarioEntry* entry = find(name.substr(0, colon));
  return entry != nullptr && entry->param_builder ? entry : nullptr;
}

Scenario ScenarioRegistry::build(std::string_view name,
                                 std::size_t num_workers) const {
  const ScenarioEntry* entry = resolve(name);
  if (entry == nullptr) {
    throw std::invalid_argument(unknown_message(name));
  }
  Scenario scenario =
      name == entry->name
          ? entry->builder(num_workers)
          : entry->param_builder(name.substr(entry->name.size() + 1),
                                 num_workers);
  scenario.name = std::string(name);  // full spelling, e.g. "trace:<path>"
  scenario.description = entry->description;
  scenario.sim_only = entry->sim_only;
  scenario.live_only = entry->live_only;
  return scenario;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(entry.name);
  }
  return out;
}

std::string ScenarioRegistry::choices() const { return join_names(names()); }

std::string ScenarioRegistry::unknown_message(std::string_view name) const {
  // A parameterized-only entry selected bare is not "unknown" — explain
  // the name:arg spelling instead of suggesting the name to itself.
  const ScenarioEntry* exact = find(name);
  if (exact != nullptr && !exact->builder) {
    return "scenario '" + std::string(name) +
           "' requires an argument; select it as '" + exact->name +
           ":<arg>'";
  }
  return unknown_name_message("scenario", name, names());
}

}  // namespace coupon::driver
