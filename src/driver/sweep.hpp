#pragma once

/// \file sweep.hpp
/// Declarative cartesian experiment sweeps (DESIGN.md §4).
///
/// A `SweepPlan` names the axes — schemes × scenarios × {n, m, r,
/// iterations, seed} — over a base `ExperimentConfig` that supplies every
/// non-swept field. `expand_plan` resolves the cartesian product into
/// fully-specified cells in a deterministic order; `run_sweep` executes
/// the cells on a `coupon::ThreadPool` and streams the finished
/// `RunRecord`s to a `RecordSink` *in cell order*, regardless of which
/// worker finishes first.
///
/// Determinism contract: each cell is run exactly as `run_experiment`
/// would run it standalone — its RNG stream is seeded from the cell's own
/// config, never from execution order — so a *simulated*-runtime sweep's
/// output is bit-identical to a serial (threads = 1) run of the same
/// plan, and any single cell can be reproduced with one `coupon_run`
/// invocation. Threaded-runtime cells involve real concurrency: their
/// combinatorial setup is just as seed-determined, but the wall-clock
/// fields measure actual elapsed time (and concurrent cells contend for
/// cores), so timing columns are not bit-reproducible — sweep threaded
/// cells serially when the wall-clock numbers are the point.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "driver/experiment_config.hpp"
#include "driver/record.hpp"

namespace coupon::driver {

/// A cartesian sweep description. Empty axis = "take the base config's
/// value"; the `units` axis additionally defaults to *tracking the
/// workers axis* (m = n), which is what every paper scenario and the
/// CR/FR placement constraint want.
struct SweepPlan {
  /// Template for all non-swept fields (runtime, threaded knobs, ...).
  /// Note `base.record_trace`: sweeps that only stream to summary sinks
  /// (CsvSummarySink / JsonlSink without include_trace) should set it to
  /// false so simulated cells never materialize per-iteration traces —
  /// that is the difference between the sweep engine scaling with the
  /// iteration *count* and scaling with the trace *storage*.
  ExperimentConfig base;

  std::vector<std::string> schemes;      ///< registry names; {} = {base.scheme}
  std::vector<std::string> scenarios;    ///< {} = {base.scenario}
  std::vector<std::size_t> workers;      ///< n axis; {} = {base.num_workers}
  std::vector<std::size_t> units;        ///< m axis; {} = m tracks n
  std::vector<std::size_t> loads;        ///< r axis; {} = {base.load}
  std::vector<std::size_t> iterations;   ///< {} = {base.iterations}
  std::vector<std::uint64_t> seeds;      ///< {} = {base.seed}
};

/// One resolved cell of the product.
struct SweepCell {
  std::size_t index = 0;  ///< linear position in expansion order
  ExperimentConfig config;
};

/// Expands the plan into cells. Axis nesting, outermost to innermost:
/// scheme, scenario, workers, units, load, iterations, seed. Validates
/// up front — unknown scheme/scenario/runtime names (the diagnostic
/// lists the registered choices), scheme capability violations
/// (m != n for CR/FR, r not dividing n for FR), and sim-only scenarios
/// or a cluster_override under the threaded runtime — and throws
/// std::invalid_argument, so a sweep cannot fail halfway through.
std::vector<SweepCell> expand_plan(const SweepPlan& plan);

struct SweepOptions {
  /// Worker threads: 0 = hardware concurrency, 1 = serial (no pool).
  std::size_t threads = 0;
  /// Optional streaming consumer; receives records in cell order.
  RecordSink* sink = nullptr;
  /// Maximum number of consecutive same-n cells grouped into one
  /// lockstep kernel pass when the plan records no traces and the
  /// runtime advertises the matching capability: timing-only plans go
  /// through `simulate::BatchedKernel` (`run_simulated_batch`, needs
  /// `batches_sim_cells`), training plans through
  /// `engine::BatchedTrainKernel` (`run_simulated_train_batch`, needs
  /// `batches_train_cells`). Batching amortizes RNG, sort, and memory
  /// traffic across cells and is bit-identical to cell-at-a-time
  /// execution; 1 disables it. Batches also bound threaded parallelism
  /// (one batch = one pool task), so leave this modest.
  std::size_t sim_batch = 8;
};

/// Executes every cell and returns the records in cell order. Cells run
/// in parallel on a coupon::ThreadPool sized by `options.threads`; if any
/// cell throws, the remaining cells still finish and the first exception
/// (by cell order) is rethrown after the pool drains.
std::vector<RunRecord> run_sweep(const SweepPlan& plan,
                                 const SweepOptions& options = {});

}  // namespace coupon::driver
