#pragma once

/// \file record.hpp
/// The typed result of one experiment run (`RunRecord`) and the sink
/// layer that renders records to CSV / JSONL (DESIGN.md §4).
///
/// Every `Runtime` implementation returns the same record type: run
/// identity, per-iteration traces (simulated runtime), a Table I/II-style
/// summary, and optional model-quality fields (threaded runtime). Output
/// formatting lives entirely in `RecordSink` implementations, so new
/// formats plug in without touching the runtimes, and `SweepPlan` can
/// stream results to several sinks at once in deterministic cell order.

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "engine/types.hpp"
#include "simulate/iteration_report.hpp"

namespace coupon::driver {

/// One finished (scheme, scenario, runtime) run.
struct RunRecord {
  // Identity: the fully-resolved cell this record came from.
  std::string scheme;    ///< registry name, e.g. "bcc"
  std::string scenario;  ///< scenario name, e.g. "shifted_exp"
  std::string runtime;   ///< runtime name, e.g. "sim"
  std::size_t num_workers = 0;
  std::size_t num_units = 0;
  std::size_t load = 0;
  std::size_t iterations = 0;
  std::uint64_t seed = 0;

  /// Human-readable scheme name ("BCC") for table rendering.
  std::string scheme_display;

  /// Per-iteration latency trace. Populated by the simulated runtime;
  /// empty for the threaded runtime (wall-clock phases per iteration are
  /// not separable there).
  std::vector<simulate::IterationReport> trace;

  // Summary (Table I/II breakdown).
  double recovery_threshold = 0.0;  ///< mean workers heard per iteration
  double comm_time = 0.0;           ///< total over the run, seconds
  double compute_time = 0.0;        ///< total over the run, seconds
  double total_time = 0.0;          ///< total running time, seconds
  double mean_units = 0.0;          ///< mean communication load L
  std::size_t failures = 0;         ///< unrecovered iterations
  std::size_t partial_iterations = 0;  ///< partial-decode updates applied

  // Model quality — training runs only (threaded runtime, or the
  // simulated runtime with `ExperimentConfig::train`).
  std::optional<double> final_loss;
  std::optional<double> train_accuracy;

  // Convergence — training runs only. Rendered by the sinks only when
  // present, so timing-only output (and the pinned golden traces) is
  // byte-identical to the pre-engine schema.
  std::optional<double> time_to_target;  ///< seconds to reach target_loss
  std::size_t iterations_run = 0;        ///< < iterations on stop_at_target
  std::vector<engine::LossPoint> loss_history;  ///< opt-in (seconds, loss)

  /// Workers that died mid-run (socket EOF / broken pipe) — process
  /// runtime only. JSONL-only field: emitted when > 0, so timing-only
  /// output and the pinned golden traces stay byte-identical.
  std::size_t workers_lost = 0;

  /// The scheme's decode is a stochastic estimate (SchemeCapabilities::
  /// approximate_recovery — SGC). JSONL-only field, emitted when true:
  /// analysis code must not expect bitwise reproducibility of losses
  /// against exact-recovery baselines, and existing goldens (all exact
  /// schemes) stay byte-identical.
  bool approximate_recovery = false;
  /// Training iterations whose applied update came from an approximate
  /// decode; emitted alongside approximate_recovery for training runs.
  std::size_t approximate_iterations = 0;
};

/// Consumes finished records in deterministic order. `write` is always
/// called from one thread at a time (run_sweep serializes emission), in
/// sweep-cell order regardless of which worker finished first.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void write(const RunRecord& record) = 0;
};

/// Column names of the per-iteration trace CSV:
/// scheme,scenario,runtime + simulate::iteration_csv_header().
const std::vector<std::string>& trace_csv_header();

/// Column names of the one-row-per-record summary CSV.
const std::vector<std::string>& summary_csv_header();

/// Per-iteration CSV rows (header emitted once, on the first record).
/// Records without a trace (threaded runtime) contribute no rows.
class CsvTraceSink final : public RecordSink {
 public:
  explicit CsvTraceSink(std::ostream& os) : os_(os) {}
  void write(const RunRecord& record) override;

 private:
  std::ostream& os_;
  bool header_written_ = false;
};

/// One summary CSV row per record (final_loss/train_accuracy blank for
/// runs without model quality).
class CsvSummarySink final : public RecordSink {
 public:
  explicit CsvSummarySink(std::ostream& os) : os_(os) {}
  void write(const RunRecord& record) override;

 private:
  std::ostream& os_;
  bool header_written_ = false;
};

/// One JSON object per line per record. With `include_trace`, the object
/// carries the full per-iteration trace as a nested array.
class JsonlSink final : public RecordSink {
 public:
  explicit JsonlSink(std::ostream& os, bool include_trace = false)
      : os_(os), include_trace_(include_trace) {}
  void write(const RunRecord& record) override;

 private:
  std::ostream& os_;
  bool include_trace_;
};

/// Fans one record stream out to several sinks (e.g. CSV + JSONL).
class TeeSink final : public RecordSink {
 public:
  explicit TeeSink(std::vector<RecordSink*> sinks)
      : sinks_(std::move(sinks)) {}
  void write(const RunRecord& record) override {
    for (RecordSink* sink : sinks_) {
      sink->write(record);
    }
  }

 private:
  std::vector<RecordSink*> sinks_;
};

/// Opens `path` ("-" = stdout), runs `body(os)`, and flushes; returns
/// false with a diagnostic on stderr when the file cannot be opened or a
/// write fails (e.g. full disk). The shared open-or-diagnose contract of
/// every CSV/JSONL-emitting tool and bench.
bool with_output_stream(const std::string& path,
                        const std::function<void(std::ostream&)>& body);

/// Convenience: renders all `records` through a fresh sink of the given
/// kind at `path` via `with_output_stream`.
enum class RecordFormat { kTraceCsv, kSummaryCsv, kJsonl };
bool write_records_to_path(const std::string& path,
                           const std::vector<RunRecord>& records,
                           RecordFormat format);

}  // namespace coupon::driver
