#pragma once

/// \file runtime_registry.hpp
/// Open registry of execution runtimes (DESIGN.md §9).
///
/// A runtime is published under a canonical CLI name plus optional
/// aliases, together with a factory and capability flags. The driver,
/// sweep planner, and tools select runtimes by name through this
/// registry, so adding an execution substrate is one
/// `RuntimeRegistration` call in the new runtime's translation unit — no
/// if/else ladder, enum, or name-table edits. The capability flags
/// replace the `name() == "threaded"` string checks that used to gate
/// sweep planning and config validation: callers ask what a runtime can
/// do, not what it is called.
///
/// Registration discipline mirrors core::SchemeRegistry: register at
/// static-initialization time (via `RuntimeRegistration`) or during
/// single-threaded startup, before experiments run. Lookups are const
/// and may then be issued concurrently from sweep worker threads.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "driver/runtime.hpp"

namespace coupon::driver {

/// Static properties of a runtime that callers need before instantiating
/// one (config validation, sweep planning, `coupon_run --list`).
struct RuntimeCapabilities {
  /// Workers really compute gradients and the run trains a model (the
  /// threaded and process runtimes); false for the discrete-event
  /// simulator's timing-only mode.
  bool computes_gradients = false;
  /// Time is simulated, so latency-model knobs (per-worker profiles,
  /// message loss, ingress bandwidth) are expressible.
  bool simulated_clock = false;
  /// Honours ExperimentConfig::cluster_override (a caller-supplied
  /// simulated ClusterConfig).
  bool honours_cluster_override = false;
  /// Can run scenarios marked sim_only (simulator-side knobs).
  bool honours_sim_only_scenarios = false;
  /// Can run scenarios with an elasticity plan (live_only scenarios:
  /// workers join/leave mid-run).
  bool honours_elasticity = false;
  /// Workers are separate OS processes: crash injection
  /// (ExperimentConfig::crash_worker) is meaningful, and the runtime
  /// needs fork()/socket support from the sandbox.
  bool spawns_processes = false;
  /// Timing-only cells (train and record_trace off) may be grouped into
  /// one `simulate::BatchedKernel` pass by the sweep engine
  /// (`run_simulated_batch`), bit-identical to cell-at-a-time execution.
  bool batches_sim_cells = false;
  /// Training cells (train on, record_trace off) may be grouped into one
  /// `engine::BatchedTrainKernel` pass by the sweep engine
  /// (`run_simulated_train_batch`), bit-identical to cell-at-a-time
  /// execution.
  bool batches_train_cells = false;
};

/// One registry entry: identity, documentation, capabilities, factory.
struct RuntimeEntry {
  std::string name;                  ///< canonical CLI spelling, e.g. "sim"
  std::vector<std::string> aliases;  ///< extra spellings, e.g. "threads"
  std::string description;           ///< one-line --list text
  RuntimeCapabilities caps;
  std::function<std::unique_ptr<Runtime>()> factory;
};

/// Process-wide name -> factory registry. The three built-in runtimes
/// are registered on first access, in presentation order
/// (sim, threaded, process).
class RuntimeRegistry {
 public:
  static RuntimeRegistry& instance();

  /// Registers `entry`. Throws std::invalid_argument when the name or any
  /// alias collides with an existing name/alias, or when the entry has no
  /// name or no factory.
  void add(RuntimeEntry entry);

  /// Looks up a canonical name or alias; nullptr when unknown. The
  /// returned pointer stays valid for the process lifetime.
  const RuntimeEntry* find(std::string_view name_or_alias) const;

  /// Builds the named runtime; nullptr for an unknown name (the
  /// long-standing make_runtime contract — callers print
  /// `unknown_message` themselves).
  std::unique_ptr<Runtime> create(std::string_view name_or_alias) const;

  /// Canonical names in registration order.
  std::vector<std::string> names() const;

  /// "sim|threaded|process|..." for --help strings.
  std::string choices() const;

  /// "unknown runtime 'x' (did you mean 'y'? choices: ...)" — the shared
  /// diagnostic.
  std::string unknown_message(std::string_view name) const;

 private:
  RuntimeRegistry();  // registers the built-ins

  std::vector<RuntimeEntry> entries_;  // stable: entries are never removed
};

/// Self-registration helper: a namespace-scope
///   static const driver::RuntimeRegistration my_runtime{{.name = ...}};
/// in the runtime's translation unit publishes it before main() runs.
struct RuntimeRegistration {
  explicit RuntimeRegistration(RuntimeEntry entry) {
    RuntimeRegistry::instance().add(std::move(entry));
  }
};

}  // namespace coupon::driver
