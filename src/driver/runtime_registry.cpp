#include "driver/runtime_registry.hpp"

#include <stdexcept>
#include <utility>

#include "util/names.hpp"

namespace coupon::driver {

RuntimeRegistry& RuntimeRegistry::instance() {
  static RuntimeRegistry registry;
  return registry;
}

RuntimeRegistry::RuntimeRegistry() {
  // Built-ins, in the presentation order the CLI help has always used.
  add({.name = "sim",
       .aliases = {"simulated", "simulate"},
       .description =
           "discrete-event cluster model: per-iteration latency traces, "
           "no gradients computed",
       .caps = {.simulated_clock = true,
                .honours_cluster_override = true,
                .honours_sim_only_scenarios = true,
                .batches_sim_cells = true,
                .batches_train_cells = true},
       .factory = [] { return std::make_unique<SimulatedRuntime>(); }});
  add({.name = "threaded",
       .aliases = {"thread", "threads"},
       .description =
           "real master/worker threads training synthetic logistic "
           "regression over an in-process network",
       .caps = {.computes_gradients = true, .honours_elasticity = true},
       .factory = [] { return std::make_unique<ThreadedRuntime>(); }});
  add({.name = "process",
       .aliases = {"processes", "proc"},
       .description =
           "worker OS processes over framed stream sockets: real crash "
           "tolerance (SIGKILL -> EOF -> FailurePolicy), same protocol",
       .caps = {.computes_gradients = true,
                .honours_elasticity = true,
                .spawns_processes = true},
       .factory = [] { return std::make_unique<ProcessRuntime>(); }});
}

void RuntimeRegistry::add(RuntimeEntry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument("runtime registration requires a name");
  }
  if (!entry.factory) {
    throw std::invalid_argument("runtime '" + entry.name +
                                "' registered without a factory");
  }
  auto taken = [this](const std::string& spelling) {
    if (find(spelling) != nullptr) {
      throw std::invalid_argument("runtime name '" + spelling +
                                  "' is already registered");
    }
  };
  taken(entry.name);
  for (const auto& alias : entry.aliases) {
    taken(alias);
  }
  entries_.push_back(std::move(entry));
}

const RuntimeEntry* RuntimeRegistry::find(
    std::string_view name_or_alias) const {
  for (const auto& entry : entries_) {
    if (entry.name == name_or_alias) {
      return &entry;
    }
    for (const auto& alias : entry.aliases) {
      if (alias == name_or_alias) {
        return &entry;
      }
    }
  }
  return nullptr;
}

std::unique_ptr<Runtime> RuntimeRegistry::create(
    std::string_view name_or_alias) const {
  const RuntimeEntry* entry = find(name_or_alias);
  return entry == nullptr ? nullptr : entry->factory();
}

std::vector<std::string> RuntimeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(entry.name);
  }
  return out;
}

std::string RuntimeRegistry::choices() const { return join_names(names()); }

std::string RuntimeRegistry::unknown_message(std::string_view name) const {
  return unknown_name_message("runtime", name, names());
}

}  // namespace coupon::driver
