#pragma once

/// \file experiment_config.hpp
/// The fully-resolved description of one experiment cell: which scheme,
/// scenario, and runtime (all by registry name), the problem shape, the
/// training workload, and the runtime-specific knobs. Consumed by
/// `Runtime::run` and produced by CLI parsing (driver.hpp) and
/// `SweepPlan` expansion (sweep.hpp).
///
/// Deliberately light on includes: the simulator cluster model is held
/// behind a forward-declared shared_ptr and the failure policy comes
/// from the tiny engine/types.hpp, so driver consumers do not rebuild
/// when the simulation engine or the threaded transport change.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "engine/types.hpp"

namespace coupon::simulate {
struct ClusterConfig;
}

namespace coupon::driver {

/// Everything `run_experiment` needs; defaults reproduce the paper's
/// scenario one (n = 50 workers, m = 50 units, r = 10).
struct ExperimentConfig {
  std::string scheme = "bcc";            ///< core::SchemeRegistry name
  std::string scenario = "shifted_exp";  ///< driver::ScenarioRegistry name
  std::string runtime = "sim";           ///< runtime name (runtime.hpp)
  std::size_t num_workers = 50;
  std::size_t num_units = 50;
  std::size_t load = 10;
  std::size_t iterations = 100;
  std::uint64_t seed = 1;

  /// Simulated runtime, timing-only mode: record the per-iteration
  /// latency trace into `RunRecord::trace`. Defaults to true so single
  /// runs keep feeding the trace-CSV/JSONL renderers; summary-only
  /// consumers (sweeps streaming to summary sinks — see `coupon_run
  /// --sweep` and the table/figure benches) turn it off so
  /// `simulate_run` never materializes per-iteration storage. Ignored by
  /// the threaded runtime and by training runs, whose records never
  /// carry a latency trace.
  bool record_trace = true;

  /// When set, replaces the named scenario's simulator cluster model —
  /// the carrier for callers holding a customized simulate cluster (e.g.
  /// `config_from_sim_scenario`, the ablation benches' drop/bandwidth
  /// sweeps). Simulated runtime only: the threaded runtime fails loudly
  /// on a set override instead of silently ignoring it. (A shared_ptr so
  /// this header needs no simulator includes; the pointee is never
  /// mutated after construction.)
  std::shared_ptr<const simulate::ClusterConfig> cluster_override;

  // --- training workload (threaded runtime always trains; the simulated
  // --- runtime trains when `train` is set, else measures timing only) --

  /// Simulated runtime: couple the iteration kernel's arrival order and
  /// recovery times with real gradients (engine/simulated_provider.hpp),
  /// producing loss-vs-simulated-seconds convergence records.
  bool train = false;
  /// Objective: "logistic" (the paper's synthetic model; units are
  /// batches of `examples_per_unit` points) or "least_squares" (linear
  /// regression; one example per unit).
  std::string objective = "logistic";
  /// Optimizer: "nesterov" (the paper's), "gd", "heavy_ball", "adagrad".
  std::string optimizer = "nesterov";
  std::size_t features = 20;
  std::size_t examples_per_unit = 20;
  double learning_rate = 2.0;
  /// Inverse-time learning-rate decay: mu_t = learning_rate/(1+decay*t).
  double lr_decay = 0.0;
  /// When set, `RunRecord::time_to_target` reports the elapsed seconds
  /// at which the training loss first reached this value.
  std::optional<double> target_loss;
  /// Stop a training run as soon as target_loss is reached.
  bool stop_at_target = false;
  /// Record the per-iteration (seconds, loss) curve into
  /// `RunRecord::loss_history`.
  bool record_loss_history = false;
  /// What the master does on an unrecoverable iteration.
  engine::FailurePolicy on_failure = engine::FailurePolicy::kSkipUpdate;
  /// BCC only: deterministic first-batch coverage aid (DESIGN.md §5.3).
  /// nullopt = the runtime's default (timing-only simulation: false,
  /// matching the paper's fully random choice; training runs: true,
  /// matching the quickstart's real-training setup).
  std::optional<bool> bcc_seed_first_batches;

  // --- process runtime only (rejected loudly elsewhere) ----------------

  /// Master-side wait deadline per gradient arrival before the
  /// iteration's outstanding replies are abandoned to the FailurePolicy.
  /// Bounds a hung-but-alive worker; crashed workers are detected
  /// immediately via socket EOF. 0 = wait forever.
  std::int64_t worker_timeout_ms = 10000;
  /// Crash drill: this worker raises SIGKILL on receiving the broadcast
  /// of `crash_iteration` — exercises EOF detection and FailurePolicy
  /// recovery on a real process.
  std::optional<std::size_t> crash_worker;
  std::size_t crash_iteration = 0;
};

}  // namespace coupon::driver
