#pragma once

/// \file experiment_config.hpp
/// The fully-resolved description of one experiment cell: which scheme,
/// scenario, and runtime (all by registry name), the problem shape, and
/// the runtime-specific knobs. Consumed by `Runtime::run` and produced by
/// CLI parsing (driver.hpp) and `SweepPlan` expansion (sweep.hpp).

#include <cstdint>
#include <optional>
#include <string>

#include "runtime/thread_cluster.hpp"
#include "simulate/cluster_sim.hpp"

namespace coupon::driver {

/// Everything `run_experiment` needs; defaults reproduce the paper's
/// scenario one (n = 50 workers, m = 50 units, r = 10).
struct ExperimentConfig {
  std::string scheme = "bcc";            ///< core::SchemeRegistry name
  std::string scenario = "shifted_exp";  ///< driver::ScenarioRegistry name
  std::string runtime = "sim";           ///< runtime name (runtime.hpp)
  std::size_t num_workers = 50;
  std::size_t num_units = 50;
  std::size_t load = 10;
  std::size_t iterations = 100;
  std::uint64_t seed = 1;

  /// Simulated runtime only: record the per-iteration latency trace into
  /// `RunRecord::trace`. Defaults to true so single runs keep feeding the
  /// trace-CSV/JSONL renderers; summary-only consumers (sweeps streaming
  /// to summary sinks — see `coupon_run --sweep` and the table/figure
  /// benches) turn it off so `simulate_run` never materializes
  /// per-iteration storage. Ignored by the threaded runtime, whose
  /// records never carry a trace.
  bool record_trace = true;

  /// When set, replaces the named scenario's simulator cluster model —
  /// the carrier for callers holding a customized simulate cluster (e.g.
  /// `config_from_sim_scenario`, the ablation benches' drop/bandwidth
  /// sweeps). Simulated runtime only: the threaded runtime fails loudly
  /// on a set override instead of silently ignoring it.
  std::optional<simulate::ClusterConfig> cluster_override;

  // Threaded runtime only: the synthetic logistic-regression workload.
  std::size_t features = 20;
  std::size_t examples_per_unit = 20;
  double learning_rate = 2.0;
  /// What the master does on an unrecoverable iteration.
  runtime::FailurePolicy on_failure = runtime::FailurePolicy::kSkipUpdate;
  /// BCC only: deterministic first-batch coverage aid (DESIGN.md §5.3).
  /// nullopt = the runtime's default (simulated: false, matching the
  /// paper's fully random choice; threaded: true, matching the
  /// quickstart's real-training setup).
  std::optional<bool> bcc_seed_first_batches;
};

}  // namespace coupon::driver
