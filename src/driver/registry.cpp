#include "driver/registry.hpp"

#include <algorithm>

#include "simulate/experiment.hpp"

namespace coupon::driver {

namespace {

/// Threaded-runtime counterpart of the EC2 calibration: injected
/// shift-exponential sleeps.
runtime::StragglerInjection shifted_exp_straggler() {
  runtime::StragglerInjection s;
  s.enabled = true;
  s.shift_ms_per_unit = 0.05;
  s.straggle = 1.0;
  return s;
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& part : parts) {
    if (!out.empty()) {
      out += "|";
    }
    out += part;
  }
  return out;
}

}  // namespace

std::string_view runtime_name(RuntimeKind runtime) {
  switch (runtime) {
    case RuntimeKind::kSimulated:
      return "sim";
    case RuntimeKind::kThreaded:
      return "threaded";
  }
  return "unknown";
}

std::optional<RuntimeKind> parse_runtime(std::string_view name) {
  if (name == "sim" || name == "simulated" || name == "simulate") {
    return RuntimeKind::kSimulated;
  }
  if (name == "threaded" || name == "thread" || name == "threads") {
    return RuntimeKind::kThreaded;
  }
  return std::nullopt;
}

std::optional<core::SchemeKind> parse_scheme(std::string_view name) {
  using core::SchemeKind;
  if (name == "uncoded") {
    return SchemeKind::kUncoded;
  }
  if (name == "bcc" || name == "batched_coupon_collection") {
    return SchemeKind::kBcc;
  }
  if (name == "simple_random" || name == "srs") {
    return SchemeKind::kSimpleRandom;
  }
  if (name == "cr" || name == "cyclic_repetition") {
    return SchemeKind::kCyclicRepetition;
  }
  if (name == "fr" || name == "fractional_repetition") {
    return SchemeKind::kFractionalRepetition;
  }
  return std::nullopt;
}

std::string_view scheme_cli_name(core::SchemeKind kind) {
  using core::SchemeKind;
  switch (kind) {
    case SchemeKind::kUncoded:
      return "uncoded";
    case SchemeKind::kBcc:
      return "bcc";
    case SchemeKind::kSimpleRandom:
      return "simple_random";
    case SchemeKind::kCyclicRepetition:
      return "cr";
    case SchemeKind::kFractionalRepetition:
      return "fr";
  }
  return "unknown";
}

std::optional<Scenario> make_scenario(std::string_view name,
                                      std::size_t num_workers) {
  Scenario s;
  s.name = std::string(name);
  s.cluster = simulate::ec2_cluster();
  s.straggler = shifted_exp_straggler();

  if (name == "shifted_exp") {
    s.description =
        "homogeneous shift-exponential compute (Eq. 15), EC2 calibration";
    return s;
  }
  if (name == "hetero") {
    s.description =
        "5% fast workers (mu=20), 95% slow (mu=1), Fig. 5 shape (sim only)";
    s.sim_only = true;
    // At least one fast worker even for tiny clusters.
    const std::size_t fast =
        std::min(num_workers, std::max<std::size_t>(1, num_workers / 20));
    s.cluster.worker_overrides.assign(
        num_workers, simulate::WorkerLatency{s.cluster.compute_shift, 1.0});
    for (std::size_t i = num_workers - fast; i < num_workers; ++i) {
      s.cluster.worker_overrides[i].compute_straggle = 20.0;
    }
    return s;
  }
  if (name == "lossy") {
    s.description = "shifted_exp plus 5% i.i.d. message loss (sim only)";
    s.sim_only = true;
    s.cluster.drop_probability = 0.05;
    return s;
  }
  if (name == "fast_network") {
    s.description =
        "10x faster master ingress (compute-dominated regime; sim only)";
    s.sim_only = true;
    s.cluster.unit_transfer_seconds /= 10.0;
    return s;
  }
  if (name == "no_stragglers") {
    s.description = "near-deterministic compute, no loss (best case)";
    s.cluster.compute_straggle = 1e6;  // exponential tail ~ 0
    s.straggler.enabled = false;
    return s;
  }
  return std::nullopt;
}

const std::vector<std::string>& scenario_names() {
  static const std::vector<std::string> names = {
      "shifted_exp", "hetero", "lossy", "fast_network", "no_stragglers"};
  return names;
}

std::string scheme_choices() { return "uncoded|fr|cr|bcc|simple_random"; }

std::string scenario_choices() { return join(scenario_names()); }

std::string runtime_choices() { return "sim|threaded"; }

}  // namespace coupon::driver
