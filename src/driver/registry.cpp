#include "driver/registry.hpp"

#include <stdexcept>

#include "core/scheme_registry.hpp"
#include "driver/runtime.hpp"
#include "util/names.hpp"

namespace coupon::driver {

std::optional<Scenario> make_scenario(std::string_view name,
                                      std::size_t num_workers) {
  const auto& registry = ScenarioRegistry::instance();
  // resolve, not find: accepts "name:arg" spellings and rejects a
  // parameterized entry selected bare.
  if (registry.resolve(name) == nullptr) {
    return std::nullopt;
  }
  return registry.build(name, num_workers);
}

std::vector<std::string> scenario_names() {
  return ScenarioRegistry::instance().names();
}

std::vector<std::string> scheme_names() {
  return core::SchemeRegistry::instance().names();
}

std::string scheme_choices() {
  return core::SchemeRegistry::instance().choices();
}

std::string scenario_choices() {
  return ScenarioRegistry::instance().choices();
}

std::string runtime_choices() { return join_names(runtime_names()); }

}  // namespace coupon::driver
