#include "driver/record.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "simulate/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace coupon::driver {

namespace {

/// Shortest round-trippable decimal rendering for JSON numbers.
std::string json_number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string optional_field(const std::optional<double>& value, int digits) {
  return value ? format_double(*value, digits) : std::string();
}

}  // namespace

const std::vector<std::string>& trace_csv_header() {
  static const std::vector<std::string> header = [] {
    std::vector<std::string> h = {"scheme", "scenario", "runtime"};
    const auto& trace = simulate::iteration_csv_header();
    h.insert(h.end(), trace.begin(), trace.end());
    return h;
  }();
  return header;
}

const std::vector<std::string>& summary_csv_header() {
  static const std::vector<std::string> header = {
      "scheme",        "scenario",
      "runtime",       "workers",
      "units",         "load",
      "iterations",    "seed",
      "recovery_threshold", "comm_time",
      "compute_time",  "total_time",
      "mean_units",    "failures",
      "partial_iterations", "final_loss",
      "train_accuracy", "time_to_target"};
  return header;
}

void CsvTraceSink::write(const RunRecord& record) {
  CsvWriter csv(os_);
  if (!header_written_) {
    csv.row(trace_csv_header());
    header_written_ = true;
  }
  for (std::size_t t = 0; t < record.trace.size(); ++t) {
    std::vector<std::string> row = {record.scheme, record.scenario,
                                    record.runtime};
    auto fields = simulate::iteration_csv_fields(t, record.trace[t]);
    row.insert(row.end(), std::make_move_iterator(fields.begin()),
               std::make_move_iterator(fields.end()));
    csv.row(row);
  }
}

void CsvSummarySink::write(const RunRecord& record) {
  CsvWriter csv(os_);
  if (!header_written_) {
    csv.row(summary_csv_header());
    header_written_ = true;
  }
  csv.row({record.scheme, record.scenario, record.runtime,
           std::to_string(record.num_workers),
           std::to_string(record.num_units), std::to_string(record.load),
           std::to_string(record.iterations), std::to_string(record.seed),
           format_double(record.recovery_threshold, 3),
           format_double(record.comm_time, 6),
           format_double(record.compute_time, 6),
           format_double(record.total_time, 6),
           format_double(record.mean_units, 3),
           std::to_string(record.failures),
           std::to_string(record.partial_iterations),
           optional_field(record.final_loss, 6),
           optional_field(record.train_accuracy, 4),
           optional_field(record.time_to_target, 6)});
}

void JsonlSink::write(const RunRecord& record) {
  os_ << "{\"scheme\":\"" << json_escape(record.scheme) << "\""
      << ",\"scenario\":\"" << json_escape(record.scenario) << "\""
      << ",\"runtime\":\"" << json_escape(record.runtime) << "\""
      << ",\"workers\":" << record.num_workers
      << ",\"units\":" << record.num_units << ",\"load\":" << record.load
      << ",\"iterations\":" << record.iterations
      << ",\"seed\":" << record.seed
      << ",\"recovery_threshold\":" << json_number(record.recovery_threshold)
      << ",\"comm_time\":" << json_number(record.comm_time)
      << ",\"compute_time\":" << json_number(record.compute_time)
      << ",\"total_time\":" << json_number(record.total_time)
      << ",\"mean_units\":" << json_number(record.mean_units)
      << ",\"failures\":" << record.failures
      << ",\"partial_iterations\":" << record.partial_iterations
      << ",\"final_loss\":"
      << (record.final_loss ? json_number(*record.final_loss) : "null")
      << ",\"train_accuracy\":"
      << (record.train_accuracy ? json_number(*record.train_accuracy)
                                : "null");
  // Convergence fields are emitted only for training records, keeping
  // timing-only JSONL (and the pinned golden traces) byte-identical to
  // the pre-engine schema.
  if (record.final_loss) {
    os_ << ",\"iterations_run\":" << record.iterations_run;
  }
  if (record.time_to_target) {
    os_ << ",\"time_to_target\":" << json_number(*record.time_to_target);
  }
  if (record.workers_lost > 0) {
    os_ << ",\"workers_lost\":" << record.workers_lost;
  }
  if (record.approximate_recovery) {
    os_ << ",\"approximate_recovery\":true"
        << ",\"approximate_iterations\":" << record.approximate_iterations;
  }
  if (!record.loss_history.empty()) {
    os_ << ",\"loss_history\":[";
    for (std::size_t i = 0; i < record.loss_history.size(); ++i) {
      const auto& point = record.loss_history[i];
      os_ << (i == 0 ? "" : ",") << "{\"seconds\":"
          << json_number(point.seconds)
          << ",\"loss\":" << json_number(point.loss) << "}";
    }
    os_ << "]";
  }
  if (include_trace_) {
    os_ << ",\"trace\":[";
    for (std::size_t t = 0; t < record.trace.size(); ++t) {
      const auto& it = record.trace[t];
      os_ << (t == 0 ? "" : ",") << "{\"iteration\":" << t
          << ",\"total_time\":" << json_number(it.total_time)
          << ",\"compute_time\":" << json_number(it.compute_time)
          << ",\"comm_time\":" << json_number(it.comm_time)
          << ",\"workers_heard\":" << it.workers_heard
          << ",\"units_received\":" << json_number(it.units_received)
          << ",\"recovered\":" << (it.recovered ? "true" : "false") << "}";
    }
    os_ << "]";
  }
  os_ << "}\n";
}

bool with_output_stream(const std::string& path,
                        const std::function<void(std::ostream&)>& body) {
  if (path == "-") {
    body(std::cout);
    std::cout.flush();
    if (!std::cout) {
      std::fprintf(stderr, "error writing to stdout\n");
      return false;
    }
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  body(out);
  out.close();  // flush and surface truncated writes (e.g. full disk)
  if (!out) {
    std::fprintf(stderr, "error writing '%s'\n", path.c_str());
    return false;
  }
  return true;
}

bool write_records_to_path(const std::string& path,
                           const std::vector<RunRecord>& records,
                           RecordFormat format) {
  return with_output_stream(path, [&](std::ostream& os) {
    std::unique_ptr<RecordSink> sink;
    switch (format) {
      case RecordFormat::kTraceCsv:
        sink = std::make_unique<CsvTraceSink>(os);
        break;
      case RecordFormat::kSummaryCsv:
        sink = std::make_unique<CsvSummarySink>(os);
        break;
      case RecordFormat::kJsonl:
        sink = std::make_unique<JsonlSink>(os);
        break;
    }
    for (const auto& record : records) {
      sink->write(record);
    }
  });
}

}  // namespace coupon::driver
