#pragma once

/// \file runtime.hpp
/// The unified execution-substrate interface (DESIGN.md §2, §4).
///
/// A `Runtime` turns one fully-resolved `ExperimentConfig` into one typed
/// `RunRecord`. The two implementations are the discrete-event simulator
/// (`SimulatedRuntime`, no gradients computed) and the real-thread
/// training cluster (`ThreadedRuntime`); a future MPI/distributed backend
/// is one more subclass plus a `make_runtime` entry — callers never
/// branch on a runtime enum.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "driver/experiment_config.hpp"
#include "driver/record.hpp"

namespace coupon::driver {

/// Polymorphic execution substrate.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Canonical runtime name stamped into records ("sim", "threaded").
  virtual std::string_view name() const = 0;

  /// Runs one (scheme, scenario) cell. Throws std::invalid_argument on an
  /// unknown scheme/scenario name or a scenario/config this runtime
  /// cannot express (sim-only scenario or cluster_override under the
  /// threaded runtime).
  virtual RunRecord run(const ExperimentConfig& config) const = 0;
};

/// Discrete-event cluster model (simulate/cluster_sim.hpp): per-iteration
/// latency traces, no gradients computed.
class SimulatedRuntime final : public Runtime {
 public:
  std::string_view name() const override { return "sim"; }
  RunRecord run(const ExperimentConfig& config) const override;
};

/// Real master/worker threads training synthetic logistic regression
/// (runtime/thread_cluster.hpp): wall-clock summary plus final loss and
/// train accuracy.
class ThreadedRuntime final : public Runtime {
 public:
  std::string_view name() const override { return "threaded"; }
  RunRecord run(const ExperimentConfig& config) const override;
};

/// Builds the named runtime ("sim"/"simulated"/"simulate",
/// "threaded"/"thread"/"threads"); nullptr for an unknown name.
std::unique_ptr<Runtime> make_runtime(std::string_view name);

/// Canonical runtime names, in presentation order.
const std::vector<std::string>& runtime_names();

}  // namespace coupon::driver
