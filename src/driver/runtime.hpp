#pragma once

/// \file runtime.hpp
/// The unified execution-substrate interface (DESIGN.md §2, §4).
///
/// A `Runtime` turns one fully-resolved `ExperimentConfig` into one typed
/// `RunRecord`. The three implementations are the discrete-event
/// simulator (`SimulatedRuntime`, no gradients computed), the real-thread
/// training cluster (`ThreadedRuntime`), and the multi-process socket
/// cluster (`ProcessRuntime`). Runtimes are published through
/// `RuntimeRegistry` (runtime_registry.hpp) with capability flags; a new
/// backend is one more subclass plus a `RuntimeRegistration` — callers
/// never branch on a runtime enum or name.

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "driver/experiment_config.hpp"
#include "driver/record.hpp"

namespace coupon::driver {

/// Polymorphic execution substrate.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Canonical runtime name stamped into records ("sim", "threaded").
  virtual std::string_view name() const = 0;

  /// Runs one (scheme, scenario) cell. Throws std::invalid_argument on an
  /// unknown scheme/scenario name or a scenario/config this runtime
  /// cannot express (sim-only scenario or cluster_override under the
  /// threaded runtime).
  virtual RunRecord run(const ExperimentConfig& config) const = 0;
};

/// Discrete-event cluster model (simulate/cluster_sim.hpp): per-iteration
/// latency traces, no gradients computed.
class SimulatedRuntime final : public Runtime {
 public:
  std::string_view name() const override { return "sim"; }
  RunRecord run(const ExperimentConfig& config) const override;
};

/// Real master/worker threads training synthetic logistic regression
/// (runtime/thread_cluster.hpp): wall-clock summary plus final loss and
/// train accuracy.
class ThreadedRuntime final : public Runtime {
 public:
  std::string_view name() const override { return "threaded"; }
  RunRecord run(const ExperimentConfig& config) const override;
};

/// Worker OS processes over framed stream sockets
/// (runtime/process_cluster.hpp): the same master protocol as the
/// threaded runtime, plus real crash tolerance — a SIGKILLed worker is
/// detected via socket EOF and resolved by the FailurePolicy.
class ProcessRuntime final : public Runtime {
 public:
  std::string_view name() const override { return "process"; }
  RunRecord run(const ExperimentConfig& config) const override;
};

/// Executes a group of timing-only simulated cells through one
/// `simulate::BatchedKernel` pass — the sweep engine's fast path for
/// fig2-style grids (many same-n cells differing in scheme/seed/
/// scenario). Requirements: every config must be runnable by
/// `SimulatedRuntime::run` with `train` and `record_trace` off, and all
/// configs must share one `num_workers`. Per-cell setup (seeded RNG,
/// scheme construction, scenario resolution) matches
/// `SimulatedRuntime::run` exactly and each cell keeps its own RNG
/// stream, so the returned records are bit-identical to running each
/// config through the runtime one at a time.
std::vector<RunRecord> run_simulated_batch(
    std::span<const ExperimentConfig> configs);

/// Executes a group of simulated *training* cells through one
/// `engine::BatchedTrainKernel` pass — the training-path sibling of
/// `run_simulated_batch` for multi-seed convergence grids.
/// Requirements: every config must be runnable by
/// `SimulatedRuntime::run` with `train` on, and all configs must share
/// one model dimension (`features`). Per-cell setup (seeded RNG,
/// workload generation, scheme construction, optimizer) matches
/// `SimulatedRuntime::run`'s train branch exactly and each cell keeps
/// its own RNG stream, provider, and optimizer, so the returned records
/// are bit-identical to running each config through the runtime one at
/// a time.
std::vector<RunRecord> run_simulated_train_batch(
    std::span<const ExperimentConfig> configs);

/// Builds the named runtime via RuntimeRegistry ("sim"/"simulated"/
/// "simulate", "threaded"/"thread"/"threads", "process"/"processes"/
/// "proc"); nullptr for an unknown name.
std::unique_ptr<Runtime> make_runtime(std::string_view name);

/// Canonical runtime names, in presentation order.
const std::vector<std::string>& runtime_names();

}  // namespace coupon::driver
