#include "driver/sweep.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/scheme_registry.hpp"
#include "driver/driver.hpp"
#include "driver/runtime.hpp"
#include "driver/runtime_registry.hpp"
#include "driver/scenario_registry.hpp"
#include "util/thread_pool.hpp"

namespace coupon::driver {

namespace {

template <typename T>
std::vector<T> axis_or(const std::vector<T>& axis, T base_value) {
  return axis.empty() ? std::vector<T>{base_value} : axis;
}

}  // namespace

std::vector<SweepCell> expand_plan(const SweepPlan& plan) {
  const auto schemes = axis_or(plan.schemes, plan.base.scheme);
  const auto scenarios = axis_or(plan.scenarios, plan.base.scenario);
  const auto workers = axis_or(plan.workers, plan.base.num_workers);
  const auto loads = axis_or(plan.loads, plan.base.load);
  const auto iterations = axis_or(plan.iterations, plan.base.iterations);
  const auto seeds = axis_or(plan.seeds, plan.base.seed);

  // Fail on any bad name before running a single cell.
  const auto& scheme_registry = core::SchemeRegistry::instance();
  for (const auto& scheme : schemes) {
    if (scheme_registry.find(scheme) == nullptr) {
      throw std::invalid_argument(scheme_registry.unknown_message(scheme));
    }
  }
  const auto& scenario_registry = ScenarioRegistry::instance();
  for (const auto& scenario : scenarios) {
    if (scenario_registry.resolve(scenario) == nullptr) {
      throw std::invalid_argument(
          scenario_registry.unknown_message(scenario));
    }
  }
  const RuntimeEntry* runtime =
      RuntimeRegistry::instance().find(plan.base.runtime);
  if (runtime == nullptr) {
    throw std::invalid_argument(
        RuntimeRegistry::instance().unknown_message(plan.base.runtime));
  }

  // ... and on any cell the selected runtime or a scheme's structural
  // requirements would reject at run time, so a sweep cannot burn half
  // its cells before discovering a bad combination. Capability-driven:
  // the planner asks what the runtime can do, never what it is called.
  for (const auto& scenario : scenarios) {
    if (scenario_registry.resolve(scenario)->sim_only &&
        !runtime->caps.honours_sim_only_scenarios) {
      throw std::invalid_argument(
          "scenario '" + scenario +
          "' only varies simulator-side knobs; use the sim runtime");
    }
    if (scenario_registry.resolve(scenario)->live_only &&
        !runtime->caps.honours_elasticity) {
      throw std::invalid_argument(
          "scenario '" + scenario +
          "' needs a live cluster (workers join/leave); use the threaded "
          "or process runtime");
    }
  }
  if (plan.base.cluster_override && !runtime->caps.honours_cluster_override) {
    throw std::invalid_argument(
        "cluster_override describes the simulated cluster; the " +
        std::string(runtime->name) +
        " runtime cannot honour it — use the sim runtime");
  }
  if (plan.base.crash_worker && !runtime->caps.spawns_processes) {
    throw std::invalid_argument(
        "crash_worker injects a real worker-process SIGKILL; the " +
        std::string(runtime->name) +
        " runtime has no processes to kill — use the process runtime");
  }
  auto check_caps = [&](const std::string& scheme, std::size_t n,
                        std::size_t m, std::size_t r) {
    const auto& caps = scheme_registry.find(scheme)->caps;
    if (caps.requires_units_equal_workers && m != n) {
      throw std::invalid_argument("scheme '" + scheme +
                                  "' requires m == n, but a sweep cell has "
                                  "n=" + std::to_string(n) +
                                  " m=" + std::to_string(m));
    }
    if (caps.requires_load_divides_workers && (r == 0 || n % r != 0)) {
      throw std::invalid_argument("scheme '" + scheme +
                                  "' requires r | n, but a sweep cell has "
                                  "n=" + std::to_string(n) +
                                  " r=" + std::to_string(r));
    }
  };

  std::vector<SweepCell> cells;
  for (const auto& scheme : schemes) {
    for (const auto& scenario : scenarios) {
      for (std::size_t n : workers) {
        // Empty units axis: m tracks n (the m == n shape every paper
        // scenario and the CR/FR placement constraint use).
        const auto units = axis_or(plan.units, n);
        for (std::size_t m : units) {
          for (std::size_t r : loads) {
            check_caps(scheme, n, m, r);
            for (std::size_t iters : iterations) {
              for (std::uint64_t seed : seeds) {
                SweepCell cell;
                cell.index = cells.size();
                cell.config = plan.base;
                cell.config.scheme = scheme;
                cell.config.scenario = scenario;
                cell.config.num_workers = n;
                cell.config.num_units = m;
                cell.config.load = r;
                cell.config.iterations = iters;
                cell.config.seed = seed;
                cells.push_back(std::move(cell));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

std::vector<RunRecord> run_sweep(const SweepPlan& plan,
                                 const SweepOptions& options) {
  const std::vector<SweepCell> cells = expand_plan(plan);

  // Work-item planning: when the runtime batches simulated cells and the
  // plan records no traces, consecutive same-n cells are grouped into one
  // lockstep kernel pass of up to `options.sim_batch` cells — timing-only
  // plans through BatchedKernel (run_simulated_batch, needs
  // RuntimeCapabilities::batches_sim_cells), training plans through
  // BatchedTrainKernel (run_simulated_train_batch, needs
  // batches_train_cells). Batched or not, every cell's RNG stream is
  // seeded from its own config, so the records — and therefore the sink
  // bytes — are identical for any batch size and thread count.
  const RuntimeEntry* runtime =
      RuntimeRegistry::instance().find(plan.base.runtime);
  const bool batchable =
      runtime != nullptr && !plan.base.record_trace && options.sim_batch > 1 &&
      (plan.base.train ? runtime->caps.batches_train_cells
                       : runtime->caps.batches_sim_cells);
  struct Item {
    std::size_t first = 0;
    std::size_t count = 1;
  };
  std::vector<Item> items;
  items.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size();) {
    Item item{i, 1};
    if (batchable) {
      while (i + item.count < cells.size() &&
             item.count < options.sim_batch &&
             cells[i + item.count].config.num_workers ==
                 cells[i].config.num_workers) {
        ++item.count;
      }
    }
    items.push_back(item);
    i += item.count;
  }

  std::vector<std::optional<RunRecord>> slots(cells.size());
  std::vector<std::exception_ptr> errors(cells.size());

  // Runs one work item; a batched item's failure marks all of its cells
  // (expand_plan pre-validates names and capabilities, so mid-batch
  // throws indicate a cell that would fail standalone too).
  auto run_item = [&](const Item& item) {
    if (item.count == 1) {
      std::vector<RunRecord> one;
      one.push_back(run_experiment(cells[item.first].config));
      return one;
    }
    std::vector<ExperimentConfig> configs;
    configs.reserve(item.count);
    for (std::size_t k = 0; k < item.count; ++k) {
      configs.push_back(cells[item.first + k].config);
    }
    return plan.base.train ? run_simulated_train_batch(configs)
                           : run_simulated_batch(configs);
  };

  // Serial path: run in item order, stream as we go. This is also the
  // reference the parallel path's output must be bit-identical to.
  if (options.threads == 1) {
    for (const Item& item : items) {
      try {
        std::vector<RunRecord> records = run_item(item);
        for (std::size_t k = 0; k < records.size(); ++k) {
          slots[item.first + k] = std::move(records[k]);
          if (options.sink != nullptr) {
            options.sink->write(*slots[item.first + k]);
          }
        }
      } catch (...) {
        for (std::size_t k = 0; k < item.count; ++k) {
          errors[item.first + k] = std::current_exception();
        }
      }
    }
  } else {
    std::size_t threads = options.threads != 0
                              ? options.threads
                              : std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(threads, std::max<std::size_t>(1, items.size()));
    ThreadPool pool(threads);

    // Finished records are published under the mutex; the emission cursor
    // advances through the slots in cell order, so the sink sees exactly
    // the serial order no matter which worker finishes first.
    std::mutex mutex;
    std::size_t cursor = 0;
    std::vector<std::future<void>> futures;
    futures.reserve(items.size());
    for (const Item& item : items) {
      futures.push_back(pool.submit([&, item] {
        std::vector<RunRecord> records;
        std::exception_ptr error;
        try {
          records = run_item(item);
        } catch (...) {
          error = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mutex);
        if (error != nullptr) {
          for (std::size_t k = 0; k < item.count; ++k) {
            errors[item.first + k] = error;
          }
        } else {
          for (std::size_t k = 0; k < records.size(); ++k) {
            slots[item.first + k] = std::move(records[k]);
          }
        }
        while (cursor < slots.size() &&
               (slots[cursor].has_value() || errors[cursor] != nullptr)) {
          if (options.sink != nullptr && slots[cursor].has_value()) {
            options.sink->write(*slots[cursor]);
          }
          ++cursor;
        }
      }));
    }
    for (auto& future : futures) {
      future.get();
    }
  }

  // Rethrow the first failure by cell order (after every cell finished,
  // so a long sweep is never half-torn-down under the caller).
  for (const auto& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }

  std::vector<RunRecord> records;
  records.reserve(cells.size());
  for (auto& slot : slots) {
    records.push_back(std::move(*slot));
  }
  return records;
}

}  // namespace coupon::driver
