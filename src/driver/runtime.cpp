#include "driver/runtime.hpp"

#include <stdexcept>

#include "core/gradient_source.hpp"
#include "core/scheme_registry.hpp"
#include "data/batching.hpp"
#include "data/synthetic.hpp"
#include "driver/scenario_registry.hpp"
#include "opt/logistic.hpp"
#include "opt/optimizer.hpp"
#include "runtime/thread_cluster.hpp"
#include "simulate/cluster_sim.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"

namespace coupon::driver {

namespace {

/// Resolves names to canonical spellings and stamps the run identity.
RunRecord identity_record(const ExperimentConfig& config,
                          std::string_view runtime_name) {
  const core::SchemeEntry* scheme =
      core::SchemeRegistry::instance().find(config.scheme);
  if (scheme == nullptr) {
    throw std::invalid_argument(
        core::SchemeRegistry::instance().unknown_message(config.scheme));
  }
  RunRecord record;
  record.scheme = scheme->name;  // canonical even when selected by alias
  record.scenario = config.scenario;
  record.runtime = std::string(runtime_name);
  record.num_workers = config.num_workers;
  record.num_units = config.num_units;
  record.load = config.load;
  record.iterations = config.iterations;
  record.seed = config.seed;
  return record;
}

core::SchemeConfig scheme_config(const ExperimentConfig& config,
                                 bool default_seed_first_batches) {
  core::SchemeConfig sconf;
  sconf.num_workers = config.num_workers;
  sconf.num_units = config.num_units;
  sconf.load = config.load;
  sconf.bcc_seed_first_batches =
      config.bcc_seed_first_batches.value_or(default_seed_first_batches);
  return sconf;
}

}  // namespace

RunRecord SimulatedRuntime::run(const ExperimentConfig& config) const {
  const Scenario scenario = ScenarioRegistry::instance().build(
      config.scenario, config.num_workers);
  RunRecord record = identity_record(config, name());

  stats::Rng rng(config.seed);
  auto scheme = core::SchemeRegistry::instance().create(
      config.scheme, scheme_config(config, /*default_seed_first_batches=*/false),
      rng);
  record.scheme_display = std::string(scheme->name());

  // The footgun fix: a caller-supplied cluster model (e.g. from
  // config_from_sim_scenario) wins over the named scenario's.
  const simulate::ClusterConfig& cluster =
      config.cluster_override ? *config.cluster_override : scenario.cluster;
  simulate::RunOptions options;
  options.iterations = config.iterations;
  options.record_trace = config.record_trace;
  simulate::RunReport run = simulate_run(*scheme, cluster, options, rng);

  record.trace = std::move(run.iterations);
  record.recovery_threshold = run.workers_heard.mean();
  record.comm_time = run.total_comm_time;
  record.compute_time = run.total_compute_time;
  record.total_time = run.total_time;
  record.mean_units = run.units_received.mean();
  record.failures = run.failures;
  return record;
}

RunRecord ThreadedRuntime::run(const ExperimentConfig& config) const {
  const Scenario scenario = ScenarioRegistry::instance().build(
      config.scenario, config.num_workers);
  if (scenario.sim_only) {
    throw std::invalid_argument(
        "scenario '" + scenario.name +
        "' only varies simulator-side knobs; use --runtime sim");
  }
  if (config.cluster_override) {
    throw std::invalid_argument(
        "cluster_override describes the simulated cluster; the threaded "
        "runtime cannot honour it — use the sim runtime");
  }
  RunRecord record = identity_record(config, name());

  stats::Rng rng(config.seed);

  // Synthetic logistic-regression workload: m units of `examples_per_unit`
  // points each ("super examples", footnote 1 of the paper).
  const std::size_t num_examples = config.num_units * config.examples_per_unit;
  data::SyntheticConfig dconf;
  dconf.num_features = config.features;
  const auto problem = data::generate_logreg(num_examples, dconf, rng);
  data::BatchPartition partition(num_examples, config.examples_per_unit);
  COUPON_ASSERT(partition.num_batches() == config.num_units);
  core::GroupedBatchSource source(problem.dataset, partition);

  // Seeded first batches (by default) guarantee per-iteration BCC
  // coverage, matching the quickstart's real-training setup.
  auto scheme = core::SchemeRegistry::instance().create(
      config.scheme, scheme_config(config, /*default_seed_first_batches=*/true),
      rng);
  record.scheme_display = std::string(scheme->name());

  runtime::ThreadCluster cluster(*scheme, source, config.seed + 42);
  opt::NesterovGradient optimizer(
      config.features,
      opt::LearningRateSchedule::constant(config.learning_rate));

  runtime::TrainOptions options;
  options.iterations = config.iterations;
  options.straggler = scenario.straggler;
  options.on_failure = config.on_failure;

  const auto run = cluster.train(optimizer, options);

  record.recovery_threshold = run.workers_heard.mean();
  record.total_time = run.wall_seconds;
  record.mean_units = run.units_received.mean();
  record.failures = run.failed_iterations;
  record.partial_iterations = run.partial_iterations;
  record.final_loss = opt::logistic_loss(problem.dataset, run.weights);
  record.train_accuracy = opt::accuracy(problem.dataset, run.weights);
  return record;
}

std::unique_ptr<Runtime> make_runtime(std::string_view name) {
  if (name == "sim" || name == "simulated" || name == "simulate") {
    return std::make_unique<SimulatedRuntime>();
  }
  if (name == "threaded" || name == "thread" || name == "threads") {
    return std::make_unique<ThreadedRuntime>();
  }
  return nullptr;
}

const std::vector<std::string>& runtime_names() {
  static const std::vector<std::string> names = {"sim", "threaded"};
  return names;
}

}  // namespace coupon::driver
