#include "driver/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <stdexcept>

#include "core/gradient_source.hpp"
#include "core/scheme_registry.hpp"
#include "data/batching.hpp"
#include "data/synthetic.hpp"
#include "driver/runtime_registry.hpp"
#include "driver/scenario_registry.hpp"
#include "engine/batched_train.hpp"
#include "engine/simulated_provider.hpp"
#include "engine/training_engine.hpp"
#include "opt/least_squares.hpp"
#include "opt/logistic.hpp"
#include "opt/optimizer.hpp"
#include "runtime/process_cluster.hpp"
#include "runtime/thread_cluster.hpp"
#include "simulate/cluster_sim.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"

namespace coupon::driver {

namespace {

/// Resolves names to canonical spellings and stamps the run identity.
RunRecord identity_record(const ExperimentConfig& config,
                          std::string_view runtime_name) {
  const core::SchemeEntry* scheme =
      core::SchemeRegistry::instance().find(config.scheme);
  if (scheme == nullptr) {
    throw std::invalid_argument(
        core::SchemeRegistry::instance().unknown_message(config.scheme));
  }
  RunRecord record;
  record.scheme = scheme->name;  // canonical even when selected by alias
  record.scenario = config.scenario;
  record.runtime = std::string(runtime_name);
  record.num_workers = config.num_workers;
  record.num_units = config.num_units;
  record.load = config.load;
  record.iterations = config.iterations;
  record.seed = config.seed;
  record.approximate_recovery = scheme->caps.approximate_recovery;
  return record;
}

core::SchemeConfig scheme_config(const ExperimentConfig& config,
                                 bool default_seed_first_batches) {
  core::SchemeConfig sconf;
  sconf.num_workers = config.num_workers;
  sconf.num_units = config.num_units;
  sconf.load = config.load;
  sconf.bcc_seed_first_batches =
      config.bcc_seed_first_batches.value_or(default_seed_first_batches);
  return sconf;
}

/// The synthetic training problem of one cell: dataset, unit gradient
/// source, and loss. Owns everything the source references, so it must
/// outlive the run and never be moved after `build_workload`.
struct TrainingWorkload {
  data::SyntheticProblem problem;
  std::optional<data::BatchPartition> partition;  // logistic only
  std::unique_ptr<core::UnitGradientSource> source;
  std::function<double(std::span<const double>)> loss;
  bool has_accuracy = false;  ///< classification objectives only
};

/// Materializes the cell's objective into `out`, drawing data from `rng`.
/// "logistic" is the paper's model: m units of `examples_per_unit` points
/// each ("super examples", footnote 1). "least_squares" is the linear-
/// regression variant with one example per unit.
void build_workload(const ExperimentConfig& config, stats::Rng& rng,
                    TrainingWorkload& out) {
  data::SyntheticConfig dconf;
  dconf.num_features = config.features;
  if (config.objective == "logistic") {
    const std::size_t num_examples =
        config.num_units * config.examples_per_unit;
    out.problem = data::generate_logreg(num_examples, dconf, rng);
    out.partition.emplace(num_examples, config.examples_per_unit);
    COUPON_ASSERT(out.partition->num_batches() == config.num_units);
    out.source = std::make_unique<core::GroupedBatchSource>(
        out.problem.dataset, *out.partition);
    const data::Dataset* dataset = &out.problem.dataset;
    out.loss = [dataset](std::span<const double> w) {
      return opt::logistic_loss(*dataset, w);
    };
    out.has_accuracy = true;
  } else if (config.objective == "least_squares") {
    out.problem = data::generate_linreg(config.num_units, dconf,
                                        /*noise_stddev=*/0.2, rng);
    out.source =
        std::make_unique<core::LeastSquaresExampleSource>(out.problem.dataset);
    const data::Dataset* dataset = &out.problem.dataset;
    out.loss = [dataset](std::span<const double> w) {
      return opt::squared_loss(*dataset, w);
    };
  } else {
    throw std::invalid_argument("unknown objective '" + config.objective +
                                "' (choices: logistic|least_squares)");
  }
}

std::unique_ptr<opt::IterativeOptimizer> make_optimizer(
    const ExperimentConfig& config) {
  const auto schedule =
      config.lr_decay > 0.0
          ? opt::LearningRateSchedule::inverse_time(config.learning_rate,
                                                    config.lr_decay)
          : opt::LearningRateSchedule::constant(config.learning_rate);
  if (config.optimizer == "nesterov") {
    return std::make_unique<opt::NesterovGradient>(config.features, schedule);
  }
  if (config.optimizer == "gd") {
    return std::make_unique<opt::GradientDescent>(config.features, schedule);
  }
  if (config.optimizer == "heavy_ball") {
    return std::make_unique<opt::HeavyBallGradient>(config.features, schedule);
  }
  if (config.optimizer == "adagrad") {
    return std::make_unique<opt::AdaGrad>(config.features, schedule);
  }
  throw std::invalid_argument(
      "unknown optimizer '" + config.optimizer +
      "' (choices: nesterov|gd|heavy_ball|adagrad)");
}

engine::TrainOptions engine_options(const ExperimentConfig& config,
                                    const TrainingWorkload& workload) {
  engine::TrainOptions options;
  options.iterations = config.iterations;
  options.on_failure = config.on_failure;
  options.loss_fn = workload.loss;
  options.record_loss_history = config.record_loss_history;
  options.target_loss = config.target_loss;
  options.stop_at_target = config.stop_at_target;
  // identity_record already validated the scheme name against the
  // registry, so the entry exists here.
  options.approximate_recovery = core::SchemeRegistry::instance()
                                     .find(config.scheme)
                                     ->caps.approximate_recovery;
  return options;
}

void fill_convergence_fields(const engine::TrainReport& report,
                             const TrainingWorkload& workload,
                             RunRecord& record) {
  record.recovery_threshold = report.workers_heard.mean();
  record.total_time = report.elapsed_seconds;
  record.mean_units = report.units_received.mean();
  record.failures = report.failed_iterations;
  record.partial_iterations = report.partial_iterations;
  record.iterations_run = report.iterations_run;
  record.final_loss = report.final_loss;
  record.time_to_target = report.time_to_target;
  record.approximate_iterations = report.approximate_iterations;
  if (workload.has_accuracy) {
    record.train_accuracy =
        opt::accuracy(workload.problem.dataset, report.weights);
  }
}

/// Rejects the process-only crash drill on runtimes whose workers are
/// not OS processes.
void reject_crash_drill(const ExperimentConfig& config,
                        std::string_view runtime_name) {
  if (config.crash_worker) {
    throw std::invalid_argument(
        "crash_worker injects a real worker-process SIGKILL; the " +
        std::string(runtime_name) +
        " runtime has no processes to kill — use --runtime process");
  }
}

}  // namespace

RunRecord SimulatedRuntime::run(const ExperimentConfig& config) const {
  const Scenario scenario = ScenarioRegistry::instance().build(
      config.scenario, config.num_workers);
  if (scenario.live_only) {
    throw std::invalid_argument(
        "scenario '" + scenario.name +
        "' needs a live cluster (workers join/leave); use --runtime "
        "threaded or process");
  }
  reject_crash_drill(config, name());
  RunRecord record = identity_record(config, name());

  // The footgun fix: a caller-supplied cluster model (e.g. from
  // config_from_sim_scenario) wins over the named scenario's.
  const simulate::ClusterConfig& cluster =
      config.cluster_override ? *config.cluster_override : scenario.cluster;

  if (config.train) {
    // Convergence mode: the shared TrainingEngine over the simulated
    // provider — kernel arrival order and ingress timing coupled with
    // real gradients. Data first, then the scheme, mirroring the
    // threaded runtime's draw order so a seed names the same problem on
    // both substrates.
    stats::Rng rng(config.seed);
    TrainingWorkload workload;
    build_workload(config, rng, workload);
    auto scheme = core::SchemeRegistry::instance().create(
        config.scheme,
        scheme_config(config, /*default_seed_first_batches=*/true), rng);
    record.scheme_display = std::string(scheme->name());

    engine::SimulatedProvider provider(*scheme, *workload.source, cluster,
                                       rng);
    engine::TrainingEngine protocol(*scheme, *workload.source, provider);
    auto optimizer = make_optimizer(config);
    engine::TrainReport report =
        protocol.train(*optimizer, engine_options(config, workload));

    fill_convergence_fields(report, workload, record);
    record.comm_time = report.comm_seconds;
    record.compute_time = report.compute_seconds;
    record.loss_history = std::move(report.loss_history);
    return record;
  }

  stats::Rng rng(config.seed);
  auto scheme = core::SchemeRegistry::instance().create(
      config.scheme, scheme_config(config, /*default_seed_first_batches=*/false),
      rng);
  record.scheme_display = std::string(scheme->name());

  simulate::RunOptions options;
  options.iterations = config.iterations;
  options.record_trace = config.record_trace;
  simulate::RunReport run = simulate_run(*scheme, cluster, options, rng);

  record.trace = std::move(run.iterations);
  record.recovery_threshold = run.workers_heard.mean();
  record.comm_time = run.total_comm_time;
  record.compute_time = run.total_compute_time;
  record.total_time = run.total_time;
  record.mean_units = run.units_received.mean();
  record.failures = run.failures;
  record.iterations_run = config.iterations;
  return record;
}

std::vector<RunRecord> run_simulated_batch(
    std::span<const ExperimentConfig> configs) {
  COUPON_ASSERT_MSG(!configs.empty(), "run_simulated_batch: empty batch");

  // Per-cell setup replicates SimulatedRuntime::run's timing-only branch
  // verbatim — same validation, same RNG draw order (rng(seed), then
  // scheme construction, then the simulation continues on the same
  // stream) — so batching is invisible in the records.
  std::vector<RunRecord> records;
  records.reserve(configs.size());
  std::vector<Scenario> scenarios;
  scenarios.reserve(configs.size());  // stable: cells point into this
  std::vector<std::unique_ptr<core::Scheme>> schemes;
  schemes.reserve(configs.size());
  std::vector<simulate::BatchedCell> cells;
  cells.reserve(configs.size());
  for (const ExperimentConfig& config : configs) {
    COUPON_ASSERT_MSG(!config.train && !config.record_trace,
                      "run_simulated_batch handles timing-only cells; "
                      "training/trace cells go through SimulatedRuntime");
    scenarios.push_back(ScenarioRegistry::instance().build(
        config.scenario, config.num_workers));
    const Scenario& scenario = scenarios.back();
    if (scenario.live_only) {
      throw std::invalid_argument(
          "scenario '" + scenario.name +
          "' needs a live cluster (workers join/leave); use --runtime "
          "threaded or process");
    }
    reject_crash_drill(config, "sim");
    records.push_back(identity_record(config, "sim"));

    stats::Rng rng(config.seed);
    schemes.push_back(core::SchemeRegistry::instance().create(
        config.scheme,
        scheme_config(config, /*default_seed_first_batches=*/false), rng));
    records.back().scheme_display = std::string(schemes.back()->name());

    simulate::BatchedCell cell;
    cell.scheme = schemes.back().get();
    cell.config =
        config.cluster_override ? &*config.cluster_override : &scenario.cluster;
    cell.rng = rng;  // positioned after the scheme's construction draws
    cell.options.iterations = config.iterations;
    cell.options.record_trace = false;
    cells.push_back(std::move(cell));
  }

  const std::vector<simulate::RunReport> runs =
      simulate::BatchedKernel(std::move(cells)).run();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const simulate::RunReport& run = runs[i];
    RunRecord& record = records[i];
    record.recovery_threshold = run.workers_heard.mean();
    record.comm_time = run.total_comm_time;
    record.compute_time = run.total_compute_time;
    record.total_time = run.total_time;
    record.mean_units = run.units_received.mean();
    record.failures = run.failures;
    record.iterations_run = configs[i].iterations;
  }
  return records;
}

std::vector<RunRecord> run_simulated_train_batch(
    std::span<const ExperimentConfig> configs) {
  COUPON_ASSERT_MSG(!configs.empty(),
                    "run_simulated_train_batch: empty batch");

  // Per-cell setup replicates SimulatedRuntime::run's train branch
  // verbatim — same validation, same RNG draw order (rng(seed), then the
  // workload's data draws, then scheme construction, then the provider
  // continues on the same stream) — so batching is invisible in the
  // records. Workloads live in a deque: a TrainingWorkload must never be
  // moved once its source references its dataset.
  std::vector<RunRecord> records;
  records.reserve(configs.size());
  std::deque<TrainingWorkload> workloads;
  std::vector<std::unique_ptr<core::Scheme>> schemes;
  schemes.reserve(configs.size());
  std::vector<std::unique_ptr<opt::IterativeOptimizer>> optimizers;
  optimizers.reserve(configs.size());
  std::vector<engine::BatchedTrainCell> cells;
  cells.reserve(configs.size());
  for (const ExperimentConfig& config : configs) {
    COUPON_ASSERT_MSG(config.train,
                      "run_simulated_train_batch handles training cells; "
                      "timing-only cells go through run_simulated_batch");
    const Scenario scenario = ScenarioRegistry::instance().build(
        config.scenario, config.num_workers);
    if (scenario.live_only) {
      throw std::invalid_argument(
          "scenario '" + scenario.name +
          "' needs a live cluster (workers join/leave); use --runtime "
          "threaded or process");
    }
    reject_crash_drill(config, "sim");
    records.push_back(identity_record(config, "sim"));

    stats::Rng rng(config.seed);
    workloads.emplace_back();
    TrainingWorkload& workload = workloads.back();
    build_workload(config, rng, workload);
    schemes.push_back(core::SchemeRegistry::instance().create(
        config.scheme,
        scheme_config(config, /*default_seed_first_batches=*/true), rng));
    records.back().scheme_display = std::string(schemes.back()->name());

    engine::BatchedTrainCell cell;
    cell.scheme = schemes.back().get();
    cell.source = workload.source.get();
    cell.cluster = std::make_shared<const simulate::ClusterConfig>(
        config.cluster_override ? *config.cluster_override : scenario.cluster);
    cell.rng = rng;  // positioned after the workload's and scheme's draws
    optimizers.push_back(make_optimizer(config));
    cell.optimizer = optimizers.back().get();
    cell.options = engine_options(config, workload);
    cells.push_back(std::move(cell));
  }

  std::vector<engine::TrainReport> reports =
      engine::BatchedTrainKernel(std::move(cells)).run();
  for (std::size_t i = 0; i < reports.size(); ++i) {
    engine::TrainReport& report = reports[i];
    RunRecord& record = records[i];
    fill_convergence_fields(report, workloads[i], record);
    record.comm_time = report.comm_seconds;
    record.compute_time = report.compute_seconds;
    record.loss_history = std::move(report.loss_history);
  }
  return records;
}

RunRecord ThreadedRuntime::run(const ExperimentConfig& config) const {
  const Scenario scenario = ScenarioRegistry::instance().build(
      config.scenario, config.num_workers);
  if (scenario.sim_only) {
    throw std::invalid_argument(
        "scenario '" + scenario.name +
        "' only varies simulator-side knobs; use --runtime sim");
  }
  if (config.cluster_override) {
    throw std::invalid_argument(
        "cluster_override describes the simulated cluster; the threaded "
        "runtime cannot honour it — use the sim runtime");
  }
  reject_crash_drill(config, name());
  RunRecord record = identity_record(config, name());

  stats::Rng rng(config.seed);
  TrainingWorkload workload;
  build_workload(config, rng, workload);

  // Seeded first batches (by default) guarantee per-iteration BCC
  // coverage, matching the quickstart's real-training setup.
  auto scheme = core::SchemeRegistry::instance().create(
      config.scheme, scheme_config(config, /*default_seed_first_batches=*/true),
      rng);
  record.scheme_display = std::string(scheme->name());

  runtime::ThreadCluster cluster(*scheme, *workload.source, config.seed + 42);
  auto optimizer = make_optimizer(config);

  runtime::TrainOptions options;
  static_cast<engine::TrainOptions&>(options) =
      engine_options(config, workload);
  options.straggler = scenario.straggler;
  options.elasticity = scenario.elasticity;

  engine::TrainReport report = cluster.train(*optimizer, options);

  fill_convergence_fields(report, workload, record);
  record.loss_history = std::move(report.loss_history);
  return record;
}

RunRecord ProcessRuntime::run(const ExperimentConfig& config) const {
  const Scenario scenario = ScenarioRegistry::instance().build(
      config.scenario, config.num_workers);
  if (scenario.sim_only) {
    throw std::invalid_argument(
        "scenario '" + scenario.name +
        "' only varies simulator-side knobs; use --runtime sim");
  }
  if (config.cluster_override) {
    throw std::invalid_argument(
        "cluster_override describes the simulated cluster; the process "
        "runtime cannot honour it — use the sim runtime");
  }
  if (!runtime::ProcessCluster::supported()) {
    throw std::runtime_error(
        "the process runtime needs fork() and stream sockets (loopback "
        "TCP or AF_UNIX socketpair), unavailable in this sandbox — use "
        "--runtime threaded");
  }
  RunRecord record = identity_record(config, name());

  // Same draw order as the threaded runtime — rng(seed) names the same
  // problem and scheme on both live substrates, so an undisturbed run's
  // final loss matches the threaded runtime's bit-for-bit (for schemes
  // with arrival-order-independent decodes).
  stats::Rng rng(config.seed);
  TrainingWorkload workload;
  build_workload(config, rng, workload);
  auto scheme = core::SchemeRegistry::instance().create(
      config.scheme, scheme_config(config, /*default_seed_first_batches=*/true),
      rng);
  record.scheme_display = std::string(scheme->name());

  runtime::ProcessCluster cluster(*scheme, *workload.source,
                                  config.seed + 42);
  auto optimizer = make_optimizer(config);

  runtime::ProcessTrainOptions options;
  static_cast<engine::TrainOptions&>(options) =
      engine_options(config, workload);
  options.straggler = scenario.straggler;
  options.elasticity = scenario.elasticity;
  options.worker_timeout =
      std::chrono::milliseconds(std::max<std::int64_t>(0, config.worker_timeout_ms));
  if (config.crash_worker) {
    if (*config.crash_worker >= config.num_workers) {
      throw std::invalid_argument("crash_worker out of range (n = " +
                                  std::to_string(config.num_workers) + ")");
    }
    options.crash = runtime::CrashPlan{.worker = *config.crash_worker,
                                       .iteration = config.crash_iteration};
  }

  runtime::ProcessTrainResult result = cluster.train(*optimizer, options);

  fill_convergence_fields(result.report, workload, record);
  record.loss_history = std::move(result.report.loss_history);
  record.workers_lost = result.workers_lost;
  return record;
}

std::unique_ptr<Runtime> make_runtime(std::string_view name) {
  return RuntimeRegistry::instance().create(name);
}

const std::vector<std::string>& runtime_names() {
  static const std::vector<std::string> names =
      RuntimeRegistry::instance().names();
  return names;
}

}  // namespace coupon::driver
