#pragma once

/// \file registry.hpp
/// Name registries for the experiment driver: CLI spellings of the
/// schemes, straggler scenarios, and runtimes that `coupon_run`, the
/// benches, and the examples all select from.
///
/// A *scenario* bundles the two descriptions of the same straggler
/// behaviour the codebase needs: the discrete-event simulator's
/// `ClusterConfig` and the threaded runtime's `StragglerInjection`
/// (injected sleeps standing in for t2.micro latency variance), so one
/// `--scenario` flag drives either runtime.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/scheme.hpp"
#include "runtime/thread_cluster.hpp"
#include "simulate/cluster_sim.hpp"

namespace coupon::driver {

/// Which execution substrate runs the experiment.
enum class RuntimeKind {
  kSimulated,  ///< discrete-event cluster model (no gradients computed)
  kThreaded,   ///< real master/worker threads training a model
};

/// CLI spelling of a runtime ("sim" / "threaded").
std::string_view runtime_name(RuntimeKind runtime);

/// Parses "sim"/"simulated"/"threaded"/"thread"; nullopt on anything else.
std::optional<RuntimeKind> parse_runtime(std::string_view name);

/// Parses a scheme spelling ("uncoded", "fr", "cr", "bcc",
/// "simple_random", plus long aliases); nullopt on anything else.
std::optional<core::SchemeKind> parse_scheme(std::string_view name);

/// Canonical CLI spelling of a scheme kind (inverse of `parse_scheme`).
std::string_view scheme_cli_name(core::SchemeKind kind);

/// A named straggler scenario, realized for a given cluster size.
struct Scenario {
  std::string name;
  std::string description;
  simulate::ClusterConfig cluster;         ///< simulated-runtime view
  runtime::StragglerInjection straggler;   ///< threaded-runtime view
  /// True when the scenario only varies simulator-side knobs (message
  /// loss, ingress bandwidth, per-worker latency profiles) that the
  /// threaded runtime cannot express yet; the driver rejects such
  /// scenarios under --runtime threaded instead of silently running
  /// shifted_exp behaviour under a different label.
  bool sim_only = false;
};

/// Builds the named scenario for `num_workers` workers. Scenarios:
///   shifted_exp   homogeneous shift-exponential compute (Eq. 15), the
///                 paper's EC2 calibration — communication-dominated
///   hetero        5% fast workers (mu = 20), 95% slow (mu = 1), the
///                 Fig. 5 heterogeneous cluster shape (sim only)
///   lossy         shifted_exp plus 5% i.i.d. message loss (sim only)
///   fast_network  shifted_exp with a 10x faster master ingress link
///                 (compute-dominated regime; sim only)
///   no_stragglers near-deterministic compute, no loss — best case
/// Returns nullopt for an unknown name.
std::optional<Scenario> make_scenario(std::string_view name,
                                      std::size_t num_workers);

/// All registered scenario names, in presentation order.
const std::vector<std::string>& scenario_names();

/// Comma-joined spellings for --help strings.
std::string scheme_choices();
std::string scenario_choices();
std::string runtime_choices();

}  // namespace coupon::driver
