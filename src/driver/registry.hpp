#pragma once

/// \file registry.hpp
/// Convenience front-end over the open registries the driver selects
/// from: `core::SchemeRegistry` (schemes, see core/scheme_registry.hpp),
/// `driver::ScenarioRegistry` (straggler scenarios, see
/// scenario_registry.hpp), and the runtime factory (runtime.hpp). The
/// closed SchemeKind/RuntimeKind switches that used to live here are
/// gone; these helpers only re-export name lists and lookups for CLI
/// plumbing.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "driver/scenario_registry.hpp"

namespace coupon::driver {

/// Builds the named scenario for `num_workers` workers; nullopt for an
/// unknown name. (Thin wrapper over ScenarioRegistry::build for callers
/// that prefer an optional to an exception.)
std::optional<Scenario> make_scenario(std::string_view name,
                                      std::size_t num_workers);

/// All registered scenario names, in registration order.
std::vector<std::string> scenario_names();

/// All registered scheme names, in registration order.
std::vector<std::string> scheme_names();

/// Pipe-joined spellings for --help strings.
std::string scheme_choices();
std::string scenario_choices();
std::string runtime_choices();

}  // namespace coupon::driver
