#pragma once

/// \file logistic.hpp
/// Numerically stable logistic-regression loss and gradients.
///
/// With labels y in {-1, +1} the per-example loss is
///   l(x, y; w) = log(1 + exp(-y * x^T w))
/// and the partial gradient of the paper's Eq. (1) is
///   g_j(w) = -y_j * sigmoid(-y_j * x_j^T w) * x_j.
/// Workers ship sums of g_j over their assigned examples; the master
/// divides the aggregated sum by m to obtain the full gradient.

#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace coupon::opt {

/// Stable logistic sigmoid 1 / (1 + exp(-z)).
double sigmoid(double z);

/// Stable log(1 + exp(z)).
double log1p_exp(double z);

/// Mean logistic loss over the whole dataset.
double logistic_loss(const data::Dataset& dataset, std::span<const double> w);

/// Full mean gradient: grad = (1/m) Σ_j g_j(w). grad.size() must equal p.
void logistic_gradient(const data::Dataset& dataset, std::span<const double> w,
                       std::span<double> grad);

/// Sum (not mean) of partial gradients over `indices`:
/// out += Σ_{j in indices} g_j(w) if `accumulate`, else out = Σ ... .
/// This is exactly the message z_i a BCC/uncoded worker computes (Eq. 12).
void partial_gradient_sum(const data::Dataset& dataset,
                          std::span<const std::size_t> indices,
                          std::span<const double> w, std::span<double> out,
                          bool accumulate = false);

/// As `partial_gradient_sum` over the contiguous index range
/// [first, first + count) — bit-identical to passing those indices
/// explicitly, but walks the example rows with one linear pointer
/// instead of a per-example index load. This is the hot form: batch
/// partitions slice consecutive examples, so every encode pass over a
/// merged unit run takes this path (DESIGN.md §12).
void partial_gradient_range(const data::Dataset& dataset, std::size_t first,
                            std::size_t count, std::span<const double> w,
                            std::span<double> out, bool accumulate = false);

/// Single-example partial gradient g_j(w); out is overwritten.
void partial_gradient(const data::Dataset& dataset, std::size_t j,
                      std::span<const double> w, std::span<double> out);

/// Fraction of examples whose sign(x^T w) matches the label.
double accuracy(const data::Dataset& dataset, std::span<const double> w);

}  // namespace coupon::opt
