#pragma once

/// \file least_squares.hpp
/// Squared-error loss for linear regression.
///
/// The gradient-coding layer is loss-agnostic: any loss that decomposes
/// as a sum of per-example gradients plugs into the same schemes. This
/// second loss (alongside logistic) is used by the tests to demonstrate
/// that property end-to-end. Per-example loss l(x, y; w) = 0.5 (x^T w -
/// y)^2 with partial gradient g_j(w) = (x_j^T w - y_j) x_j.

#include <span>

#include "data/dataset.hpp"

namespace coupon::opt {

/// Mean squared-error loss over the dataset (labels are real-valued).
double squared_loss(const data::Dataset& dataset, std::span<const double> w);

/// Full mean gradient: grad = (1/m) sum_j (x_j^T w - y_j) x_j.
void squared_gradient(const data::Dataset& dataset, std::span<const double> w,
                      std::span<double> grad);

/// Sum (not mean) of squared-loss partial gradients over `indices`;
/// overwrites `out` unless `accumulate`.
void squared_partial_gradient_sum(const data::Dataset& dataset,
                                  std::span<const std::size_t> indices,
                                  std::span<const double> w,
                                  std::span<double> out,
                                  bool accumulate = false);

}  // namespace coupon::opt
