#pragma once

/// \file optimizer.hpp
/// Iteration-inverted first-order optimizers.
///
/// Distributed GD separates "where to evaluate the gradient" from "apply
/// the update": each iteration the master broadcasts the query point,
/// aggregates worker messages into a full gradient, and applies it. The
/// `IterativeOptimizer` interface models exactly that handshake, so the
/// same optimizer code runs serially (tests), on the discrete-event
/// simulator, and on the threaded runtime.

#include <memory>
#include <span>
#include <vector>

#include "opt/schedule.hpp"

namespace coupon::opt {

/// Abstract first-order optimizer driven one iteration at a time.
class IterativeOptimizer {
 public:
  virtual ~IterativeOptimizer() = default;

  /// The point at which the next gradient must be evaluated (w_t for plain
  /// GD; the lookahead point v_t for Nesterov).
  virtual std::span<const double> query_point() const = 0;

  /// Consumes the gradient evaluated at query_point() and advances one
  /// iteration.
  virtual void apply_gradient(std::span<const double> grad) = 0;

  /// Current iterate w_t (the model the caller should evaluate/deploy).
  virtual std::span<const double> weights() const = 0;

  /// Iterations applied so far.
  virtual std::size_t iteration() const = 0;
};

/// Plain gradient descent: w_{t+1} = w_t - mu_t * grad.
class GradientDescent final : public IterativeOptimizer {
 public:
  GradientDescent(std::size_t dim, LearningRateSchedule schedule);

  std::span<const double> query_point() const override;
  void apply_gradient(std::span<const double> grad) override;
  std::span<const double> weights() const override;
  std::size_t iteration() const override { return t_; }

 private:
  std::vector<double> w_;
  LearningRateSchedule schedule_;
  std::size_t t_ = 0;
};

/// Polyak heavy-ball momentum:
///   v_{t+1} = beta * v_t - mu_t * grad(w_t)
///   w_{t+1} = w_t + v_{t+1}
/// Not used by the paper's experiments but a standard drop-in for the
/// same distributed-GD loop (the master-side update is scheme-agnostic).
class HeavyBallGradient final : public IterativeOptimizer {
 public:
  HeavyBallGradient(std::size_t dim, LearningRateSchedule schedule,
                    double beta = 0.9);

  std::span<const double> query_point() const override;
  void apply_gradient(std::span<const double> grad) override;
  std::span<const double> weights() const override;
  std::size_t iteration() const override { return t_; }

 private:
  std::vector<double> w_;
  std::vector<double> v_;
  LearningRateSchedule schedule_;
  double beta_;
  std::size_t t_ = 0;
};

/// AdaGrad (Duchi et al.): per-coordinate adaptive step sizes,
///   G_{t+1} = G_t + grad ⊙ grad
///   w_{t+1} = w_t - mu_t * grad / (sqrt(G_{t+1}) + eps).
class AdaGrad final : public IterativeOptimizer {
 public:
  AdaGrad(std::size_t dim, LearningRateSchedule schedule,
          double epsilon = 1e-8);

  std::span<const double> query_point() const override;
  void apply_gradient(std::span<const double> grad) override;
  std::span<const double> weights() const override;
  std::size_t iteration() const override { return t_; }

 private:
  std::vector<double> w_;
  std::vector<double> accum_;
  LearningRateSchedule schedule_;
  double epsilon_;
  std::size_t t_ = 0;
};

/// Nesterov's accelerated gradient method, the optimizer used by the
/// paper's EC2 experiments:
///   w_{t+1} = v_t - mu_t * grad(v_t)
///   v_{t+1} = w_{t+1} + beta_t * (w_{t+1} - w_t)
/// with beta_t = t / (t + 3) (the standard schedule for convex problems).
class NesterovGradient final : public IterativeOptimizer {
 public:
  NesterovGradient(std::size_t dim, LearningRateSchedule schedule);

  std::span<const double> query_point() const override;
  void apply_gradient(std::span<const double> grad) override;
  std::span<const double> weights() const override;
  std::size_t iteration() const override { return t_; }

 private:
  std::vector<double> w_;
  std::vector<double> v_;
  std::vector<double> w_prev_;
  LearningRateSchedule schedule_;
  std::size_t t_ = 0;
};

}  // namespace coupon::opt
