#include "opt/optimizer.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::opt {

GradientDescent::GradientDescent(std::size_t dim,
                                 LearningRateSchedule schedule)
    : w_(dim, 0.0), schedule_(schedule) {
  COUPON_ASSERT(dim > 0);
}

std::span<const double> GradientDescent::query_point() const { return w_; }

void GradientDescent::apply_gradient(std::span<const double> grad) {
  COUPON_ASSERT(grad.size() == w_.size());
  linalg::axpy(-schedule_.at(t_), grad, w_);
  ++t_;
}

std::span<const double> GradientDescent::weights() const { return w_; }

HeavyBallGradient::HeavyBallGradient(std::size_t dim,
                                     LearningRateSchedule schedule,
                                     double beta)
    : w_(dim, 0.0), v_(dim, 0.0), schedule_(schedule), beta_(beta) {
  COUPON_ASSERT(dim > 0);
  COUPON_ASSERT_MSG(beta >= 0.0 && beta < 1.0, "momentum must be in [0, 1)");
}

std::span<const double> HeavyBallGradient::query_point() const { return w_; }

void HeavyBallGradient::apply_gradient(std::span<const double> grad) {
  COUPON_ASSERT(grad.size() == w_.size());
  const double mu = schedule_.at(t_);
  for (std::size_t i = 0; i < w_.size(); ++i) {
    v_[i] = beta_ * v_[i] - mu * grad[i];
    w_[i] += v_[i];
  }
  ++t_;
}

std::span<const double> HeavyBallGradient::weights() const { return w_; }

AdaGrad::AdaGrad(std::size_t dim, LearningRateSchedule schedule,
                 double epsilon)
    : w_(dim, 0.0),
      accum_(dim, 0.0),
      schedule_(schedule),
      epsilon_(epsilon) {
  COUPON_ASSERT(dim > 0);
  COUPON_ASSERT(epsilon > 0.0);
}

std::span<const double> AdaGrad::query_point() const { return w_; }

void AdaGrad::apply_gradient(std::span<const double> grad) {
  COUPON_ASSERT(grad.size() == w_.size());
  const double mu = schedule_.at(t_);
  for (std::size_t i = 0; i < w_.size(); ++i) {
    accum_[i] += grad[i] * grad[i];
    w_[i] -= mu * grad[i] / (std::sqrt(accum_[i]) + epsilon_);
  }
  ++t_;
}

std::span<const double> AdaGrad::weights() const { return w_; }

NesterovGradient::NesterovGradient(std::size_t dim,
                                   LearningRateSchedule schedule)
    : w_(dim, 0.0), v_(dim, 0.0), w_prev_(dim, 0.0), schedule_(schedule) {
  COUPON_ASSERT(dim > 0);
}

std::span<const double> NesterovGradient::query_point() const { return v_; }

void NesterovGradient::apply_gradient(std::span<const double> grad) {
  COUPON_ASSERT(grad.size() == w_.size());
  w_prev_ = w_;
  // w_{t+1} = v_t - mu_t * grad
  w_ = v_;
  linalg::axpy(-schedule_.at(t_), grad, w_);
  // v_{t+1} = w_{t+1} + beta_t * (w_{t+1} - w_t)
  const double beta =
      static_cast<double>(t_) / static_cast<double>(t_ + 3);
  for (std::size_t i = 0; i < v_.size(); ++i) {
    v_[i] = w_[i] + beta * (w_[i] - w_prev_[i]);
  }
  ++t_;
}

std::span<const double> NesterovGradient::weights() const { return w_; }

}  // namespace coupon::opt
