#include "opt/least_squares.hpp"

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::opt {

double squared_loss(const data::Dataset& dataset, std::span<const double> w) {
  COUPON_ASSERT(w.size() == dataset.num_features());
  const std::size_t m = dataset.num_examples();
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double e = linalg::dot(dataset.x.row(j), w) - dataset.y[j];
    total += 0.5 * e * e;
  }
  return total / static_cast<double>(m);
}

void squared_gradient(const data::Dataset& dataset, std::span<const double> w,
                      std::span<double> grad) {
  COUPON_ASSERT(grad.size() == dataset.num_features());
  std::vector<std::size_t> all(dataset.num_examples());
  for (std::size_t j = 0; j < all.size(); ++j) {
    all[j] = j;
  }
  squared_partial_gradient_sum(dataset, all, w, grad, /*accumulate=*/false);
  linalg::scal(1.0 / static_cast<double>(dataset.num_examples()), grad);
}

void squared_partial_gradient_sum(const data::Dataset& dataset,
                                  std::span<const std::size_t> indices,
                                  std::span<const double> w,
                                  std::span<double> out, bool accumulate) {
  COUPON_ASSERT(w.size() == dataset.num_features());
  COUPON_ASSERT(out.size() == dataset.num_features());
  if (!accumulate) {
    linalg::fill(out, 0.0);
  }
  for (std::size_t j : indices) {
    COUPON_ASSERT(j < dataset.num_examples());
    const double e = linalg::dot(dataset.x.row(j), w) - dataset.y[j];
    linalg::axpy(e, dataset.x.row(j), out);
  }
}

}  // namespace coupon::opt
