#pragma once

/// \file schedule.hpp
/// Learning-rate schedules mu_t for the iterative optimizers.

#include <cstddef>

#include "util/assert.hpp"

namespace coupon::opt {

/// Learning-rate schedule: constant or inverse-time decay
/// mu_t = mu0 / (1 + decay * t).
class LearningRateSchedule {
 public:
  /// Constant rate mu0.
  static LearningRateSchedule constant(double mu0) {
    return LearningRateSchedule(mu0, 0.0);
  }

  /// Inverse-time decay mu0 / (1 + decay * t).
  static LearningRateSchedule inverse_time(double mu0, double decay) {
    return LearningRateSchedule(mu0, decay);
  }

  /// Rate for iteration `t` (0-based).
  double at(std::size_t t) const {
    return mu0_ / (1.0 + decay_ * static_cast<double>(t));
  }

 private:
  LearningRateSchedule(double mu0, double decay) : mu0_(mu0), decay_(decay) {
    COUPON_ASSERT(mu0 > 0.0 && decay >= 0.0);
  }
  double mu0_;
  double decay_;
};

}  // namespace coupon::opt
