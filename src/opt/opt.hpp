#pragma once

/// \file opt.hpp
/// Umbrella header for the opt module.

#include "opt/least_squares.hpp" // IWYU pragma: export
#include "opt/logistic.hpp"  // IWYU pragma: export
#include "opt/optimizer.hpp" // IWYU pragma: export
#include "opt/schedule.hpp"  // IWYU pragma: export
#include "opt/trainer.hpp"   // IWYU pragma: export
