#include "opt/trainer.hpp"

#include "opt/logistic.hpp"
#include "util/assert.hpp"

namespace coupon::opt {

TrainResult train(IterativeOptimizer& optimizer, const GradientOracle& oracle,
                  std::size_t iterations,
                  const std::function<double(std::span<const double>)>*
                      loss_fn) {
  TrainResult result;
  const std::size_t dim = optimizer.weights().size();
  std::vector<double> grad(dim);
  for (std::size_t t = 0; t < iterations; ++t) {
    oracle(optimizer.query_point(), grad);
    optimizer.apply_gradient(grad);
    if (loss_fn != nullptr) {
      result.loss_history.push_back((*loss_fn)(optimizer.weights()));
    }
  }
  auto w = optimizer.weights();
  result.weights.assign(w.begin(), w.end());
  result.iterations = iterations;
  return result;
}

GradientOracle make_logistic_oracle(const data::Dataset& dataset) {
  return [&dataset](std::span<const double> w, std::span<double> grad) {
    logistic_gradient(dataset, w, grad);
  };
}

}  // namespace coupon::opt
