#pragma once

/// \file trainer.hpp
/// Serial training driver: runs an IterativeOptimizer against a gradient
/// oracle. Used as the ground-truth reference the distributed paths are
/// checked against, and by the examples for quick model fitting.

#include <functional>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "opt/optimizer.hpp"

namespace coupon::opt {

/// Computes the full gradient at `w` into `grad` (both sized p).
using GradientOracle =
    std::function<void(std::span<const double> w, std::span<double> grad)>;

/// Result of a training run.
struct TrainResult {
  std::vector<double> weights;
  std::vector<double> loss_history;  ///< empty unless a loss_fn was given
  std::size_t iterations = 0;
};

/// Runs `iterations` steps of `optimizer` against `oracle`.
/// If `loss_fn` is non-null it is evaluated on the current weights after
/// every step and recorded in the result.
TrainResult train(IterativeOptimizer& optimizer, const GradientOracle& oracle,
                  std::size_t iterations,
                  const std::function<double(std::span<const double>)>*
                      loss_fn = nullptr);

/// Gradient oracle for full-batch logistic regression on `dataset`.
GradientOracle make_logistic_oracle(const data::Dataset& dataset);

}  // namespace coupon::opt
