#include "opt/logistic.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::opt {

double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double log1p_exp(double z) {
  if (z > 0.0) {
    return z + std::log1p(std::exp(-z));
  }
  return std::log1p(std::exp(z));
}

double logistic_loss(const data::Dataset& dataset,
                     std::span<const double> w) {
  COUPON_ASSERT(w.size() == dataset.num_features());
  const std::size_t m = dataset.num_examples();
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double margin =
        dataset.y[j] * linalg::dot(dataset.x.row(j), w);
    total += log1p_exp(-margin);
  }
  return total / static_cast<double>(m);
}

void logistic_gradient(const data::Dataset& dataset,
                       std::span<const double> w, std::span<double> grad) {
  COUPON_ASSERT(grad.size() == dataset.num_features());
  std::vector<std::size_t> all(dataset.num_examples());
  for (std::size_t j = 0; j < all.size(); ++j) {
    all[j] = j;
  }
  partial_gradient_sum(dataset, all, w, grad, /*accumulate=*/false);
  linalg::scal(1.0 / static_cast<double>(dataset.num_examples()), grad);
}

void partial_gradient_sum(const data::Dataset& dataset,
                          std::span<const std::size_t> indices,
                          std::span<const double> w, std::span<double> out,
                          bool accumulate) {
  COUPON_ASSERT(w.size() == dataset.num_features());
  COUPON_ASSERT(out.size() == dataset.num_features());
  if (!accumulate) {
    linalg::fill(out, 0.0);
  }
  // Two passes per block, in the original example order: first every
  // margin/coefficient (reads of w and x only), then the axpy
  // accumulation into `out`. Each example's dot, sigmoid, and slot in
  // the running sum are untouched, so the split changes no FP
  // association — it only separates the long-latency sigmoid chain from
  // the accumulation chain, which measures ~20% faster on the training
  // bench. The fixed-size block keeps the coefficient scratch on the
  // stack (this function must stay allocation-free; it sits on the
  // per-iteration encode path).
  // Row access goes through the matrix base pointer (public data() view)
  // rather than row(): at ~20ns per example the bounds branch per row()
  // call is measurable, and j is debug-checked here already.
  const std::size_t p = dataset.num_features();
  const double* const xbase = dataset.x.data().data();
  constexpr std::size_t kBlock = 64;
  double coefs[kBlock];
  for (std::size_t base = 0; base < indices.size(); base += kBlock) {
    const std::size_t len = std::min(kBlock, indices.size() - base);
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t j = indices[base + k];
      COUPON_DCHECK(j < dataset.num_examples());
      const std::span<const double> row{xbase + j * p, p};
      const double margin = dataset.y[j] * linalg::dot(row, w);
      coefs[k] = -dataset.y[j] * sigmoid(-margin);
    }
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t j = indices[base + k];
      linalg::axpy(coefs[k], {xbase + j * p, p}, out);
    }
  }
}

void partial_gradient_range(const data::Dataset& dataset, std::size_t first,
                            std::size_t count, std::span<const double> w,
                            std::span<double> out, bool accumulate) {
  COUPON_ASSERT(w.size() == dataset.num_features());
  COUPON_ASSERT(out.size() == dataset.num_features());
  COUPON_ASSERT(first + count <= dataset.num_examples());
  if (!accumulate) {
    linalg::fill(out, 0.0);
  }
  // Same block structure (and the same FP chain) as the index form
  // above, with the coefficient pass further split in two: a pure dot
  // pass (no calls — the row-dot kernel keeps w in registers across the
  // whole block) and a sigmoid pass over the stashed dot values. Each
  // example's dot, sigmoid, and slot in the running sum are unchanged,
  // so the bits are too.
  const std::size_t p = dataset.num_features();
  const double* const xbase = dataset.x.data().data();
  const double* const y = dataset.y.data();
  constexpr std::size_t kBlock = 64;
  double dots[kBlock];
  double coefs[kBlock];
  for (std::size_t base = 0; base < count; base += kBlock) {
    const std::size_t len = std::min(kBlock, count - base);
    const double* xrow = xbase + (first + base) * p;
#if COUPON_LINALG_X86_DISPATCH
    if (!linalg::detail::dot_rows_dispatch(xrow, len, p, w.data(), dots)) {
#else
    if (true) {
#endif
      for (std::size_t k = 0; k < len; ++k, xrow += p) {
        dots[k] = linalg::dot({xrow, p}, w);
      }
    }
    for (std::size_t k = 0; k < len; ++k) {
      const double label = y[first + base + k];
      const double margin = label * dots[k];
      coefs[k] = -label * sigmoid(-margin);
    }
    xrow = xbase + (first + base) * p;
#if COUPON_LINALG_X86_DISPATCH
    if (linalg::detail::axpy_rows_dispatch(coefs, xrow, len, p, out.data())) {
      continue;
    }
#endif
    for (std::size_t k = 0; k < len; ++k, xrow += p) {
      linalg::axpy(coefs[k], {xrow, p}, out);
    }
  }
}

void partial_gradient(const data::Dataset& dataset, std::size_t j,
                      std::span<const double> w, std::span<double> out) {
  const std::size_t one[] = {j};
  partial_gradient_sum(dataset, one, w, out, /*accumulate=*/false);
}

double accuracy(const data::Dataset& dataset, std::span<const double> w) {
  COUPON_ASSERT(w.size() == dataset.num_features());
  const std::size_t m = dataset.num_examples();
  std::size_t correct = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const double score = linalg::dot(dataset.x.row(j), w);
    const double pred = score >= 0.0 ? 1.0 : -1.0;
    if (pred == dataset.y[j]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(m);
}

}  // namespace coupon::opt
