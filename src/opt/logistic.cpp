#include "opt/logistic.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::opt {

double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double log1p_exp(double z) {
  if (z > 0.0) {
    return z + std::log1p(std::exp(-z));
  }
  return std::log1p(std::exp(z));
}

double logistic_loss(const data::Dataset& dataset,
                     std::span<const double> w) {
  COUPON_ASSERT(w.size() == dataset.num_features());
  const std::size_t m = dataset.num_examples();
  double total = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double margin =
        dataset.y[j] * linalg::dot(dataset.x.row(j), w);
    total += log1p_exp(-margin);
  }
  return total / static_cast<double>(m);
}

void logistic_gradient(const data::Dataset& dataset,
                       std::span<const double> w, std::span<double> grad) {
  COUPON_ASSERT(grad.size() == dataset.num_features());
  std::vector<std::size_t> all(dataset.num_examples());
  for (std::size_t j = 0; j < all.size(); ++j) {
    all[j] = j;
  }
  partial_gradient_sum(dataset, all, w, grad, /*accumulate=*/false);
  linalg::scal(1.0 / static_cast<double>(dataset.num_examples()), grad);
}

void partial_gradient_sum(const data::Dataset& dataset,
                          std::span<const std::size_t> indices,
                          std::span<const double> w, std::span<double> out,
                          bool accumulate) {
  COUPON_ASSERT(w.size() == dataset.num_features());
  COUPON_ASSERT(out.size() == dataset.num_features());
  if (!accumulate) {
    linalg::fill(out, 0.0);
  }
  for (std::size_t j : indices) {
    COUPON_ASSERT(j < dataset.num_examples());
    const double margin = dataset.y[j] * linalg::dot(dataset.x.row(j), w);
    const double coef = -dataset.y[j] * sigmoid(-margin);
    linalg::axpy(coef, dataset.x.row(j), out);
  }
}

void partial_gradient(const data::Dataset& dataset, std::size_t j,
                      std::span<const double> w, std::span<double> out) {
  const std::size_t one[] = {j};
  partial_gradient_sum(dataset, one, w, out, /*accumulate=*/false);
}

double accuracy(const data::Dataset& dataset, std::span<const double> w) {
  COUPON_ASSERT(w.size() == dataset.num_features());
  const std::size_t m = dataset.num_examples();
  std::size_t correct = 0;
  for (std::size_t j = 0; j < m; ++j) {
    const double score = linalg::dot(dataset.x.row(j), w);
    const double pred = score >= 0.0 ? 1.0 : -1.0;
    if (pred == dataset.y[j]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(m);
}

}  // namespace coupon::opt
