#include "runtime/transport_provider.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace coupon::runtime {

TransportProvider::TransportProvider(comm::Transport& master,
                                     std::size_t num_workers,
                                     Options options)
    : master_(master),
      num_workers_(num_workers),
      options_(std::move(options)),
      alive_(num_workers, 1),
      expected_(num_workers, 0),
      replied_(num_workers, 0) {
  COUPON_ASSERT(master.rank() == 0);
  COUPON_ASSERT(master.num_ranks() == num_workers + 1);
}

void TransportProvider::begin_iteration(std::size_t iteration,
                                        std::span<const double> w) {
  iteration_ = static_cast<std::int64_t>(iteration);
  std::fill(expected_.begin(), expected_.end(), 0);
  std::fill(replied_.begin(), replied_.end(), 0);
  outstanding_ = 0;
  for (std::size_t i = 0; i < num_workers_; ++i) {
    if (alive_[i] == 0 || !options_.elasticity.active(i, iteration)) {
      continue;  // dead or in a planned absence window: no broadcast
    }
    comm::Message broadcast;
    broadcast.dest = static_cast<std::int32_t>(i + 1);
    broadcast.tag = comm::kTagModelBroadcast;
    broadcast.iteration = iteration_;
    broadcast.payload.assign(w.begin(), w.end());
    if (!master_.send(std::move(broadcast))) {
      // The pipe broke before the reader noticed the EOF: same death.
      alive_[i] = 0;
      ++workers_lost_;
      continue;
    }
    expected_[i] = 1;
    ++outstanding_;
  }
}

void TransportProvider::mark_dead(std::size_t worker) {
  COUPON_ASSERT(worker < num_workers_);
  if (alive_[worker] == 0) {
    return;  // duplicate EOF (send failure already counted it)
  }
  alive_[worker] = 0;
  ++workers_lost_;
  if (expected_[worker] != 0 && replied_[worker] == 0) {
    COUPON_ASSERT(outstanding_ > 0);
    --outstanding_;  // this reply will never come
  }
}

bool TransportProvider::next_arrival(engine::ArrivalView& out) {
  while (outstanding_ > 0) {
    comm::RecvEvent event =
        options_.worker_timeout.count() > 0
            ? master_.recv_for(options_.worker_timeout)
            : master_.recv();
    switch (event.status) {
      case comm::RecvStatus::kMessage: {
        COUPON_ASSERT(event.message.tag == comm::kTagGradient);
        if (event.message.iteration != iteration_) {
          continue;  // stale reply from an iteration the master left early
        }
        const auto worker = static_cast<std::size_t>(event.message.source) - 1;
        COUPON_ASSERT(worker < num_workers_);
        if (replied_[worker] != 0) {
          continue;  // duplicate (cannot happen on a healthy stream)
        }
        replied_[worker] = 1;
        if (expected_[worker] != 0) {
          --outstanding_;
        }
        message_ = std::move(event.message);
        out.worker = worker;
        out.meta = message_.meta;
        out.payload = message_.payload;
        return true;
      }
      case comm::RecvStatus::kPeerClosed:
        mark_dead(event.peer - 1);
        continue;
      case comm::RecvStatus::kTimeout:
        // No arrival for a full worker_timeout: abandon the iteration's
        // stragglers (their late replies will be skipped as stale) and
        // let the engine's FailurePolicy resolve the shortfall.
        ++timed_out_iterations_;
        return false;
      case comm::RecvStatus::kClosed:
        // Our own endpoint is gone — nothing more will ever arrive.
        return false;
    }
  }
  return false;
}

engine::IterationTiming TransportProvider::end_iteration() {
  // Wall-clock phases are not separable on a live cluster: report the
  // iteration total only (compute_seconds = 0 by convention). The delta
  // since the previous end_iteration keeps master-side work (decode,
  // optimizer step, loss evaluation) on the clock, exactly as the
  // threaded provider always measured it.
  const double now = timer_.seconds();
  const double total = now - last_mark_;
  last_mark_ = now;
  return {.total_seconds = total, .compute_seconds = 0.0};
}

}  // namespace coupon::runtime
