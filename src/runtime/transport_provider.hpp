#pragma once

/// \file transport_provider.hpp
/// Wall-clock `IterationProvider` over any `comm::Transport` endpoint —
/// the one master-side arrival loop shared by the threaded runtime
/// (InProcessTransport) and the multi-process runtime (TcpTransport), so
/// the broadcast/collect protocol is not duplicated per substrate
/// (DESIGN.md §9).
///
/// Robustness semantics:
///  - kPeerClosed (socket EOF — a worker process died or left) marks the
///    worker dead permanently: it is skipped by every later broadcast
///    and, if it owed this iteration a reply, the iteration's expected
///    count shrinks so the collector either recovers from the survivors
///    or falls through to the engine's FailurePolicy.
///  - kTimeout (deadline with no arrival at all, `worker_timeout` > 0)
///    abandons the iteration's outstanding replies without killing
///    anyone: the stragglers' eventual replies are skipped as stale.
///  - Stale replies (iteration != current) are consumed and dropped, as
///    the threaded provider always did.

#include <chrono>
#include <cstdint>
#include <vector>

#include "comm/transport.hpp"
#include "engine/training_engine.hpp"
#include "runtime/elasticity.hpp"
#include "util/timer.hpp"

namespace coupon::runtime {

/// The shared live-cluster provider. One instance serves one training
/// run; the transport must outlive it.
class TransportProvider final : public engine::IterationProvider {
 public:
  struct Options {
    /// Per-wait deadline before the master abandons an iteration's
    /// outstanding replies. 0 blocks forever — correct for in-process
    /// threads, which always reply; real processes set a positive
    /// backstop so a hung (not crashed — crashes are EOF) worker cannot
    /// wedge the run.
    std::chrono::milliseconds worker_timeout{0};
    ElasticityPlan elasticity;
  };

  TransportProvider(comm::Transport& master, std::size_t num_workers,
                    Options options);

  void begin_iteration(std::size_t iteration,
                       std::span<const double> w) override;
  bool next_arrival(engine::ArrivalView& out) override;
  engine::IterationTiming end_iteration() override;

  /// Workers observed dead (EOF) so far.
  std::size_t workers_lost() const { return workers_lost_; }

  /// Iterations abandoned by the worker_timeout backstop.
  std::size_t timed_out_iterations() const { return timed_out_iterations_; }

  bool worker_alive(std::size_t worker) const {
    return alive_[worker] != 0;
  }

 private:
  /// Handles an EOF for `worker`: permanent death, adjusting this
  /// iteration's expectation if it still owed a reply.
  void mark_dead(std::size_t worker);

  comm::Transport& master_;
  std::size_t num_workers_;
  Options options_;
  std::vector<char> alive_;     ///< not yet observed dead
  std::vector<char> expected_;  ///< broadcast to, this iteration
  std::vector<char> replied_;   ///< reply consumed, this iteration
  std::int64_t iteration_ = 0;
  std::size_t outstanding_ = 0;  ///< expected and not yet replied
  std::size_t workers_lost_ = 0;
  std::size_t timed_out_iterations_ = 0;
  comm::Message message_;  ///< the last delivered reply (view storage)
  WallTimer timer_;        ///< started at construction (train start)
  double last_mark_ = 0.0;
};

}  // namespace coupon::runtime
