#pragma once

/// \file process_cluster.hpp
/// Multi-process master/worker cluster over stream sockets (DESIGN.md §9).
///
/// The parameter-server-shaped sibling of ThreadCluster: `train()` forks
/// one OS process per scheme worker, connects each over a loopback TCP
/// stream (or an AF_UNIX socketpair where the sandbox forbids TCP), and
/// runs the shared `engine::TrainingEngine` protocol through the shared
/// `TransportProvider` over a `TcpTransport` endpoint. Workers inherit
/// the scheme and dataset by fork — the master's memory image is the
/// "shared filesystem"; only models and gradients cross the wire, as in
/// the paper's MPI setup.
///
/// Crash tolerance is first-class: a worker death (SIGKILL included)
/// closes its socket, the master observes EOF mid-iteration, shrinks the
/// iteration's expectation, and the scheme's redundancy or the engine's
/// FailurePolicy resolves the shortfall — the run completes without that
/// worker. A hung-but-alive worker is bounded by `worker_timeout`.

#include <chrono>
#include <cstdint>
#include <optional>
#include <sys/types.h>
#include <vector>

#include "core/gradient_source.hpp"
#include "core/scheme.hpp"
#include "engine/training_engine.hpp"
#include "opt/optimizer.hpp"
#include "runtime/elasticity.hpp"
#include "runtime/straggler.hpp"

namespace coupon::runtime {

/// Deterministic fault injection: the named worker raises SIGKILL upon
/// receiving the broadcast of `iteration` — a real mid-iteration crash
/// (the master sees socket EOF while collecting), used by the recovery
/// tests and the smoke drill.
struct CrashPlan {
  std::size_t worker = 0;
  std::size_t iteration = 0;
};

/// Training-run parameters: the engine's master-side options plus the
/// process runtime's delay injection, join/leave schedule, crash drill,
/// and hang backstop.
struct ProcessTrainOptions : engine::TrainOptions {
  StragglerInjection straggler;
  ElasticityPlan elasticity;
  /// Master-side wait deadline per arrival before the iteration's
  /// outstanding replies are abandoned (see TransportProvider::Options).
  std::chrono::milliseconds worker_timeout{10000};
  std::optional<CrashPlan> crash;
};

/// A training report plus the robustness counters only a live cluster
/// can produce.
struct ProcessTrainResult {
  engine::TrainReport report;
  std::size_t workers_lost = 0;
  std::size_t timed_out_iterations = 0;
};

/// A master plus `n` worker processes bound to one scheme and one
/// dataset. Processes are forked per `train()` call (options are known
/// then) and fully reaped before it returns.
class ProcessCluster {
 public:
  /// True when this platform/sandbox can fork workers and connect
  /// stream sockets (loopback TCP or AF_UNIX socketpair). Probed once;
  /// tests skip cleanly when false.
  static bool supported();

  /// `scheme` and `source` must remain valid for the cluster's lifetime;
  /// both are inherited by the forked workers.
  ProcessCluster(const core::Scheme& scheme,
                 const core::UnitGradientSource& source,
                 std::uint64_t straggler_seed = 42);

  ProcessCluster(const ProcessCluster&) = delete;
  ProcessCluster& operator=(const ProcessCluster&) = delete;

  /// Forks one worker process per scheme worker and runs synchronous
  /// distributed GD for `options.iterations` iterations. Throws
  /// std::runtime_error when `supported()` is false or the cluster
  /// cannot be wired up. All workers are reaped before returning.
  ProcessTrainResult train(opt::IterativeOptimizer& optimizer,
                           const ProcessTrainOptions& options);

 private:
  const core::Scheme& scheme_;
  const core::UnitGradientSource& source_;
  std::uint64_t straggler_seed_;
};

}  // namespace coupon::runtime
