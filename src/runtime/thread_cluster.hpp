#pragma once

/// \file thread_cluster.hpp
/// Real-thread master/worker cluster executing distributed GD.
///
/// This is the MPI-substitute execution path (DESIGN.md §2): rank 0
/// (the calling thread) is the master, ranks 1..n are worker threads.
/// Each iteration every worker computes its scheme-encoded gradient
/// message on its locally "stored" data and ships it back, with optional
/// injected straggler delays standing in for t2.micro latency variance.
///
/// The master-side iteration protocol itself (broadcast → collect →
/// failure policy → optimizer step → loss tracking) lives in the shared
/// `engine::TrainingEngine` (engine/training_engine.hpp), driven through
/// the shared `TransportProvider` over an `InProcessTransport` endpoint;
/// this class is only the worker-compute loop under them. The simulated
/// provider (engine/simulated_provider.hpp) runs the identical protocol
/// over simulated time, and the multi-process cluster
/// (runtime/process_cluster.hpp) runs it over real sockets.

#include <cstdint>
#include <thread>
#include <vector>

#include "comm/network.hpp"
#include "core/gradient_source.hpp"
#include "core/scheme.hpp"
#include "engine/training_engine.hpp"
#include "opt/optimizer.hpp"
#include "runtime/elasticity.hpp"
#include "runtime/straggler.hpp"

namespace coupon::runtime {

using engine::FailurePolicy;

/// Training-run parameters: the engine's master-side options (inherited
/// verbatim — iterations, on_failure, loss tracking) plus the threaded
/// runtime's worker-delay injection and join/leave schedule.
struct TrainOptions : engine::TrainOptions {
  StragglerInjection straggler;
  /// Planned worker absences: the master skips broadcasting to a worker
  /// in its leave window; the idle worker thread simply blocks on recv.
  ElasticityPlan elasticity;
};

/// A master plus `n` worker threads bound to one scheme and one dataset.
///
/// The scheme, gradient source, and network outlive every iteration; the
/// class is single-use-at-a-time: call `train` from one thread.
class ThreadCluster {
 public:
  /// Spawns `scheme.num_workers()` worker threads. `source` must remain
  /// valid for the cluster's lifetime.
  ThreadCluster(const core::Scheme& scheme,
                const core::UnitGradientSource& source,
                std::uint64_t straggler_seed = 42);

  /// Joins all workers.
  ~ThreadCluster();

  ThreadCluster(const ThreadCluster&) = delete;
  ThreadCluster& operator=(const ThreadCluster&) = delete;

  /// Runs synchronous distributed GD for `options.iterations` iterations,
  /// driving `optimizer` (master-side). On a coverage failure (possible
  /// for BCC with small n) the iteration is resolved per
  /// `options.on_failure`. `TrainReport::elapsed_seconds` is wall-clock.
  engine::TrainReport train(opt::IterativeOptimizer& optimizer,
                            const TrainOptions& options);

 private:
  void worker_loop(std::size_t worker_index, std::uint64_t seed);

  const core::Scheme& scheme_;
  const core::UnitGradientSource& source_;
  comm::InProcNetwork network_;
  std::vector<std::thread> threads_;
  StragglerInjection straggler_;  // read by workers during train()
};

}  // namespace coupon::runtime
