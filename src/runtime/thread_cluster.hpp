#pragma once

/// \file thread_cluster.hpp
/// Real-thread master/worker cluster executing distributed GD.
///
/// This is the MPI-substitute execution path (DESIGN.md §2): rank 0
/// (the calling thread) is the master, ranks 1..n are worker threads.
/// Each iteration the master broadcasts the optimizer's query point,
/// every worker computes its scheme-encoded gradient message on its
/// locally "stored" data and ships it back, and the master feeds arrivals
/// to the scheme's Collector until it is ready — exactly the protocol of
/// the paper's EC2 implementation, with optional injected straggler
/// delays standing in for t2.micro latency variance.

#include <cstdint>
#include <thread>
#include <vector>

#include "comm/network.hpp"
#include "core/gradient_source.hpp"
#include "core/scheme.hpp"
#include "opt/optimizer.hpp"
#include "stats/summary.hpp"

namespace coupon::runtime {

/// Artificial worker slowdowns: each iteration a worker sleeps a
/// shift-exponential time (Eq. 15 scaled to milliseconds) before sending.
struct StragglerInjection {
  bool enabled = false;
  double shift_ms_per_unit = 0.0;  ///< a, in ms per unit of load
  double straggle = 1.0;           ///< mu (tail scale = load/mu ms)
};

/// What the master does when an iteration cannot be fully recovered
/// (e.g. a BCC placement that misses a batch at small n).
enum class FailurePolicy {
  /// Drop the iteration entirely — the paper's implicit behaviour.
  kSkipUpdate,
  /// Apply the covered-so-far gradient rescaled to a mean-gradient
  /// estimate (the "ignoring stragglers" approximation; library
  /// extension). Falls back to skipping for schemes without partial
  /// decoding (CR) or when nothing was covered.
  kApplyPartial,
};

/// Training-run parameters.
struct TrainOptions {
  std::size_t iterations = 10;
  StragglerInjection straggler;
  FailurePolicy on_failure = FailurePolicy::kSkipUpdate;
};

/// Result of a distributed training run.
struct TrainRunResult {
  std::vector<double> weights;        ///< final model w_T
  stats::OnlineStats workers_heard;   ///< per-iteration K samples
  stats::OnlineStats units_received;  ///< per-iteration L samples
  double wall_seconds = 0.0;
  std::size_t failed_iterations = 0;  ///< coverage failures (update skipped)
  std::size_t partial_iterations = 0; ///< updates applied from partial sums
};

/// A master plus `n` worker threads bound to one scheme and one dataset.
///
/// The scheme, gradient source, and network outlive every iteration; the
/// class is single-use-at-a-time: call `train` from one thread.
class ThreadCluster {
 public:
  /// Spawns `scheme.num_workers()` worker threads. `source` must remain
  /// valid for the cluster's lifetime.
  ThreadCluster(const core::Scheme& scheme,
                const core::UnitGradientSource& source,
                std::uint64_t straggler_seed = 42);

  /// Joins all workers.
  ~ThreadCluster();

  ThreadCluster(const ThreadCluster&) = delete;
  ThreadCluster& operator=(const ThreadCluster&) = delete;

  /// Runs synchronous distributed GD for `options.iterations` iterations,
  /// driving `optimizer` (master-side). On a coverage failure (possible
  /// for BCC with small n) the iteration's update is skipped and counted.
  TrainRunResult train(opt::IterativeOptimizer& optimizer,
                       const TrainOptions& options);

 private:
  void worker_loop(std::size_t worker_index, std::uint64_t seed);

  const core::Scheme& scheme_;
  const core::UnitGradientSource& source_;
  comm::InProcNetwork network_;
  std::vector<std::thread> threads_;
  StragglerInjection straggler_;  // read by workers during train()
};

}  // namespace coupon::runtime
