#include "runtime/thread_cluster.hpp"

#include <chrono>

#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace coupon::runtime {

namespace {

constexpr std::size_t kMasterRank = 0;

/// Wall-clock `IterationProvider` over the in-process network: broadcast
/// on begin_iteration, then surface gradient replies in mailbox-arrival
/// order until all n workers of the iteration are accounted for. Replies
/// left unconsumed when the engine stops early (collector ready) are
/// skipped as stale by the next iteration's tag check.
///
/// Timing: end_iteration returns the wall time since the previous
/// end_iteration (or since construction, i.e. train start), so the
/// master-side work between iterations — decode, optimizer step, loss
/// evaluation — stays on the clock, as the pre-engine whole-run timer
/// had it. The summed report therefore spans train start to the last
/// collection, charged to the iteration that followed the work.
class ThreadedProvider final : public engine::IterationProvider {
 public:
  ThreadedProvider(comm::InProcNetwork& network, std::size_t num_workers)
      : network_(network), num_workers_(num_workers) {}

  void begin_iteration(std::size_t iteration,
                       std::span<const double> w) override {
    iteration_ = static_cast<std::int64_t>(iteration);
    replies_this_iter_ = 0;
    for (std::size_t i = 0; i < num_workers_; ++i) {
      comm::Message broadcast;
      broadcast.source = kMasterRank;
      broadcast.dest = static_cast<std::int32_t>(i + 1);
      broadcast.tag = comm::kTagModelBroadcast;
      broadcast.iteration = iteration_;
      broadcast.payload.assign(w.begin(), w.end());
      network_.send(std::move(broadcast));
    }
  }

  bool next_arrival(engine::ArrivalView& out) override {
    while (replies_this_iter_ < num_workers_) {
      auto msg = network_.recv(kMasterRank);
      COUPON_ASSERT_MSG(msg.has_value(), "master mailbox closed mid-run");
      COUPON_ASSERT(msg->tag == comm::kTagGradient);
      if (msg->iteration != iteration_) {
        continue;  // stale reply from an iteration the master left early
      }
      ++replies_this_iter_;
      message_ = std::move(*msg);
      out.worker = static_cast<std::size_t>(message_.source) - 1;
      out.meta = message_.meta;
      out.payload = message_.payload;
      return true;
    }
    return false;
  }

  engine::IterationTiming end_iteration() override {
    // Wall-clock phases are not separable on real threads: report the
    // iteration total only (compute_seconds = 0 by convention).
    const double now = timer_.seconds();
    const double total = now - last_mark_;
    last_mark_ = now;
    return {.total_seconds = total, .compute_seconds = 0.0};
  }

 private:
  comm::InProcNetwork& network_;
  std::size_t num_workers_;
  std::int64_t iteration_ = 0;
  std::size_t replies_this_iter_ = 0;
  comm::Message message_;  ///< the last delivered reply (view storage)
  WallTimer timer_;        ///< started at construction (train start)
  double last_mark_ = 0.0;
};

}  // namespace

ThreadCluster::ThreadCluster(const core::Scheme& scheme,
                             const core::UnitGradientSource& source,
                             std::uint64_t straggler_seed)
    : scheme_(scheme),
      source_(source),
      network_(scheme.num_workers() + 1) {
  COUPON_ASSERT(source.num_units() == scheme.num_units());
  stats::Rng seeder(straggler_seed);
  threads_.reserve(scheme.num_workers());
  for (std::size_t i = 0; i < scheme.num_workers(); ++i) {
    const std::uint64_t seed = seeder.next_u64();
    threads_.emplace_back([this, i, seed] { worker_loop(i, seed); });
  }
}

ThreadCluster::~ThreadCluster() {
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    comm::Message bye;
    bye.source = kMasterRank;
    bye.dest = static_cast<std::int32_t>(i + 1);
    bye.tag = comm::kTagShutdown;
    network_.send(std::move(bye));
  }
  for (auto& t : threads_) {
    t.join();
  }
  network_.close_all();
}

void ThreadCluster::worker_loop(std::size_t worker_index,
                                std::uint64_t seed) {
  const std::size_t rank = worker_index + 1;
  stats::Rng rng(seed);
  for (;;) {
    auto msg = network_.recv(rank);
    if (!msg || msg->tag == comm::kTagShutdown) {
      return;
    }
    COUPON_ASSERT(msg->tag == comm::kTagModelBroadcast);

    comm::Message reply =
        scheme_.encode(worker_index, source_, msg->payload);
    reply.source = static_cast<std::int32_t>(rank);
    reply.dest = kMasterRank;
    reply.iteration = msg->iteration;

    if (straggler_.enabled) {
      const auto load =
          static_cast<double>(scheme_.placement().worker(worker_index).size());
      if (load > 0.0) {
        const auto dist = stats::ShiftedExponential::for_load(
            straggler_.shift_ms_per_unit, straggler_.straggle, load);
        const double delay_ms = dist.sample(rng);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
    network_.send(std::move(reply));
  }
}

engine::TrainReport ThreadCluster::train(opt::IterativeOptimizer& optimizer,
                                         const TrainOptions& options) {
  straggler_ = options.straggler;

  ThreadedProvider provider(network_, scheme_.num_workers());
  engine::TrainingEngine protocol(scheme_, source_, provider);
  return protocol.train(optimizer, options);  // the engine::TrainOptions base
}

}  // namespace coupon::runtime
