#include "runtime/thread_cluster.hpp"

#include <chrono>

#include "comm/transport.hpp"
#include "runtime/transport_provider.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"

namespace coupon::runtime {

namespace {

constexpr std::size_t kMasterRank = 0;

}  // namespace

ThreadCluster::ThreadCluster(const core::Scheme& scheme,
                             const core::UnitGradientSource& source,
                             std::uint64_t straggler_seed)
    : scheme_(scheme),
      source_(source),
      network_(scheme.num_workers() + 1) {
  COUPON_ASSERT(source.num_units() == scheme.num_units());
  stats::Rng seeder(straggler_seed);
  threads_.reserve(scheme.num_workers());
  for (std::size_t i = 0; i < scheme.num_workers(); ++i) {
    const std::uint64_t seed = seeder.next_u64();
    threads_.emplace_back([this, i, seed] { worker_loop(i, seed); });
  }
}

ThreadCluster::~ThreadCluster() {
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    comm::Message bye;
    bye.source = kMasterRank;
    bye.dest = static_cast<std::int32_t>(i + 1);
    bye.tag = comm::kTagShutdown;
    network_.send(std::move(bye));
  }
  for (auto& t : threads_) {
    t.join();
  }
  network_.close_all();
}

void ThreadCluster::worker_loop(std::size_t worker_index,
                                std::uint64_t seed) {
  const std::size_t rank = worker_index + 1;
  stats::Rng rng(seed);
  // Hoisted reply buffer: encode_into reuses its meta/payload capacity
  // across iterations (the move-send empties but the next assign refills
  // without growing past the first iteration's high-water mark).
  comm::Message reply;
  for (;;) {
    auto msg = network_.recv(rank);
    if (!msg || msg->tag == comm::kTagShutdown) {
      return;
    }
    COUPON_ASSERT(msg->tag == comm::kTagModelBroadcast);

    scheme_.encode_into(worker_index, source_, msg->payload, reply);
    reply.tag = comm::kTagGradient;
    reply.source = static_cast<std::int32_t>(rank);
    reply.dest = kMasterRank;
    reply.iteration = msg->iteration;

    if (straggler_.enabled) {
      const auto load =
          static_cast<double>(scheme_.placement().worker(worker_index).size());
      if (load > 0.0) {
        const auto dist = stats::ShiftedExponential::for_load(
            straggler_.shift_ms_per_unit, straggler_.straggle, load);
        const double delay_ms = dist.sample(rng);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
    network_.send(std::move(reply));
  }
}

engine::TrainReport ThreadCluster::train(opt::IterativeOptimizer& optimizer,
                                         const TrainOptions& options) {
  straggler_ = options.straggler;

  // The shared master protocol over an in-process endpoint: identical
  // broadcast/collect/stale-skip semantics to the socket runtime, with
  // no worker_timeout — in-process threads always reply.
  comm::InProcessTransport master(network_, kMasterRank);
  TransportProvider provider(
      master, scheme_.num_workers(),
      {.worker_timeout = std::chrono::milliseconds(0),
       .elasticity = options.elasticity});
  engine::TrainingEngine protocol(scheme_, source_, provider);
  return protocol.train(optimizer, options);  // the engine::TrainOptions base
}

}  // namespace coupon::runtime
