#include "runtime/thread_cluster.hpp"

#include <chrono>

#include "linalg/vector_ops.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace coupon::runtime {

namespace {
constexpr std::size_t kMasterRank = 0;
}

ThreadCluster::ThreadCluster(const core::Scheme& scheme,
                             const core::UnitGradientSource& source,
                             std::uint64_t straggler_seed)
    : scheme_(scheme),
      source_(source),
      network_(scheme.num_workers() + 1) {
  COUPON_ASSERT(source.num_units() == scheme.num_units());
  stats::Rng seeder(straggler_seed);
  threads_.reserve(scheme.num_workers());
  for (std::size_t i = 0; i < scheme.num_workers(); ++i) {
    const std::uint64_t seed = seeder.next_u64();
    threads_.emplace_back([this, i, seed] { worker_loop(i, seed); });
  }
}

ThreadCluster::~ThreadCluster() {
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    comm::Message bye;
    bye.source = kMasterRank;
    bye.dest = static_cast<std::int32_t>(i + 1);
    bye.tag = comm::kTagShutdown;
    network_.send(std::move(bye));
  }
  for (auto& t : threads_) {
    t.join();
  }
  network_.close_all();
}

void ThreadCluster::worker_loop(std::size_t worker_index,
                                std::uint64_t seed) {
  const std::size_t rank = worker_index + 1;
  stats::Rng rng(seed);
  for (;;) {
    auto msg = network_.recv(rank);
    if (!msg || msg->tag == comm::kTagShutdown) {
      return;
    }
    COUPON_ASSERT(msg->tag == comm::kTagModelBroadcast);

    comm::Message reply =
        scheme_.encode(worker_index, source_, msg->payload);
    reply.source = static_cast<std::int32_t>(rank);
    reply.dest = kMasterRank;
    reply.iteration = msg->iteration;

    if (straggler_.enabled) {
      const auto load =
          static_cast<double>(scheme_.placement().worker(worker_index).size());
      if (load > 0.0) {
        const auto dist = stats::ShiftedExponential::for_load(
            straggler_.shift_ms_per_unit, straggler_.straggle, load);
        const double delay_ms = dist.sample(rng);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
    network_.send(std::move(reply));
  }
}

TrainRunResult ThreadCluster::train(opt::IterativeOptimizer& optimizer,
                                    const TrainOptions& options) {
  straggler_ = options.straggler;
  const std::size_t n = scheme_.num_workers();
  const std::size_t dim = source_.dim();
  COUPON_ASSERT(optimizer.weights().size() == dim);

  TrainRunResult result;
  WallTimer timer;
  std::vector<double> grad(dim);

  for (std::size_t t = 0; t < options.iterations; ++t) {
    const auto query = optimizer.query_point();
    for (std::size_t i = 0; i < n; ++i) {
      comm::Message broadcast;
      broadcast.source = kMasterRank;
      broadcast.dest = static_cast<std::int32_t>(i + 1);
      broadcast.tag = comm::kTagModelBroadcast;
      broadcast.iteration = static_cast<std::int64_t>(t);
      broadcast.payload.assign(query.begin(), query.end());
      network_.send(std::move(broadcast));
    }

    auto collector = scheme_.make_collector();
    std::size_t replies_this_iter = 0;
    while (!collector->ready() && replies_this_iter < n) {
      auto msg = network_.recv(kMasterRank);
      COUPON_ASSERT_MSG(msg.has_value(), "master mailbox closed mid-run");
      COUPON_ASSERT(msg->tag == comm::kTagGradient);
      if (msg->iteration != static_cast<std::int64_t>(t)) {
        continue;  // stale reply from an iteration the master left early
      }
      ++replies_this_iter;
      collector->offer(static_cast<std::size_t>(msg->source) - 1, msg->meta,
                       msg->payload);
    }

    result.workers_heard.add(
        static_cast<double>(collector->workers_heard()));
    result.units_received.add(collector->units_received());

    if (!collector->ready()) {
      // Coverage failure (all n replies consumed).
      if (options.on_failure == FailurePolicy::kApplyPartial &&
          collector->supports_partial_decode()) {
        const std::size_t covered = collector->decode_partial_sum(grad);
        if (covered > 0) {
          // Mean-gradient estimate: the partial sum spans `covered` of
          // num_units units, i.e. about num_examples * covered/num_units
          // underlying examples.
          const double covered_examples =
              static_cast<double>(source_.num_examples()) *
              static_cast<double>(covered) /
              static_cast<double>(source_.num_units());
          linalg::scal(1.0 / covered_examples, grad);
          optimizer.apply_gradient(grad);
          ++result.partial_iterations;
          continue;
        }
      }
      ++result.failed_iterations;
      continue;
    }
    collector->decode_sum(grad);
    linalg::scal(1.0 / static_cast<double>(source_.num_examples()), grad);
    optimizer.apply_gradient(grad);
  }

  auto w = optimizer.weights();
  result.weights.assign(w.begin(), w.end());
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace coupon::runtime
