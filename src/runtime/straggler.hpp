#pragma once

/// \file straggler.hpp
/// Straggler-injection knobs of the threaded runtime, split out of
/// thread_cluster.hpp so scenario-description layers can name them
/// without pulling threads/network headers.

namespace coupon::runtime {

/// Artificial worker slowdowns: each iteration a worker sleeps a
/// shift-exponential time (Eq. 15 scaled to milliseconds) before sending.
struct StragglerInjection {
  bool enabled = false;
  double shift_ms_per_unit = 0.0;  ///< a, in ms per unit of load
  double straggle = 1.0;           ///< mu (tail scale = load/mu ms)
};

}  // namespace coupon::runtime
