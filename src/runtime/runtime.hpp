#pragma once

/// \file runtime.hpp
/// Umbrella header for the runtime module.

#include "runtime/thread_cluster.hpp" // IWYU pragma: export
