#include "runtime/process_cluster.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <ctime>
#include <stdexcept>
#include <thread>
#include <utility>

#include "comm/tcp_transport.hpp"
#include "runtime/transport_provider.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"

namespace coupon::runtime {

namespace {

constexpr auto kHandshakeTimeout = std::chrono::milliseconds(10000);
constexpr auto kReapDeadline = std::chrono::milliseconds(5000);

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// SIGKILLs and reaps every live pid — the error-path teardown.
void kill_and_reap(std::vector<pid_t>& pids) {
  for (pid_t pid : pids) {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
    }
  }
  for (pid_t& pid : pids) {
    if (pid > 0) {
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
}

/// Reaps workers that were told to shut down (or already died). Workers
/// exit as soon as they see the shutdown tag or EOF, so the deadline only
/// bites when a worker is wedged — those get SIGKILL.
void reap_with_deadline(std::vector<pid_t>& pids) {
  const auto deadline = std::chrono::steady_clock::now() + kReapDeadline;
  std::size_t live = pids.size();
  while (live > 0 && std::chrono::steady_clock::now() < deadline) {
    live = 0;
    for (pid_t& pid : pids) {
      if (pid <= 0) {
        continue;
      }
      if (::waitpid(pid, nullptr, WNOHANG) == pid) {
        pid = -1;
      } else {
        ++live;
      }
    }
    if (live > 0) {
      struct timespec nap = {0, 2 * 1000 * 1000};  // 2 ms
      ::nanosleep(&nap, nullptr);
    }
  }
  kill_and_reap(pids);
}

/// The worker-process body: the thread worker_loop's twin over a socket.
/// Runs in the forked child, which inherited `scheme` and `source` from
/// the master's memory image; never returns.
[[noreturn]] void worker_process_main(const core::Scheme& scheme,
                                      const core::UnitGradientSource& source,
                                      std::size_t worker_index,
                                      std::uint64_t seed,
                                      const ProcessTrainOptions& options,
                                      int stream_fd, bool announce_rank) {
  const std::size_t rank = worker_index + 1;
  auto transport = comm::TcpTransport::worker(stream_fd, rank,
                                              scheme.num_workers() + 1);
  if (announce_rank) {
    // TCP mode: accepted connections arrive in arbitrary order, so the
    // first frame names the rank behind this stream.
    comm::Message hello;
    hello.dest = 0;
    hello.tag = comm::kTagHello;
    hello.meta = {static_cast<std::int64_t>(rank)};
    if (!transport->send(std::move(hello))) {
      ::_exit(1);
    }
  }
  stats::Rng rng(seed);
  comm::Message reply;  // hoisted: encode_into reuses capacity per loop
  for (;;) {
    comm::RecvEvent event = transport->recv();
    if (event.status != comm::RecvStatus::kMessage ||
        event.message.tag == comm::kTagShutdown) {
      ::_exit(0);  // orderly shutdown, or the master is gone (EOF)
    }
    if (event.message.tag != comm::kTagModelBroadcast) {
      ::_exit(1);  // protocol violation; die visibly (master sees EOF)
    }
    if (options.crash && options.crash->worker == worker_index &&
        event.message.iteration ==
            static_cast<std::int64_t>(options.crash->iteration)) {
      // The crash drill: a real SIGKILL mid-iteration — the broadcast
      // was consumed, the reply will never be sent, the kernel closes
      // the socket.
      ::kill(::getpid(), SIGKILL);
    }

    scheme.encode_into(worker_index, source, event.message.payload, reply);
    reply.tag = comm::kTagGradient;
    reply.dest = 0;
    reply.iteration = event.message.iteration;

    if (options.straggler.enabled) {
      const auto load =
          static_cast<double>(scheme.placement().worker(worker_index).size());
      if (load > 0.0) {
        const auto dist = stats::ShiftedExponential::for_load(
            options.straggler.shift_ms_per_unit, options.straggler.straggle,
            load);
        const double delay_ms = dist.sample(rng);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
    transport->send(std::move(reply));
  }
}

}  // namespace

bool ProcessCluster::supported() {
  static const bool available = [] {
    if (!comm::socketpair_available() && !comm::tcp_loopback_available()) {
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      return false;
    }
    if (pid == 0) {
      ::_exit(0);
    }
    ::waitpid(pid, nullptr, 0);
    return true;
  }();
  return available;
}

ProcessCluster::ProcessCluster(const core::Scheme& scheme,
                               const core::UnitGradientSource& source,
                               std::uint64_t straggler_seed)
    : scheme_(scheme), source_(source), straggler_seed_(straggler_seed) {
  COUPON_ASSERT(source.num_units() == scheme.num_units());
}

ProcessTrainResult ProcessCluster::train(opt::IterativeOptimizer& optimizer,
                                         const ProcessTrainOptions& options) {
  if (!supported()) {
    throw std::runtime_error(
        "the process runtime needs fork() and stream sockets (loopback TCP "
        "or AF_UNIX socketpair), unavailable in this sandbox — use "
        "--runtime threaded");
  }
  const std::size_t n = scheme_.num_workers();

  // Same per-worker seed derivation as ThreadCluster, so the injected
  // delays of a given (seed, worker) pair agree across the two live
  // runtimes.
  stats::Rng seeder(straggler_seed_);
  std::vector<std::uint64_t> seeds(n);
  for (auto& seed : seeds) {
    seed = seeder.next_u64();
  }

  // Preferred wiring: loopback TCP through an ephemeral-port listener.
  // Sandboxes that forbid it fall back to AF_UNIX socketpairs created
  // before the forks; both carry the identical framing.
  auto listener = comm::TcpListener::open();
  std::vector<int> parent_fds(n, -1);
  std::vector<int> child_fds(n, -1);
  if (listener == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      int pair[2];
      if (!comm::make_stream_socketpair(pair)) {
        for (std::size_t j = 0; j < i; ++j) {
          close_if_open(parent_fds[j]);
          close_if_open(child_fds[j]);
        }
        throw std::runtime_error(
            "process runtime: socketpair() failed while wiring workers");
      }
      parent_fds[i] = pair[0];
      child_fds[i] = pair[1];
    }
  }

  std::vector<pid_t> pids;
  pids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      kill_and_reap(pids);
      for (std::size_t j = 0; j < n; ++j) {
        close_if_open(parent_fds[j]);
        close_if_open(child_fds[j]);
      }
      throw std::runtime_error("process runtime: fork() failed");
    }
    if (pid == 0) {
      // Child: sever every descriptor that is not this worker's own
      // stream. Holding a copy of a sibling's socket would keep that
      // socket open past the sibling's death and mask its EOF — the
      // crash signal the master relies on.
      if (listener != nullptr) {
        ::close(listener->fd());
      }
      for (std::size_t j = 0; j < n; ++j) {
        close_if_open(parent_fds[j]);
        if (j != i) {
          close_if_open(child_fds[j]);
        }
      }
      int stream_fd = child_fds[i];
      if (stream_fd < 0) {
        stream_fd = comm::tcp_connect_loopback(listener->port(),
                                               kHandshakeTimeout);
        if (stream_fd < 0) {
          ::_exit(1);
        }
      }
      worker_process_main(scheme_, source_, i, seeds[i], options, stream_fd,
                          /*announce_rank=*/listener != nullptr);
    }
    pids.push_back(pid);
  }
  for (std::size_t i = 0; i < n; ++i) {
    close_if_open(child_fds[i]);  // the children own these now
  }

  // Collect the worker streams, rank-ordered.
  std::vector<int> fds(n, -1);
  if (listener != nullptr) {
    auto handshake_failed = [&](int pending_fd) {
      if (pending_fd >= 0) {
        ::close(pending_fd);
      }
      for (std::size_t j = 0; j < n; ++j) {
        close_if_open(fds[j]);
      }
      kill_and_reap(pids);
    };
    for (std::size_t k = 0; k < n; ++k) {
      const int fd = listener->accept_fd(kHandshakeTimeout);
      comm::Message hello;
      const bool ok =
          fd >= 0 &&
          comm::recv_frame(fd, kHandshakeTimeout, hello) ==
              comm::FrameStatus::kMessage &&
          hello.tag == comm::kTagHello && hello.meta.size() == 1 &&
          hello.meta[0] >= 1 &&
          hello.meta[0] <= static_cast<std::int64_t>(n) &&
          fds[static_cast<std::size_t>(hello.meta[0]) - 1] < 0;
      if (!ok) {
        handshake_failed(fd);
        throw std::runtime_error(
            "process runtime: worker connection handshake failed");
      }
      fds[static_cast<std::size_t>(hello.meta[0]) - 1] = fd;
    }
  } else {
    fds = std::move(parent_fds);
  }

  ProcessTrainResult result;
  {
    auto transport = comm::TcpTransport::master(std::move(fds));
    TransportProvider provider(*transport, n,
                               {.worker_timeout = options.worker_timeout,
                                .elasticity = options.elasticity});
    engine::TrainingEngine protocol(scheme_, source_, provider);
    result.report =
        protocol.train(optimizer, options);  // the engine::TrainOptions base
    result.workers_lost = provider.workers_lost();
    result.timed_out_iterations = provider.timed_out_iterations();

    // Orderly shutdown for the survivors; the dead get reaped below.
    for (std::size_t i = 0; i < n; ++i) {
      if (provider.worker_alive(i)) {
        comm::Message bye;
        bye.dest = static_cast<std::int32_t>(i + 1);
        bye.tag = comm::kTagShutdown;
        transport->send(std::move(bye));
      }
    }
    transport->close();
  }
  reap_with_deadline(pids);
  return result;
}

}  // namespace coupon::runtime
