#pragma once

/// \file elasticity.hpp
/// Worker join/leave schedules for the live runtimes (DESIGN.md §9).
///
/// Elasticity is a master-side concept: during a worker's absence window
/// the master simply does not broadcast to it, so the iteration runs on
/// the remaining workers and the scheme's redundancy (or the failure
/// policy) absorbs the gap. Workers are stateless between iterations —
/// the model always travels with the broadcast — so a rejoining worker
/// needs no catch-up protocol: the next broadcast re-enlists it.

#include <cstddef>
#include <limits>
#include <vector>

namespace coupon::runtime {

/// One worker's planned absence: it leaves before `leave_iteration` runs
/// and is back for `rejoin_iteration` (half-open window; the default
/// rejoin means it never returns).
struct ElasticityWindow {
  std::size_t worker = 0;
  std::size_t leave_iteration = 0;
  std::size_t rejoin_iteration = std::numeric_limits<std::size_t>::max();
};

/// A full join/leave schedule; empty means every worker serves every
/// iteration.
struct ElasticityPlan {
  std::vector<ElasticityWindow> windows;

  bool enabled() const { return !windows.empty(); }

  /// True when `worker` participates in `iteration`.
  bool active(std::size_t worker, std::size_t iteration) const {
    for (const auto& window : windows) {
      if (window.worker == worker && iteration >= window.leave_iteration &&
          iteration < window.rejoin_iteration) {
        return false;
      }
    }
    return true;
  }
};

}  // namespace coupon::runtime
