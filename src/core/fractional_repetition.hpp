#pragma once

/// \file fractional_repetition.hpp
/// The fractional repetition (FR) scheme of Tandon et al. — the second
/// coded construction mentioned by the paper (footnote 2): unlike CR it
/// may finish before n - s workers report, but it requires r | n.
///
/// With m = n units and load r: the n units are split into n/r disjoint
/// blocks of r consecutive units, and the n workers into r groups of n/r
/// workers; worker q of every group holds block q, so each block is
/// replicated r times. A worker ships the plain sum of its block's
/// partial gradients. The master is ready as soon as every block has been
/// heard from at least once — worst case it tolerates any s = r - 1
/// stragglers, and on average it finishes much earlier (this is the
/// "fractional scheme may finish when the master collects results from
/// less than m - r + 1 workers" remark).

#include "core/scheme.hpp"

namespace coupon::core {

/// Fractional repetition gradient coding (requires m == n and r | n).
class FractionalRepetitionScheme final : public Scheme {
 public:
  FractionalRepetitionScheme(std::size_t num_workers, std::size_t load);

  std::string_view registry_name() const override { return "fr"; }
  std::string_view name() const override { return "fractional repetition"; }

  comm::Message encode(std::size_t worker, const UnitGradientSource& source,
                       std::span<const double> w) const override;
  void encode_into(std::size_t worker, const UnitGradientSource& source,
                   std::span<const double> w,
                   comm::Message& out) const override;
  double message_units(std::size_t) const override { return 1.0; }
  std::vector<std::int64_t> message_meta(std::size_t worker) const override {
    return {static_cast<std::int64_t>(block_of_worker(worker))};
  }
  std::unique_ptr<Collector> make_collector() const override;

  /// The r workers of one block hold the same units in the same ascending
  /// order, so their messages are bitwise identical.
  std::optional<std::size_t> encode_group(std::size_t worker) const override {
    return block_of_worker(worker);
  }
  std::size_t num_encode_groups() const override { return num_blocks(); }

  /// No closed form for the average (block-coverage without replacement);
  /// worst case is n - r + 1. Estimated empirically in theory::.
  std::optional<double> expected_recovery_threshold() const override {
    return std::nullopt;
  }

  std::size_t stragglers_tolerated() const { return load_ - 1; }
  std::size_t num_blocks() const { return num_workers() / load_; }
  std::size_t block_of_worker(std::size_t worker) const;

  /// Block coverage needs at least one worker per block: n/r arrivals.
  std::size_t min_arrivals_hint() const override { return num_blocks(); }

 private:
  std::size_t load_;
};

}  // namespace coupon::core
