#include "core/bcc.hpp"

#include <algorithm>
#include <cmath>

#include "core/theory.hpp"
#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::core {

namespace {

/// Coverage collector over batches. Kept payloads are stored per batch
/// and summed in batch order at decode time, so the decoded gradient is
/// bit-identical regardless of message arrival order (the threaded
/// runtime's arrival order depends on OS scheduling).
class BccCollector final : public Collector {
 public:
  /// `batch_units[b]` is the number of units in batch b (the last batch
  /// may be short); needed to report how many units a partial decode
  /// covers.
  explicit BccCollector(std::vector<std::size_t> batch_units)
      : batch_units_(std::move(batch_units)),
        slots_(batch_units_.size()),
        seen_(batch_units_.size(), false) {}

  bool offer(std::size_t worker, std::span<const std::int64_t> meta,
             std::span<const double> payload) override {
    (void)worker;
    if (ready_) {
      return false;
    }
    note_offer(1.0);
    COUPON_ASSERT_MSG(meta.size() == 1, "BCC message meta must be {batch}");
    const auto batch = static_cast<std::size_t>(meta[0]);
    COUPON_ASSERT(batch < slots_.size());
    if (seen_[batch]) {
      return false;  // duplicate coupon: the master discards it
    }
    seen_[batch] = true;
    ++covered_;
    if (!payload.empty()) {
      slots_[batch].assign(payload.begin(), payload.end());
    }
    ready_ = covered_ == slots_.size();
    return true;
  }

  bool ready() const override { return ready_; }

  void decode_sum(std::span<double> out) const override {
    COUPON_ASSERT_MSG(ready_, "decode before coverage");
    linalg::fill(out, 0.0);
    for (const auto& slot : slots_) {
      COUPON_ASSERT_MSG(!slot.empty(), "decode without payloads");
      COUPON_ASSERT(slot.size() == out.size());
      linalg::axpy(1.0, slot, out);
    }
  }

  bool supports_partial_decode() const override { return true; }

  std::size_t decode_partial_sum(std::span<double> out) const override {
    linalg::fill(out, 0.0);
    std::size_t units = 0;
    for (std::size_t b = 0; b < slots_.size(); ++b) {
      if (!seen_[b]) {
        continue;
      }
      COUPON_ASSERT_MSG(!slots_[b].empty(), "partial decode without payloads");
      COUPON_ASSERT(slots_[b].size() == out.size());
      linalg::axpy(1.0, slots_[b], out);
      units += batch_units_[b];
    }
    return units;
  }

 private:
  void do_reset() override {
    for (auto& slot : slots_) {
      slot.clear();
    }
    std::fill(seen_.begin(), seen_.end(), false);
    covered_ = 0;
    ready_ = false;
  }

  std::vector<std::size_t> batch_units_;
  std::vector<std::vector<double>> slots_;
  std::vector<bool> seen_;
  std::size_t covered_ = 0;
  bool ready_ = false;
};

data::Placement draw_placement(std::size_t num_workers,
                               const data::BatchPartition& partition,
                               bool seed_first_batches, stats::Rng& rng,
                               std::vector<std::size_t>& batch_choice) {
  const std::size_t batches = partition.num_batches();
  data::Placement placement(num_workers, partition.num_examples());
  batch_choice.resize(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    std::size_t b;
    if (seed_first_batches && i < batches) {
      b = i;
    } else {
      b = static_cast<std::size_t>(rng.uniform_int(batches));
    }
    batch_choice[i] = b;
    auto span = partition.indices(b);
    placement.worker(i).assign(span.begin(), span.end());
  }
  return placement;
}

}  // namespace

BccScheme::BccScheme(std::size_t num_workers, std::size_t num_units,
                     std::size_t load, bool seed_first_batches,
                     stats::Rng& rng)
    : Scheme(data::Placement()), partition_(num_units, load) {
  COUPON_ASSERT_MSG(num_workers >= partition_.num_batches(),
                    "need n >= ceil(m/r) workers to cover all batches");
  placement_ = draw_placement(num_workers, partition_, seed_first_batches,
                              rng, batch_choice_);
}

comm::Message BccScheme::encode(std::size_t worker,
                                const UnitGradientSource& source,
                                std::span<const double> w) const {
  comm::Message msg;
  msg.tag = comm::kTagGradient;
  encode_into(worker, source, w, msg);
  return msg;
}

void BccScheme::encode_into(std::size_t worker,
                            const UnitGradientSource& source,
                            std::span<const double> w,
                            comm::Message& out) const {
  COUPON_ASSERT(worker < num_workers());
  COUPON_ASSERT(source.num_units() == num_units());
  out.meta.assign(1, static_cast<std::int64_t>(batch_choice_[worker]));
  out.payload.assign(source.dim(), 0.0);
  source.accumulate_units_gradient(placement_.worker(worker), w,
                                   out.payload);
}

std::vector<std::int64_t> BccScheme::message_meta(std::size_t worker) const {
  COUPON_ASSERT(worker < num_workers());
  return {static_cast<std::int64_t>(batch_choice_[worker])};
}

std::unique_ptr<Collector> BccScheme::make_collector() const {
  std::vector<std::size_t> batch_units(partition_.num_batches());
  for (std::size_t b = 0; b < batch_units.size(); ++b) {
    batch_units[b] = partition_.actual_size(b);
  }
  return std::make_unique<BccCollector>(std::move(batch_units));
}

std::optional<double> BccScheme::expected_recovery_threshold() const {
  const auto b = static_cast<double>(partition_.num_batches());
  return b * theory::harmonic(partition_.num_batches());
}

std::size_t BccScheme::batch_of_worker(std::size_t worker) const {
  COUPON_ASSERT(worker < num_workers());
  return batch_choice_[worker];
}

double BccScheme::coverage_failure_probability(std::size_t num_workers,
                                               std::size_t num_batches) {
  COUPON_ASSERT(num_batches > 0);
  // P(some batch uncovered) by inclusion-exclusion:
  //   sum_{k=1}^{B-1} (-1)^{k+1} C(B,k) (1 - k/B)^n.
  const double b = static_cast<double>(num_batches);
  const double n = static_cast<double>(num_workers);
  double prob = 0.0;
  double log_binom = 0.0;  // log C(B, k), updated incrementally
  for (std::size_t k = 1; k < num_batches; ++k) {
    log_binom += std::log(b - static_cast<double>(k) + 1.0) -
                 std::log(static_cast<double>(k));
    const double term =
        std::exp(log_binom + n * std::log1p(-static_cast<double>(k) / b));
    prob += (k % 2 == 1) ? term : -term;
  }
  return std::clamp(prob, 0.0, 1.0);
}

}  // namespace coupon::core
