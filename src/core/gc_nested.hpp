#pragma once

/// \file gc_nested.hpp
/// Nested Gradient Codes (arXiv 2212.08580): a ladder of codes tuned to
/// the *realized* straggler count instead of a worst-case s fixed at
/// construction.
///
/// With m = n units, load r | n, worker i holds the cyclic window
/// {i, ..., i+r-1 mod n} and ships one component per ladder level: for
/// each divisor w of r (ascending — the level widths), the sum of its
/// first w window units. Message size is therefore L = d(r) gradient
/// units (the number of divisors of r).
///
/// Decoding: the width-w components of the workers in one residue class
/// c mod w tile the unit range exactly (w | n), so ANY intact residue
/// class yields the exact full gradient sum. The master waits for
/// n - r + 1 distinct workers — at most r - 1 absentees can touch at
/// most r - 1 of the r classes mod r, so a width-r class always
/// survives (worst case), and when fewer stragglers materialize a
/// *narrower* width already has an intact class: the decoder walks the
/// ladder from the narrowest width up and decodes at the first (least
/// coded) level the arrival set supports. Fast iterations under light
/// straggling, full tolerance under heavy straggling, one placement.

#include "core/scheme.hpp"

namespace coupon::core {

/// Nested gradient coding on the cyclic placement (requires m == n and
/// r | n). Construction is deterministic — no randomness.
class GcNestedScheme final : public Scheme {
 public:
  /// Requires 1 <= load <= num_workers, load | num_workers, and
  /// num_units == num_workers.
  GcNestedScheme(std::size_t num_workers, std::size_t load);

  std::string_view registry_name() const override { return "gc_nested"; }
  std::string_view name() const override { return "nested gradient coding"; }

  comm::Message encode(std::size_t worker, const UnitGradientSource& source,
                       std::span<const double> w) const override;
  void encode_into(std::size_t worker, const UnitGradientSource& source,
                   std::span<const double> w,
                   comm::Message& out) const override;
  double message_units(std::size_t) const override {
    return static_cast<double>(widths_.size());
  }
  std::vector<std::int64_t> message_meta(std::size_t worker) const override;
  std::unique_ptr<Collector> make_collector() const override;

  /// K = n - r + 1: worst-case ladder level r guarantees recovery there.
  std::optional<double> expected_recovery_threshold() const override {
    return static_cast<double>(num_workers() - load_ + 1);
  }

  /// s = r - 1.
  std::size_t stragglers_tolerated() const { return load_ - 1; }

  /// Exact wait quota: the decoder waits for n - r + 1 distinct workers
  /// before walking the ladder, so no shorter prefix can be ready.
  std::size_t min_arrivals_hint() const override {
    return num_workers() - stragglers_tolerated();
  }

  /// The ladder's level widths: the divisors of r, ascending. The number
  /// of levels L = widths().size() is the per-message size in units.
  const std::vector<std::size_t>& widths() const { return widths_; }

 private:
  std::size_t load_;
  std::vector<std::size_t> widths_;
};

}  // namespace coupon::core
