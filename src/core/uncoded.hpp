#pragma once

/// \file uncoded.hpp
/// The uncoded baseline (Section III-C): the m units are split disjointly
/// and evenly across the n workers, each worker ships the sum of its
/// partial gradients, and the master must wait for *all* workers —
/// recovery threshold K = n, maximally exposed to stragglers.

#include "core/scheme.hpp"

namespace coupon::core {

/// Disjoint even split, wait-for-all.
class UncodedScheme final : public Scheme {
 public:
  /// Splits units contiguously; worker i gets either floor(m/n) or
  /// ceil(m/n) units. Requires m >= n >= 1 (every worker gets work; the
  /// paper's setting is m = n units via super-examples).
  UncodedScheme(std::size_t num_workers, std::size_t num_units);

  std::string_view registry_name() const override { return "uncoded"; }
  std::string_view name() const override { return "uncoded"; }

  comm::Message encode(std::size_t worker, const UnitGradientSource& source,
                       std::span<const double> w) const override;
  void encode_into(std::size_t worker, const UnitGradientSource& source,
                   std::span<const double> w,
                   comm::Message& out) const override;
  double message_units(std::size_t) const override { return 1.0; }
  std::vector<std::int64_t> message_meta(std::size_t worker) const override {
    return {static_cast<std::int64_t>(worker)};
  }
  std::unique_ptr<Collector> make_collector() const override;

  /// Exactly n: the master waits for everyone.
  std::optional<double> expected_recovery_threshold() const override {
    return static_cast<double>(num_workers());
  }

  /// Wait-for-all: no arrival set smaller than n recovers, so the
  /// selection kernel degenerates (correctly) to a full sort.
  std::size_t min_arrivals_hint() const override { return num_workers(); }
};

}  // namespace coupon::core
