#include "core/scheme_registry.hpp"

#include <stdexcept>
#include <utility>

#include "core/bcc.hpp"
#include "core/cyclic_repetition.hpp"
#include "core/fractional_repetition.hpp"
#include "core/gc_cyclic.hpp"
#include "core/gc_nested.hpp"
#include "core/sgc.hpp"
#include "core/simple_random.hpp"
#include "core/uncoded.hpp"
#include "util/assert.hpp"
#include "util/names.hpp"

namespace coupon::core {

SchemeRegistry& SchemeRegistry::instance() {
  static SchemeRegistry registry;
  return registry;
}

SchemeRegistry::SchemeRegistry() {
  // Built-ins, in the presentation order the CLI help has always used.
  add({.name = "uncoded",
       .aliases = {},
       .description =
           "every worker computes all m units; master waits for anyone "
           "(wait-for-all baseline, K = n)",
       .caps = {.supports_partial_decode = true},
       .factory = [](const SchemeConfig& c, stats::Rng&) {
         return std::make_unique<UncodedScheme>(c.num_workers, c.num_units);
       }});
  add({.name = "fr",
       .aliases = {"fractional_repetition"},
       .description =
           "fractional repetition (Tandon et al.): n/r disjoint blocks of "
           "r workers each; requires m == n and r | n",
       .caps = {.supports_partial_decode = true,
                .requires_units_equal_workers = true,
                .requires_load_divides_workers = true},
       .factory = [](const SchemeConfig& c, stats::Rng&) {
         COUPON_ASSERT_MSG(c.num_units == c.num_workers,
                           "FR requires m == n (use super-examples)");
         return std::make_unique<FractionalRepetitionScheme>(c.num_workers,
                                                             c.load);
       }});
  add({.name = "cr",
       .aliases = {"cyclic_repetition"},
       .description =
           "cyclic repetition (Tandon et al.): MDS-coded cyclic placement, "
           "tolerates any r-1 stragglers; requires m == n, no partial decode",
       .caps = {.requires_units_equal_workers = true},
       .factory = [](const SchemeConfig& c, stats::Rng& rng) {
         COUPON_ASSERT_MSG(c.num_units == c.num_workers,
                           "CR requires m == n (use super-examples)");
         return std::make_unique<CyclicRepetitionScheme>(c.num_workers, c.load,
                                                         rng);
       }});
  add({.name = "bcc",
       .aliases = {"batched_coupon_collection"},
       .description =
           "batched coupon collection (this paper): random batch per "
           "worker, near-optimal K ~ (m/r) log(m/r)",
       .caps = {.supports_partial_decode = true},
       .factory = [](const SchemeConfig& c, stats::Rng& rng) {
         return std::make_unique<BccScheme>(c.num_workers, c.num_units, c.load,
                                            c.bcc_seed_first_batches, rng);
       }});
  add({.name = "simple_random",
       .aliases = {"srs"},
       .description =
           "simple randomized: r units drawn uniformly per worker, "
           "near-optimal K but r-unit messages",
       .caps = {.supports_partial_decode = true},
       .factory = [](const SchemeConfig& c, stats::Rng& rng) {
         return std::make_unique<SimpleRandomScheme>(c.num_workers,
                                                     c.num_units, c.load, rng);
       }});
  add({.name = "gc_cyclic",
       .aliases = {"gradient_coding", "gc"},
       .description =
           "exact gradient coding (Tandon et al. 1612.03301): systematic "
           "cyclic placement, any r-1 stragglers, bitwise-exact decode; "
           "requires m == n, r-unit messages",
       .caps = {.supports_partial_decode = true,
                .requires_units_equal_workers = true},
       .factory = [](const SchemeConfig& c, stats::Rng&) {
         COUPON_ASSERT_MSG(c.num_units == c.num_workers,
                           "gc_cyclic requires m == n (use super-examples)");
         return std::make_unique<GcCyclicScheme>(c.num_workers, c.load);
       }});
  add({.name = "sgc",
       .aliases = {"stochastic_gradient_coding"},
       .description =
           "stochastic gradient coding (Bitar et al. 1905.05383): balanced "
           "random r-redundancy, unbiased approximate decode from the first "
           "n-r+1 workers; requires m == n",
       .caps = {.supports_partial_decode = true,
                .requires_units_equal_workers = true,
                .approximate_recovery = true},
       .factory = [](const SchemeConfig& c, stats::Rng& rng) {
         COUPON_ASSERT_MSG(c.num_units == c.num_workers,
                           "sgc requires m == n (use super-examples)");
         return std::make_unique<SgcScheme>(c.num_workers, c.load, rng);
       }});
  add({.name = "gc_nested",
       .aliases = {"nested_gradient_coding"},
       .description =
           "nested gradient codes (2212.08580): divisor ladder of window "
           "sums, decodes at the cheapest level the realized stragglers "
           "allow; requires m == n and r | n",
       .caps = {.requires_units_equal_workers = true,
                .requires_load_divides_workers = true},
       .factory = [](const SchemeConfig& c, stats::Rng&) {
         COUPON_ASSERT_MSG(c.num_units == c.num_workers,
                           "gc_nested requires m == n (use super-examples)");
         COUPON_ASSERT_MSG(c.num_workers % c.load == 0,
                           "gc_nested requires r | n");
         return std::make_unique<GcNestedScheme>(c.num_workers, c.load);
       }});
}

void SchemeRegistry::add(SchemeEntry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument("scheme registration requires a name");
  }
  if (!entry.factory) {
    throw std::invalid_argument("scheme '" + entry.name +
                                "' registered without a factory");
  }
  auto taken = [this](const std::string& spelling) {
    if (find(spelling) != nullptr) {
      throw std::invalid_argument("scheme name '" + spelling +
                                  "' is already registered");
    }
  };
  taken(entry.name);
  for (const auto& alias : entry.aliases) {
    taken(alias);
  }
  entries_.push_back(std::move(entry));
}

const SchemeEntry* SchemeRegistry::find(
    std::string_view name_or_alias) const {
  for (const auto& entry : entries_) {
    if (entry.name == name_or_alias) {
      return &entry;
    }
    for (const auto& alias : entry.aliases) {
      if (alias == name_or_alias) {
        return &entry;
      }
    }
  }
  return nullptr;
}

std::unique_ptr<Scheme> SchemeRegistry::create(std::string_view name_or_alias,
                                               const SchemeConfig& config,
                                               stats::Rng& rng) const {
  const SchemeEntry* entry = find(name_or_alias);
  if (entry == nullptr) {
    throw std::invalid_argument(unknown_message(name_or_alias));
  }
  COUPON_ASSERT_MSG(config.num_workers > 0 && config.num_units > 0,
                    "n=" << config.num_workers << " m=" << config.num_units);
  return entry->factory(config, rng);
}

std::vector<std::string> SchemeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) {
    out.push_back(entry.name);
  }
  return out;
}

std::string SchemeRegistry::choices() const { return join_names(names()); }

std::string SchemeRegistry::unknown_message(std::string_view name) const {
  return unknown_name_message("scheme", name, names());
}

}  // namespace coupon::core
