#include "core/theory.hpp"

#include <cmath>
#include <vector>

#include "util/assert.hpp"

namespace coupon::core::theory {

double harmonic(std::size_t t) {
  // Sum smallest-first for accuracy; t is at most ~1e7 in any experiment.
  double h = 0.0;
  for (std::size_t k = t; k >= 1; --k) {
    h += 1.0 / static_cast<double>(k);
  }
  return h;
}

double harmonic_approx(double t) {
  constexpr double kEulerGamma = 0.57721566490153286;
  COUPON_ASSERT(t > 0.0);
  return std::log(t) + kEulerGamma + 1.0 / (2.0 * t);
}

std::size_t bcc_batches(std::size_t m, std::size_t r) {
  COUPON_ASSERT(m > 0 && r > 0);
  return (m + r - 1) / r;
}

double k_bcc(std::size_t m, std::size_t r) {
  const std::size_t b = bcc_batches(m, r);
  return static_cast<double>(b) * harmonic(b);
}

double k_lower_bound(std::size_t m, std::size_t r) {
  COUPON_ASSERT(m > 0 && r > 0);
  return static_cast<double>(m) / static_cast<double>(r);
}

double k_cyclic_repetition(std::size_t m, std::size_t r) {
  COUPON_ASSERT(r >= 1 && r <= m);
  return static_cast<double>(m - r + 1);
}

double k_simple_random_approx(std::size_t m, std::size_t r) {
  COUPON_ASSERT(m > 0 && r > 0);
  return static_cast<double>(m) / static_cast<double>(r) *
         std::log(static_cast<double>(m));
}

double l_simple_random_approx(std::size_t m) {
  COUPON_ASSERT(m > 0);
  return static_cast<double>(m) * std::log(static_cast<double>(m));
}

double l_bcc(std::size_t m, std::size_t r) { return k_bcc(m, r); }

double coupon_expected_draws(std::size_t types) {
  return static_cast<double>(types) * harmonic(types);
}

double coupon_draws_variance(std::size_t types) {
  COUPON_ASSERT(types > 0);
  const double n = static_cast<double>(types);
  double var = 0.0;
  for (std::size_t k = 1; k <= types; ++k) {
    const double p = (n - static_cast<double>(k) + 1.0) / n;
    var += (1.0 - p) / (p * p);
  }
  return var;
}

double lemma2_tail_bound(std::size_t m, double eps) {
  COUPON_ASSERT(m > 0 && eps >= 0.0);
  return std::pow(static_cast<double>(m), -eps);
}

double expected_max_shifted_exponential(double a, double mu, double load,
                                        std::size_t n) {
  return expected_kth_order_statistic_shifted_exp(a, mu, load, n, n);
}

double expected_kth_order_statistic_shifted_exp(double a, double mu,
                                                double load, std::size_t n,
                                                std::size_t k) {
  COUPON_ASSERT(mu > 0.0 && load > 0.0 && n > 0);
  COUPON_ASSERT_MSG(k >= 1 && k <= n, "k=" << k << " n=" << n);
  return a * load + load / mu * (harmonic(n) - harmonic(n - k));
}

double k_gc_cyclic(std::size_t n, std::size_t r) {
  COUPON_ASSERT(r >= 1 && r <= n);
  return static_cast<double>(n - r + 1);
}

double k_sgc(std::size_t n, std::size_t r) {
  COUPON_ASSERT(r >= 1 && r <= n);
  return static_cast<double>(n - r + 1);
}

double k_gc_nested(std::size_t n, std::size_t r) {
  COUPON_ASSERT(r >= 1 && r <= n && n % r == 0);
  return static_cast<double>(n - r + 1);
}

std::size_t gc_nested_levels(std::size_t r) {
  COUPON_ASSERT(r >= 1);
  std::size_t levels = 0;
  for (std::size_t w = 1; w <= r; ++w) {
    if (r % w == 0) {
      ++levels;
    }
  }
  return levels;
}

double sgc_decode_scale(std::size_t n, std::size_t r, std::size_t k) {
  COUPON_ASSERT(r >= 1 && r <= n && k >= 1 && k <= n);
  return static_cast<double>(n) /
         (static_cast<double>(r) * static_cast<double>(k));
}

double sgc_estimator_variance_factor(std::size_t n, std::size_t r,
                                     std::size_t k) {
  COUPON_ASSERT(n >= 2 && r >= 1 && r <= n && k >= 1 && k <= n);
  const double scale = sgc_decode_scale(n, r, k);
  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(k);
  return scale * scale * kk * (nn - kk) / (nn - 1.0);
}

double expected_max_pareto(double scale, double alpha, std::size_t n) {
  COUPON_ASSERT_MSG(scale > 0.0 && alpha > 1.0 && n > 0,
                    "scale=" << scale << " alpha=" << alpha << " n=" << n);
  // E[max] = scale * B(n, 1-1/alpha) * n, computed via log-gammas to stay
  // finite for large n.
  const double inv = 1.0 / alpha;
  return scale * std::exp(std::lgamma(static_cast<double>(n) + 1.0) +
                          std::lgamma(1.0 - inv) -
                          std::lgamma(static_cast<double>(n) + 1.0 - inv));
}

std::size_t coupon_draws_once(std::size_t types, stats::Rng& rng) {
  COUPON_ASSERT(types > 0);
  std::vector<bool> seen(types, false);
  std::size_t covered = 0;
  std::size_t draws = 0;
  while (covered < types) {
    ++draws;
    const auto c = static_cast<std::size_t>(rng.uniform_int(types));
    if (!seen[c]) {
      seen[c] = true;
      ++covered;
    }
  }
  return draws;
}

double mc_coupon_draws(std::size_t types, std::size_t trials,
                       stats::Rng& rng) {
  COUPON_ASSERT(trials > 0);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    total += static_cast<double>(coupon_draws_once(types, rng));
  }
  return total / static_cast<double>(trials);
}

double mc_simple_random_threshold(std::size_t m, std::size_t r,
                                  std::size_t trials, stats::Rng& rng) {
  COUPON_ASSERT(m > 0 && r > 0 && r <= m && trials > 0);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::vector<bool> covered(m, false);
    std::size_t num_covered = 0;
    std::size_t workers = 0;
    while (num_covered < m) {
      ++workers;
      for (std::size_t j : rng.sample_without_replacement(m, r)) {
        if (!covered[j]) {
          covered[j] = true;
          ++num_covered;
        }
      }
    }
    total += static_cast<double>(workers);
  }
  return total / static_cast<double>(trials);
}

double mc_fractional_repetition_threshold(std::size_t n, std::size_t r,
                                          std::size_t trials,
                                          stats::Rng& rng) {
  COUPON_ASSERT(n > 0 && r > 0 && n % r == 0 && trials > 0);
  const std::size_t blocks = n / r;
  double total = 0.0;
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  for (std::size_t t = 0; t < trials; ++t) {
    rng.shuffle(order);
    std::vector<bool> seen(blocks, false);
    std::size_t covered = 0;
    std::size_t heard = 0;
    for (std::size_t i = 0; i < n && covered < blocks; ++i) {
      ++heard;
      const std::size_t block = order[i] % blocks;
      if (!seen[block]) {
        seen[block] = true;
        ++covered;
      }
    }
    total += static_cast<double>(heard);
  }
  return total / static_cast<double>(trials);
}

}  // namespace coupon::core::theory
