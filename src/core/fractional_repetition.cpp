#include "core/fractional_repetition.hpp"

#include <algorithm>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::core {

namespace {

/// Block-coverage collector (structurally the BCC collector over blocks):
/// payloads slotted per block, summed in block order at decode.
class FrCollector final : public Collector {
 public:
  FrCollector(std::size_t num_blocks, std::size_t block_units)
      : block_units_(block_units),
        slots_(num_blocks),
        seen_(num_blocks, false) {}

  bool offer(std::size_t worker, std::span<const std::int64_t> meta,
             std::span<const double> payload) override {
    (void)worker;
    if (ready_) {
      return false;
    }
    note_offer(1.0);
    COUPON_ASSERT_MSG(meta.size() == 1, "FR message meta must be {block}");
    const auto block = static_cast<std::size_t>(meta[0]);
    COUPON_ASSERT(block < seen_.size());
    if (seen_[block]) {
      return false;  // replica of an already-received block
    }
    seen_[block] = true;
    ++covered_;
    if (!payload.empty()) {
      slots_[block].assign(payload.begin(), payload.end());
    }
    ready_ = covered_ == seen_.size();
    return true;
  }

  bool ready() const override { return ready_; }

  void decode_sum(std::span<double> out) const override {
    COUPON_ASSERT_MSG(ready_, "decode before block coverage");
    linalg::fill(out, 0.0);
    for (const auto& slot : slots_) {
      COUPON_ASSERT_MSG(!slot.empty(), "decode without payloads");
      COUPON_ASSERT(slot.size() == out.size());
      linalg::axpy(1.0, slot, out);
    }
  }

  bool supports_partial_decode() const override { return true; }

  std::size_t decode_partial_sum(std::span<double> out) const override {
    linalg::fill(out, 0.0);
    std::size_t units = 0;
    for (std::size_t b = 0; b < slots_.size(); ++b) {
      if (!seen_[b]) {
        continue;
      }
      COUPON_ASSERT_MSG(!slots_[b].empty(), "partial decode without payloads");
      linalg::axpy(1.0, slots_[b], out);
      units += block_units_;
    }
    return units;
  }

 private:
  void do_reset() override {
    for (auto& slot : slots_) {
      slot.clear();
    }
    std::fill(seen_.begin(), seen_.end(), false);
    covered_ = 0;
    ready_ = false;
  }

  std::size_t block_units_;
  std::vector<std::vector<double>> slots_;
  std::vector<bool> seen_;
  std::size_t covered_ = 0;
  bool ready_ = false;
};

data::Placement fr_placement(std::size_t n, std::size_t r) {
  data::Placement placement(n, n);
  const std::size_t workers_per_group = n / r;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t block = i % workers_per_group;
    auto& g = placement.worker(i);
    g.reserve(r);
    for (std::size_t t = 0; t < r; ++t) {
      g.push_back(block * r + t);
    }
  }
  return placement;
}

}  // namespace

FractionalRepetitionScheme::FractionalRepetitionScheme(
    std::size_t num_workers, std::size_t load)
    : Scheme(data::Placement()), load_(load) {
  COUPON_ASSERT_MSG(load >= 1 && load <= num_workers,
                    "FR load must satisfy 1 <= r <= n");
  COUPON_ASSERT_MSG(num_workers % load == 0,
                    "FR requires r | n, got n=" << num_workers
                                                << " r=" << load);
  placement_ = fr_placement(num_workers, load);
}

comm::Message FractionalRepetitionScheme::encode(
    std::size_t worker, const UnitGradientSource& source,
    std::span<const double> w) const {
  comm::Message msg;
  msg.tag = comm::kTagGradient;
  encode_into(worker, source, w, msg);
  return msg;
}

void FractionalRepetitionScheme::encode_into(std::size_t worker,
                                             const UnitGradientSource& source,
                                             std::span<const double> w,
                                             comm::Message& out) const {
  COUPON_ASSERT(worker < num_workers());
  COUPON_ASSERT(source.num_units() == num_units());
  out.meta.assign(1, static_cast<std::int64_t>(block_of_worker(worker)));
  out.payload.assign(source.dim(), 0.0);
  source.accumulate_units_gradient(placement_.worker(worker), w,
                                   out.payload);
}

std::unique_ptr<Collector> FractionalRepetitionScheme::make_collector() const {
  return std::make_unique<FrCollector>(num_blocks(), load_);
}

std::size_t FractionalRepetitionScheme::block_of_worker(
    std::size_t worker) const {
  COUPON_ASSERT(worker < num_workers());
  return worker % (num_workers() / load_);
}

}  // namespace coupon::core
