#include "core/cyclic_repetition.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/solve.hpp"
#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::core {

namespace {

/// Keeps the first n - s distinct workers' messages, then decodes via the
/// scheme's coding matrix. Kept payloads live in fixed slots (paired with
/// `workers_` by index) and all decode temporaries are reusable scratch,
/// so a reset-and-reused collector allocates nothing once warm.
class CrCollector final : public Collector {
 public:
  CrCollector(const CyclicRepetitionScheme& scheme, std::size_t needed)
      : scheme_(scheme), needed_(needed), slots_(needed) {
    workers_.reserve(needed);
  }

  bool offer(std::size_t worker, std::span<const std::int64_t> meta,
             std::span<const double> payload) override {
    (void)meta;
    if (ready_) {
      return false;
    }
    note_offer(1.0);
    for (std::size_t w : workers_) {
      if (w == worker) {
        return false;  // duplicate delivery
      }
    }
    workers_.push_back(worker);
    if (!payload.empty()) {
      slots_[workers_.size() - 1].assign(payload.begin(), payload.end());
      ++filled_;
    }
    ready_ = workers_.size() >= needed_;
    return true;
  }

  bool ready() const override { return ready_; }

  void decode_sum(std::span<double> out) const override {
    COUPON_ASSERT_MSG(ready_, "decode before n - s workers reported");
    COUPON_ASSERT_MSG(filled_ == workers_.size(), "decode without payloads");
    // Sort the kept set by worker index so the decode (coefficient solve
    // and the combination order) is independent of arrival order.
    perm_.resize(workers_.size());
    for (std::size_t k = 0; k < perm_.size(); ++k) {
      perm_[k] = k;
    }
    std::sort(perm_.begin(), perm_.end(),
              [this](std::size_t a, std::size_t b) {
                return workers_[a] < workers_[b];
              });
    sorted_workers_.resize(workers_.size());
    for (std::size_t k = 0; k < perm_.size(); ++k) {
      sorted_workers_[k] = workers_[perm_[k]];
    }
    const bool solved =
        scheme_.decoding_coefficients_into(sorted_workers_, ws_);
    COUPON_ASSERT_MSG(solved, "CR decode solve failed");
    linalg::fill(out, 0.0);
    for (std::size_t k = 0; k < perm_.size(); ++k) {
      const auto& payload = slots_[perm_[k]];
      COUPON_ASSERT(payload.size() == out.size());
      linalg::axpy(ws_.coeffs[k], payload, out);
    }
  }

 private:
  void do_reset() override {
    workers_.clear();
    filled_ = 0;
    ready_ = false;
  }

  const CyclicRepetitionScheme& scheme_;
  std::size_t needed_;
  bool ready_ = false;
  std::size_t filled_ = 0;
  std::vector<std::size_t> workers_;
  std::vector<std::vector<double>> slots_;  // slots_[k] pairs workers_[k]
  mutable std::vector<std::size_t> perm_;
  mutable std::vector<std::size_t> sorted_workers_;
  mutable CrDecodeWorkspace ws_;
};

data::Placement cyclic_placement(std::size_t n, std::size_t r) {
  data::Placement placement(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& g = placement.worker(i);
    g.reserve(r);
    for (std::size_t t = 0; t < r; ++t) {
      g.push_back((i + t) % n);
    }
  }
  return placement;
}

/// One attempt at Tandon et al.'s Algorithm 2. Returns nullopt when an
/// inner s x s system is singular (probability-zero event; caller redraws).
std::optional<linalg::Matrix> try_build_coding_matrix(std::size_t n,
                                                      std::size_t r,
                                                      stats::Rng& rng) {
  const std::size_t s = r - 1;
  if (s == 0) {
    return linalg::Matrix::identity(n);  // r = 1 degenerates to uncoded
  }
  // H: s x n i.i.d. normal, then force every row sum to zero => H 1 = 0.
  linalg::Matrix h(s, n);
  for (std::size_t i = 0; i < s; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j + 1 < n; ++j) {
      h(i, j) = rng.normal();
      row_sum += h(i, j);
    }
    h(i, n - 1) = -row_sum;
  }

  linalg::Matrix b(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    // Support: columns (i + t) mod n for t = 0..s; leading coefficient 1.
    // Remaining coefficients x solve  H_sub x = -h_i  so that row_i(B) is
    // in null(H).
    linalg::Matrix h_sub(s, s);
    std::vector<double> rhs(s);
    for (std::size_t row = 0; row < s; ++row) {
      rhs[row] = -h(row, i);
      for (std::size_t t = 0; t < s; ++t) {
        h_sub(row, t) = h(row, (i + 1 + t) % n);
      }
    }
    auto x = linalg::solve(h_sub, rhs);
    if (!x) {
      return std::nullopt;
    }
    b(i, i) = 1.0;
    for (std::size_t t = 0; t < s; ++t) {
      b(i, (i + 1 + t) % n) = (*x)[t];
    }
  }
  return b;
}

}  // namespace

CyclicRepetitionScheme::CyclicRepetitionScheme(std::size_t num_workers,
                                               std::size_t load,
                                               stats::Rng& rng)
    : Scheme(cyclic_placement(num_workers, load)), load_(load) {
  COUPON_ASSERT_MSG(load >= 1 && load <= num_workers,
                    "CR load must satisfy 1 <= r <= n");
  constexpr int kMaxTries = 16;
  for (int attempt = 0; attempt < kMaxTries; ++attempt) {
    auto b = try_build_coding_matrix(num_workers, load, rng);
    if (b) {
      b_ = std::move(*b);
      return;
    }
  }
  COUPON_ASSERT_MSG(false, "CR coding matrix construction failed "
                               << kMaxTries << " times (vanishing-probability "
                               << "event); check the RNG");
}

comm::Message CyclicRepetitionScheme::encode(std::size_t worker,
                                             const UnitGradientSource& source,
                                             std::span<const double> w) const {
  comm::Message msg;
  msg.tag = comm::kTagGradient;
  encode_into(worker, source, w, msg);
  return msg;
}

void CyclicRepetitionScheme::encode_into(std::size_t worker,
                                         const UnitGradientSource& source,
                                         std::span<const double> w,
                                         comm::Message& out) const {
  COUPON_ASSERT(worker < num_workers());
  COUPON_ASSERT(source.num_units() == num_units());
  const std::size_t dim = source.dim();
  out.meta.assign(1, static_cast<std::int64_t>(worker));
  // The payload tail doubles as unit-gradient scratch (trimmed before
  // returning), so a warm encode allocates nothing. A caching source's
  // `unit_gradient_view` ignores the scratch and serves its own slab row.
  out.payload.assign(2 * dim, 0.0);
  const std::span<double> acc{out.payload.data(), dim};
  const std::span<double> scratch{out.payload.data() + dim, dim};
  for (std::size_t unit : placement_.worker(worker)) {
    const std::span<const double> g = source.unit_gradient_view(unit, w, scratch);
    linalg::axpy(b_(worker, unit), g, acc);
  }
  out.payload.resize(dim);
}

std::unique_ptr<Collector> CyclicRepetitionScheme::make_collector() const {
  return std::make_unique<CrCollector>(*this,
                                       num_workers() - stragglers_tolerated());
}

std::optional<std::vector<double>> CyclicRepetitionScheme::decoding_coefficients(
    std::span<const std::size_t> workers) const {
  CrDecodeWorkspace ws;
  if (!decoding_coefficients_into(workers, ws)) {
    return std::nullopt;
  }
  return std::move(ws.coeffs);
}

bool CyclicRepetitionScheme::decoding_coefficients_into(
    std::span<const std::size_t> workers, CrDecodeWorkspace& ws) const {
  const std::size_t n = num_workers();
  if (workers.size() < n - stragglers_tolerated()) {
    return false;
  }
  // Solve B_W^T a = 1: an n x |W| overdetermined system with an exact
  // solution by construction (1 is in the row space of B_W).
  ws.bwt.resize(n, workers.size());
  for (std::size_t k = 0; k < workers.size(); ++k) {
    COUPON_ASSERT(workers[k] < n);
    for (std::size_t j = 0; j < n; ++j) {
      ws.bwt(j, k) = b_(workers[k], j);
    }
  }
  ws.ones.assign(n, 1.0);
  ws.coeffs.resize(workers.size());
  return linalg::lstsq_into(ws.bwt, ws.ones, ws.coeffs, ws.lstsq);
}

}  // namespace coupon::core
