#include "core/gradient_source.hpp"

#include "opt/least_squares.hpp"
#include "opt/logistic.hpp"
#include "util/assert.hpp"

namespace coupon::core {

void PerExampleSource::unit_gradient(std::size_t unit,
                                     std::span<const double> w,
                                     std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  opt::partial_gradient(dataset_, unit, w, out);
}

void PerExampleSource::accumulate_unit_gradient(std::size_t unit,
                                                std::span<const double> w,
                                                std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  const std::size_t one[] = {unit};
  opt::partial_gradient_sum(dataset_, one, w, out, /*accumulate=*/true);
}

void PerExampleSource::accumulate_units_gradient(
    std::span<const std::size_t> units, std::span<const double> w,
    std::span<double> out) const {
  // Unit index == example index: the whole list is one example-level
  // pass, visiting examples in exactly the per-unit call order.
  opt::partial_gradient_sum(dataset_, units, w, out, /*accumulate=*/true);
}

void LeastSquaresExampleSource::unit_gradient(std::size_t unit,
                                              std::span<const double> w,
                                              std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  const std::size_t one[] = {unit};
  opt::squared_partial_gradient_sum(dataset_, one, w, out,
                                    /*accumulate=*/false);
}

void LeastSquaresExampleSource::accumulate_unit_gradient(
    std::size_t unit, std::span<const double> w, std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  const std::size_t one[] = {unit};
  opt::squared_partial_gradient_sum(dataset_, one, w, out,
                                    /*accumulate=*/true);
}

void LeastSquaresExampleSource::accumulate_units_gradient(
    std::span<const std::size_t> units, std::span<const double> w,
    std::span<double> out) const {
  opt::squared_partial_gradient_sum(dataset_, units, w, out,
                                    /*accumulate=*/true);
}

namespace {

/// BatchPartition slices one iota index array, so every batch (and every
/// merged run of adjacent batches) is the contiguous example range
/// [front, front + size). Debug-checked, then taken as the range form.
void grouped_range_sum(const data::Dataset& dataset,
                       std::span<const std::size_t> run,
                       std::span<const double> w, std::span<double> out,
                       bool accumulate) {
  COUPON_DCHECK(run.empty() ||
                run.back() == run.front() + run.size() - 1);
  opt::partial_gradient_range(dataset, run.empty() ? 0 : run.front(),
                              run.size(), w, out, accumulate);
}

}  // namespace

void GroupedBatchSource::unit_gradient(std::size_t unit,
                                       std::span<const double> w,
                                       std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  grouped_range_sum(dataset_, partition_.indices(unit), w, out,
                    /*accumulate=*/false);
}

void GroupedBatchSource::accumulate_unit_gradient(
    std::size_t unit, std::span<const double> w, std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  grouped_range_sum(dataset_, partition_.indices(unit), w, out,
                    /*accumulate=*/true);
}

void GroupedBatchSource::accumulate_units_gradient(
    std::span<const std::size_t> units, std::span<const double> w,
    std::span<double> out) const {
  // Batches slice one flat index array, so consecutive units' index
  // spans are usually adjacent in memory: merge each maximal adjacent
  // run and make one example-level pass over it. The concatenation
  // preserves the per-unit example order exactly, so the gradient bits
  // match the unit-at-a-time loop.
  std::size_t i = 0;
  while (i < units.size()) {
    COUPON_ASSERT(units[i] < num_units());
    std::span<const std::size_t> run = partition_.indices(units[i]);
    std::size_t j = i + 1;
    for (; j < units.size(); ++j) {
      COUPON_ASSERT(units[j] < num_units());
      const std::span<const std::size_t> next = partition_.indices(units[j]);
      if (run.data() + run.size() != next.data()) {
        break;
      }
      run = {run.data(), run.size() + next.size()};
    }
    grouped_range_sum(dataset_, run, w, out, /*accumulate=*/true);
    i = j;
  }
}

}  // namespace coupon::core
