#include "core/gradient_source.hpp"

#include "opt/least_squares.hpp"
#include "opt/logistic.hpp"
#include "util/assert.hpp"

namespace coupon::core {

void PerExampleSource::unit_gradient(std::size_t unit,
                                     std::span<const double> w,
                                     std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  opt::partial_gradient(dataset_, unit, w, out);
}

void PerExampleSource::accumulate_unit_gradient(std::size_t unit,
                                                std::span<const double> w,
                                                std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  const std::size_t one[] = {unit};
  opt::partial_gradient_sum(dataset_, one, w, out, /*accumulate=*/true);
}

void LeastSquaresExampleSource::unit_gradient(std::size_t unit,
                                              std::span<const double> w,
                                              std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  const std::size_t one[] = {unit};
  opt::squared_partial_gradient_sum(dataset_, one, w, out,
                                    /*accumulate=*/false);
}

void LeastSquaresExampleSource::accumulate_unit_gradient(
    std::size_t unit, std::span<const double> w, std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  const std::size_t one[] = {unit};
  opt::squared_partial_gradient_sum(dataset_, one, w, out,
                                    /*accumulate=*/true);
}

void GroupedBatchSource::unit_gradient(std::size_t unit,
                                       std::span<const double> w,
                                       std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  opt::partial_gradient_sum(dataset_, partition_.indices(unit), w, out,
                            /*accumulate=*/false);
}

void GroupedBatchSource::accumulate_unit_gradient(
    std::size_t unit, std::span<const double> w, std::span<double> out) const {
  COUPON_ASSERT(unit < num_units());
  opt::partial_gradient_sum(dataset_, partition_.indices(unit), w, out,
                            /*accumulate=*/true);
}

}  // namespace coupon::core
