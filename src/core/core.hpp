#pragma once

/// \file core.hpp
/// Umbrella header for the core module (the paper's contribution).

#include "core/bcc.hpp"                     // IWYU pragma: export
#include "core/cached_gradient_source.hpp"  // IWYU pragma: export
#include "core/cyclic_repetition.hpp"       // IWYU pragma: export
#include "core/fractional_repetition.hpp"   // IWYU pragma: export
#include "core/gradient_source.hpp"         // IWYU pragma: export
#include "core/hetero.hpp"                  // IWYU pragma: export
#include "core/scheme.hpp"                  // IWYU pragma: export
#include "core/scheme_registry.hpp"         // IWYU pragma: export
#include "core/simple_random.hpp"           // IWYU pragma: export
#include "core/theory.hpp"                  // IWYU pragma: export
#include "core/uncoded.hpp"                 // IWYU pragma: export
