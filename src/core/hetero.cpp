#include "core/hetero.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/theory.hpp"
#include "stats/distributions.hpp"
#include "util/assert.hpp"

namespace coupon::core::hetero {

std::vector<double> sample_completion_times(
    std::span<const WorkerProfile> workers,
    std::span<const std::size_t> loads, stats::Rng& rng) {
  COUPON_ASSERT(workers.size() == loads.size());
  std::vector<double> times(workers.size(), kInf);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (loads[i] == 0) {
      continue;
    }
    const auto dist = stats::ShiftedExponential::for_load(
        workers[i].shift, workers[i].straggle,
        static_cast<double>(loads[i]));
    times[i] = dist.sample(rng);
  }
  return times;
}

double t_hat(std::span<const double> completion_times,
             std::span<const std::size_t> loads, std::size_t s) {
  COUPON_ASSERT(completion_times.size() == loads.size());
  // Sort worker indices by completion time and accumulate loads.
  std::vector<std::size_t> order(loads.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return completion_times[a] < completion_times[b];
  });
  std::size_t received = 0;
  for (std::size_t i : order) {
    if (completion_times[i] == kInf) {
      break;
    }
    received += loads[i];
    if (received >= s) {
      return completion_times[i];
    }
  }
  return kInf;
}

double mc_expected_t_hat(std::span<const WorkerProfile> workers,
                         std::span<const std::size_t> loads, std::size_t s,
                         std::size_t trials, stats::Rng& rng) {
  COUPON_ASSERT(trials > 0);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const auto times = sample_completion_times(workers, loads, rng);
    const double v = t_hat(times, loads, s);
    COUPON_ASSERT_MSG(v != kInf, "T-hat(s) unreachable: total load < s");
    total += v;
  }
  return total / static_cast<double>(trials);
}

double optimal_normalized_deadline(const WorkerProfile& worker) {
  const double a = worker.shift;
  const double mu = worker.straggle;
  COUPON_ASSERT(a >= 0.0 && mu > 0.0);
  if (a <= 0.0) {
    return 0.0;  // no deterministic floor: maximizer unbounded, cap binds
  }
  // Root of g(u) = exp(mu (u - a)) - 1 - mu u on (a, inf):
  // g(a) = -mu a < 0 and g grows exponentially, so bracket then bisect.
  auto g = [a, mu](double u) { return std::exp(mu * (u - a)) - 1.0 - mu * u; };
  double lo = a;
  double hi = a + 1.0 / mu;
  while (g(hi) < 0.0) {
    hi *= 2.0;
  }
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-12 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (g(mid) < 0.0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

namespace {

/// Expected units worker delivers by deadline tau with integer load l:
/// l * Pr[T(l) <= tau].
double expected_delivered(const WorkerProfile& w, double load, double tau) {
  if (load <= 0.0) {
    return 0.0;
  }
  const double shift = w.shift * load;
  if (tau <= shift) {
    return 0.0;
  }
  const double rate = w.straggle / load;
  return load * (1.0 - std::exp(-rate * (tau - shift)));
}

/// Real-valued optimal load for deadline tau (before rounding/capping).
double continuous_load(double u_star, double tau, double cap) {
  if (u_star <= 0.0) {
    return cap;  // a == 0: saturate the cap
  }
  return std::min(cap, tau / u_star);
}

}  // namespace

AllocationResult allocate_loads(std::span<const WorkerProfile> workers,
                                std::size_t target_units,
                                std::size_t max_load) {
  COUPON_ASSERT(!workers.empty() && target_units > 0 && max_load > 0);
  const double cap = static_cast<double>(max_load);
  std::vector<double> u_star(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    u_star[i] = optimal_normalized_deadline(workers[i]);
  }

  // Feasibility: even with every load at the cap, expected deliveries
  // approach sum(cap) as tau -> inf; require sum(cap) >= target.
  COUPON_ASSERT_MSG(cap * static_cast<double>(workers.size()) >=
                        static_cast<double>(target_units),
                    "target unreachable even at the load cap");

  auto total_expected = [&](double tau) {
    double sum = 0.0;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      sum += expected_delivered(
          workers[i], continuous_load(u_star[i], tau, cap), tau);
    }
    return sum;
  };

  // Bracket the smallest tau with total_expected(tau) >= target.
  double hi = 1.0;
  while (total_expected(hi) < static_cast<double>(target_units)) {
    hi *= 2.0;
    COUPON_ASSERT_MSG(hi < 1e18, "deadline search diverged");
  }
  double lo = 0.0;
  for (int iter = 0; iter < 200 && (hi - lo) > 1e-9 * hi; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (total_expected(mid) < static_cast<double>(target_units) ? lo : hi) = mid;
  }
  const double tau = hi;

  AllocationResult result;
  result.deadline = tau;
  result.loads.resize(workers.size());
  std::size_t total_load = 0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const double l = continuous_load(u_star[i], tau, cap);
    result.loads[i] =
        std::min<std::size_t>(max_load,
                              static_cast<std::size_t>(std::llround(l)));
    total_load += result.loads[i];
  }
  // T-hat(s) must be finite: integer rounding may land the total below
  // the target, so top up the workers with the fastest expected
  // per-example service (smallest a + 1/mu).
  if (total_load < target_units) {
    std::vector<std::size_t> order(workers.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      const double sx = workers[x].shift + 1.0 / workers[x].straggle;
      const double sy = workers[y].shift + 1.0 / workers[y].straggle;
      return sx < sy;
    });
    std::size_t cursor = 0;
    while (total_load < target_units) {
      const std::size_t i = order[cursor % order.size()];
      ++cursor;
      if (result.loads[i] < max_load) {
        ++result.loads[i];
        ++total_load;
      }
      COUPON_ASSERT_MSG(cursor < 4 * workers.size() * max_load,
                        "load top-up failed");
    }
  }
  double expected = 0.0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    expected += expected_delivered(
        workers[i], static_cast<double>(result.loads[i]), tau);
  }
  result.expected_units = expected;
  return result;
}

RefineResult refine_loads(std::span<const WorkerProfile> workers,
                          std::vector<std::size_t> initial_loads,
                          std::size_t s, std::size_t steps,
                          std::size_t trials, std::size_t max_load,
                          stats::Rng& rng) {
  const std::size_t n = workers.size();
  COUPON_ASSERT(initial_loads.size() == n && trials > 0 && max_load > 0);

  // Common random numbers: one Exp(1) draw per (trial, worker); a
  // worker's completion time under load l is a*l + (l/mu) * base.
  std::vector<double> base(trials * n);
  for (double& b : base) {
    b = rng.exponential(1.0);
  }
  std::vector<double> times(n);
  auto estimate = [&](const std::vector<std::size_t>& loads) {
    double total = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      for (std::size_t i = 0; i < n; ++i) {
        if (loads[i] == 0) {
          times[i] = kInf;
          continue;
        }
        const auto l = static_cast<double>(loads[i]);
        times[i] = workers[i].shift * l +
                   l / workers[i].straggle * base[t * n + i];
      }
      const double v = t_hat(times, loads, s);
      COUPON_ASSERT_MSG(v != kInf, "refine_loads: total load < s");
      total += v;
    }
    return total / static_cast<double>(trials);
  };

  RefineResult best{std::move(initial_loads), 0.0};
  best.estimate = estimate(best.loads);
  for (std::size_t step = 0; step < steps; ++step) {
    const auto donor = static_cast<std::size_t>(rng.uniform_int(n));
    const auto receiver = static_cast<std::size_t>(rng.uniform_int(n));
    if (donor == receiver || best.loads[donor] == 0 ||
        best.loads[receiver] >= max_load) {
      continue;
    }
    --best.loads[donor];
    ++best.loads[receiver];
    const double candidate = estimate(best.loads);
    if (candidate < best.estimate) {
      best.estimate = candidate;
    } else {
      ++best.loads[donor];  // revert
      --best.loads[receiver];
    }
  }
  return best;
}

std::vector<std::size_t> load_balanced_assignment(
    std::span<const WorkerProfile> workers, std::size_t num_examples) {
  COUPON_ASSERT(!workers.empty() && num_examples > 0);
  double mu_sum = 0.0;
  for (const auto& w : workers) {
    COUPON_ASSERT(w.straggle > 0.0);
    mu_sum += w.straggle;
  }
  // Largest-remainder rounding of the proportional shares, so the loads
  // sum to exactly m (disjoint placement covers everything exactly once).
  std::vector<std::size_t> loads(workers.size());
  std::vector<std::pair<double, std::size_t>> remainders;
  remainders.reserve(workers.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const double ideal =
        workers[i].straggle / mu_sum * static_cast<double>(num_examples);
    loads[i] = static_cast<std::size_t>(ideal);
    assigned += loads[i];
    remainders.emplace_back(ideal - std::floor(ideal), i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < num_examples; ++k) {
    ++loads[remainders[k % remainders.size()].second];
    ++assigned;
  }
  return loads;
}

CoverageOutcome simulate_generalized_bcc(
    std::span<const WorkerProfile> workers,
    std::span<const std::size_t> loads, std::size_t num_examples,
    stats::Rng& rng) {
  COUPON_ASSERT(workers.size() == loads.size() && num_examples > 0);
  const auto times = sample_completion_times(workers, loads, rng);
  std::vector<std::size_t> order;
  order.reserve(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (loads[i] > 0) {
      order.push_back(i);
    }
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return times[a] < times[b];
  });

  std::vector<bool> covered(num_examples, false);
  std::size_t num_covered = 0;
  CoverageOutcome outcome;
  for (std::size_t i : order) {
    ++outcome.workers_heard;
    outcome.time = times[i];
    // Worker i's placement: loads[i] distinct uniform examples (G0 of the
    // Theorem 2 proof, drawn independently per run).
    for (std::size_t j :
         rng.sample_without_replacement(num_examples,
                                        std::min(loads[i], num_examples))) {
      if (!covered[j]) {
        covered[j] = true;
        ++num_covered;
      }
    }
    if (num_covered == num_examples) {
      outcome.covered = true;
      return outcome;
    }
  }
  outcome.covered = false;  // all deliveries exhausted without coverage
  return outcome;
}

double simulate_load_balanced(std::span<const WorkerProfile> workers,
                              std::span<const std::size_t> loads,
                              stats::Rng& rng) {
  COUPON_ASSERT(workers.size() == loads.size());
  const auto times = sample_completion_times(workers, loads, rng);
  double worst = 0.0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    if (loads[i] > 0) {
      worst = std::max(worst, times[i]);
    }
  }
  return worst;
}

double theorem2_c(std::span<const WorkerProfile> workers,
                  std::size_t num_examples) {
  COUPON_ASSERT(!workers.empty() && num_examples > 1);
  double a = 0.0;
  double mu = kInf;
  for (const auto& w : workers) {
    a = std::max(a, w.shift);
    mu = std::min(mu, w.straggle);
  }
  const double hn = theory::harmonic(workers.size());
  return 2.0 + std::log(a + hn / mu) /
                   std::log(static_cast<double>(num_examples));
}

}  // namespace coupon::core::hetero
