#pragma once

/// \file cyclic_repetition.hpp
/// The cyclic repetition (CR) gradient-coding scheme of Tandon et al.
/// ("Gradient Coding", NIPS ML Systems 2016) — the paper's main coded
/// baseline.
///
/// With m = n units and load r, the scheme tolerates any s = r - 1
/// stragglers in the worst case: the master can decode from *any* n - s
/// workers, giving recovery threshold K = n - r + 1 (Eq. 7). Worker i
/// holds the r cyclically consecutive units {i, i+1, ..., i+r-1 mod n}
/// and ships one linear combination of their partial gradients with
/// coefficients from row i of a coding matrix B.
///
/// Construction (Tandon et al., Algorithm 2): draw H in R^{s x n} with
/// i.i.d. N(0,1) entries, then overwrite the last column so every row of
/// H sums to zero (hence H * 1 = 0). Row i of B is the unique vector
/// supported on the cyclic window with leading coefficient 1 lying in
/// null(H) — found by an s x s linear solve. Because the rows of B span
/// null(H) generically and 1 is in null(H), every (n-s)-subset of rows
/// can express the all-ones vector: the decoder solves B_W^T a = 1 by
/// least squares and outputs sum_w a_w z_w.

#include "core/scheme.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"

namespace coupon::core {

/// Scratch reused by `decoding_coefficients_into` so the per-iteration CR
/// decode performs zero allocations once warm. `coeffs` holds the result.
struct CrDecodeWorkspace {
  linalg::Matrix bwt;
  std::vector<double> ones;
  std::vector<double> coeffs;
  linalg::LstsqWorkspace lstsq;
};

/// Cyclic-repetition gradient coding (requires m == n).
class CyclicRepetitionScheme final : public Scheme {
 public:
  /// Builds the coding matrix, redrawing H (at most a handful of times;
  /// failure has probability zero) until the construction validates.
  /// Requires 1 <= load <= num_workers; num_units is forced to equal
  /// num_workers (group into super-examples otherwise; footnote 1).
  CyclicRepetitionScheme(std::size_t num_workers, std::size_t load,
                         stats::Rng& rng);

  std::string_view registry_name() const override { return "cr"; }
  std::string_view name() const override { return "cyclic repetition"; }

  comm::Message encode(std::size_t worker, const UnitGradientSource& source,
                       std::span<const double> w) const override;
  void encode_into(std::size_t worker, const UnitGradientSource& source,
                   std::span<const double> w,
                   comm::Message& out) const override;
  double message_units(std::size_t) const override { return 1.0; }
  std::vector<std::int64_t> message_meta(std::size_t worker) const override {
    return {static_cast<std::int64_t>(worker)};
  }
  std::unique_ptr<Collector> make_collector() const override;

  /// Eq. (7): K = m - r + 1 = n - s.
  std::optional<double> expected_recovery_threshold() const override {
    return static_cast<double>(num_workers() - stragglers_tolerated());
  }

  /// s = r - 1.
  std::size_t stragglers_tolerated() const { return load_ - 1; }

  /// Exact wait quota: the collector counts distinct workers up to
  /// n - s, so no shorter arrival prefix can be ready.
  std::size_t min_arrivals_hint() const override {
    return num_workers() - stragglers_tolerated();
  }

  /// The n x n coding matrix B (row i = worker i's combination).
  const linalg::Matrix& coding_matrix() const { return b_; }

  /// Solves a^T B_W = 1^T for the given worker subset (any set of at
  /// least n - s distinct workers). Returns nullopt when the subset is
  /// too small or the solve is numerically rank-deficient.
  std::optional<std::vector<double>> decoding_coefficients(
      std::span<const std::size_t> workers) const;

  /// Workspace-reusing variant: writes the |W| coefficients into
  /// `ws.coeffs` (bits identical to `decoding_coefficients`). Returns
  /// false when the subset is too small or the solve is rank deficient.
  bool decoding_coefficients_into(std::span<const std::size_t> workers,
                                  CrDecodeWorkspace& ws) const;

 private:
  std::size_t load_;
  linalg::Matrix b_;
};

}  // namespace coupon::core
