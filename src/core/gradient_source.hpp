#pragma once

/// \file gradient_source.hpp
/// Abstraction over "the thing a scheme computes gradients of".
///
/// The schemes operate on `m` *units*. A unit is either a single training
/// example, or — as in the paper's EC2 experiments, where n = 50 workers
/// process m = 50 *data batches* of 100 points each — a "super example"
/// (footnote 1 of the paper): a fixed group of underlying examples whose
/// partial gradients are always summed together. `UnitGradientSource`
/// hides that distinction from the schemes.

#include <span>

#include "data/batching.hpp"
#include "data/dataset.hpp"

namespace coupon::core {

/// Supplies the sum of partial gradients of one unit at a query point.
class UnitGradientSource {
 public:
  virtual ~UnitGradientSource() = default;

  /// Number of units (the scheme-level "m").
  virtual std::size_t num_units() const = 0;

  /// Gradient dimension p.
  virtual std::size_t dim() const = 0;

  /// Total number of underlying training examples (the divisor of the
  /// final mean gradient).
  virtual std::size_t num_examples() const = 0;

  /// out = sum of partial gradients of all examples in `unit`, evaluated
  /// at `w`. `out.size()` must equal dim(). Overwrites `out`.
  virtual void unit_gradient(std::size_t unit, std::span<const double> w,
                             std::span<double> out) const = 0;

  /// out += unit gradient (used by workers that sum several units).
  virtual void accumulate_unit_gradient(std::size_t unit,
                                        std::span<const double> w,
                                        std::span<double> out) const = 0;

  /// out += sum of unit gradients of `units`, in order. Exactly
  /// equivalent to calling `accumulate_unit_gradient` once per unit (the
  /// default does just that), but sources that know their units' example
  /// indices can fold the whole list into one example-level pass —
  /// encoders that sum many units per message (bcc batches, fr blocks)
  /// call this once per message, which measurably cuts per-unit
  /// dispatch overhead on the training path (DESIGN.md §12). Overrides
  /// must preserve the example visitation order bit-for-bit.
  virtual void accumulate_units_gradient(std::span<const std::size_t> units,
                                         std::span<const double> w,
                                         std::span<double> out) const {
    for (const std::size_t unit : units) {
      accumulate_unit_gradient(unit, w, out);
    }
  }

  /// Returns a read-only view of the unit gradient at `w`. The default
  /// computes into `scratch` (size dim()) and returns it; caching sources
  /// return a pointer into their own storage without touching `scratch`.
  /// The view is valid until the next call on this source with the same
  /// `scratch`, or until the cache is invalidated. Lets encoders axpy
  /// straight from cached slabs without a copy.
  virtual std::span<const double> unit_gradient_view(
      std::size_t unit, std::span<const double> w,
      std::span<double> scratch) const {
    unit_gradient(unit, w, scratch);
    return scratch;
  }
};

/// Units are single examples: unit j == example j.
class PerExampleSource final : public UnitGradientSource {
 public:
  explicit PerExampleSource(const data::Dataset& dataset)
      : dataset_(dataset) {}

  std::size_t num_units() const override { return dataset_.num_examples(); }
  std::size_t dim() const override { return dataset_.num_features(); }
  std::size_t num_examples() const override {
    return dataset_.num_examples();
  }
  void unit_gradient(std::size_t unit, std::span<const double> w,
                     std::span<double> out) const override;
  void accumulate_unit_gradient(std::size_t unit, std::span<const double> w,
                                std::span<double> out) const override;
  void accumulate_units_gradient(std::span<const std::size_t> units,
                                 std::span<const double> w,
                                 std::span<double> out) const override;

 private:
  const data::Dataset& dataset_;
};

/// Units are single examples under the squared-error loss
/// (opt/least_squares.hpp) instead of the logistic loss — demonstrates
/// that the scheme layer is loss-agnostic.
class LeastSquaresExampleSource final : public UnitGradientSource {
 public:
  explicit LeastSquaresExampleSource(const data::Dataset& dataset)
      : dataset_(dataset) {}

  std::size_t num_units() const override { return dataset_.num_examples(); }
  std::size_t dim() const override { return dataset_.num_features(); }
  std::size_t num_examples() const override {
    return dataset_.num_examples();
  }
  void unit_gradient(std::size_t unit, std::span<const double> w,
                     std::span<double> out) const override;
  void accumulate_unit_gradient(std::size_t unit, std::span<const double> w,
                                std::span<double> out) const override;
  void accumulate_units_gradient(std::span<const std::size_t> units,
                                 std::span<const double> w,
                                 std::span<double> out) const override;

 private:
  const data::Dataset& dataset_;
};

/// Units are batches of a BatchPartition ("super examples"). The last
/// batch may hold fewer real examples; the paper's zero-padding is a
/// no-op on gradient sums, so it needs no special handling here.
class GroupedBatchSource final : public UnitGradientSource {
 public:
  GroupedBatchSource(const data::Dataset& dataset,
                     const data::BatchPartition& partition)
      : dataset_(dataset), partition_(partition) {}

  std::size_t num_units() const override { return partition_.num_batches(); }
  std::size_t dim() const override { return dataset_.num_features(); }
  std::size_t num_examples() const override {
    return dataset_.num_examples();
  }
  void unit_gradient(std::size_t unit, std::span<const double> w,
                     std::span<double> out) const override;
  void accumulate_unit_gradient(std::size_t unit, std::span<const double> w,
                                std::span<double> out) const override;
  void accumulate_units_gradient(std::span<const std::size_t> units,
                                 std::span<const double> w,
                                 std::span<double> out) const override;

 private:
  const data::Dataset& dataset_;
  const data::BatchPartition& partition_;
};

}  // namespace coupon::core
