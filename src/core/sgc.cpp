#include "core/sgc.hpp"

#include <algorithm>
#include <numeric>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::core {

namespace {

/// Slot-per-worker collector that stops at the wait quota k* = n - r + 1
/// and decodes the scaled partial aggregate (n / (r k)) * sum of kept
/// messages, summed in worker order so the decode is independent of
/// arrival order for a given arrival *set*.
class SgcCollector final : public Collector {
 public:
  SgcCollector(std::size_t num_workers, std::size_t num_units,
               std::size_t load, std::size_t wait_quota)
      : num_units_(num_units),
        load_(load),
        wait_quota_(wait_quota),
        slots_(num_workers),
        heard_(num_workers, false) {}

  bool offer(std::size_t worker, std::span<const std::int64_t> meta,
             std::span<const double> payload) override {
    (void)meta;
    if (ready_) {
      return false;
    }
    COUPON_ASSERT(worker < heard_.size());
    note_offer(1.0);
    if (heard_[worker]) {
      return false;  // duplicate delivery of the same worker's message
    }
    heard_[worker] = true;
    ++count_;
    if (!payload.empty()) {
      slots_[worker].assign(payload.begin(), payload.end());
    }
    ready_ = count_ >= wait_quota_;
    return true;
  }

  bool ready() const override { return ready_; }

  void decode_sum(std::span<double> out) const override {
    COUPON_ASSERT_MSG(ready_, "decode before the wait quota was met");
    scaled_aggregate(out);
  }

  bool supports_partial_decode() const override { return true; }

  /// The same unbiased estimator as decode_sum, valid at any k >= 1:
  /// reports all m units as covered because the estimate targets the FULL
  /// gradient sum (the engine's covered/m rescale must be the identity).
  std::size_t decode_partial_sum(std::span<double> out) const override {
    if (count_ == 0) {
      linalg::fill(out, 0.0);
      return 0;
    }
    scaled_aggregate(out);
    return num_units_;
  }

 private:
  void scaled_aggregate(std::span<double> out) const {
    COUPON_ASSERT(count_ >= 1);
    linalg::fill(out, 0.0);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!heard_[i]) {
        continue;
      }
      COUPON_ASSERT_MSG(!slots_[i].empty(), "decode without payloads");
      COUPON_ASSERT(slots_[i].size() == out.size());
      linalg::axpy(1.0, slots_[i], out);
    }
    const double scale =
        static_cast<double>(slots_.size()) /
        (static_cast<double>(load_) * static_cast<double>(count_));
    linalg::scal(scale, out);
  }

  void do_reset() override {
    for (auto& slot : slots_) {
      slot.clear();
    }
    std::fill(heard_.begin(), heard_.end(), false);
    count_ = 0;
    ready_ = false;
  }

  std::size_t num_units_;
  std::size_t load_;
  std::size_t wait_quota_;
  std::vector<std::vector<double>> slots_;
  std::vector<bool> heard_;
  std::size_t count_ = 0;
  bool ready_ = false;
};

/// Balanced random placement: r rounds, each a uniform random bijection
/// between units and workers, repaired so no worker receives the same
/// unit twice. Gives every unit exactly r replicas and every worker
/// exactly r units (pair-wise balanced redundancy).
data::Placement balanced_random(std::size_t n, std::size_t load,
                                stats::Rng& rng) {
  data::Placement placement(n, n);
  if (load == n) {
    // Full replication: the only balanced placement is "everyone holds
    // everything" — nothing random left to draw.
    for (std::size_t w = 0; w < n; ++w) {
      auto& g = placement.worker(w);
      g.resize(n);
      std::iota(g.begin(), g.end(), std::size_t{0});
    }
    return placement;
  }
  // held[w] tracks worker w's unit set for O(1) duplicate checks.
  std::vector<std::vector<bool>> held(n, std::vector<bool>(n, false));
  std::vector<std::size_t> perm(n);
  for (std::size_t round = 0; round < load; ++round) {
    // Repair within-worker duplicates by swapping assignments between
    // positions; a swap leaves both positions duplicate-free, so earlier
    // positions stay valid. When no swap partner exists (possible for
    // load close to n), redraw the whole round — for the loads this
    // library runs, a handful of redraws suffices overwhelmingly.
    bool round_ok = false;
    for (std::size_t attempt = 0; attempt < 64 && !round_ok; ++attempt) {
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      rng.shuffle(perm);
      round_ok = true;
      for (std::size_t w = 0; w < n && round_ok; ++w) {
        if (!held[w][perm[w]]) {
          continue;
        }
        bool swapped = false;
        for (std::size_t step = 1; step < n && !swapped; ++step) {
          const std::size_t t = (w + step) % n;
          if (!held[w][perm[t]] && !held[t][perm[w]]) {
            std::swap(perm[w], perm[t]);
            swapped = true;
          }
        }
        round_ok = swapped;
      }
    }
    COUPON_ASSERT_MSG(round_ok, "sgc placement repair failed to converge");
    for (std::size_t w = 0; w < n; ++w) {
      held[w][perm[w]] = true;
      placement.worker(w).push_back(perm[w]);
    }
  }
  for (std::size_t w = 0; w < n; ++w) {
    std::sort(placement.worker(w).begin(), placement.worker(w).end());
  }
  return placement;
}

}  // namespace

SgcScheme::SgcScheme(std::size_t num_workers, std::size_t load,
                     stats::Rng& rng)
    : Scheme(balanced_random(num_workers, load, rng)), load_(load) {
  COUPON_ASSERT_MSG(num_workers >= 1, "need at least one worker");
  COUPON_ASSERT_MSG(load >= 1 && load <= num_workers,
                    "load r must be in [1, n]");
}

comm::Message SgcScheme::encode(std::size_t worker,
                                const UnitGradientSource& source,
                                std::span<const double> w) const {
  comm::Message msg;
  msg.tag = comm::kTagGradient;
  encode_into(worker, source, w, msg);
  return msg;
}

void SgcScheme::encode_into(std::size_t worker,
                            const UnitGradientSource& source,
                            std::span<const double> w,
                            comm::Message& out) const {
  COUPON_ASSERT(worker < num_workers());
  COUPON_ASSERT(source.num_units() == num_units());
  out.meta.assign(1, static_cast<std::int64_t>(worker));
  out.payload.assign(source.dim(), 0.0);
  source.accumulate_units_gradient(placement_.worker(worker), w,
                                   out.payload);
}

std::vector<std::int64_t> SgcScheme::message_meta(std::size_t worker) const {
  COUPON_ASSERT(worker < num_workers());
  return {static_cast<std::int64_t>(worker)};
}

std::unique_ptr<Collector> SgcScheme::make_collector() const {
  return std::make_unique<SgcCollector>(num_workers(), num_units(), load_,
                                        num_workers() - load_ + 1);
}

}  // namespace coupon::core
