#pragma once

/// \file bcc.hpp
/// The paper's primary contribution: Batched Coupon's Collector (Sec. III).
///
/// Placement: the m units are partitioned into B = ceil(m/r) batches of r
/// units; every worker *independently* picks one batch uniformly at random
/// (decentralized, coordination-free). Encoding (Eq. 12): the worker sums
/// the partial gradients of its batch into a single gradient-sized
/// message tagged with the batch index. Collection: the master keeps the
/// first message per distinct batch and is ready when all B batches are
/// covered — the coupon-collector process, giving the expected recovery
/// threshold K_BCC = B * H_B of Theorem 1.

#include "core/scheme.hpp"
#include "data/batching.hpp"

namespace coupon::core {

/// Batched Coupon's Collector scheme.
class BccScheme final : public Scheme {
 public:
  /// Draws every worker's batch choice from `rng`. If
  /// `seed_first_batches` is set (library extension, off per the paper),
  /// workers 0..B-1 deterministically take batches 0..B-1 and only the
  /// remaining workers sample randomly, guaranteeing per-iteration
  /// coverage at the cost of the first B workers' placement no longer
  /// being i.i.d.
  BccScheme(std::size_t num_workers, std::size_t num_units, std::size_t load,
            bool seed_first_batches, stats::Rng& rng);

  std::string_view registry_name() const override { return "bcc"; }
  std::string_view name() const override { return "BCC"; }

  comm::Message encode(std::size_t worker, const UnitGradientSource& source,
                       std::span<const double> w) const override;
  void encode_into(std::size_t worker, const UnitGradientSource& source,
                   std::span<const double> w,
                   comm::Message& out) const override;
  double message_units(std::size_t) const override { return 1.0; }
  std::vector<std::int64_t> message_meta(std::size_t worker) const override;
  std::unique_ptr<Collector> make_collector() const override;

  /// All workers that chose the same batch send bitwise-identical
  /// messages: same meta {batch}, and the same payload because both sum
  /// the batch's units in the partition's ascending order.
  std::optional<std::size_t> encode_group(std::size_t worker) const override {
    return batch_of_worker(worker);
  }
  std::size_t num_encode_groups() const override { return num_batches(); }

  /// Eq. (2): ceil(m/r) * H_{ceil(m/r)}.
  std::optional<double> expected_recovery_threshold() const override;

  /// Coverage needs at least one message per batch: B = ceil(m/r).
  std::size_t min_arrivals_hint() const override { return num_batches(); }

  /// Number of batches B = ceil(m/r).
  std::size_t num_batches() const { return partition_.num_batches(); }

  /// The batch chosen by `worker` (sigma_i in the paper).
  std::size_t batch_of_worker(std::size_t worker) const;

  /// Probability that the n workers' random choices miss at least one
  /// batch (coverage failure; union bound is tight for small B):
  /// exactly computed by inclusion-exclusion.
  static double coverage_failure_probability(std::size_t num_workers,
                                             std::size_t num_batches);

 private:
  data::BatchPartition partition_;
  std::vector<std::size_t> batch_choice_;  // per worker
};

}  // namespace coupon::core
