#include "core/cached_gradient_source.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace coupon::core {

CachedGradientSource::CachedGradientSource(const UnitGradientSource& inner)
    : inner_(inner),
      slab_(inner.num_units() * inner.dim(), 0.0),
      stamp_(inner.num_units(), 0) {}

std::span<const double> CachedGradientSource::ensure_cached(
    std::size_t unit, std::span<const double> w) const {
  COUPON_ASSERT(unit < stamp_.size());
  const std::size_t p = inner_.dim();
  const std::span<double> row{slab_.data() + unit * p, p};
  if (stamp_[unit] != epoch_) {
    inner_.unit_gradient(unit, w, row);
    stamp_[unit] = epoch_;
  }
  return row;
}

void CachedGradientSource::unit_gradient(std::size_t unit,
                                         std::span<const double> w,
                                         std::span<double> out) const {
  const std::span<const double> row = ensure_cached(unit, w);
  COUPON_ASSERT(out.size() == row.size());
  std::copy(row.begin(), row.end(), out.begin());
}

void CachedGradientSource::accumulate_unit_gradient(std::size_t unit,
                                                    std::span<const double> w,
                                                    std::span<double> out) const {
  // Deliberately uncached: accumulate-style encoders rely on the inner
  // source's example-level summation order (see file comment).
  inner_.accumulate_unit_gradient(unit, w, out);
}

std::span<const double> CachedGradientSource::unit_gradient_view(
    std::size_t unit, std::span<const double> w,
    std::span<double> /*scratch*/) const {
  return ensure_cached(unit, w);
}

}  // namespace coupon::core
