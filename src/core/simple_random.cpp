#include "core/simple_random.hpp"

#include <algorithm>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::core {

namespace {

/// Coverage collector over individual units. The first received gradient
/// for each unit is slotted by unit index and the decode sums slots in
/// unit order — deterministic under any arrival order (all copies of a
/// unit's gradient are bitwise identical anyway).
class SimpleRandomCollector final : public Collector {
 public:
  explicit SimpleRandomCollector(std::size_t num_units)
      : slots_(num_units), covered_(num_units, false) {}

  bool offer(std::size_t worker, std::span<const std::int64_t> meta,
             std::span<const double> payload) override {
    (void)worker;
    if (ready_) {
      return false;
    }
    // Every per-unit gradient the worker ships counts toward L, whether
    // or not the master already has that unit (Definition 3 counts
    // received message size, not kept size).
    note_offer(static_cast<double>(meta.size()));
    const bool has_payload = !payload.empty();
    std::size_t dim = 0;
    if (has_payload) {
      COUPON_ASSERT_MSG(payload.size() % meta.size() == 0,
                        "payload not a whole number of gradients");
      dim = payload.size() / meta.size();
    }
    bool kept_any = false;
    for (std::size_t k = 0; k < meta.size(); ++k) {
      const auto unit = static_cast<std::size_t>(meta[k]);
      COUPON_ASSERT(unit < covered_.size());
      if (covered_[unit]) {
        continue;  // duplicate partial gradient: discard
      }
      covered_[unit] = true;
      ++num_covered_;
      kept_any = true;
      if (has_payload) {
        const auto slice = payload.subspan(k * dim, dim);
        slots_[unit].assign(slice.begin(), slice.end());
      }
    }
    ready_ = num_covered_ == covered_.size();
    return kept_any;
  }

  bool ready() const override { return ready_; }

  void decode_sum(std::span<double> out) const override {
    COUPON_ASSERT_MSG(ready_, "decode before coverage");
    linalg::fill(out, 0.0);
    for (const auto& slot : slots_) {
      COUPON_ASSERT_MSG(!slot.empty(), "decode without payloads");
      COUPON_ASSERT(slot.size() == out.size());
      linalg::axpy(1.0, slot, out);
    }
  }

  bool supports_partial_decode() const override { return true; }

  std::size_t decode_partial_sum(std::span<double> out) const override {
    linalg::fill(out, 0.0);
    std::size_t units = 0;
    for (std::size_t u = 0; u < slots_.size(); ++u) {
      if (!covered_[u]) {
        continue;
      }
      COUPON_ASSERT_MSG(!slots_[u].empty(), "partial decode without payloads");
      linalg::axpy(1.0, slots_[u], out);
      ++units;
    }
    return units;
  }

 private:
  void do_reset() override {
    for (auto& slot : slots_) {
      slot.clear();
    }
    std::fill(covered_.begin(), covered_.end(), false);
    num_covered_ = 0;
    ready_ = false;
  }

  std::vector<std::vector<double>> slots_;
  std::vector<bool> covered_;
  std::size_t num_covered_ = 0;
  bool ready_ = false;
};

data::Placement draw_placement(std::size_t num_workers, std::size_t num_units,
                               std::size_t load, stats::Rng& rng) {
  data::Placement placement(num_workers, num_units);
  for (std::size_t i = 0; i < num_workers; ++i) {
    placement.worker(i) = rng.sample_without_replacement(num_units, load);
  }
  return placement;
}

}  // namespace

SimpleRandomScheme::SimpleRandomScheme(std::size_t num_workers,
                                       std::size_t num_units,
                                       std::size_t load, stats::Rng& rng)
    : Scheme(draw_placement(num_workers, num_units, load, rng)),
      load_(load) {
  COUPON_ASSERT_MSG(load >= 1 && load <= num_units,
                    "load r must be in [1, m]");
}

comm::Message SimpleRandomScheme::encode(std::size_t worker,
                                         const UnitGradientSource& source,
                                         std::span<const double> w) const {
  comm::Message msg;
  msg.tag = comm::kTagGradient;
  encode_into(worker, source, w, msg);
  return msg;
}

void SimpleRandomScheme::encode_into(std::size_t worker,
                                     const UnitGradientSource& source,
                                     std::span<const double> w,
                                     comm::Message& out) const {
  COUPON_ASSERT(worker < num_workers());
  COUPON_ASSERT(source.num_units() == num_units());
  const auto& units = placement_.worker(worker);
  const std::size_t dim = source.dim();
  out.meta.clear();
  out.meta.reserve(units.size());
  out.payload.assign(units.size() * dim, 0.0);
  for (std::size_t k = 0; k < units.size(); ++k) {
    out.meta.push_back(static_cast<std::int64_t>(units[k]));
    source.unit_gradient(units[k], w,
                         std::span<double>(out.payload).subspan(k * dim, dim));
  }
}

std::vector<std::int64_t> SimpleRandomScheme::message_meta(
    std::size_t worker) const {
  COUPON_ASSERT(worker < num_workers());
  const auto& units = placement_.worker(worker);
  std::vector<std::int64_t> meta;
  meta.reserve(units.size());
  for (std::size_t u : units) {
    meta.push_back(static_cast<std::int64_t>(u));
  }
  return meta;
}

std::unique_ptr<Collector> SimpleRandomScheme::make_collector() const {
  return std::make_unique<SimpleRandomCollector>(num_units());
}

}  // namespace coupon::core
