#pragma once

/// \file theory.hpp
/// Closed-form performance characterizations from the paper, plus
/// Monte-Carlo estimators for the quantities without closed forms.
///
/// These functions generate the analytic curves of Fig. 2, the bounds of
/// Theorem 1 and Lemma 2, and serve as oracles for the property tests
/// (empirical recovery thresholds must match the formulas).

#include <cstddef>

#include "stats/rng.hpp"

namespace coupon::core::theory {

/// H_t = sum_{k=1}^{t} 1/k (H_0 = 0). Exact summation.
double harmonic(std::size_t t);

/// Asymptotic H_t ~ ln t + gamma + 1/(2t); used in Remark 1 comparisons.
double harmonic_approx(double t);

/// Number of BCC batches B = ceil(m/r).
std::size_t bcc_batches(std::size_t m, std::size_t r);

/// Eq. (2): K_BCC(r) = ceil(m/r) * H_{ceil(m/r)}.
double k_bcc(std::size_t m, std::size_t r);

/// Theorem 1 lower bound: K*(r) >= m/r (also the L*(r) lower bound).
double k_lower_bound(std::size_t m, std::size_t r);

/// Eq. (7): K_CR = K_RS = K_CM = m - r + 1 (worst-case coded schemes).
double k_cyclic_repetition(std::size_t m, std::size_t r);

/// Eq. (5): K_random ≈ (m/r) log m for the simple randomized scheme.
double k_simple_random_approx(std::size_t m, std::size_t r);

/// Eq. (6): L_random ≈ m log m.
double l_simple_random_approx(std::size_t m);

/// L_BCC = K_BCC (each surviving worker ships one gradient unit, Eq. 14).
double l_bcc(std::size_t m, std::size_t r);

/// Classic coupon collector: expected draws to collect all `types`
/// coupons = types * H_types.
double coupon_expected_draws(std::size_t types);

/// Variance of the coupon-collector draw count M for `types` coupons:
/// M is a sum of independent geometrics with success probabilities
/// p_k = (N-k+1)/N, so Var[M] = sum_k (1-p_k)/p_k^2. Quantifies the
/// iteration-to-iteration spread of BCC's realized recovery threshold.
double coupon_draws_variance(std::size_t types);

/// Lemma 2 (Thm 1.23 of Auger & Doerr): with M the number of coupons
/// drawn until all m types are seen, Pr(M >= (1+eps) m log m) <= m^{-eps}.
double lemma2_tail_bound(std::size_t m, double eps);

/// Expected max of n i.i.d. shifted exponentials with shift a*load and
/// rate mu/load: a*load + (load/mu) * H_n. Appears as the waiting time of
/// wait-for-all schemes and in step (c) of the Theorem 2 proof.
///
/// Applicability across the simulator's latency models
/// (simulate/latency_model.hpp): the paper's analysis splits into
/// (i) combinatorial predictions about the recovery threshold K and
/// communication load L (Theorem 1, Eqs. 2/5/6/7) and (ii) runtime
/// predictions built on the Eq. 15 shifted-exponential law (this
/// function, Theorem 2, the Tables I/II totals).
///
///   * (i) holds under EVERY latency model: K and L depend only on the
///     placement and on which workers respond first, never on the law of
///     the compute times — the scenario sweeps across models confirm the
///     BCC < CR < uncoded threshold ordering everywhere
///     (bench/ablation_latency_models).
///   * (ii) is per-model:
///       - shifted_exp (and the hetero per-worker variant): exact — this
///         H_n formula is the wait-for-all time.
///       - bimodal ("bursty"): compute time is a mixture of two shifted
///         exponentials; the H_n logarithmic max-growth survives with an
///         inflated effective scale, so Eq. 15 curves are optimistic but
///         shape-correct.
///       - weibull with shape k < 1: stretched-exponential tail; E[max]
///         grows like (log n)^{1/k}, faster than H_n ~ log n. Eq. 15
///         underestimates the straggler penalty.
///       - pareto ("heavy_tail"): power-law tail; E[max] grows like
///         n^{1/alpha} (see expected_max_pareto) and for alpha <= 2 the
///         variance is infinite — the H_n predictions fail outright, and
///         with them the paper's "total time proportional to K" rule of
///         thumb, since one straggler can dominate an entire run.
///       - markov: marginally shifted-exponential per iteration, but
///         correlated across iterations; per-iteration expectations match
///         Eq. 15 while run totals concentrate much more slowly (the
///         independence assumption behind summing Eq. 15 across
///         iterations is violated).
///       - trace: no law at all; only the combinatorial predictions (i)
///         apply.
double expected_max_shifted_exponential(double a, double mu, double load,
                                        std::size_t n);

/// Expected k-th order statistic (1 <= k <= n) of n i.i.d. shifted
/// exponentials with shift a*load and rate mu/load. By the Rényi
/// representation the gaps between consecutive order statistics are
/// independent Exp((n-i) * mu/load), so
///   E[X_(k)] = a*load + (load/mu) * (H_n - H_{n-k}).
/// `expected_max_shifted_exponential` is the k = n special case, and the
/// analytic oracle (src/analytic/) reproduces this formula numerically —
/// the core_theory tests pin the two against each other.
double expected_kth_order_statistic_shifted_exp(double a, double mu,
                                                double load, std::size_t n,
                                                std::size_t k);

// --- Gradient-coding scheme families (ROADMAP item 2) ---------------------

/// Exact gradient coding (Tandon et al. 1612.03301), cyclic placement:
/// deterministic recovery threshold K = n - r + 1 — identical to Eq. 7's
/// coded bound, but achieved with bitwise-exact systematic decode.
double k_gc_cyclic(std::size_t n, std::size_t r);

/// Stochastic gradient coding (Bitar et al. 1905.05383): the master's
/// wait quota k* = n - r + 1. Not a recovery threshold in the exact
/// sense — decode is an unbiased estimate from whichever k* workers
/// arrive first.
double k_sgc(std::size_t n, std::size_t r);

/// Nested gradient codes (2212.08580): worst-case recovery threshold
/// K = n - r + 1 (the widest ladder level always decodes there); lighter
/// realized straggling decodes at a narrower level without waiting less.
double k_gc_nested(std::size_t n, std::size_t r);

/// Number of ladder levels L = d(r) (divisor count) in the nested code —
/// also the per-worker message size in gradient units.
std::size_t gc_nested_levels(std::size_t r);

/// SGC decode scale n / (r k) applied to the sum of the first k worker
/// messages; with each unit replicated r times, E[scaled sum] equals the
/// true gradient sum under exchangeable arrivals.
double sgc_decode_scale(std::size_t n, std::size_t r, std::size_t k);

/// Finite-population sampling factor of the SGC estimator's
/// per-coordinate variance when k of n messages arrive uniformly:
///   Var[ghat_j] = factor * Var_w(msg_w[j])
///   factor = (n/(rk))^2 * k (n-k) / (n-1)        (n >= 2, 1 <= k <= n)
/// where Var_w is the *population* variance over the n per-worker message
/// sums. Zero at k = n: the full aggregate is deterministic.
double sgc_estimator_variance_factor(std::size_t n, std::size_t r,
                                     std::size_t k);

/// Expected max of n i.i.d. Pareto(scale, alpha) draws:
///   scale * Gamma(n+1) * Gamma(1 - 1/alpha) / Gamma(n+1 - 1/alpha)
///   ~ scale * Gamma(1 - 1/alpha) * n^{1/alpha},
/// requires alpha > 1 (diverges otherwise). The heavy-tail counterpart of
/// `expected_max_shifted_exponential`: polynomial instead of logarithmic
/// growth in n, which is why Eq. 15's waiting-time predictions collapse
/// under the heavy_tail scenario.
double expected_max_pareto(double scale, double alpha, std::size_t n);

// --- Monte-Carlo estimators -----------------------------------------------

/// Mean draws (with replacement, one coupon per draw) to collect all
/// `types` coupons, over `trials` runs.
double mc_coupon_draws(std::size_t types, std::size_t trials,
                       stats::Rng& rng);

/// Mean number of workers heard until all m units are covered when each
/// worker holds r uniformly random distinct units (simple randomized
/// scheme; workers drawn i.i.d., i.e. with replacement across workers).
double mc_simple_random_threshold(std::size_t m, std::size_t r,
                                  std::size_t trials, stats::Rng& rng);

/// Mean number of workers heard (drawn uniformly *without* replacement
/// from the n workers) until all n/r FR blocks are covered.
double mc_fractional_repetition_threshold(std::size_t n, std::size_t r,
                                          std::size_t trials,
                                          stats::Rng& rng);

/// One draw of the number of coupons needed to collect all `types`
/// (used by the Lemma 2 tail bench).
std::size_t coupon_draws_once(std::size_t types, stats::Rng& rng);

}  // namespace coupon::core::theory
