#include "core/uncoded.hpp"

#include <algorithm>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::core {

namespace {

/// Wait-for-all collector. Payloads are slotted per worker and summed in
/// worker order at decode, making the decode independent of arrival order.
class UncodedCollector final : public Collector {
 public:
  /// `worker_units[i]` = |G_i|, for partial-coverage accounting.
  explicit UncodedCollector(std::vector<std::size_t> worker_units)
      : worker_units_(std::move(worker_units)),
        slots_(worker_units_.size()),
        heard_(worker_units_.size(), false) {}

  bool offer(std::size_t worker, std::span<const std::int64_t> meta,
             std::span<const double> payload) override {
    (void)meta;
    if (ready_) {
      return false;
    }
    COUPON_ASSERT(worker < heard_.size());
    note_offer(1.0);
    if (heard_[worker]) {
      return false;  // duplicate delivery of the same worker's message
    }
    heard_[worker] = true;
    ++count_;
    if (!payload.empty()) {
      slots_[worker].assign(payload.begin(), payload.end());
    }
    ready_ = count_ == heard_.size();
    return true;
  }

  bool ready() const override { return ready_; }

  void decode_sum(std::span<double> out) const override {
    COUPON_ASSERT_MSG(ready_, "decode before all workers reported");
    linalg::fill(out, 0.0);
    for (const auto& slot : slots_) {
      COUPON_ASSERT_MSG(!slot.empty(), "decode without payloads");
      COUPON_ASSERT(slot.size() == out.size());
      linalg::axpy(1.0, slot, out);
    }
  }

  bool supports_partial_decode() const override { return true; }

  std::size_t decode_partial_sum(std::span<double> out) const override {
    linalg::fill(out, 0.0);
    std::size_t units = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!heard_[i]) {
        continue;
      }
      COUPON_ASSERT_MSG(!slots_[i].empty(), "partial decode without payloads");
      linalg::axpy(1.0, slots_[i], out);
      units += worker_units_[i];
    }
    return units;
  }

 private:
  void do_reset() override {
    for (auto& slot : slots_) {
      slot.clear();
    }
    std::fill(heard_.begin(), heard_.end(), false);
    count_ = 0;
    ready_ = false;
  }

  std::vector<std::size_t> worker_units_;
  std::vector<std::vector<double>> slots_;
  std::vector<bool> heard_;
  std::size_t count_ = 0;
  bool ready_ = false;
};

data::Placement even_split(std::size_t num_workers, std::size_t num_units) {
  data::Placement placement(num_workers, num_units);
  const std::size_t base = num_units / num_workers;
  const std::size_t extra = num_units % num_workers;
  std::size_t next = 0;
  for (std::size_t i = 0; i < num_workers; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    auto& g = placement.worker(i);
    g.reserve(len);
    for (std::size_t k = 0; k < len; ++k) {
      g.push_back(next++);
    }
  }
  COUPON_ASSERT(next == num_units);
  return placement;
}

}  // namespace

UncodedScheme::UncodedScheme(std::size_t num_workers, std::size_t num_units)
    : Scheme(even_split(num_workers, num_units)) {
  COUPON_ASSERT_MSG(num_workers >= 1 && num_units >= num_workers,
                    "uncoded requires m >= n so every worker has work");
}

comm::Message UncodedScheme::encode(std::size_t worker,
                                    const UnitGradientSource& source,
                                    std::span<const double> w) const {
  comm::Message msg;
  msg.tag = comm::kTagGradient;
  encode_into(worker, source, w, msg);
  return msg;
}

void UncodedScheme::encode_into(std::size_t worker,
                                const UnitGradientSource& source,
                                std::span<const double> w,
                                comm::Message& out) const {
  COUPON_ASSERT(worker < num_workers());
  COUPON_ASSERT(source.num_units() == num_units());
  out.meta.assign(1, static_cast<std::int64_t>(worker));
  out.payload.assign(source.dim(), 0.0);
  source.accumulate_units_gradient(placement_.worker(worker), w,
                                   out.payload);
}

std::unique_ptr<Collector> UncodedScheme::make_collector() const {
  std::vector<std::size_t> worker_units(num_workers());
  for (std::size_t i = 0; i < num_workers(); ++i) {
    worker_units[i] = placement_.worker(i).size();
  }
  return std::make_unique<UncodedCollector>(std::move(worker_units));
}

}  // namespace coupon::core
