#include "core/gc_cyclic.hpp"

#include <algorithm>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::core {

namespace {

/// Per-unit slot collector with a distinct-worker readiness rule. The
/// first received copy of each unit is slotted by unit index; readiness
/// flips when n - s distinct workers have reported (the gradient-coding
/// recovery guarantee: any such set covers all m units under the cyclic
/// placement). Decode sums slots in unit order 0..m-1 — bitwise-equal to
/// the unit-ordered serial gradient sum regardless of arrival order.
class GcCyclicCollector final : public Collector {
 public:
  GcCyclicCollector(std::size_t num_workers, std::size_t num_units,
                    std::size_t recovery_threshold)
      : recovery_threshold_(recovery_threshold),
        seen_worker_(num_workers, false),
        slots_(num_units),
        covered_(num_units, false) {}

  bool offer(std::size_t worker, std::span<const std::int64_t> meta,
             std::span<const double> payload) override {
    if (ready_) {
      return false;
    }
    COUPON_ASSERT(worker < seen_worker_.size());
    // The full r-unit message crosses the wire whether or not the master
    // already holds some of its units (Definition 3 counts received size).
    note_offer(static_cast<double>(meta.size()));
    if (seen_worker_[worker]) {
      return false;  // duplicate delivery of the same worker's message
    }
    seen_worker_[worker] = true;
    ++distinct_workers_;
    const bool has_payload = !payload.empty();
    std::size_t dim = 0;
    if (has_payload) {
      COUPON_ASSERT_MSG(payload.size() % meta.size() == 0,
                        "payload not a whole number of gradients");
      dim = payload.size() / meta.size();
    }
    for (std::size_t k = 0; k < meta.size(); ++k) {
      const auto unit = static_cast<std::size_t>(meta[k]);
      COUPON_ASSERT(unit < covered_.size());
      if (covered_[unit]) {
        continue;  // another worker already supplied this unit's gradient
      }
      covered_[unit] = true;
      ++num_covered_;
      if (has_payload) {
        const auto slice = payload.subspan(k * dim, dim);
        slots_[unit].assign(slice.begin(), slice.end());
      }
    }
    ready_ = distinct_workers_ >= recovery_threshold_;
    // The cyclic-placement guarantee: n - s distinct windows of width
    // s + 1 always cover all m = n units.
    COUPON_ASSERT_MSG(!ready_ || num_covered_ == covered_.size(),
                      "cyclic placement failed to cover at threshold");
    return true;
  }

  bool ready() const override { return ready_; }

  void decode_sum(std::span<double> out) const override {
    COUPON_ASSERT_MSG(ready_, "decode before n - s workers reported");
    linalg::fill(out, 0.0);
    for (const auto& slot : slots_) {
      COUPON_ASSERT_MSG(!slot.empty(), "decode without payloads");
      COUPON_ASSERT(slot.size() == out.size());
      linalg::axpy(1.0, slot, out);
    }
  }

  bool supports_partial_decode() const override { return true; }

  std::size_t decode_partial_sum(std::span<double> out) const override {
    linalg::fill(out, 0.0);
    std::size_t units = 0;
    for (std::size_t u = 0; u < slots_.size(); ++u) {
      if (!covered_[u]) {
        continue;
      }
      COUPON_ASSERT_MSG(!slots_[u].empty(), "partial decode without payloads");
      linalg::axpy(1.0, slots_[u], out);
      ++units;
    }
    return units;
  }

 private:
  void do_reset() override {
    for (auto& slot : slots_) {
      slot.clear();
    }
    std::fill(seen_worker_.begin(), seen_worker_.end(), false);
    std::fill(covered_.begin(), covered_.end(), false);
    distinct_workers_ = 0;
    num_covered_ = 0;
    ready_ = false;
  }

  std::size_t recovery_threshold_;
  std::vector<bool> seen_worker_;
  std::vector<std::vector<double>> slots_;
  std::vector<bool> covered_;
  std::size_t distinct_workers_ = 0;
  std::size_t num_covered_ = 0;
  bool ready_ = false;
};

data::Placement cyclic_windows(std::size_t num_workers, std::size_t load) {
  data::Placement placement(num_workers, num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    auto& g = placement.worker(i);
    g.reserve(load);
    for (std::size_t k = 0; k < load; ++k) {
      g.push_back((i + k) % num_workers);
    }
  }
  return placement;
}

}  // namespace

GcCyclicScheme::GcCyclicScheme(std::size_t num_workers, std::size_t load)
    : Scheme(cyclic_windows(num_workers, load)), load_(load) {
  COUPON_ASSERT_MSG(num_workers >= 1, "need at least one worker");
  COUPON_ASSERT_MSG(load >= 1 && load <= num_workers,
                    "load r must be in [1, n]");
}

comm::Message GcCyclicScheme::encode(std::size_t worker,
                                     const UnitGradientSource& source,
                                     std::span<const double> w) const {
  comm::Message msg;
  msg.tag = comm::kTagGradient;
  encode_into(worker, source, w, msg);
  return msg;
}

void GcCyclicScheme::encode_into(std::size_t worker,
                                 const UnitGradientSource& source,
                                 std::span<const double> w,
                                 comm::Message& out) const {
  COUPON_ASSERT(worker < num_workers());
  COUPON_ASSERT(source.num_units() == num_units());
  const auto& units = placement_.worker(worker);
  const std::size_t dim = source.dim();
  out.meta.clear();
  out.meta.reserve(units.size());
  out.payload.assign(units.size() * dim, 0.0);
  for (std::size_t k = 0; k < units.size(); ++k) {
    out.meta.push_back(static_cast<std::int64_t>(units[k]));
    source.unit_gradient(units[k], w,
                         std::span<double>(out.payload).subspan(k * dim, dim));
  }
}

std::vector<std::int64_t> GcCyclicScheme::message_meta(
    std::size_t worker) const {
  COUPON_ASSERT(worker < num_workers());
  const auto& units = placement_.worker(worker);
  std::vector<std::int64_t> meta;
  meta.reserve(units.size());
  for (std::size_t u : units) {
    meta.push_back(static_cast<std::int64_t>(u));
  }
  return meta;
}

std::unique_ptr<Collector> GcCyclicScheme::make_collector() const {
  return std::make_unique<GcCyclicCollector>(
      num_workers(), num_units(), num_workers() - stragglers_tolerated());
}

}  // namespace coupon::core
