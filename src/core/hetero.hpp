#pragma once

/// \file hetero.hpp
/// Generalized BCC for heterogeneous clusters (Section IV of the paper).
///
/// Model: worker i, assigned r_i examples, finishes (computes all its
/// partial gradients and delivers them, each communicated separately) at
/// a shift-exponential time (Eq. 15)
///
///     Pr[T_i <= t] = 1 - exp(-(mu_i/r_i)(t - a_i r_i)),  t >= a_i r_i.
///
/// The master achieves *coverage* once the union of delivered example
/// sets is everything (Eq. 16). Theorem 2 sandwiches the optimal expected
/// coverage time between min E[T-hat(m)] and min E[T-hat(floor(c m log m))]
/// + 1, where T-hat(s) (Eq. 18) is the first time the received partial
/// gradients (with repetitions) number at least s.
///
/// The load allocation subproblem P2 — pick (r_1..r_n) minimizing
/// E[T-hat(s)] — is solved with the deadline-based allocator of
/// Reisizadeh et al. [16]: for a deadline tau, the load maximizing worker
/// i's expected delivered units  l * Pr[T_i(l) <= tau]  is l = tau/u_i*,
/// where u_i* is the unique root > a_i of  exp(mu (u - a)) = 1 + mu u;
/// binary-searching the smallest tau whose total expected delivery
/// reaches s gives an asymptotically optimal integer allocation.

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace coupon::core::hetero {

/// Worker latency profile of Eq. 15.
struct WorkerProfile {
  double shift = 0.0;     ///< a_i >= 0, seconds of deterministic work/example
  double straggle = 1.0;  ///< mu_i > 0, exponential tail parameter
};

/// Samples each worker's completion time given its load; workers with
/// load 0 never report (+infinity).
std::vector<double> sample_completion_times(
    std::span<const WorkerProfile> workers,
    std::span<const std::size_t> loads, stats::Rng& rng);

/// T-hat(s) of Eq. 18: first time the cumulative delivered load reaches
/// `s`. Returns +infinity when total load < s.
double t_hat(std::span<const double> completion_times,
             std::span<const std::size_t> loads, std::size_t s);

/// Monte-Carlo estimate of E[T-hat(s)] for a fixed allocation.
double mc_expected_t_hat(std::span<const WorkerProfile> workers,
                         std::span<const std::size_t> loads, std::size_t s,
                         std::size_t trials, stats::Rng& rng);

/// The per-worker optimal normalized deadline u* (root of
/// exp(mu(u - a)) = 1 + mu u with u > a). For a == 0 the maximizer is
/// unbounded (pure exponential: more load strictly better) and the
/// allocator saturates the load cap instead; this returns 0 then.
double optimal_normalized_deadline(const WorkerProfile& worker);

/// Result of the P2 allocator.
struct AllocationResult {
  std::vector<std::size_t> loads;  ///< r_i, each in [0, max_load]
  double deadline = 0.0;           ///< the tau achieving the target
  double expected_units = 0.0;     ///< sum_i E[delivered units by tau]
};

/// Allocates integer loads targeting `target_units` expected deliveries
/// by the smallest possible common deadline (Remark 6 uses
/// target_units = floor(m log m)). `max_load` caps each r_i (a worker
/// cannot hold more than m distinct examples).
AllocationResult allocate_loads(std::span<const WorkerProfile> workers,
                                std::size_t target_units,
                                std::size_t max_load);

/// Result of `refine_loads`.
struct RefineResult {
  std::vector<std::size_t> loads;
  double estimate = 0.0;  ///< CRN Monte-Carlo estimate of E[T-hat(s)]
};

/// Local-search refinement of a P2 allocation: hill-climbs single-unit
/// moves between worker pairs, accepting a move when a common-random-
/// numbers Monte-Carlo estimate of E[T-hat(s)] improves (the same Exp(1)
/// draws are reused across candidate allocations, so the estimate is a
/// deterministic function of the loads and the search cannot chase
/// noise). The total load is preserved; per-worker loads stay in
/// [0, max_load]. Typically shaves a few percent off the analytic
/// allocator's deadline at moderate n.
RefineResult refine_loads(std::span<const WorkerProfile> workers,
                          std::vector<std::size_t> initial_loads,
                          std::size_t s, std::size_t steps,
                          std::size_t trials, std::size_t max_load,
                          stats::Rng& rng);

/// The paper's "load balancing" (LB) baseline: r_i proportional to mu_i,
/// summing to exactly `num_examples` (largest-remainder rounding).
std::vector<std::size_t> load_balanced_assignment(
    std::span<const WorkerProfile> workers, std::size_t num_examples);

/// Outcome of one generalized-BCC coverage run.
struct CoverageOutcome {
  double time = 0.0;             ///< coverage time T (Eq. 16)
  std::size_t workers_heard = 0; ///< deliveries consumed until coverage
  bool covered = false;          ///< false if all loads together missed
                                 ///< some example (time = last delivery)
};

/// One run of generalized BCC: worker i samples `loads[i]` distinct
/// examples uniformly (placement G0 of the Theorem 2 proof), completion
/// times are drawn from Eq. 15, and the master stops at coverage.
CoverageOutcome simulate_generalized_bcc(
    std::span<const WorkerProfile> workers,
    std::span<const std::size_t> loads, std::size_t num_examples,
    stats::Rng& rng);

/// One run of the LB baseline: disjoint placement, so the master must
/// wait for every worker with a positive load. Returns max_i T_i.
double simulate_load_balanced(std::span<const WorkerProfile> workers,
                              std::span<const std::size_t> loads,
                              stats::Rng& rng);

/// Theorem 2's constant c = 2 + log(a + H_n/mu) / log m with
/// a = max_i a_i and mu = min_i mu_i.
double theorem2_c(std::span<const WorkerProfile> workers,
                  std::size_t num_examples);

/// Convenience: +infinity.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace coupon::core::hetero
