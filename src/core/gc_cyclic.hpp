#pragma once

/// \file gc_cyclic.hpp
/// Exact Gradient Coding over the cyclic placement of Tandon et al.
/// ("Gradient Coding: Avoiding Stragglers in Distributed Learning",
/// arXiv 1612.03301) — the systematic variant.
///
/// With m = n units and load r, worker i holds the r cyclically
/// consecutive units {i, i+1, ..., i+r-1 mod n}; every unit is replicated
/// on exactly r consecutive workers, so ANY set of n - s workers
/// (s = r - 1) covers all m units — the same worst-case straggler
/// tolerance and recovery threshold K = n - r + 1 as the coded `cr`
/// scheme (Eq. 7).
///
/// Where `cr` ships one linear combination per worker and decodes by a
/// least-squares solve, this scheme ships the r raw per-unit gradients
/// (the systematic form): the master slots the first received copy of
/// each unit and decodes by summing slots in unit order 0..m-1. All
/// copies of a unit's gradient are bitwise identical, so the decode is
/// bitwise-equal to the unit-ordered serial gradient sum for EVERY
/// arrival set of size >= n - s — no floating-point recombination error,
/// and partial decodes come for free. The price is communication: r
/// gradient units per message instead of cr's one (the classic
/// exactness-vs-bandwidth trade; see DESIGN.md scheme catalog).

#include "core/scheme.hpp"

namespace coupon::core {

/// Systematic exact gradient coding on the cyclic placement
/// (requires m == n). Construction is deterministic — no randomness.
class GcCyclicScheme final : public Scheme {
 public:
  /// Requires 1 <= load <= num_workers; num_units must equal
  /// num_workers (group into super-examples otherwise; footnote 1).
  GcCyclicScheme(std::size_t num_workers, std::size_t load);

  std::string_view registry_name() const override { return "gc_cyclic"; }
  std::string_view name() const override { return "gradient coding (cyclic)"; }

  comm::Message encode(std::size_t worker, const UnitGradientSource& source,
                       std::span<const double> w) const override;
  void encode_into(std::size_t worker, const UnitGradientSource& source,
                   std::span<const double> w,
                   comm::Message& out) const override;
  double message_units(std::size_t) const override {
    return static_cast<double>(load_);
  }
  std::vector<std::int64_t> message_meta(std::size_t worker) const override;
  std::unique_ptr<Collector> make_collector() const override;

  /// K = n - s = n - r + 1: ready as soon as any n - s workers arrive.
  std::optional<double> expected_recovery_threshold() const override {
    return static_cast<double>(num_workers() - stragglers_tolerated());
  }

  /// s = r - 1.
  std::size_t stragglers_tolerated() const { return load_ - 1; }

  /// Exact wait quota: the collector counts distinct workers up to
  /// n - s, so no shorter arrival prefix can be ready.
  std::size_t min_arrivals_hint() const override {
    return num_workers() - stragglers_tolerated();
  }

 private:
  std::size_t load_;
};

}  // namespace coupon::core
