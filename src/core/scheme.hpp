#pragma once

/// \file scheme.hpp
/// The gradient-coding scheme interface (Section II of the paper).
///
/// A scheme fixes, for `n` workers over `m` units with computational load
/// `r`:
///   * the data placement G_1, ..., G_n (drawn once, before training);
///   * the worker-side encoding function phi_i (Eq. 9) — here `encode`;
///   * the master-side decision of when enough messages have arrived and
///     the decoding function psi (Eq. 10) — here a per-iteration
///     `Collector`.
///
/// The combinatorial questions ("has the master heard enough?", "what are
/// K and L this iteration?") are answered by the Collector from message
/// *metadata* alone, so the discrete-event simulator can drive schemes
/// without computing any real gradients; the threaded runtime additionally
/// passes payloads and calls `decode_sum`.

#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "comm/message.hpp"
#include "core/gradient_source.hpp"
#include "data/placement.hpp"
#include "stats/rng.hpp"

namespace coupon::core {

/// Per-iteration master-side message collector and decoder.
///
/// Usage: call `offer` for every arriving message in arrival order until
/// `ready()` flips to true (`offer` after ready() is allowed and ignored).
/// `workers_heard()` is |W| (recovery-threshold accounting, Definition 2)
/// and `units_received()` the aggregated normalized message size
/// (communication load, Definition 3). Between iterations, `reset()`
/// returns the collector to its freshly-constructed state so one instance
/// can serve a whole run — the simulator's steady-state loop relies on
/// this instead of `Scheme::make_collector()` per iteration.
class Collector {
 public:
  virtual ~Collector() = default;

  /// Returns the collector to the state `Scheme::make_collector()` built
  /// it in: no workers heard, no units received, not ready, no kept
  /// messages. A reset-and-reused collector must behave identically to a
  /// fresh one under any offer sequence. Contract for implementers
  /// (`do_reset`): preserve allocated capacity — reset runs once per
  /// simulated iteration and must not allocate.
  void reset() {
    workers_heard_ = 0;
    units_received_ = 0.0;
    do_reset();
  }

  /// Offers the message of `worker`. `meta`/`payload` follow the owning
  /// scheme's encoding; `payload` may be empty when only combinatorial
  /// tracking is needed (simulation). Returns true if the message was
  /// *kept* (contributes to the decode), false if discarded as redundant.
  virtual bool offer(std::size_t worker, std::span<const std::int64_t> meta,
                     std::span<const double> payload) = 0;

  /// True once the full gradient is recoverable from the kept messages.
  virtual bool ready() const = 0;

  /// Number of distinct workers offered so far (|W| of Definition 2).
  std::size_t workers_heard() const { return workers_heard_; }

  /// Aggregated message size in gradient units (L of Definition 3).
  double units_received() const { return units_received_; }

  /// Writes the decoded *sum* of all unit gradients into `grad_sum`
  /// (size p). The caller divides by the number of underlying examples to
  /// obtain the mean gradient of Eq. (1). Requires ready() and that all
  /// kept offers carried payloads.
  virtual void decode_sum(std::span<double> grad_sum) const = 0;

  /// True when this collector can also decode a *partial* gradient from
  /// whatever it has collected so far (coverage-style schemes: BCC, FR,
  /// uncoded, simple randomized). False for algebraically coded schemes
  /// (CR), which are all-or-nothing.
  virtual bool supports_partial_decode() const { return false; }

  /// Writes the sum of the unit gradients covered *so far* into
  /// `grad_sum` and returns the number of units covered (possibly 0, in
  /// which case `grad_sum` is zeroed). Valid before ready(); used by the
  /// runtime's ignore-stragglers fallback, which rescales by
  /// covered/total to approximate the mean gradient. Requires
  /// supports_partial_decode() and payloads on kept offers.
  virtual std::size_t decode_partial_sum(std::span<double> grad_sum) const;

 protected:
  void note_offer(double units) {
    ++workers_heard_;
    units_received_ += units;
  }

  /// Scheme-specific part of `reset()`: drop kept messages and coverage
  /// state, keeping allocated buffers (clear vectors, don't shrink them).
  virtual void do_reset() = 0;

 private:
  std::size_t workers_heard_ = 0;
  double units_received_ = 0.0;
};

/// A configured gradient-coding scheme instance.
///
/// Construction (via `SchemeRegistry::create`) draws the placement; the
/// instance is immutable afterwards, so one scheme object can serve many
/// concurrent iterations/collectors.
class Scheme {
 public:
  virtual ~Scheme() = default;

  /// Canonical `SchemeRegistry` / CLI name ("uncoded", "bcc", "cr", ...).
  virtual std::string_view registry_name() const = 0;

  /// Human-readable name for table rendering ("BCC", "cyclic repetition").
  virtual std::string_view name() const = 0;

  std::size_t num_workers() const { return placement_.num_workers(); }
  std::size_t num_units() const { return placement_.num_examples(); }

  /// Definition 1's computational load of the realized placement.
  std::size_t computational_load() const {
    return placement_.computational_load();
  }

  /// The realized data placement G_1..G_n over units.
  const data::Placement& placement() const { return placement_; }

  /// Worker-side encoding phi_i: computes worker `i`'s message at `w`.
  /// The returned message's `meta`/`payload` are what `Collector::offer`
  /// expects; `source.num_units()` must equal num_units().
  virtual comm::Message encode(std::size_t worker,
                               const UnitGradientSource& source,
                               std::span<const double> w) const = 0;

  /// Scratch-reusing variant of `encode`: writes worker `i`'s message into
  /// `out`, reusing `out.meta`/`out.payload` capacity so a warm caller
  /// performs zero allocations. Produces bytes identical to `encode` (same
  /// meta, same payload, same floating-point summation order); only
  /// `meta`/`payload` are scheme-owned — routing fields (`source`, `dest`,
  /// `tag`, `iteration`) are left for the caller. The base default
  /// forwards to `encode` so out-of-tree schemes keep working; all in-tree
  /// schemes override it with an allocation-free body.
  virtual void encode_into(std::size_t worker, const UnitGradientSource& source,
                           std::span<const double> w, comm::Message& out) const;

  /// If several workers provably produce bitwise-identical messages (same
  /// meta, same payload for any `w`), returns a group id in
  /// [0, num_encode_groups()) shared exactly by those workers — e.g. all
  /// BCC workers holding the same batch, all FR workers of one block. The
  /// provider then encodes each group once per iteration and reuses the
  /// bytes. Returns nullopt (the default) when every worker's message is
  /// distinct or the scheme offers no such guarantee.
  virtual std::optional<std::size_t> encode_group(std::size_t worker) const {
    (void)worker;
    return std::nullopt;
  }

  /// Number of distinct `encode_group` ids (0 when encode_group always
  /// returns nullopt).
  virtual std::size_t num_encode_groups() const { return 0; }

  /// Size, in gradient units, of worker `i`'s message (used by the
  /// simulator for transfer-time modelling without encoding).
  virtual double message_units(std::size_t worker) const = 0;

  /// The metadata worker `i`'s message would carry (identical to
  /// `encode(i, ...).meta`). Lets the discrete-event simulator feed
  /// collectors without computing any gradients.
  virtual std::vector<std::int64_t> message_meta(std::size_t worker) const = 0;

  /// Fresh per-iteration collector.
  virtual std::unique_ptr<Collector> make_collector() const = 0;

  /// Closed-form expected recovery threshold E|W| where known
  /// (Eq. 2 for BCC, n for uncoded, m - r + 1 for CR); nullopt when only
  /// empirical estimates exist (simple randomized, FR).
  virtual std::optional<double> expected_recovery_threshold() const = 0;

  /// A provable lower bound on the number of master-side message
  /// arrivals before this scheme's collector can possibly flip ready():
  /// threshold schemes return their exact wait quota (n - r + 1 for
  /// CR/GC/SGC/nested GC), coverage schemes the count of distinct
  /// coupons that must be collected (ceil(m/r) batches for BCC, n/r
  /// blocks for FR, ceil(m/r) messages for simple randomized), and
  /// wait-for-all schemes n — the default, always safe for out-of-tree
  /// schemes. The simulator's threshold-selection kernel (DESIGN.md §7)
  /// sorts only this many earliest arrivals up front and extends the
  /// sorted prefix geometrically when recovery needs more (drops,
  /// coverage failure), so the hint is a performance contract, not a
  /// correctness one: too small costs extension rounds, too large costs
  /// wasted sorting, either way the trace is bit-identical. Enforced as
  /// a true lower bound by the registry-wide conformance suite.
  virtual std::size_t min_arrivals_hint() const { return num_workers(); }

 protected:
  explicit Scheme(data::Placement placement)
      : placement_(std::move(placement)) {}

  data::Placement placement_;
};

/// Options shared by the `SchemeRegistry` factories.
struct SchemeConfig {
  std::size_t num_workers = 0;  ///< n
  std::size_t num_units = 0;    ///< m (units / super-examples)
  std::size_t load = 0;         ///< r, in units per worker
  /// BCC only: deterministic coverage aid (library extension, see
  /// DESIGN.md §5.3). Default matches the paper (fully random choice).
  bool bcc_seed_first_batches = false;
};

}  // namespace coupon::core
