#pragma once

/// \file simple_random.hpp
/// The simple randomized baseline (Prior Art, Eqs. 5–6): each worker
/// selects r of the m units uniformly at random (without replacement,
/// independently across workers) and communicates every partial gradient
/// *individually* to the master. Coverage of all m units takes
/// K ≈ (m/r) log m workers on average — near optimal — but each worker
/// ships r gradient-sized messages, so the communication load blows up to
/// L ≈ m log m. BCC keeps the first property and fixes the second.

#include "core/scheme.hpp"

namespace coupon::core {

/// Per-example random placement with individual (unencoded) messages.
class SimpleRandomScheme final : public Scheme {
 public:
  SimpleRandomScheme(std::size_t num_workers, std::size_t num_units,
                     std::size_t load, stats::Rng& rng);

  std::string_view registry_name() const override { return "simple_random"; }
  std::string_view name() const override { return "simple randomized"; }

  /// The message concatenates the worker's r per-unit gradients in the
  /// order of `meta` (which lists the unit indices); payload size is
  /// r * p doubles — r gradient units.
  comm::Message encode(std::size_t worker, const UnitGradientSource& source,
                       std::span<const double> w) const override;
  void encode_into(std::size_t worker, const UnitGradientSource& source,
                   std::span<const double> w,
                   comm::Message& out) const override;

  double message_units(std::size_t worker) const override {
    return static_cast<double>(placement_.worker(worker).size());
  }

  std::vector<std::int64_t> message_meta(std::size_t worker) const override;

  std::unique_ptr<Collector> make_collector() const override;

  /// No convenient closed form (coverage with group draws); estimated
  /// empirically, ≈ (m/r) log m (Eq. 5).
  std::optional<double> expected_recovery_threshold() const override {
    return std::nullopt;
  }

  /// Each message covers at most r distinct units, so covering all m
  /// units takes at least ceil(m/r) arrivals.
  std::size_t min_arrivals_hint() const override {
    return (num_units() + load_ - 1) / load_;
  }

 private:
  std::size_t load_;
};

}  // namespace coupon::core
