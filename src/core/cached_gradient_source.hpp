#pragma once

/// \file cached_gradient_source.hpp
/// Per-iteration memoization of unit gradients.
///
/// Repetition schemes place each unit on r workers, so a naive encode pass
/// computes every unit gradient r times per iteration. `CachedGradientSource`
/// wraps an inner source and computes each `unit_gradient` at most once per
/// iteration, serving later requests from a flat m×p slab (contiguous rows,
/// SIMD-friendly for axpy via `unit_gradient_view`).
///
/// Scope of the cache — and why it is bitwise-transparent:
///   * `unit_gradient` / `unit_gradient_view` are memoized. The cached row
///     is the inner source's own output, so reading it back is bit-identical
///     to recomputing it (the query point is fixed within an iteration).
///   * `accumulate_unit_gradient` delegates to the inner source *uncached*.
///     Accumulate-style encoders (uncoded/BCC/FR/SGC) fold examples into a
///     running sum whose floating-point association order differs from
///     "unit gradient, then add"; golden traces pin those exact bytes, so
///     the cache must not rewrite them.
///
/// Invalidation rule: one iteration. Call `begin_iteration()` whenever the
/// query point changes; it bumps a 64-bit epoch (O(1), allocation-free) and
/// every cached row becomes stale. Not thread-safe — intended for the
/// single-threaded simulated provider.

#include <cstdint>
#include <span>
#include <vector>

#include "core/gradient_source.hpp"

namespace coupon::core {

class CachedGradientSource final : public UnitGradientSource {
 public:
  explicit CachedGradientSource(const UnitGradientSource& inner);

  /// Invalidates every cached unit gradient. Must be called whenever the
  /// query point `w` changes; all `unit_gradient*` calls between two
  /// `begin_iteration()` boundaries must pass the same `w`.
  void begin_iteration() { ++epoch_; }

  std::size_t num_units() const override { return inner_.num_units(); }
  std::size_t dim() const override { return inner_.dim(); }
  std::size_t num_examples() const override { return inner_.num_examples(); }

  void unit_gradient(std::size_t unit, std::span<const double> w,
                     std::span<double> out) const override;
  void accumulate_unit_gradient(std::size_t unit, std::span<const double> w,
                                std::span<double> out) const override;
  /// Forwards to the inner source uncached, like the single-unit
  /// accumulate — the inner override (one example-level pass per
  /// adjacent-unit run) is exactly the fast path the wrap must not hide.
  void accumulate_units_gradient(std::span<const std::size_t> units,
                                 std::span<const double> w,
                                 std::span<double> out) const override {
    inner_.accumulate_units_gradient(units, w, out);
  }
  std::span<const double> unit_gradient_view(
      std::size_t unit, std::span<const double> w,
      std::span<double> scratch) const override;

 private:
  std::span<const double> ensure_cached(std::size_t unit,
                                        std::span<const double> w) const;

  const UnitGradientSource& inner_;
  mutable std::vector<double> slab_;          // m rows of p doubles
  mutable std::vector<std::uint64_t> stamp_;  // per-unit epoch of last fill
  std::uint64_t epoch_ = 1;                   // stamp_ starts at 0 => stale
};

}  // namespace coupon::core
