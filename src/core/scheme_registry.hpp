#pragma once

/// \file scheme_registry.hpp
/// Open registry of gradient-coding schemes (DESIGN.md §3).
///
/// A scheme is published under a canonical CLI name plus optional aliases,
/// together with a factory and capability flags. The driver, benches, and
/// tools select schemes by name through this registry, so adding a scheme
/// is one `SchemeRegistration` call in the new scheme's translation unit —
/// no enum, switch, or name-table edits. (The legacy closed `SchemeKind`
/// enum and its `make_scheme` shim were removed; instances report their
/// canonical name via `Scheme::registry_name()`.)
///
/// Registration discipline: register at static-initialization time (via
/// `SchemeRegistration`) or during single-threaded startup, before
/// experiments run. Lookups are const and may then be issued concurrently
/// from sweep worker threads.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/scheme.hpp"
#include "stats/rng.hpp"

namespace coupon::core {

/// Static properties of a scheme that callers need before instantiating
/// one (sweep validation, `coupon_run --list`, runtime failure handling).
struct SchemeCapabilities {
  /// Collectors can decode a partial gradient before ready() — the
  /// runtime's kApplyPartial fallback works (BCC, FR, uncoded, SRS).
  bool supports_partial_decode = false;
  /// Placement requires m == n (CR, FR operate on one unit per worker;
  /// use super-examples to satisfy this).
  bool requires_units_equal_workers = false;
  /// Placement requires r to divide n (FR's disjoint blocks, nested GC's
  /// residue-class ladder).
  bool requires_load_divides_workers = false;
  /// decode_sum returns a stochastic *estimate* of the gradient sum (SGC),
  /// unbiased but noisy — never bitwise-reproducible against a serial
  /// reference. Downstream layers gate such schemes statistically
  /// (unbiasedness/variance/convergence) and the JSONL sink stamps
  /// `approximate_recovery` so analysis code can tell the rows apart.
  bool approximate_recovery = false;
};

/// One registry entry: identity, documentation, capabilities, factory.
struct SchemeEntry {
  std::string name;                  ///< canonical CLI spelling, e.g. "bcc"
  std::vector<std::string> aliases;  ///< extra spellings, e.g. long names
  std::string description;           ///< one-line --list text
  SchemeCapabilities caps;
  /// Builds a configured instance, drawing randomness from `rng`. The
  /// factory asserts its own structural requirements (e.g. CR's m == n).
  std::function<std::unique_ptr<Scheme>(const SchemeConfig&, stats::Rng&)>
      factory;
};

/// Process-wide name -> factory registry. The built-in schemes are
/// registered on first access, in presentation order (uncoded, fr, cr,
/// bcc, simple_random, gc_cyclic, sgc, gc_nested).
class SchemeRegistry {
 public:
  static SchemeRegistry& instance();

  /// Registers `entry`. Throws std::invalid_argument when the name or any
  /// alias collides with an existing name/alias, or when the entry has no
  /// name or no factory.
  void add(SchemeEntry entry);

  /// Looks up a canonical name or alias; nullptr when unknown. The
  /// returned pointer stays valid for the process lifetime.
  const SchemeEntry* find(std::string_view name_or_alias) const;

  /// Builds a configured scheme by name. Throws std::invalid_argument
  /// with a diagnostic listing the valid choices on an unknown name, and
  /// asserts n > 0 / m > 0 before invoking the factory.
  std::unique_ptr<Scheme> create(std::string_view name_or_alias,
                                 const SchemeConfig& config,
                                 stats::Rng& rng) const;

  /// Canonical names in registration order.
  std::vector<std::string> names() const;

  /// "uncoded|fr|cr|bcc|simple_random|..." for --help strings.
  std::string choices() const;

  /// "unknown scheme 'x' (choices: ...)" — the shared diagnostic.
  std::string unknown_message(std::string_view name) const;

 private:
  SchemeRegistry();  // registers the built-ins

  std::vector<SchemeEntry> entries_;  // stable: entries are never removed
};

/// Self-registration helper: a namespace-scope
///   static const core::SchemeRegistration my_scheme{{.name = ...}};
/// in the scheme's translation unit publishes it before main() runs.
struct SchemeRegistration {
  explicit SchemeRegistration(SchemeEntry entry) {
    SchemeRegistry::instance().add(std::move(entry));
  }
};

}  // namespace coupon::core
