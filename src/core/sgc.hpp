#pragma once

/// \file sgc.hpp
/// Stochastic Gradient Coding of Bitar, Wootters & El Rouayheb
/// ("Stochastic Gradient Coding for Straggler Mitigation in Distributed
/// Learning", arXiv 1905.05383): balanced random redundancy with an
/// *approximate* decode.
///
/// Placement (m = n units, load r): every unit is replicated on exactly r
/// workers and every worker holds exactly r units, drawn at random as r
/// rounds of a random perfect matching between units and workers (a
/// random permutation per round, with within-worker duplicate repair) —
/// the pair-wise balanced construction of the paper, without the cyclic
/// structure that exact GC needs.
///
/// Each worker ships the single unscaled sum of its r unit gradients
/// (message size 1 unit, like `cr`/`uncoded`). The master stops after the
/// first k* = n - r + 1 distinct workers and returns the scaled partial
/// aggregate
///
///     ghat = (n / (r k)) * sum_{w in W} msg_w,    |W| = k,
///
/// which is UNBIASED for the true gradient sum S = sum_u g_u whenever the
/// arrival set W is exchangeable over workers (each worker equally likely
/// to be among the first k — true for i.i.d. compute times): every unit
/// appears in r of the n messages, so E[sum_W msg_w] = (k/n) r S. The
/// per-coordinate estimator variance is the finite-population sampling
/// variance (n/(rk))^2 * k(n-k)/(n-1) * Var_w(msg_w[j]) — see
/// `theory::sgc_estimator_variance_factor`. Decode is therefore
/// intentionally noisy: `SchemeCapabilities::approximate_recovery` is set,
/// downstream layers gate it statistically (unbiasedness + variance
/// bounds + convergence-to-target), never bitwise.

#include "core/scheme.hpp"

namespace coupon::core {

/// Stochastic gradient coding (requires m == n). Placement is random —
/// the factory draws it from the registry rng; decode is approximate.
class SgcScheme final : public Scheme {
 public:
  /// Requires 1 <= load <= num_workers and num_units == num_workers.
  SgcScheme(std::size_t num_workers, std::size_t load, stats::Rng& rng);

  std::string_view registry_name() const override { return "sgc"; }
  std::string_view name() const override { return "stochastic gradient coding"; }

  comm::Message encode(std::size_t worker, const UnitGradientSource& source,
                       std::span<const double> w) const override;
  void encode_into(std::size_t worker, const UnitGradientSource& source,
                   std::span<const double> w,
                   comm::Message& out) const override;
  double message_units(std::size_t) const override { return 1.0; }
  std::vector<std::int64_t> message_meta(std::size_t worker) const override;
  std::unique_ptr<Collector> make_collector() const override;

  /// The wait quota k* = n - r + 1: same worker count as exact GC, but
  /// recovery is approximate rather than guaranteed.
  std::optional<double> expected_recovery_threshold() const override {
    return static_cast<double>(num_workers() - load_ + 1);
  }

  /// s = r - 1 stragglers ignored per iteration (approximately).
  std::size_t stragglers_tolerated() const { return load_ - 1; }

  /// Exact wait quota k* = n - r + 1: the collector counts distinct
  /// workers, so no shorter arrival prefix can be ready.
  std::size_t min_arrivals_hint() const override {
    return num_workers() - stragglers_tolerated();
  }

 private:
  std::size_t load_;
};

}  // namespace coupon::core
