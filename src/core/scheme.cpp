#include "core/scheme.hpp"

#include "util/assert.hpp"

namespace coupon::core {

std::size_t Collector::decode_partial_sum(std::span<double>) const {
  COUPON_ASSERT_MSG(false,
                    "this collector does not support partial decoding");
  return 0;
}

void Scheme::encode_into(std::size_t worker, const UnitGradientSource& source,
                         std::span<const double> w, comm::Message& out) const {
  comm::Message msg = encode(worker, source, w);
  out.meta = std::move(msg.meta);
  out.payload = std::move(msg.payload);
}

}  // namespace coupon::core
