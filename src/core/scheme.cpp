#include "core/scheme.hpp"

#include "core/scheme_registry.hpp"
#include "util/assert.hpp"

namespace coupon::core {

std::size_t Collector::decode_partial_sum(std::span<double>) const {
  COUPON_ASSERT_MSG(false,
                    "this collector does not support partial decoding");
  return 0;
}

std::string_view scheme_kind_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kUncoded:
      return "uncoded";
    case SchemeKind::kBcc:
      return "BCC";
    case SchemeKind::kSimpleRandom:
      return "simple randomized";
    case SchemeKind::kCyclicRepetition:
      return "cyclic repetition";
    case SchemeKind::kFractionalRepetition:
      return "fractional repetition";
  }
  return "unknown";
}

std::string_view scheme_registry_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kUncoded:
      return "uncoded";
    case SchemeKind::kBcc:
      return "bcc";
    case SchemeKind::kSimpleRandom:
      return "simple_random";
    case SchemeKind::kCyclicRepetition:
      return "cr";
    case SchemeKind::kFractionalRepetition:
      return "fr";
  }
  return "unknown";
}

std::unique_ptr<Scheme> make_scheme(SchemeKind kind,
                                    const SchemeConfig& config,
                                    stats::Rng& rng) {
  return SchemeRegistry::instance().create(scheme_registry_name(kind), config,
                                           rng);
}

}  // namespace coupon::core
