#include "core/scheme.hpp"

#include "core/bcc.hpp"
#include "core/cyclic_repetition.hpp"
#include "core/fractional_repetition.hpp"
#include "core/simple_random.hpp"
#include "core/uncoded.hpp"
#include "util/assert.hpp"

namespace coupon::core {

std::size_t Collector::decode_partial_sum(std::span<double>) const {
  COUPON_ASSERT_MSG(false,
                    "this collector does not support partial decoding");
  return 0;
}

std::string_view scheme_kind_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kUncoded:
      return "uncoded";
    case SchemeKind::kBcc:
      return "BCC";
    case SchemeKind::kSimpleRandom:
      return "simple randomized";
    case SchemeKind::kCyclicRepetition:
      return "cyclic repetition";
    case SchemeKind::kFractionalRepetition:
      return "fractional repetition";
  }
  return "unknown";
}

std::unique_ptr<Scheme> make_scheme(SchemeKind kind,
                                    const SchemeConfig& config,
                                    stats::Rng& rng) {
  COUPON_ASSERT_MSG(config.num_workers > 0 && config.num_units > 0,
                    "n=" << config.num_workers << " m=" << config.num_units);
  switch (kind) {
    case SchemeKind::kUncoded:
      return std::make_unique<UncodedScheme>(config.num_workers,
                                             config.num_units);
    case SchemeKind::kBcc:
      return std::make_unique<BccScheme>(config.num_workers, config.num_units,
                                         config.load,
                                         config.bcc_seed_first_batches, rng);
    case SchemeKind::kSimpleRandom:
      return std::make_unique<SimpleRandomScheme>(
          config.num_workers, config.num_units, config.load, rng);
    case SchemeKind::kCyclicRepetition:
      COUPON_ASSERT_MSG(config.num_units == config.num_workers,
                        "CR requires m == n (use super-examples)");
      return std::make_unique<CyclicRepetitionScheme>(config.num_workers,
                                                      config.load, rng);
    case SchemeKind::kFractionalRepetition:
      COUPON_ASSERT_MSG(config.num_units == config.num_workers,
                        "FR requires m == n (use super-examples)");
      return std::make_unique<FractionalRepetitionScheme>(config.num_workers,
                                                          config.load);
  }
  COUPON_ASSERT_MSG(false, "unreachable scheme kind");
  return nullptr;
}

}  // namespace coupon::core
