#include "core/scheme.hpp"

#include "util/assert.hpp"

namespace coupon::core {

std::size_t Collector::decode_partial_sum(std::span<double>) const {
  COUPON_ASSERT_MSG(false,
                    "this collector does not support partial decoding");
  return 0;
}

}  // namespace coupon::core
