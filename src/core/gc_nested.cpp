#include "core/gc_nested.hpp"

#include <algorithm>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::core {

namespace {

/// Slot-per-worker collector: keeps each arriving worker's full
/// L-component payload, flips ready at n - r + 1 distinct workers, and
/// decodes by walking the ladder from the narrowest width up to the
/// first width with an intact residue class in the arrival set.
class GcNestedCollector final : public Collector {
 public:
  GcNestedCollector(std::size_t num_workers, std::size_t wait_quota,
                    std::vector<std::size_t> widths)
      : wait_quota_(wait_quota),
        widths_(std::move(widths)),
        slots_(num_workers),
        heard_(num_workers, false) {}

  bool offer(std::size_t worker, std::span<const std::int64_t> meta,
             std::span<const double> payload) override {
    (void)meta;
    if (ready_) {
      return false;
    }
    COUPON_ASSERT(worker < heard_.size());
    note_offer(static_cast<double>(widths_.size()));
    if (heard_[worker]) {
      return false;  // duplicate delivery of the same worker's message
    }
    heard_[worker] = true;
    ++count_;
    if (!payload.empty()) {
      COUPON_ASSERT_MSG(payload.size() % widths_.size() == 0,
                        "payload not a whole number of level components");
      slots_[worker].assign(payload.begin(), payload.end());
    }
    ready_ = count_ >= wait_quota_;
    return true;
  }

  bool ready() const override { return ready_; }

  void decode_sum(std::span<double> out) const override {
    COUPON_ASSERT_MSG(ready_, "decode before the wait quota was met");
    const std::size_t level = decode_level();
    COUPON_ASSERT_MSG(level < widths_.size(),
                      "no intact residue class at the wait quota");
    const std::size_t w = widths_[level];
    const std::size_t c = intact_class(w);
    const std::size_t dim = out.size();
    linalg::fill(out, 0.0);
    for (std::size_t i = c; i < heard_.size(); i += w) {
      COUPON_ASSERT_MSG(!slots_[i].empty(), "decode without payloads");
      COUPON_ASSERT(slots_[i].size() == widths_.size() * dim);
      linalg::axpy(1.0,
                   std::span<const double>(slots_[i]).subspan(level * dim, dim),
                   out);
    }
  }

  /// The index into widths() the current arrival set decodes at: the
  /// narrowest (least coded) width with a fully-arrived residue class.
  /// widths_.size() when none exists yet.
  std::size_t decode_level() const {
    for (std::size_t level = 0; level < widths_.size(); ++level) {
      if (intact_class(widths_[level]) < widths_[level]) {
        return level;
      }
    }
    return widths_.size();
  }

 private:
  /// First residue class c (mod w) with every member arrived; w if none.
  std::size_t intact_class(std::size_t w) const {
    for (std::size_t c = 0; c < w; ++c) {
      bool intact = true;
      for (std::size_t i = c; i < heard_.size() && intact; i += w) {
        intact = heard_[i];
      }
      if (intact) {
        return c;
      }
    }
    return w;
  }

  void do_reset() override {
    for (auto& slot : slots_) {
      slot.clear();
    }
    std::fill(heard_.begin(), heard_.end(), false);
    count_ = 0;
    ready_ = false;
  }

  std::size_t wait_quota_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<double>> slots_;
  std::vector<bool> heard_;
  std::size_t count_ = 0;
  bool ready_ = false;
};

data::Placement cyclic_windows(std::size_t num_workers, std::size_t load) {
  data::Placement placement(num_workers, num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    auto& g = placement.worker(i);
    g.reserve(load);
    for (std::size_t k = 0; k < load; ++k) {
      g.push_back((i + k) % num_workers);
    }
  }
  return placement;
}

std::vector<std::size_t> divisors_ascending(std::size_t r) {
  std::vector<std::size_t> d;
  for (std::size_t w = 1; w <= r; ++w) {
    if (r % w == 0) {
      d.push_back(w);
    }
  }
  return d;
}

}  // namespace

GcNestedScheme::GcNestedScheme(std::size_t num_workers, std::size_t load)
    : Scheme(cyclic_windows(num_workers, load)),
      load_(load),
      widths_(divisors_ascending(load)) {
  COUPON_ASSERT_MSG(num_workers >= 1, "need at least one worker");
  COUPON_ASSERT_MSG(load >= 1 && load <= num_workers,
                    "load r must be in [1, n]");
  COUPON_ASSERT_MSG(num_workers % load == 0,
                    "nested gradient coding requires r | n");
}

comm::Message GcNestedScheme::encode(std::size_t worker,
                                     const UnitGradientSource& source,
                                     std::span<const double> w) const {
  comm::Message msg;
  msg.tag = comm::kTagGradient;
  encode_into(worker, source, w, msg);
  return msg;
}

void GcNestedScheme::encode_into(std::size_t worker,
                                 const UnitGradientSource& source,
                                 std::span<const double> w,
                                 comm::Message& out) const {
  COUPON_ASSERT(worker < num_workers());
  COUPON_ASSERT(source.num_units() == num_units());
  const auto& units = placement_.worker(worker);
  const std::size_t dim = source.dim();
  const std::size_t levels = widths_.size();
  out.meta.assign(1, static_cast<std::int64_t>(worker));
  // Prefix sums of the window's unit gradients: add unit k's gradient to
  // a running sum and snapshot it whenever k + 1 hits a level width. The
  // sum is built unit-by-unit (not example-by-example) so a caching
  // source can serve each unit's gradient once to all r windows holding
  // it. The payload tail holds the running sum and unit scratch (trimmed
  // before returning), keeping a warm encode allocation-free.
  out.payload.assign((levels + 2) * dim, 0.0);
  const std::span<double> running{out.payload.data() + levels * dim, dim};
  const std::span<double> scratch{out.payload.data() + (levels + 1) * dim,
                                  dim};
  std::size_t level = 0;
  for (std::size_t k = 0; k < units.size(); ++k) {
    const std::span<const double> g =
        source.unit_gradient_view(units[k], w, scratch);
    linalg::axpy(1.0, g, running);
    if (level < levels && k + 1 == widths_[level]) {
      std::copy(running.begin(), running.end(),
                out.payload.begin() + static_cast<std::ptrdiff_t>(level * dim));
      ++level;
    }
  }
  COUPON_ASSERT(level == levels);
  out.payload.resize(levels * dim);
}

std::vector<std::int64_t> GcNestedScheme::message_meta(
    std::size_t worker) const {
  COUPON_ASSERT(worker < num_workers());
  return {static_cast<std::int64_t>(worker)};
}

std::unique_ptr<Collector> GcNestedScheme::make_collector() const {
  return std::make_unique<GcNestedCollector>(
      num_workers(), num_workers() - load_ + 1, widths_);
}

}  // namespace coupon::core
