// Tests for the parametric distributions, in particular the paper's
// shift-exponential completion-time model (Eq. 15).

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"

namespace coupon::stats {
namespace {

TEST(Exponential, CdfQuantileRoundTrip) {
  Exponential d{2.5};
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
}

TEST(Exponential, MomentsAreAnalytic) {
  Exponential d{4.0};
  EXPECT_DOUBLE_EQ(d.mean(), 0.25);
  EXPECT_DOUBLE_EQ(d.variance(), 0.0625);
}

TEST(Exponential, CdfIsZeroForNonPositive) {
  Exponential d{1.0};
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
}

TEST(Exponential, SampleMeanMatches) {
  Exponential d{3.0};
  Rng rng(5);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) {
    s.add(d.sample(rng));
  }
  EXPECT_NEAR(s.mean(), d.mean(), 0.01);
}

TEST(ShiftedExponential, ForLoadImplementsEq15) {
  // Eq. 15: shift = a*r, rate = mu/r.
  const auto d = ShiftedExponential::for_load(/*a=*/20.0, /*mu=*/2.0,
                                              /*load=*/5.0);
  EXPECT_DOUBLE_EQ(d.shift, 100.0);
  EXPECT_DOUBLE_EQ(d.rate, 0.4);
  EXPECT_DOUBLE_EQ(d.mean(), 100.0 + 2.5);
}

TEST(ShiftedExponential, SamplesRespectTheFloor) {
  const auto d = ShiftedExponential::for_load(1.0, 1.0, 3.0);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(d.sample(rng), d.shift);
  }
}

TEST(ShiftedExponential, CdfQuantileRoundTrip) {
  ShiftedExponential d{/*shift=*/2.0, /*rate=*/0.5};
  for (double p : {0.0, 0.25, 0.5, 0.75, 0.999}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
}

TEST(ShiftedExponential, CdfZeroAtOrBelowShift) {
  ShiftedExponential d{2.0, 1.0};
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
  EXPECT_GT(d.cdf(2.01), 0.0);
}

TEST(ShiftedExponential, SampleMomentsMatch) {
  const auto d = ShiftedExponential::for_load(0.5, 2.0, 4.0);
  Rng rng(11);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) {
    s.add(d.sample(rng));
  }
  EXPECT_NEAR(s.mean(), d.mean(), 0.02);
  EXPECT_NEAR(s.variance(), d.variance(), 0.1);
}

TEST(ShiftedExponential, ForLoadRejectsBadParameters) {
  EXPECT_THROW(ShiftedExponential::for_load(-1.0, 1.0, 1.0),
               coupon::AssertionError);
  EXPECT_THROW(ShiftedExponential::for_load(1.0, 0.0, 1.0),
               coupon::AssertionError);
  EXPECT_THROW(ShiftedExponential::for_load(1.0, 1.0, 0.0),
               coupon::AssertionError);
}

// Scaling property the heterogeneous analysis relies on: doubling the
// load doubles both the floor and the tail scale.
TEST(ShiftedExponential, LoadScalesFloorAndTailLinearly) {
  const auto d1 = ShiftedExponential::for_load(2.0, 3.0, 1.0);
  const auto d2 = ShiftedExponential::for_load(2.0, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(d2.shift, 2.0 * d1.shift);
  EXPECT_DOUBLE_EQ(d2.rate, d1.rate / 2.0);
  EXPECT_DOUBLE_EQ(d2.mean() - d2.shift, 2.0 * (d1.mean() - d1.shift));
}


// --- Pareto (heavy-tail latency model) ----------------------------------------------

TEST(Pareto, MomentsAreAnalytic) {
  const Pareto d{2.0, 3.0};
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);               // scale*alpha/(alpha-1)
  EXPECT_DOUBLE_EQ(d.variance(), 3.0);           // 4*3/(4*1)
}

TEST(Pareto, MomentsDivergeOutsideTheirShapeRange) {
  EXPECT_THROW((Pareto{1.0, 1.0}.mean()), coupon::AssertionError);
  EXPECT_THROW((Pareto{1.0, 2.0}.variance()), coupon::AssertionError);
  EXPECT_NO_THROW((Pareto{1.0, 1.5}.mean()));  // mean finite, variance not
}

TEST(Pareto, CdfQuantileRoundTrip) {
  const Pareto d{0.5, 1.5};
  for (double p : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
}

TEST(Pareto, CdfZeroAtOrBelowScale) {
  const Pareto d{2.0, 1.5};
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_GT(d.cdf(2.01), 0.0);
}

TEST(Pareto, SampleMomentsMatch) {
  const Pareto d{1.0, 4.0};  // mean 4/3, variance 4/(9*2) = 0.2222
  Rng rng(23);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, d.scale);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), d.mean(), 0.01);
  EXPECT_NEAR(s.variance(), d.variance(), 0.05);
}

TEST(Pareto, SamplesPassAKsTest) {
  const Pareto d{1e-3, 1.5};
  Rng rng(29);
  std::vector<double> samples(4000);
  for (auto& x : samples) {
    x = d.sample(rng);
  }
  const double ks = ks_distance(samples, [&d](double t) { return d.cdf(t); });
  EXPECT_LT(ks, 0.025);
}

// --- Weibull (stretched-exponential latency model) ----------------------------------

TEST(Weibull, ShapeOneIsExponential) {
  const Weibull w{1.0, 0.25};
  const Exponential e{4.0};
  for (double t : {0.0, 0.1, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(w.cdf(t), e.cdf(t), 1e-12);
  }
  EXPECT_NEAR(w.mean(), e.mean(), 1e-12);
  EXPECT_NEAR(w.variance(), e.variance(), 1e-9);
}

TEST(Weibull, CdfQuantileRoundTrip) {
  const Weibull d{0.7, 2.0};
  for (double p : {0.0, 0.25, 0.5, 0.75, 0.999}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
}

TEST(Weibull, SampleMomentsMatchGammaClosedForms) {
  const Weibull d{1.5, 0.02};
  Rng rng(31);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, 0.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), d.mean(), 2e-4);
  EXPECT_NEAR(s.variance(), d.variance(), 2e-5);
}

TEST(Weibull, SamplesPassAKsTest) {
  const Weibull d{0.7, 1.0};
  Rng rng(37);
  std::vector<double> samples(4000);
  for (auto& x : samples) {
    x = d.sample(rng);
  }
  const double ks = ks_distance(samples, [&d](double t) { return d.cdf(t); });
  EXPECT_LT(ks, 0.025);
}

// --- distributional goodness of fit -------------------------------------------------

TEST(KsDistance, SamplesMatchTheirOwnCdf) {
  const auto d = ShiftedExponential::for_load(2.0, 1.5, 3.0);
  Rng rng(17);
  std::vector<double> samples(4000);
  for (auto& x : samples) {
    x = d.sample(rng);
  }
  const double ks =
      ks_distance(samples, [&d](double t) { return d.cdf(t); });
  // 95% acceptance line for n = 4000 is 1.36/sqrt(n) ~ 0.0215.
  EXPECT_LT(ks, 0.025);
}

TEST(KsDistance, DetectsAWrongDistribution) {
  const auto d = ShiftedExponential::for_load(2.0, 1.5, 3.0);
  const Exponential wrong{1.0};
  Rng rng(19);
  std::vector<double> samples(4000);
  for (auto& x : samples) {
    x = d.sample(rng);
  }
  const double ks =
      ks_distance(samples, [&wrong](double t) { return wrong.cdf(t); });
  EXPECT_GT(ks, 0.2);
}

TEST(KsDistance, ExactForDegenerateSample) {
  // One sample at the median: D = 0.5 against its own CDF.
  const Exponential d{1.0};
  const double med = d.quantile(0.5);
  const double ks =
      ks_distance({med}, [&d](double t) { return d.cdf(t); });
  EXPECT_NEAR(ks, 0.5, 1e-12);
}

}  // namespace
}  // namespace coupon::stats
