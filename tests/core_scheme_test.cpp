// Scheme-interface conformance tests, parameterized over all five built-in
// schemes: placement validity, encode/meta consistency, collector
// semantics, and exact end-to-end decode against the serial gradient.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <numeric>
#include <set>

#include "core/core.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"
#include "opt/logistic.hpp"
#include "stats/rng.hpp"

namespace coupon::core {
namespace {

constexpr std::size_t kWorkers = 12;
constexpr std::size_t kUnits = 12;
constexpr std::size_t kLoad = 3;  // divides kWorkers (FR needs r | n)
constexpr std::size_t kFeatures = 7;

struct Fixture {
  data::SyntheticProblem problem;
  std::unique_ptr<PerExampleSource> source;
  std::unique_ptr<Scheme> scheme;
  std::vector<double> w;
  std::vector<double> serial_sum;  // sum of all unit gradients at w
};

Fixture make_fixture(const std::string& kind, std::uint64_t seed = 17) {
  Fixture f;
  stats::Rng rng(seed);
  data::SyntheticConfig dconf;
  dconf.num_features = kFeatures;
  f.problem = data::generate_logreg(kUnits, dconf, rng);
  f.source = std::make_unique<PerExampleSource>(f.problem.dataset);

  SchemeConfig config;
  config.num_workers = kWorkers;
  config.num_units = kUnits;
  config.load = kLoad;
  // Guarantees per-iteration BCC coverage so the conformance tests are
  // deterministic; the randomized default is exercised in core_bcc_test.
  config.bcc_seed_first_batches = true;
  f.scheme = SchemeRegistry::instance().create(kind, config, rng);

  f.w.resize(kFeatures);
  for (auto& v : f.w) {
    v = rng.normal();
  }
  f.serial_sum.assign(kFeatures, 0.0);
  std::vector<double> full(kFeatures);
  opt::logistic_gradient(f.problem.dataset, f.w, full);
  for (std::size_t c = 0; c < kFeatures; ++c) {
    f.serial_sum[c] = full[c] * static_cast<double>(kUnits);
  }
  return f;
}

class SchemeConformanceTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(SchemeConformanceTest, PlacementCoversAllUnits) {
  const auto f = make_fixture(GetParam());
  EXPECT_TRUE(f.scheme->placement().covers_all_examples());
  EXPECT_EQ(f.scheme->num_workers(), kWorkers);
  EXPECT_EQ(f.scheme->num_units(), kUnits);
}

TEST_P(SchemeConformanceTest, ComputationalLoadRespectsConfig) {
  const auto f = make_fixture(GetParam());
  // Uncoded ignores `load` (disjoint split, load = ceil(m/n) = 1 here);
  // all other schemes must realize exactly r.
  if (std::string_view(GetParam()) == "uncoded") {
    EXPECT_EQ(f.scheme->computational_load(), kUnits / kWorkers);
  } else {
    EXPECT_EQ(f.scheme->computational_load(), kLoad);
  }
}

TEST_P(SchemeConformanceTest, EncodeMetaMatchesMessageMeta) {
  const auto f = make_fixture(GetParam());
  for (std::size_t i = 0; i < kWorkers; ++i) {
    const auto msg = f.scheme->encode(i, *f.source, f.w);
    EXPECT_EQ(msg.meta, f.scheme->message_meta(i)) << "worker " << i;
    EXPECT_FALSE(msg.payload.empty());
    EXPECT_NEAR(static_cast<double>(msg.payload.size()) / kFeatures,
                f.scheme->message_units(i), 1e-12);
  }
}

TEST_P(SchemeConformanceTest, DecodedGradientEqualsSerialSum) {
  const auto f = make_fixture(GetParam());
  auto collector = f.scheme->make_collector();

  // Deliver in a shuffled order, as a real master would observe.
  stats::Rng rng(23);
  std::vector<std::size_t> order(kWorkers);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  for (std::size_t i : order) {
    if (collector->ready()) {
      break;
    }
    const auto msg = f.scheme->encode(i, *f.source, f.w);
    collector->offer(i, msg.meta, msg.payload);
  }
  ASSERT_TRUE(collector->ready());
  std::vector<double> decoded(kFeatures);
  collector->decode_sum(decoded);
  EXPECT_LT(linalg::max_abs_diff(decoded, f.serial_sum), 1e-7)
      << "scheme " << f.scheme->name();
}

TEST_P(SchemeConformanceTest, OfferAfterReadyIsIgnored) {
  const auto f = make_fixture(GetParam());
  auto collector = f.scheme->make_collector();
  for (std::size_t i = 0; i < kWorkers && !collector->ready(); ++i) {
    const auto msg = f.scheme->encode(i, *f.source, f.w);
    collector->offer(i, msg.meta, msg.payload);
  }
  ASSERT_TRUE(collector->ready());
  const std::size_t heard = collector->workers_heard();
  const double units = collector->units_received();
  const auto msg = f.scheme->encode(kWorkers - 1, *f.source, f.w);
  EXPECT_FALSE(collector->offer(kWorkers - 1, msg.meta, msg.payload));
  EXPECT_EQ(collector->workers_heard(), heard);
  EXPECT_DOUBLE_EQ(collector->units_received(), units);
}

TEST_P(SchemeConformanceTest, RecoveryThresholdNeverExceedsWorkerCount) {
  const auto f = make_fixture(GetParam());
  auto collector = f.scheme->make_collector();
  for (std::size_t i = 0; i < kWorkers && !collector->ready(); ++i) {
    collector->offer(i, f.scheme->message_meta(i), {});
  }
  EXPECT_TRUE(collector->ready());
  EXPECT_LE(collector->workers_heard(), kWorkers);
  EXPECT_GE(collector->workers_heard(), 1u);
}

TEST_P(SchemeConformanceTest, MetadataOnlyCollectionWorksWithoutPayloads) {
  // The discrete-event simulator drives collectors with empty payloads;
  // readiness must be reachable and decode must then refuse.
  const auto f = make_fixture(GetParam());
  auto collector = f.scheme->make_collector();
  for (std::size_t i = 0; i < kWorkers && !collector->ready(); ++i) {
    collector->offer(i, f.scheme->message_meta(i), {});
  }
  ASSERT_TRUE(collector->ready());
  std::vector<double> out(kFeatures);
  EXPECT_THROW(collector->decode_sum(out), AssertionError);
}

TEST_P(SchemeConformanceTest, ExpectedRecoveryThresholdIsSane) {
  const auto f = make_fixture(GetParam());
  const auto k = f.scheme->expected_recovery_threshold();
  if (k.has_value()) {
    EXPECT_GT(*k, 0.0);
    // The closed forms can exceed n (BCC's B*H_B assumes unbounded
    // draws) but never by more than the coupon-collector log factor.
    EXPECT_LE(*k, static_cast<double>(kWorkers) *
                      (1.0 + std::log(static_cast<double>(kUnits))));
  }
}

TEST_P(SchemeConformanceTest, SchemeNamesAreStable) {
  const auto f = make_fixture(GetParam());
  EXPECT_EQ(f.scheme->registry_name(), GetParam());
  EXPECT_FALSE(f.scheme->name().empty());
  // The canonical name round-trips through the registry.
  const auto* entry =
      SchemeRegistry::instance().find(f.scheme->registry_name());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->name, f.scheme->registry_name());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeConformanceTest,
    ::testing::Values("uncoded", "bcc", "simple_random", "cr", "fr"),
    [](const ::testing::TestParamInfo<const char*>& param_info) {
      std::string name = param_info.param;
      name[0] = static_cast<char>(std::toupper(name[0]));
      const auto underscore = name.find('_');
      if (underscore != std::string::npos) {
        name.erase(underscore, 1);
        name[underscore] = static_cast<char>(std::toupper(name[underscore]));
      }
      return name;
    });

TEST(SchemeRegistryCreate, RejectsDegenerateConfigs) {
  stats::Rng rng(1);
  SchemeConfig config;  // zeros
  EXPECT_THROW(SchemeRegistry::instance().create("uncoded", config, rng),
               AssertionError);
}

TEST(SchemeRegistryCreate, CrAndFrRequireSquareSetting) {
  stats::Rng rng(1);
  SchemeConfig config;
  config.num_workers = 10;
  config.num_units = 20;  // != n
  config.load = 2;
  EXPECT_THROW(SchemeRegistry::instance().create("cr", config, rng),
               AssertionError);
  EXPECT_THROW(SchemeRegistry::instance().create("fr", config, rng),
               AssertionError);
}

TEST(SchemeNames, DisplayAndRegistryNamesDistinctAcrossBuiltins) {
  std::set<std::string> display_names, registry_names;
  stats::Rng rng(1);
  SchemeConfig config{12, 12, 3, true};
  for (const auto& name : SchemeRegistry::instance().names()) {
    auto scheme = SchemeRegistry::instance().create(name, config, rng);
    display_names.emplace(scheme->name());
    registry_names.emplace(scheme->registry_name());
  }
  EXPECT_EQ(display_names.size(), SchemeRegistry::instance().names().size());
  EXPECT_EQ(registry_names.size(), SchemeRegistry::instance().names().size());
}

}  // namespace
}  // namespace coupon::core
