// Tests for Matrix and the GEMV/GEMM kernels.

#include <gtest/gtest.h>

#include <vector>

#include "linalg/gemm.hpp"
#include "linalg/gemv.hpp"
#include "linalg/matrix.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace coupon::linalg {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, stats::Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.data()) {
    v = rng.normal();
  }
  return m;
}

std::vector<double> random_vector(std::size_t n, stats::Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) {
    x = rng.normal();
  }
  return v;
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 5.0);
}

TEST(Matrix, RaggedInitializerAsserts) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), coupon::AssertionError);
}

TEST(Matrix, Identity) {
  const Matrix i3 = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i3(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  auto row = m.row(1);
  row[0] = 30.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 30.0);
  EXPECT_EQ(m.row(0).size(), 2u);
}

TEST(Matrix, TransposeRoundTrip) {
  stats::Rng rng(1);
  const Matrix a = random_matrix(4, 7, rng);
  const Matrix att = a.transposed().transposed();
  EXPECT_EQ(att, a);
  EXPECT_DOUBLE_EQ(a.transposed()(3, 2), a(2, 3));
}

TEST(Matrix, SelectRows) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<std::size_t> idx = {2, 0};
  const Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 2.0);
}

TEST(Matrix, SelectRowsOutOfRangeAsserts) {
  Matrix m(2, 2);
  const std::vector<std::size_t> idx = {5};
  EXPECT_THROW(m.select_rows(idx), coupon::AssertionError);
}

TEST(Matrix, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.size(), 0u);
}

TEST(Gemv, MatchesManualComputation) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> x = {5.0, 6.0};
  std::vector<double> y = {100.0, 200.0};
  gemv(2.0, a, x, 0.5, y);  // y = 2*A*x + 0.5*y
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 17.0 + 50.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0 * 39.0 + 100.0);
}

TEST(Gemv, DimensionMismatchAsserts) {
  const Matrix a(2, 3);
  std::vector<double> x(2), y(2);
  EXPECT_THROW(gemv(1.0, a, x, 0.0, y), coupon::AssertionError);
}

TEST(GemvTransposed, MatchesExplicitTranspose) {
  stats::Rng rng(2);
  const Matrix a = random_matrix(6, 4, rng);
  const auto x = random_vector(6, rng);
  std::vector<double> y1(4, 0.0), y2(4, 0.0);
  gemv_transposed(1.5, a, x, 0.0, y1);
  gemv(1.5, a.transposed(), x, 0.0, y2);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-12);
  }
}

TEST(GemvTransposed, BetaScalesExisting) {
  const Matrix a = {{1.0}, {1.0}};
  const std::vector<double> x = {1.0, 1.0};
  std::vector<double> y = {10.0};
  gemv_transposed(1.0, a, x, 2.0, y);  // y = A^T x + 2y = 2 + 20
  EXPECT_DOUBLE_EQ(y[0], 22.0);
}

class GemvParallelTest : public ::testing::TestWithParam<
                             std::pair<std::size_t, std::size_t>> {};

TEST_P(GemvParallelTest, MatchesSerial) {
  const auto [rows, cols] = GetParam();
  stats::Rng rng(3);
  const Matrix a = random_matrix(rows, cols, rng);
  const auto x = random_vector(cols, rng);
  std::vector<double> y_serial(rows, 1.0), y_par(rows, 1.0);
  gemv(0.7, a, x, -0.3, y_serial);
  ThreadPool pool(4);
  gemv_parallel(pool, 0.7, a, x, -0.3, y_par);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_NEAR(y_par[i], y_serial[i], 1e-12) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemvParallelTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{3, 5},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{200, 400},
                      std::pair<std::size_t, std::size_t>{1000, 300}));

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        s += a(i, k) * b(k, j);
      }
      c(i, j) = s;
    }
  }
  return c;
}

class GemmTest : public ::testing::TestWithParam<
                     std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(GemmTest, MatchesNaiveTripleLoop) {
  const auto [m, k, n] = GetParam();
  stats::Rng rng(4);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  const Matrix expected = naive_matmul(a, b);
  const Matrix actual = matmul(a, b);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(actual(i, j), expected(i, j), 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(63, 65, 64), std::make_tuple(64, 64, 64),
                      std::make_tuple(100, 7, 129)));

TEST(Gemm, AlphaBetaComposition) {
  const Matrix a = {{1.0, 0.0}, {0.0, 1.0}};
  const Matrix b = {{2.0, 0.0}, {0.0, 2.0}};
  Matrix c = {{1.0, 1.0}, {1.0, 1.0}};
  gemm(3.0, a, b, 10.0, c);  // c = 3*I*2I + 10*ones
  EXPECT_DOUBLE_EQ(c(0, 0), 16.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 16.0);
}

TEST(Gemm, IdentityIsNeutral) {
  stats::Rng rng(5);
  const Matrix a = random_matrix(5, 5, rng);
  const Matrix prod = matmul(a, Matrix::identity(5));
  EXPECT_EQ(prod.rows(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(prod(i, j), a(i, j), 1e-14);
    }
  }
}

TEST(Gemm, DimensionMismatchAsserts) {
  const Matrix a(2, 3), b(4, 2);
  Matrix c(2, 2);
  EXPECT_THROW(gemm(1.0, a, b, 0.0, c), coupon::AssertionError);
}

}  // namespace
}  // namespace coupon::linalg
