// Tests for batching, placement, and the paper's synthetic data model.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <set>

#include "data/data.hpp"
#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::data {
namespace {

// --- BatchPartition --------------------------------------------------------------

TEST(BatchPartition, EvenSplit) {
  BatchPartition p(12, 3);
  EXPECT_EQ(p.num_batches(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(p.actual_size(b), 3u);
    const auto idx = p.indices(b);
    EXPECT_EQ(idx.front(), b * 3);
    EXPECT_EQ(idx.back(), b * 3 + 2);
  }
}

TEST(BatchPartition, PartialLastBatchReplacesZeroPadding) {
  // m = 10, r = 4 -> batches {0..3}, {4..7}, {8, 9} (last one short; the
  // paper pads with zeros, which is equivalent for gradient sums).
  BatchPartition p(10, 4);
  EXPECT_EQ(p.num_batches(), 3u);
  EXPECT_EQ(p.actual_size(0), 4u);
  EXPECT_EQ(p.actual_size(2), 2u);
}

TEST(BatchPartition, SingleBatchWhenLoadCoversAll) {
  BatchPartition p(5, 100);
  EXPECT_EQ(p.num_batches(), 1u);
  EXPECT_EQ(p.actual_size(0), 5u);
}

TEST(BatchPartition, BatchOfIsConsistentWithIndices) {
  BatchPartition p(17, 5);
  for (std::size_t j = 0; j < 17; ++j) {
    const std::size_t b = p.batch_of(j);
    const auto idx = p.indices(b);
    EXPECT_NE(std::find(idx.begin(), idx.end(), j), idx.end());
  }
}

TEST(BatchPartition, RejectsDegenerateArguments) {
  EXPECT_THROW(BatchPartition(0, 1), coupon::AssertionError);
  EXPECT_THROW(BatchPartition(1, 0), coupon::AssertionError);
}

class BatchPartitionSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(BatchPartitionSweep, BatchesPartitionAllExamples) {
  const auto [m, r] = GetParam();
  BatchPartition p(m, r);
  EXPECT_EQ(p.num_batches(), (m + r - 1) / r);
  std::set<std::size_t> seen;
  for (std::size_t b = 0; b < p.num_batches(); ++b) {
    for (std::size_t j : p.indices(b)) {
      EXPECT_TRUE(seen.insert(j).second) << "example in two batches";
      EXPECT_EQ(p.batch_of(j), b);
    }
  }
  EXPECT_EQ(seen.size(), m);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchPartitionSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{10, 1},
                      std::pair<std::size_t, std::size_t>{10, 10},
                      std::pair<std::size_t, std::size_t>{10, 3},
                      std::pair<std::size_t, std::size_t>{100, 7},
                      std::pair<std::size_t, std::size_t>{50, 10},
                      std::pair<std::size_t, std::size_t>{101, 10}));

// --- Placement ---------------------------------------------------------------------

TEST(Placement, ComputationalLoadIsMaxDegree) {
  Placement p(3, 10);
  p.worker(0) = {0, 1};
  p.worker(1) = {2, 3, 4, 5};
  p.worker(2) = {6};
  EXPECT_EQ(p.computational_load(), 4u);
  EXPECT_EQ(p.total_assigned(), 7u);
}

TEST(Placement, CoverageDetection) {
  Placement p(2, 4);
  p.worker(0) = {0, 1};
  p.worker(1) = {2};
  EXPECT_FALSE(p.covers_all_examples());
  p.worker(1) = {2, 3};
  EXPECT_TRUE(p.covers_all_examples());
}

TEST(Placement, MultiplicitiesCountReplication) {
  Placement p(3, 3);
  p.worker(0) = {0, 1};
  p.worker(1) = {1, 2};
  p.worker(2) = {2, 1};
  const auto mult = p.example_multiplicities();
  EXPECT_EQ(mult[0], 1u);
  EXPECT_EQ(mult[1], 3u);
  EXPECT_EQ(mult[2], 2u);
}

TEST(Placement, EmptyPlacementHasZeroLoad) {
  Placement p(4, 10);
  EXPECT_EQ(p.computational_load(), 0u);
  EXPECT_FALSE(p.covers_all_examples());
}

TEST(Placement, OutOfRangeExampleAsserts) {
  Placement p(1, 3);
  p.worker(0) = {7};
  EXPECT_THROW(p.covers_all_examples(), coupon::AssertionError);
}

// --- synthetic data -----------------------------------------------------------------

TEST(Synthetic, ShapesAndLabelAlphabet) {
  stats::Rng rng(1);
  SyntheticConfig config;
  config.num_features = 20;
  const auto prob = generate_logreg(50, config, rng);
  EXPECT_EQ(prob.dataset.num_examples(), 50u);
  EXPECT_EQ(prob.dataset.num_features(), 20u);
  EXPECT_EQ(prob.w_star.size(), 20u);
  for (double y : prob.dataset.y) {
    EXPECT_TRUE(y == 1.0 || y == -1.0);
  }
  for (double w : prob.w_star) {
    EXPECT_TRUE(w == 1.0 || w == -1.0);
  }
}

TEST(Synthetic, DeterministicGivenSeed) {
  SyntheticConfig config;
  config.num_features = 10;
  stats::Rng rng1(7), rng2(7);
  const auto a = generate_logreg(20, config, rng1);
  const auto b = generate_logreg(20, config, rng2);
  EXPECT_EQ(a.dataset.x, b.dataset.x);
  EXPECT_EQ(a.dataset.y, b.dataset.y);
  EXPECT_EQ(a.w_star, b.w_star);
}

TEST(Synthetic, FeatureMeansFollowMixture) {
  // Marginal mean of each coordinate is 0 (mixture of +/- (1.5/p) w*).
  stats::Rng rng(11);
  SyntheticConfig config;
  config.num_features = 4;
  const auto prob = generate_logreg(20000, config, rng);
  for (std::size_t c = 0; c < 4; ++c) {
    double mean = 0.0;
    for (std::size_t j = 0; j < prob.dataset.num_examples(); ++j) {
      mean += prob.dataset.x(j, c);
    }
    mean /= static_cast<double>(prob.dataset.num_examples());
    EXPECT_NEAR(mean, 0.0, 0.05);
  }
}

TEST(Synthetic, LabelsAnticorrelateWithTrueMargin) {
  // kappa = 1/(exp(x^T w*) + 1) = sigmoid(-x^T w*): positive labels are
  // *more likely* when x^T w* is negative — the model the paper states.
  stats::Rng rng(13);
  SyntheticConfig config;
  config.num_features = 50;
  const auto prob = generate_logreg(5000, config, rng);
  double corr = 0.0;
  for (std::size_t j = 0; j < prob.dataset.num_examples(); ++j) {
    const double margin =
        linalg::dot(prob.dataset.x.row(j), prob.w_star);
    corr += margin * prob.dataset.y[j];
  }
  EXPECT_LT(corr / static_cast<double>(prob.dataset.num_examples()), 0.0);
}

TEST(Synthetic, SelectSubsetsRows) {
  stats::Rng rng(17);
  SyntheticConfig config;
  config.num_features = 6;
  const auto prob = generate_logreg(10, config, rng);
  const std::vector<std::size_t> idx = {3, 7, 9};
  const Dataset sub = prob.dataset.select(idx);
  EXPECT_EQ(sub.num_examples(), 3u);
  EXPECT_EQ(sub.num_features(), 6u);
  for (std::size_t k = 0; k < idx.size(); ++k) {
    EXPECT_EQ(sub.y[k], prob.dataset.y[idx[k]]);
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_DOUBLE_EQ(sub.x(k, c), prob.dataset.x(idx[k], c));
    }
  }
}

TEST(Synthetic, RejectsDegenerateArguments) {
  stats::Rng rng(1);
  SyntheticConfig config;
  config.num_features = 0;
  EXPECT_THROW(generate_logreg(10, config, rng), coupon::AssertionError);
  config.num_features = 5;
  EXPECT_THROW(generate_logreg(0, config, rng), coupon::AssertionError);
}


// --- CSV dataset I/O ------------------------------------------------------------

TEST(DatasetIo, RoundTripPreservesEverything) {
  stats::Rng rng(21);
  SyntheticConfig config;
  config.num_features = 7;
  const auto prob = generate_logreg(15, config, rng);
  std::stringstream buffer;
  save_csv(buffer, prob.dataset);
  const auto loaded = load_csv(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_examples(), 15u);
  EXPECT_EQ(loaded->num_features(), 7u);
  EXPECT_EQ(loaded->y, prob.dataset.y);
  EXPECT_EQ(loaded->x, prob.dataset.x);  // %.17g is lossless for doubles
}

TEST(DatasetIo, LoadsHandWrittenCsv) {
  std::stringstream in("1,0.5,-2\n-1,3.25,4\n");
  const auto d = load_csv(in);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->num_examples(), 2u);
  EXPECT_EQ(d->num_features(), 2u);
  EXPECT_DOUBLE_EQ(d->y[0], 1.0);
  EXPECT_DOUBLE_EQ(d->x(1, 0), 3.25);
}

TEST(DatasetIo, SkipsBlankLines) {
  std::stringstream in("1,2\n\n-1,3\n");
  const auto d = load_csv(in);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->num_examples(), 2u);
}

TEST(DatasetIo, RejectsMalformedInput) {
  {
    std::stringstream in("");
    EXPECT_FALSE(load_csv(in).has_value());
  }
  {
    std::stringstream in("1,abc\n");
    EXPECT_FALSE(load_csv(in).has_value());
  }
  {
    std::stringstream in("1,2,3\n1,2\n");  // ragged
    EXPECT_FALSE(load_csv(in).has_value());
  }
  {
    std::stringstream in("42\n");  // label but no features
    EXPECT_FALSE(load_csv(in).has_value());
  }
  {
    std::stringstream in("1,,2\n");  // empty field
    EXPECT_FALSE(load_csv(in).has_value());
  }
  {
    std::stringstream in("1,2.5x\n");  // trailing garbage in a field
    EXPECT_FALSE(load_csv(in).has_value());
  }
}

}  // namespace
}  // namespace coupon::data
