// Whole-pipeline integration tests: the paper's data model + batching +
// BCC + Nesterov over the threaded runtime, and cross-checks between the
// analytic layer (theory), the simulator, and the runtime.

#include <gtest/gtest.h>

#include <cmath>

#include "core/core.hpp"
#include "data/data.hpp"
#include "linalg/vector_ops.hpp"
#include "opt/opt.hpp"
#include "runtime/runtime.hpp"
#include "simulate/simulate.hpp"
#include "stats/rng.hpp"

namespace coupon {
namespace {

TEST(Integration, PaperPipelineTrainsAModel) {
  // Scaled-down Section III-C: p = 60 features, m = 240 examples grouped
  // into 24 units of 10, n = 24 workers, BCC with r = 6 units (B = 4),
  // Nesterov for 60 iterations.
  stats::Rng rng(2024);
  data::SyntheticConfig dconf;
  dconf.num_features = 60;
  const auto problem = data::generate_logreg(240, dconf, rng);
  data::BatchPartition partition(240, 10);
  core::GroupedBatchSource source(problem.dataset, partition);

  core::SchemeConfig config{24, 24, 6, true};
  auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);

  runtime::ThreadCluster cluster(*scheme, source);
  opt::NesterovGradient optimizer(60,
                                  opt::LearningRateSchedule::constant(2.0));
  const double initial_loss =
      opt::logistic_loss(problem.dataset, optimizer.weights());

  runtime::TrainOptions options;
  options.iterations = 60;
  const auto result = cluster.train(optimizer, options);

  EXPECT_EQ(result.failed_iterations, 0u);
  const double final_loss =
      opt::logistic_loss(problem.dataset, result.weights);
  EXPECT_LT(final_loss, initial_loss);
  // The model is learnable: well above chance on the training set.
  EXPECT_GT(opt::accuracy(problem.dataset, result.weights), 0.6);
  // kappa = sigmoid(-x^T w*) anti-correlates labels with w*: the learned
  // direction must oppose w*.
  EXPECT_LT(linalg::dot(result.weights, problem.w_star), 0.0);
}

TEST(Integration, AllSchemesProduceTheSameModel) {
  // Distributed GD is exact for every scheme: after T iterations from the
  // same start, all five schemes agree to round-off.
  stats::Rng rng(7);
  data::SyntheticConfig dconf;
  dconf.num_features = 6;
  const auto problem = data::generate_logreg(12, dconf, rng);
  core::PerExampleSource source(problem.dataset);

  std::vector<std::vector<double>> models;
  for (const char* kind :
       {"uncoded", "bcc", "simple_random", "cr", "fr"}) {
    stats::Rng scheme_rng(99);
    core::SchemeConfig config{12, 12, 3, true};
    auto scheme =
        core::SchemeRegistry::instance().create(kind, config, scheme_rng);
    // Random placements may miss a unit at this small n: redraw, as a
    // deployment would before loading data onto the workers.
    for (int attempt = 0; attempt < 64 &&
                          !scheme->placement().covers_all_examples();
         ++attempt) {
      scheme =
          core::SchemeRegistry::instance().create(kind, config, scheme_rng);
    }
    ASSERT_TRUE(scheme->placement().covers_all_examples());
    runtime::ThreadCluster cluster(*scheme, source);
    opt::NesterovGradient optimizer(6,
                                    opt::LearningRateSchedule::constant(0.5));
    runtime::TrainOptions options;
    options.iterations = 8;
    models.push_back(cluster.train(optimizer, options).weights);
  }
  for (std::size_t k = 1; k < models.size(); ++k) {
    EXPECT_LT(linalg::max_abs_diff(models[k], models[0]), 1e-6)
        << "scheme #" << k << " diverged from uncoded";
  }
}

TEST(Integration, SimulatorKMatchesRuntimeKForDeterministicSchemes) {
  // For uncoded and CR the recovery threshold is deterministic, so the
  // simulator and the threaded runtime must agree exactly.
  stats::Rng rng(13);
  data::SyntheticConfig dconf;
  dconf.num_features = 4;
  const auto problem = data::generate_logreg(10, dconf, rng);
  core::PerExampleSource source(problem.dataset);

  for (auto [kind, expected_k] :
       {std::pair{"uncoded", 10.0}, std::pair{"cr", 8.0}}) {
    stats::Rng srng(5);
    core::SchemeConfig config{10, 10, 3, false};
    auto scheme = core::SchemeRegistry::instance().create(kind, config, srng);

    simulate::ClusterConfig cluster_config;
    const auto sim_report =
        simulate::simulate_iteration(*scheme, cluster_config, srng);
    EXPECT_DOUBLE_EQ(static_cast<double>(sim_report.workers_heard),
                     expected_k);

    runtime::ThreadCluster cluster(*scheme, source);
    opt::GradientDescent optimizer(4,
                                   opt::LearningRateSchedule::constant(0.1));
    runtime::TrainOptions options;
    options.iterations = 3;
    const auto run = cluster.train(optimizer, options);
    EXPECT_DOUBLE_EQ(run.workers_heard.mean(), expected_k);
  }
}

TEST(Integration, Fig2OrderingAcrossTheLoadRange) {
  // The Fig. 2 picture for m = n = 100, validated on the analytic layer
  // and spot-checked against scheme-level Monte Carlo.
  const std::size_t m = 100;
  for (std::size_t r : {5u, 10u, 20u, 50u}) {
    const double lower = core::theory::k_lower_bound(m, r);
    const double bcc = core::theory::k_bcc(m, r);
    const double cr = core::theory::k_cyclic_repetition(m, r);
    EXPECT_LE(lower, bcc);
    EXPECT_LT(bcc, cr) << "r=" << r;
  }
  // Spot check r = 10 against an empirical BCC run with many workers.
  stats::Rng rng(17);
  stats::OnlineStats k_mc;
  for (int trial = 0; trial < 300; ++trial) {
    core::SchemeConfig config{1000, m, 10, false};
    auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);
    auto collector = scheme->make_collector();
    for (std::size_t i = 0; i < 1000 && !collector->ready(); ++i) {
      collector->offer(i, scheme->message_meta(i), {});
    }
    ASSERT_TRUE(collector->ready());
    k_mc.add(static_cast<double>(collector->workers_heard()));
  }
  EXPECT_NEAR(k_mc.mean(), core::theory::k_bcc(m, 10), 1.5);
}

TEST(Integration, CommunicationLoadOrderingMatchesEq6VsEq14) {
  // L_simple-random blows up by ~r versus L_BCC at equal K-ish coverage.
  stats::Rng rng(19);
  const std::size_t n = 500, m = 40, r = 8;
  core::SchemeConfig config{n, m, r, false};

  auto bcc = core::SchemeRegistry::instance().create("bcc", config, rng);
  auto srs = core::SchemeRegistry::instance().create("simple_random", config, rng);

  stats::OnlineStats l_bcc, l_srs;
  for (int trial = 0; trial < 100; ++trial) {
    auto cb = bcc->make_collector();
    for (std::size_t i = 0; i < n && !cb->ready(); ++i) {
      cb->offer(i, bcc->message_meta(i), {});
    }
    l_bcc.add(cb->units_received());
    auto cs = srs->make_collector();
    for (std::size_t i = 0; i < n && !cs->ready(); ++i) {
      cs->offer(i, srs->message_meta(i), {});
    }
    l_srs.add(cs->units_received());
  }
  // Simple randomized ships r units per heard worker; BCC ships one.
  EXPECT_GT(l_srs.mean(), 2.0 * l_bcc.mean());
}

TEST(Integration, EndToEndSeedReproducibility) {
  // Identical seeds must reproduce the entire pipeline bit-for-bit.
  auto run_once = [] {
    stats::Rng rng(31415);
    data::SyntheticConfig dconf;
    dconf.num_features = 8;
    const auto problem = data::generate_logreg(16, dconf, rng);
    core::PerExampleSource source(problem.dataset);
    core::SchemeConfig config{16, 16, 4, true};
    auto scheme = core::SchemeRegistry::instance().create("bcc", config, rng);
    runtime::ThreadCluster cluster(*scheme, source);
    opt::NesterovGradient optimizer(8,
                                    opt::LearningRateSchedule::constant(0.5));
    runtime::TrainOptions options;
    options.iterations = 5;
    return cluster.train(optimizer, options).weights;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace coupon
