// Tests for the BLAS-1 kernels.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "util/assert.hpp"

namespace coupon::linalg {
namespace {

TEST(Dot, BasicAndEmpty) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(dot(std::span<const double>{}, std::span<const double>{}),
                   0.0);
}

TEST(Dot, UnrolledPathMatchesNaive) {
  // Length 11 exercises both the unrolled-by-4 loop and the remainder.
  std::vector<double> x(11), y(11);
  double expected = 0.0;
  for (int i = 0; i < 11; ++i) {
    x[i] = 0.5 * i - 2.0;
    y[i] = 1.0 / (i + 1.0);
    expected += x[i] * y[i];
  }
  EXPECT_NEAR(dot(x, y), expected, 1e-14);
}

TEST(Dot, SizeMismatchIsDebugCheckedOnly) {
  // dot/axpy/copy size checks are COUPON_DCHECK (the hot-inner-loop
  // idiom): they fire only in COUPON_ENABLE_DCHECK builds.
#ifdef COUPON_ENABLE_DCHECK
  const std::vector<double> x = {1.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(dot(x, y), coupon::AssertionError);
#else
  GTEST_SKIP() << "size checks compile out without COUPON_ENABLE_DCHECK";
#endif
}

TEST(Axpy, AccumulatesScaled) {
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 20.0};
  axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(Axpy, ZeroAlphaLeavesUntouched) {
  const std::vector<double> x = {5.0};
  std::vector<double> y = {2.0};
  axpy(0.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
}

TEST(Scal, ScalesInPlace) {
  std::vector<double> x = {1.0, -2.0, 3.0};
  scal(-2.0, x);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  EXPECT_DOUBLE_EQ(x[2], -6.0);
}

TEST(Nrm2, MatchesEuclideanNorm) {
  const std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
  EXPECT_DOUBLE_EQ(nrm2(std::span<const double>{}), 0.0);
}

TEST(Nrm2, AvoidsOverflow) {
  const std::vector<double> x = {1e200, 1e200};
  EXPECT_NEAR(nrm2(x), std::sqrt(2.0) * 1e200, 1e187);
}

TEST(Nrm2, AvoidsUnderflow) {
  const std::vector<double> x = {1e-200, 1e-200};
  EXPECT_NEAR(nrm2(x) / 1e-200, std::sqrt(2.0), 1e-12);
}

TEST(AsumSigned, SumsElements) {
  const std::vector<double> x = {1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(asum_signed(x), 2.0);
}

TEST(CopyFill, Work) {
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y(2);
  copy(x, y);
  EXPECT_EQ(y, x);
  fill(y, 7.0);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(AddSub, Elementwise) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {10.0, 20.0};
  std::vector<double> out(2);
  add(a, b, out);
  EXPECT_DOUBLE_EQ(out[0], 11.0);
  EXPECT_DOUBLE_EQ(out[1], 22.0);
  sub(b, a, out);
  EXPECT_DOUBLE_EQ(out[0], 9.0);
  EXPECT_DOUBLE_EQ(out[1], 18.0);
}

TEST(MaxAbsDiff, FindsWorstDeviation) {
  const std::vector<double> a = {1.0, 5.0, -3.0};
  const std::vector<double> b = {1.1, 5.0, -3.5};
  EXPECT_NEAR(max_abs_diff(a, b), 0.5, 1e-15);
  EXPECT_DOUBLE_EQ(
      max_abs_diff(std::span<const double>{}, std::span<const double>{}), 0.0);
}

TEST(MaxAbs, FindsLargestMagnitude) {
  const std::vector<double> a = {1.0, -5.0, 3.0};
  EXPECT_DOUBLE_EQ(max_abs(a), 5.0);
}

}  // namespace
}  // namespace coupon::linalg
