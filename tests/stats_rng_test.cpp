// Tests for the deterministic PRNG and its samplers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/rng.hpp"
#include "util/assert.hpp"

namespace coupon::stats {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsDiverge) {
  Rng parent(7);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += parent.next_u64() == child.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(7), b(7);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ca.next_u64(), cb.next_u64());
  }
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(19);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.uniform_int(8)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, 400);  // ~4 sigma
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(std::int64_t{-5}, std::int64_t{5});
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), coupon::AssertionError);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(29);
  double sum = 0.0, sumsq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalScaling) {
  Rng rng(31);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), coupon::AssertionError);
  EXPECT_THROW(rng.exponential(-1.0), coupon::AssertionError);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(47);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[i] = i;
  }
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sorted[i], i);
  }
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(53);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[i] = i;
  }
  rng.shuffle(v);
  int fixed = 0;
  for (int i = 0; i < 100; ++i) {
    fixed += v[i] == i ? 1 : 0;
  }
  EXPECT_LT(fixed, 15);  // E[fixed points] = 1
}

// Property sweep for sample_without_replacement over both code paths
// (dense k ~ n and sparse k << n).
class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SampleWithoutReplacementTest, DistinctInRangeAndRightCount) {
  const auto [n, k] = GetParam();
  Rng rng(59);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_without_replacement(n, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::size_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), k);
    for (std::size_t idx : sample) {
      EXPECT_LT(idx, n);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SampleWithoutReplacementTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{10, 0},
                      std::pair<std::size_t, std::size_t>{10, 10},
                      std::pair<std::size_t, std::size_t>{10, 3},
                      std::pair<std::size_t, std::size_t>{1000, 5},
                      std::pair<std::size_t, std::size_t>{1000, 999},
                      std::pair<std::size_t, std::size_t>{5000, 50}));

TEST(SampleWithoutReplacement, KGreaterThanNAsserts) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), coupon::AssertionError);
}

TEST(SampleWithoutReplacement, MarginalsAreUniform) {
  // Each index should appear with probability k/n.
  Rng rng(61);
  const std::size_t n = 20, k = 5;
  std::vector<int> counts(n, 0);
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t idx : rng.sample_without_replacement(n, k)) {
      ++counts[idx];
    }
  }
  const double expected = static_cast<double>(trials) * k / n;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected));
  }
}

}  // namespace
}  // namespace coupon::stats
