// Tests for the open scheme registry: built-in coverage, alias lookup,
// duplicate rejection, unknown-name diagnostics, and the single-call
// extension contract.

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/scheme_registry.hpp"
#include "core/uncoded.hpp"
#include "stats/rng.hpp"

namespace coupon::core {
namespace {

SchemeConfig small_config(std::size_t n = 8, std::size_t m = 8,
                          std::size_t r = 2) {
  SchemeConfig config;
  config.num_workers = n;
  config.num_units = m;
  config.load = r;
  return config;
}

TEST(SchemeRegistry, BuiltinsRegisteredInPresentationOrder) {
  const auto names = SchemeRegistry::instance().names();
  const std::vector<std::string> expected = {"uncoded", "fr", "cr", "bcc",
                                             "simple_random"};
  ASSERT_GE(names.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(names[i], expected[i]);
  }
  EXPECT_EQ(SchemeRegistry::instance().choices().substr(0, 13), "uncoded|fr|cr");
}

TEST(SchemeRegistry, EveryBuiltinIsConstructible) {
  for (const auto& name : {"uncoded", "fr", "cr", "bcc", "simple_random"}) {
    stats::Rng rng(7);
    auto scheme =
        SchemeRegistry::instance().create(name, small_config(), rng);
    ASSERT_NE(scheme, nullptr) << name;
    EXPECT_EQ(scheme->num_workers(), 8u);
  }
}

TEST(SchemeRegistry, AliasLookupFindsCanonicalEntry) {
  const auto& registry = SchemeRegistry::instance();
  const SchemeEntry* by_alias = registry.find("batched_coupon_collection");
  ASSERT_NE(by_alias, nullptr);
  EXPECT_EQ(by_alias->name, "bcc");
  EXPECT_EQ(registry.find("srs"), registry.find("simple_random"));
  EXPECT_EQ(registry.find("cyclic_repetition"), registry.find("cr"));
  EXPECT_EQ(registry.find("fractional_repetition"), registry.find("fr"));
  // Lookups are case-sensitive and exact.
  EXPECT_EQ(registry.find("BCC"), nullptr);
  EXPECT_EQ(registry.find(""), nullptr);
  EXPECT_EQ(registry.find("bogus"), nullptr);
}

TEST(SchemeRegistry, UnknownNameDiagnosticListsValidChoices) {
  stats::Rng rng(1);
  try {
    SchemeRegistry::instance().create("bogus", small_config(), rng);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("bogus"), std::string::npos);
    EXPECT_NE(message.find("choices"), std::string::npos);
    EXPECT_NE(message.find("uncoded"), std::string::npos);
    EXPECT_NE(message.find("bcc"), std::string::npos);
  }
}

TEST(SchemeRegistry, UnknownNameDiagnosticSuggestsNearestScheme) {
  const std::string message =
      SchemeRegistry::instance().unknown_message("bfc");
  EXPECT_NE(message.find("did you mean 'bcc'?"), std::string::npos)
      << message;
  // A name far from every registered scheme gets no suggestion.
  const std::string far = SchemeRegistry::instance().unknown_message("zzzzz");
  EXPECT_EQ(far.find("did you mean"), std::string::npos) << far;
}

TEST(SchemeRegistry, DuplicateNamesAndAliasesRejected) {
  auto& registry = SchemeRegistry::instance();
  SchemeEntry entry;
  entry.factory = [](const SchemeConfig& c, stats::Rng&) {
    return std::make_unique<UncodedScheme>(c.num_workers, c.num_units);
  };

  entry.name = "bcc";  // canonical-name collision
  EXPECT_THROW(registry.add(entry), std::invalid_argument);

  entry.name = "srs";  // collides with an existing alias
  EXPECT_THROW(registry.add(entry), std::invalid_argument);

  entry.name = "fresh_name";
  entry.aliases = {"uncoded"};  // alias collides with a canonical name
  EXPECT_THROW(registry.add(entry), std::invalid_argument);

  entry.aliases = {};
  entry.name = "";  // unnamed
  EXPECT_THROW(registry.add(entry), std::invalid_argument);

  entry.name = "fresh_name";
  entry.factory = nullptr;  // no factory
  EXPECT_THROW(registry.add(entry), std::invalid_argument);
}

TEST(SchemeRegistry, CapabilityFlagsMatchTheSchemes) {
  const auto& registry = SchemeRegistry::instance();
  EXPECT_TRUE(registry.find("bcc")->caps.supports_partial_decode);
  EXPECT_TRUE(registry.find("uncoded")->caps.supports_partial_decode);
  EXPECT_TRUE(registry.find("fr")->caps.supports_partial_decode);
  EXPECT_FALSE(registry.find("cr")->caps.supports_partial_decode);
  EXPECT_TRUE(registry.find("cr")->caps.requires_units_equal_workers);
  EXPECT_TRUE(registry.find("fr")->caps.requires_load_divides_workers);
  EXPECT_FALSE(registry.find("bcc")->caps.requires_units_equal_workers);

  // The capability flag agrees with what the collectors actually do.
  for (const auto& name : registry.names()) {
    const SchemeEntry* entry = registry.find(name);
    stats::Rng rng(3);
    auto scheme = registry.create(name, small_config(), rng);
    EXPECT_EQ(scheme->make_collector()->supports_partial_decode(),
              entry->caps.supports_partial_decode)
        << name;
  }
}

TEST(SchemeRegistry, SingleRegistrationCallAddsARunnableScheme) {
  // The extension contract: one registration call (no enum/switch/name
  // table edits) and the scheme is creatable by name like any built-in.
  auto& registry = SchemeRegistry::instance();
  if (registry.find("test_uncoded_clone") == nullptr) {
    SchemeRegistration registration(
        {.name = "test_uncoded_clone",
         .aliases = {"test_uc"},
         .description = "uncoded under a new name (test scheme)",
         .caps = {.supports_partial_decode = true},
         .factory = [](const SchemeConfig& c, stats::Rng&) {
           return std::make_unique<UncodedScheme>(c.num_workers,
                                                  c.num_units);
         }});
  }
  stats::Rng rng(5);
  auto scheme = registry.create("test_uc", small_config(4, 6, 1), rng);
  ASSERT_NE(scheme, nullptr);
  EXPECT_EQ(scheme->registry_name(), "uncoded");
  EXPECT_EQ(scheme->num_units(), 6u);
}

TEST(SchemeRegistry, RegistryNamesRoundTripThroughTheSchemes) {
  // Every built-in instance reports the canonical name it was created
  // under, so records and diagnostics can always map back to the entry.
  for (const auto& name : SchemeRegistry::instance().names()) {
    stats::Rng rng(11);
    auto scheme = SchemeRegistry::instance().create(name, small_config(), rng);
    EXPECT_EQ(scheme->registry_name(), name);
    const SchemeEntry* entry =
        SchemeRegistry::instance().find(scheme->registry_name());
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_EQ(entry->name, name);
  }
}

TEST(SchemeRegistry, SameSeedSameDraws) {
  // Creating the same scheme twice from the same seed builds the same
  // placement (the factory draws all randomness from the passed rng).
  stats::Rng rng_a(11);
  stats::Rng rng_b(11);
  const auto config = small_config(10, 10, 3);
  auto first = SchemeRegistry::instance().create("bcc", config, rng_a);
  auto second = SchemeRegistry::instance().create("bcc", config, rng_b);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->registry_name(), second->registry_name());
  for (std::size_t w = 0; w < 10; ++w) {
    EXPECT_EQ(first->message_meta(w), second->message_meta(w)) << w;
  }
}

}  // namespace
}  // namespace coupon::core
