// Gates the analytic oracle (src/analytic/, DESIGN.md §10) against hand
// calculations, closed forms, and the discrete-event simulator itself:
//
//   * coverage profiles vs brute-force subset enumeration at small n;
//   * both order-statistic engines (Steck/Noé quadrature, Lindley grid)
//     vs each other and vs the R = 2 closed form;
//   * E[X_(k)] vs theory.hpp's Rényi harmonic formula, and the
//     asymptotic coupon-collector limit vs the exact finite-n profile;
//   * the headline gate — for every scheme x shifted_exp x drop rate,
//     the Monte-Carlo sample mean of simulate_run must agree with the
//     oracle's exact E[T] / E[K] / failure rate within z * sem;
//   * stateful (markov) and mixture (bimodal) laws, and pareto;
//   * determinism (bitwise-equal repeated calls) and the unsupported
//     diagnostics;
//   * the auto-tuner: predicted ranking matches the measured ranking on
//     the paper's scenario-one grid.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "analytic/coverage.hpp"
#include "analytic/dist.hpp"
#include "analytic/order_stats.hpp"
#include "analytic/predictor.hpp"
#include "analytic/scheme_model.hpp"
#include "core/scheme_registry.hpp"
#include "core/theory.hpp"
#include "driver/driver.hpp"
#include "driver/predict.hpp"
#include "simulate/cluster_sim.hpp"
#include "simulate/experiment.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace {

using coupon::analytic::ComputeDist;
using coupon::analytic::Prediction;

std::unique_ptr<coupon::core::Scheme> make_scheme(const std::string& name,
                                                  std::size_t n, std::size_t m,
                                                  std::size_t r,
                                                  std::uint64_t seed) {
  coupon::core::SchemeConfig config;
  config.num_workers = n;
  config.num_units = m;
  config.load = r;
  coupon::stats::Rng rng(seed);
  return coupon::core::SchemeRegistry::instance().create(name, config, rng);
}

// --- coverage profiles ----------------------------------------------------

// Brute force: P(a uniform j-subset covers every group), by enumerating
// all 2^n subsets.
std::vector<double> brute_force_partition(
    std::size_t n, const std::vector<std::size_t>& group_sizes) {
  std::vector<std::size_t> group_of;
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    for (std::size_t i = 0; i < group_sizes[g]; ++i) {
      group_of.push_back(g);
    }
  }
  std::vector<double> covering(n + 1, 0.0);
  std::vector<double> total(n + 1, 0.0);
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<bool> hit(group_sizes.size(), false);
    std::size_t size = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) {
        ++size;
        hit[group_of[i]] = true;
      }
    }
    total[size] += 1.0;
    if (std::all_of(hit.begin(), hit.end(), [](bool b) { return b; })) {
      covering[size] += 1.0;
    }
  }
  std::vector<double> a(n + 1, 0.0);
  for (std::size_t j = 0; j <= n; ++j) {
    a[j] = covering[j] / total[j];
  }
  return a;
}

TEST(AnalyticCoverage, PartitionHandCalcAndBruteForce) {
  // n = 4, two groups of 2: A[2] = 1 - P(both picks in one group)
  //                              = 1 - 2/C(4,2) = 2/3.
  const auto a = coupon::analytic::coverage_partition(4, {2, 2});
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
  EXPECT_NEAR(a[2], 2.0 / 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(a[3], 1.0);
  EXPECT_DOUBLE_EQ(a[4], 1.0);

  for (const auto& sizes :
       {std::vector<std::size_t>{2, 2, 2}, std::vector<std::size_t>{1, 2, 3},
        std::vector<std::size_t>{4, 1, 1, 2}}) {
    std::size_t n = 0;
    for (std::size_t s : sizes) {
      n += s;
    }
    const auto exact = coupon::analytic::coverage_partition(n, sizes);
    const auto brute = brute_force_partition(n, sizes);
    for (std::size_t j = 0; j <= n; ++j) {
      EXPECT_NEAR(exact[j], brute[j], 1e-12) << "j=" << j;
    }
  }
}

TEST(AnalyticCoverage, ZeroSizeGroupNeverCovers) {
  const auto a = coupon::analytic::coverage_partition(4, {2, 2, 0});
  for (double value : a) {
    EXPECT_DOUBLE_EQ(value, 0.0);
  }
}

TEST(AnalyticCoverage, UnionMasksHandCalc) {
  // Workers cover units {0}, {1}, {0,1}: a single worker covers both
  // units only via the third (1/3); every pair covers.
  const auto a = coupon::analytic::coverage_union_masks({0b01, 0b10, 0b11}, 2);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_NEAR(a[1], 1.0 / 3.0, 1e-15);
  EXPECT_DOUBLE_EQ(a[2], 1.0);
  EXPECT_DOUBLE_EQ(a[3], 1.0);
}

TEST(AnalyticCoverage, UnionMasksMatchesPartition) {
  // Disjoint unit masks are exactly a partition structure.
  const std::vector<std::uint64_t> masks = {0b001, 0b001, 0b010,
                                            0b010, 0b100, 0b100};
  const auto by_masks = coupon::analytic::coverage_union_masks(masks, 3);
  const auto by_partition = coupon::analytic::coverage_partition(6, {2, 2, 2});
  for (std::size_t j = 0; j <= 6; ++j) {
    EXPECT_NEAR(by_masks[j], by_partition[j], 1e-12) << "j=" << j;
  }
}

TEST(AnalyticCoverage, BinomialRowExact) {
  const auto row = coupon::analytic::binomial_row(10);
  const double expected[] = {1,  10, 45, 120, 210, 252,
                             210, 120, 45, 10,  1};
  for (std::size_t k = 0; k <= 10; ++k) {
    EXPECT_DOUBLE_EQ(row[k], expected[k]) << "k=" << k;
  }
}

// Satellite: the exact finite-n partition profile converges to the
// classic with-replacement coupon collector, E[K] -> B * H_B, as the
// number of workers per block grows (Remark 1's asymptotic regime).
TEST(AnalyticCoverage, BalancedPartitionConvergesToCouponCollector) {
  constexpr std::size_t kBlocks = 4;
  const double limit = coupon::core::theory::coupon_expected_draws(kBlocks);
  double previous_gap = std::numeric_limits<double>::infinity();
  for (std::size_t per_block : {4u, 16u, 64u}) {
    const std::size_t n = kBlocks * per_block;
    const auto a = coupon::analytic::coverage_partition(
        n, std::vector<std::size_t>(kBlocks, per_block));
    double expected_k = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
      expected_k += static_cast<double>(k) * (a[k] - a[k - 1]);
    }
    const double gap = std::abs(expected_k - limit);
    EXPECT_LT(gap, previous_gap) << "n=" << n;
    previous_gap = gap;
  }
  // Without-replacement draws cover slightly faster; at 64 workers per
  // block the finite-n correction is already under 2%.
  EXPECT_LT(previous_gap / limit, 0.02);
}

// --- order-statistic engines ----------------------------------------------

TEST(AnalyticOrderStats, CompletionMeanClosedFormAtTwoDraws) {
  // R = 2: c_2 = max(t_(1) + s, t_(2)) + s and the Rényi gap is
  // Exp(rate), so E[c_2] = b + shift + 1/(2 rate) + 2 s + e^{-rate s}/rate.
  const double shift = 0.01, rate = 40.0, s = 0.02, b = 0.005;
  const double closed_form =
      b + shift + 1.0 / (2.0 * rate) + 2.0 * s + std::exp(-rate * s) / rate;
  const auto dist =
      ComputeDist::shifted_exp_mixture({{1.0, shift, rate}});
  const double by_quadrature =
      coupon::analytic::completion_mean_quadrature(dist, 2, 2, s, b);
  EXPECT_NEAR(by_quadrature, closed_form, 1e-9 * closed_form);
  const auto by_lindley =
      coupon::analytic::expected_completions_shifted_exp(shift, rate, 2, s, b);
  EXPECT_NEAR(by_lindley[1], closed_form, 2e-4 * closed_form);
}

TEST(AnalyticOrderStats, LindleyMatchesQuadrature) {
  const double shift = 0.01, rate = 95.0, s = 0.0032, b = 0.0;
  const std::size_t draws = 7;
  const auto dist =
      ComputeDist::shifted_exp_mixture({{1.0, shift, rate}});
  const auto lindley = coupon::analytic::expected_completions_shifted_exp(
      shift, rate, draws, s, b);
  ASSERT_EQ(lindley.size(), draws);
  for (std::size_t k = 1; k <= draws; ++k) {
    const double exact = coupon::analytic::completion_mean_quadrature(
        dist, draws, k, s, b);
    EXPECT_NEAR(lindley[k - 1], exact, 1e-3 * exact) << "k=" << k;
  }
}

TEST(AnalyticOrderStats, KthOrderStatisticMatchesHarmonicFormula) {
  // Satellite: the oracle's numeric E[X_(k)] reproduces theory.hpp's
  // exact Rényi harmonic form (and its k = n max special case).
  const double a = 1e-3, mu = 950.0;
  for (const std::size_t load : {1u, 10u}) {
    const auto dist = ComputeDist::shifted_exp_mixture(
        {{1.0, a * static_cast<double>(load),
          mu / static_cast<double>(load)}});
    for (const std::size_t n : {1u, 5u, 20u}) {
      for (std::size_t k = 1; k <= n; k += 2) {
        const double numeric =
            coupon::analytic::expected_kth_order_statistic(dist, n, k);
        const double exact =
            coupon::core::theory::expected_kth_order_statistic_shifted_exp(
                a, mu, static_cast<double>(load), n, k);
        EXPECT_NEAR(numeric, exact, 1e-8 * exact)
            << "n=" << n << " k=" << k << " r=" << load;
      }
    }
  }
}

TEST(AnalyticOrderStats, CompletionCdfIsADistribution) {
  const auto dist = ComputeDist::shifted_exp_mixture({{1.0, 0.02, 30.0}});
  const double s = 0.01, b = 0.001;
  double previous = 0.0;
  for (double x = 0.0; x <= 1.0; x += 0.02) {
    const double p = coupon::analytic::completion_cdf(dist, 5, 3, s, b, x);
    EXPECT_GE(p, previous - 1e-12);
    EXPECT_LE(p, 1.0 + 1e-12);
    previous = p;
  }
  // Below the hard floor b + shift + k*s the mass is exactly zero.
  EXPECT_DOUBLE_EQ(
      coupon::analytic::completion_cdf(dist, 5, 3, s, b, 0.02 + 3 * 0.01),
      0.0);
  EXPECT_GT(coupon::analytic::completion_cdf(dist, 5, 3, s, b, 1.0), 0.999);
}

// --- the sim-vs-analytic gate ---------------------------------------------

struct SimMoments {
  coupon::stats::OnlineStats time;
  coupon::stats::OnlineStats workers;
  double failure_rate = 0.0;
  std::size_t iterations = 0;
};

SimMoments run_sim(const coupon::core::Scheme& scheme,
                   const coupon::simulate::ClusterConfig& cluster,
                   std::size_t iterations, std::uint64_t seed) {
  coupon::stats::Rng rng(seed);
  coupon::simulate::RunOptions options;
  options.iterations = iterations;
  options.record_trace = true;
  const auto report =
      coupon::simulate::simulate_run(scheme, cluster, options, rng);
  SimMoments moments;
  moments.iterations = iterations;
  for (const auto& it : report.iterations) {
    moments.time.add(it.total_time);
    moments.workers.add(static_cast<double>(it.workers_heard));
  }
  moments.failure_rate = static_cast<double>(report.failures) /
                         static_cast<double>(iterations);
  return moments;
}

// z * sem gate (z = 5: one-in-3.5-million false-positive odds per
// comparison), with a tiny absolute floor for exactly-deterministic
// quantities (e.g. K under a wait-for-all scheme).
void expect_within_noise(double sample_mean, double exact, double sem,
                         const std::string& what) {
  EXPECT_NEAR(sample_mean, exact, 5.0 * sem + 1e-9) << what;
}

TEST(AnalyticOracleGate, EverySchemeMatchesSimulationAcrossDropRates) {
  constexpr std::size_t kN = 12, kM = 12, kR = 3;
  constexpr std::size_t kIterations = 30000;
  for (const std::string scheme_name :
       {"uncoded", "cr", "fr", "bcc", "simple_random"}) {
    const auto scheme = make_scheme(scheme_name, kN, kM, kR, 7);
    for (const double drop : {0.0, 0.1, 0.3}) {
      coupon::simulate::ClusterConfig cluster;
      cluster.compute_shift = 1e-3;
      cluster.compute_straggle = 50.0;
      cluster.unit_transfer_seconds = 2e-3;
      cluster.broadcast_seconds = 1e-4;
      cluster.drop_probability = drop;

      std::string reason;
      coupon::analytic::PredictOptions options;
      options.quantiles = false;
      const auto prediction =
          coupon::analytic::predict(*scheme, cluster, options, &reason);
      ASSERT_TRUE(prediction.has_value())
          << scheme_name << " drop=" << drop << ": " << reason;

      const auto sim = run_sim(*scheme, cluster, kIterations,
                               0x9000 + static_cast<std::uint64_t>(10 * drop));
      const std::string tag = scheme_name + " drop=" + std::to_string(drop);
      expect_within_noise(sim.time.mean(), prediction->expected_time,
                          sim.time.sem(), tag + " E[T]");
      expect_within_noise(sim.workers.mean(), prediction->expected_workers,
                          sim.workers.sem(), tag + " E[K]");
      const double p = prediction->failure_probability;
      const double fail_sem =
          std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                    static_cast<double>(kIterations));
      expect_within_noise(sim.failure_rate, p, fail_sem, tag + " P(fail)");
    }
  }
}

TEST(AnalyticOracleGate, MarkovStationaryLawMatchesLongRunSimulation) {
  // The markov model initializes every worker from the stationary law,
  // so the per-iteration marginal is an exact two-component mixture;
  // cross-iteration correlation only widens the sample mean's effective
  // sem, hence the 12x (instead of 5x) gate.
  constexpr std::size_t kN = 10;
  constexpr std::size_t kIterations = 50000;
  coupon::simulate::ClusterConfig cluster;
  cluster.unit_transfer_seconds = 1e-3;
  cluster.latency_model = [](std::size_t n) {
    return std::make_unique<coupon::simulate::MarkovStragglerModel>(
        n, 1e-3, 50.0, 10.0, 0.05, 0.25);
  };
  const auto scheme = make_scheme("cr", kN, kN, 3, 11);
  std::string reason;
  coupon::analytic::PredictOptions options;
  options.quantiles = false;
  const auto prediction =
      coupon::analytic::predict(*scheme, cluster, options, &reason);
  ASSERT_TRUE(prediction.has_value()) << reason;
  const auto sim = run_sim(*scheme, cluster, kIterations, 0xAB);
  EXPECT_NEAR(sim.time.mean(), prediction->expected_time,
              12.0 * sim.time.sem());
  EXPECT_NEAR(sim.workers.mean(), prediction->expected_workers, 1e-9);
}

TEST(AnalyticOracleGate, BimodalMixtureMatchesSimulation) {
  constexpr std::size_t kIterations = 30000;
  coupon::simulate::ClusterConfig cluster;
  cluster.unit_transfer_seconds = 1e-3;
  cluster.latency_model = [](std::size_t) {
    return std::make_unique<coupon::simulate::BimodalSlowdownModel>(
        1e-3, 50.0, 0.1, 10.0);
  };
  const auto scheme = make_scheme("fr", 8, 8, 2, 3);
  std::string reason;
  coupon::analytic::PredictOptions options;
  options.quantiles = false;
  const auto prediction =
      coupon::analytic::predict(*scheme, cluster, options, &reason);
  ASSERT_TRUE(prediction.has_value()) << reason;
  const auto sim = run_sim(*scheme, cluster, kIterations, 0xBD);
  expect_within_noise(sim.time.mean(), prediction->expected_time,
                      sim.time.sem(), "bimodal E[T]");
  expect_within_noise(sim.workers.mean(), prediction->expected_workers,
                      sim.workers.sem(), "bimodal E[K]");
}

TEST(AnalyticOracleGate, ParetoMatchesClosedFormAndSimulation) {
  // R = 1: c_1 = b + X + s exactly, so the completion CDF must equal the
  // compute CDF shifted by b + s.
  const auto dist = ComputeDist::pareto(2e-3, 2.5);
  const double s = 1e-3, b = 5e-4;
  for (double x : {3e-3, 5e-3, 2e-2, 0.5}) {
    EXPECT_NEAR(coupon::analytic::completion_cdf(dist, 1, 1, s, b, x),
                dist.cdf(x - b - s), 1e-12);
  }
  // And the full pipeline against the simulator (shape 2.5: finite
  // variance, so the CLT sem gate applies).
  constexpr std::size_t kIterations = 30000;
  coupon::simulate::ClusterConfig cluster;
  cluster.unit_transfer_seconds = 1e-3;
  cluster.latency_model = [](std::size_t) {
    return std::make_unique<coupon::simulate::ParetoModel>(2e-3, 2.5);
  };
  const auto scheme = make_scheme("bcc", 8, 8, 2, 5);
  std::string reason;
  coupon::analytic::PredictOptions options;
  options.quantiles = false;
  const auto prediction =
      coupon::analytic::predict(*scheme, cluster, options, &reason);
  ASSERT_TRUE(prediction.has_value()) << reason;
  const auto sim = run_sim(*scheme, cluster, kIterations, 0xCE);
  expect_within_noise(sim.time.mean(), prediction->expected_time,
                      sim.time.sem(), "pareto E[T]");
}

// --- determinism and diagnostics ------------------------------------------

TEST(AnalyticOracle, RepeatedCallsAreBitwiseIdentical) {
  const auto scheme = make_scheme("bcc", 20, 20, 4, 42);
  coupon::simulate::ClusterConfig cluster;
  cluster.compute_straggle = 80.0;
  cluster.drop_probability = 0.05;
  const auto first = coupon::analytic::predict(*scheme, cluster);
  const auto second = coupon::analytic::predict(*scheme, cluster);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->expected_time, second->expected_time);
  EXPECT_EQ(first->expected_workers, second->expected_workers);
  EXPECT_EQ(first->failure_probability, second->failure_probability);
  EXPECT_EQ(first->p50, second->p50);
  EXPECT_EQ(first->p95, second->p95);
  EXPECT_EQ(first->p99, second->p99);
  EXPECT_LE(first->p50, first->p95);
  EXPECT_LE(first->p95, first->p99);
}

TEST(AnalyticOracle, UnsupportedPairsExplainThemselves) {
  std::string reason;
  coupon::analytic::PredictOptions options;
  options.quantiles = false;

  // Heterogeneous per-worker latency breaks exchangeability.
  {
    const auto scheme = make_scheme("cr", 4, 4, 2, 1);
    coupon::simulate::ClusterConfig cluster;
    cluster.worker_overrides.assign(4, {1e-3, 1.0});
    cluster.worker_overrides[0].compute_straggle = 5.0;
    EXPECT_FALSE(coupon::analytic::predict(*scheme, cluster, options, &reason)
                     .has_value());
    EXPECT_NE(reason.find("non-iid"), std::string::npos) << reason;
  }

  // An opaque (out-of-tree) latency model has no analytic law.
  {
    struct OpaqueModel final : coupon::simulate::LatencyModel {
      std::string_view name() const override { return "opaque"; }
      double sample_compute_seconds(const coupon::simulate::LatencyContext&,
                                    coupon::stats::Rng&) override {
        return 1.0;
      }
    };
    const auto scheme = make_scheme("cr", 4, 4, 2, 1);
    coupon::simulate::ClusterConfig cluster;
    cluster.latency_model = [](std::size_t) {
      return std::make_unique<OpaqueModel>();
    };
    EXPECT_FALSE(coupon::analytic::predict(*scheme, cluster, options, &reason)
                     .has_value());
    EXPECT_FALSE(reason.empty());
  }

  // simple_random beyond the exact 2^n enumeration bound.
  {
    const auto scheme = make_scheme("simple_random", 30, 30, 3, 1);
    coupon::simulate::ClusterConfig cluster;
    EXPECT_FALSE(coupon::analytic::predict(*scheme, cluster, options, &reason)
                     .has_value());
    EXPECT_NE(reason.find("simple_random"), std::string::npos) << reason;
  }
}

// --- closed-form family corners -------------------------------------------

TEST(AnalyticDist, WeibullLawReducesExactly) {
  coupon::simulate::LatencyLaw law;
  law.family = coupon::simulate::LatencyLaw::Family::kWeibull;
  law.shape = 1.7;
  law.scale_per_unit = 0.05;
  std::string reason;
  const auto dist = ComputeDist::from_law(law, 4.0, &reason);
  ASSERT_TRUE(dist.has_value()) << reason;
  EXPECT_FALSE(dist->is_pure_shifted_exp());
  const coupon::stats::Weibull ref{1.7, 0.05 * 4.0};
  EXPECT_DOUBLE_EQ(dist->cdf(0.1), ref.cdf(0.1));
  EXPECT_DOUBLE_EQ(dist->mean(), ref.mean());
  EXPECT_DOUBLE_EQ(dist->support_min(), 0.0);
  // The Weibull bracket is the exact (1 - eps)-quantile, so the tail sits
  // right on eps up to rounding.
  const double x = dist->upper_bracket(1e-6);
  EXPECT_LE(1.0 - dist->cdf(x), 1e-6 * (1.0 + 1e-9));
}

TEST(AnalyticDist, MeansMatchTheClosedForms) {
  const auto mix = ComputeDist::shifted_exp_mixture(
      {{0.25, 0.1, 2.0}, {0.75, 0.3, 0.5}});
  EXPECT_NEAR(mix.mean(), 0.25 * (0.1 + 0.5) + 0.75 * (0.3 + 2.0), 1e-12);
  const auto par = ComputeDist::pareto(0.2, 2.5);
  const coupon::stats::Pareto ref{0.2, 2.5};
  EXPECT_DOUBLE_EQ(par.mean(), ref.mean());
}

TEST(AnalyticDist, DegenerateMixtureWeightsCollapse) {
  // slow_probability 0 and 1 both collapse the bimodal mixture to one
  // pure shifted-exp component (the all-slow one scaled by the factor).
  coupon::simulate::LatencyLaw law;
  law.family = coupon::simulate::LatencyLaw::Family::kBimodal;
  law.compute_shift = 1e-3;
  law.compute_straggle = 40.0;
  law.slow_factor = 5.0;
  law.slow_probability = 0.0;
  std::string reason;
  const auto fast = ComputeDist::from_law(law, 2.0, &reason);
  ASSERT_TRUE(fast.has_value()) << reason;
  EXPECT_TRUE(fast->is_pure_shifted_exp());
  law.slow_probability = 1.0;
  const auto slow = ComputeDist::from_law(law, 2.0, &reason);
  ASSERT_TRUE(slow.has_value()) << reason;
  EXPECT_TRUE(slow->is_pure_shifted_exp());
  EXPECT_NEAR(slow->mean(), 5.0 * fast->mean(), 1e-12);
}

TEST(AnalyticDist, HeavyTailWithoutAMeanIsRefused) {
  coupon::simulate::LatencyLaw law;
  law.family = coupon::simulate::LatencyLaw::Family::kPareto;
  law.scale_per_unit = 0.1;
  law.shape = 1.0;  // E[X] diverges at shape <= 1
  std::string reason;
  EXPECT_FALSE(ComputeDist::from_law(law, 2.0, &reason).has_value());
  EXPECT_NE(reason.find("no finite mean"), std::string::npos) << reason;
}

// --- scheme-model validation corners ---------------------------------------

TEST(AnalyticSchemeModel, WrongConcreteTypeIsDeclinedByEveryModel) {
  // Each model dynamic_casts to the built-in implementation it knows how
  // to reduce; an out-of-tree scheme squatting on a registered name must
  // get a reason, not a bogus profile.
  const auto& registry = coupon::analytic::AnalyticModelRegistry::instance();
  const auto cr = make_scheme("cr", 6, 6, 2, 3);
  const auto uncoded = make_scheme("uncoded", 6, 6, 2, 3);
  for (const auto& name : registry.names()) {
    const auto* model = registry.find(name);
    ASSERT_NE(model, nullptr) << name;
    const coupon::core::Scheme& impostor = (name == "cr") ? *uncoded : *cr;
    const auto result = model->coverage_profile(impostor);
    EXPECT_FALSE(result.profile.has_value()) << name;
    EXPECT_NE(result.reason.find("is not the built-in"), std::string::npos)
        << name << ": " << result.reason;
  }
}

TEST(AnalyticSchemeModel, UnequalLoadsAreDeclinedWithTheSizes) {
  // uncoded with n not dividing m leaves some workers one unit heavier:
  // compute times are no longer iid and the reduction must refuse.
  const auto scheme = make_scheme("uncoded", 5, 7, 1, 3);
  const auto* model =
      coupon::analytic::AnalyticModelRegistry::instance().find("uncoded");
  ASSERT_NE(model, nullptr);
  const auto result = model->coverage_profile(*scheme);
  EXPECT_FALSE(result.profile.has_value());
  EXPECT_NE(result.reason.find("unequal per-worker loads"), std::string::npos)
      << result.reason;

  // BCC with r not dividing m gets unequal batch sizes (50 = 2*20 + 10),
  // so realized worker loads differ too — the bench tables render "-".
  const auto bcc = make_scheme("bcc", 50, 50, 20, 3);
  const auto* bcc_model =
      coupon::analytic::AnalyticModelRegistry::instance().find("bcc");
  ASSERT_NE(bcc_model, nullptr);
  const auto bcc_result = bcc_model->coverage_profile(*bcc);
  EXPECT_FALSE(bcc_result.profile.has_value());
  EXPECT_NE(bcc_result.reason.find("unequal per-worker loads"),
            std::string::npos)
      << bcc_result.reason;
}

TEST(AnalyticSchemeModel, RegistryRejectsNullAndDuplicateModels) {
  auto& registry = coupon::analytic::AnalyticModelRegistry::instance();
  EXPECT_THROW(registry.add(nullptr), std::invalid_argument);
  class Dup final : public coupon::analytic::SchemeRuntimeModel {
   public:
    std::string_view scheme_name() const override { return "uncoded"; }
    std::string_view description() const override { return "dup"; }
    coupon::analytic::SchemeModelResult coverage_profile(
        const coupon::core::Scheme&) const override {
      return {};
    }
  };
  EXPECT_THROW(registry.add(std::make_unique<Dup>()), std::invalid_argument);
}

// --- extreme drop rates ----------------------------------------------------

TEST(AnalyticPredictor, ExtremeDropRatesStayExact) {
  // drop > 0.5 exercises the light-end binomial recurrence; the sim
  // cross-check keeps it honest.
  const auto scheme = make_scheme("cr", 8, 8, 2, 11);
  coupon::simulate::ClusterConfig cluster;
  cluster.compute_shift = 1e-3;
  cluster.compute_straggle = 50.0;
  cluster.unit_transfer_seconds = 2e-3;
  cluster.broadcast_seconds = 1e-4;
  cluster.drop_probability = 0.6;
  std::string reason;
  const auto heavy = coupon::analytic::predict(*scheme, cluster, {}, &reason);
  ASSERT_TRUE(heavy.has_value()) << reason;
  EXPECT_GT(heavy->failure_probability, 0.05);
  const auto sim = run_sim(*scheme, cluster, 20000, 0xD00D);
  expect_within_noise(sim.time.mean(), heavy->expected_time, sim.time.sem(),
                      "drop=0.6 E[T]");

  // drop = 1: every iteration is the R = 0 atom — T = 0, guaranteed
  // coverage failure, and every quantile collapses to zero.
  cluster.drop_probability = 1.0;
  const auto none = coupon::analytic::predict(*scheme, cluster, {}, &reason);
  ASSERT_TRUE(none.has_value()) << reason;
  EXPECT_DOUBLE_EQ(none->expected_time, 0.0);
  EXPECT_DOUBLE_EQ(none->failure_probability, 1.0);
  EXPECT_TRUE(none->has_quantiles);
  EXPECT_DOUBLE_EQ(none->p99, 0.0);
}

TEST(AnalyticOracle, RegistryCoversEveryBuiltInScheme) {
  auto& registry = coupon::analytic::AnalyticModelRegistry::instance();
  for (const std::string& name :
       coupon::core::SchemeRegistry::instance().names()) {
    const auto* model = registry.find(name);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->scheme_name(), name);
    EXPECT_FALSE(model->description().empty());
  }
}

// --- the auto-tuner -------------------------------------------------------

TEST(AnalyticPredictor, RankingMatchesMeasuredOrderOnScenarioOne) {
  // Paper Table I grid: n = m = 50, r = 10, schemes uncoded / cr / bcc.
  // The predicted E[T] ordering must match the measured ordering of
  // 400-iteration simulated runs built with identical seeding.
  const auto scenario = coupon::simulate::ec2_scenario_one();
  constexpr std::size_t kIterations = 400;
  std::vector<std::pair<std::string, double>> measured;
  std::vector<std::pair<std::string, double>> predicted;
  for (const std::string name : {"uncoded", "cr", "bcc"}) {
    const auto scheme = make_scheme(name, scenario.num_workers,
                                    scenario.num_units, scenario.load,
                                    scenario.seed);
    coupon::analytic::PredictOptions options;
    options.quantiles = false;
    std::string reason;
    const auto prediction = coupon::analytic::predict(*scheme,
                                                      scenario.cluster,
                                                      options, &reason);
    ASSERT_TRUE(prediction.has_value()) << name << ": " << reason;
    predicted.emplace_back(name, prediction->expected_time);
    const auto sim =
        run_sim(*scheme, scenario.cluster, kIterations, scenario.seed);
    measured.emplace_back(name, sim.time.mean());
  }
  const auto by_time = [](const auto& a, const auto& b) {
    return a.second < b.second;
  };
  std::sort(measured.begin(), measured.end(), by_time);
  std::sort(predicted.begin(), predicted.end(), by_time);
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_EQ(measured[i].first, predicted[i].first) << "rank " << i;
  }
  EXPECT_EQ(predicted.front().first, "bcc");
}

TEST(AnalyticPredictor, RankDeduplicatesAndReportsUnsupported) {
  coupon::simulate::ClusterConfig cluster;
  const coupon::analytic::Predictor predictor(
      cluster, [](const coupon::analytic::CandidateSpec& spec,
                  std::string* reason) -> std::unique_ptr<coupon::core::Scheme> {
        coupon::core::SchemeConfig config;
        config.num_workers = 12;
        config.num_units = 12;
        config.load = spec.load;
        coupon::stats::Rng rng(3);
        try {
          return coupon::core::SchemeRegistry::instance().create(spec.scheme,
                                                                 config, rng);
        } catch (const std::exception& error) {
          if (reason != nullptr) {
            *reason = error.what();
          }
          return nullptr;
        }
      });
  // uncoded ignores the requested r (its realized load is m/n), so the
  // two candidates collapse to one row; fr at r = 5 (5 does not divide
  // 12) is structurally invalid and must surface a reason.
  std::vector<coupon::analytic::UnsupportedCandidate> unsupported;
  const auto ranked = predictor.rank({{"uncoded", 2},
                                      {"uncoded", 3},
                                      {"fr", 5}},
                                     {}, 0, &unsupported);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].scheme, "uncoded");
  ASSERT_EQ(unsupported.size(), 1u);
  EXPECT_EQ(unsupported[0].spec.scheme, "fr");
  EXPECT_FALSE(unsupported[0].reason.empty());
}

// --- the driver bridge (--predict / --scheme auto) ------------------------

TEST(DriverPredict, AutoResolvesToTheRankedBestOnScenarioOne) {
  // On scenario one at r = 10 the full candidate set ranks fr first:
  // its deterministic block replication covers slightly better than
  // BCC's random batch choices at equal load (and far better than the
  // wait-for-all schemes). "auto" must agree with the ranking's head.
  const auto config = coupon::driver::config_from_sim_scenario(
      coupon::simulate::ec2_scenario_one());
  const std::string picked = coupon::driver::resolve_auto_scheme(config);
  EXPECT_EQ(picked, "fr");
  auto all = config;
  all.scheme = "all";
  const auto report = coupon::driver::predict_report(
      all, coupon::driver::predict_candidates(all, {}), /*quantiles=*/false);
  ASSERT_FALSE(report.ranked.empty());
  EXPECT_EQ(report.ranked.front().scheme, picked);
}

TEST(DriverPredict, UnknownSchemeGetsDidYouMean) {
  auto config = coupon::driver::config_from_sim_scenario(
      coupon::simulate::ec2_scenario_one());
  config.scheme = "bbc";  // plausible typo for "bcc"
  const auto report = coupon::driver::predict_report(
      config, coupon::driver::predict_candidates(config, {}),
      /*quantiles=*/false);
  EXPECT_TRUE(report.ranked.empty());
  ASSERT_EQ(report.unsupported.size(), 1u);
  EXPECT_NE(report.unsupported[0].reason.find("did you mean 'bcc'"),
            std::string::npos)
      << report.unsupported[0].reason;
}

TEST(DriverPredict, ReportIsDeterministicAndRendered) {
  auto config = coupon::driver::config_from_sim_scenario(
      coupon::simulate::ec2_scenario_one());
  config.scheme = "all";
  const auto candidates =
      coupon::driver::predict_candidates(config, {5, 10});
  const auto first = coupon::driver::predict_report(config, candidates);
  const auto second = coupon::driver::predict_report(config, candidates);
  EXPECT_EQ(coupon::driver::render_predict_report(first),
            coupon::driver::render_predict_report(second));
  ASSERT_FALSE(first.ranked.empty());
  EXPECT_EQ(first.ranked.front().scheme, "fr");
  // Quantiles are filled for the top rows and ordered.
  EXPECT_TRUE(first.ranked.front().has_quantiles);
  EXPECT_LE(first.ranked.front().p50, first.ranked.front().p99);
}

}  // namespace
