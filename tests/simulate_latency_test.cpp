// Tests for the pluggable latency-model subsystem: statistical property
// checks of every model against its closed form (fixed seeds), the
// bit-identity of ShiftedExpModel with the legacy hard-coded draw, trace
// replay, and the ClusterConfig validation rejection paths.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "simulate/simulate.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"

namespace coupon::simulate {
namespace {

// --- ShiftedExpModel: the bit-identical default ---------------------------

TEST(ShiftedExpModel, ReproducesTheLegacyDrawExactly) {
  // One sample == one ShiftedExponential::for_load draw, same stream.
  stats::Rng model_rng(42), legacy_rng(42);
  ShiftedExpModel model(/*compute_shift=*/1e-3, /*compute_straggle=*/100.0);
  for (std::size_t i = 0; i < 100; ++i) {
    const double load = 1.0 + static_cast<double>(i % 7);
    const double sampled =
        model.sample_compute_seconds({i % 5, i, load}, model_rng);
    const double legacy =
        stats::ShiftedExponential::for_load(1e-3, 100.0, load)
            .sample(legacy_rng);
    ASSERT_DOUBLE_EQ(sampled, legacy) << i;
  }
}

TEST(ShiftedExpModel, HonoursPerWorkerOverrides) {
  stats::Rng model_rng(7), legacy_rng(7);
  const std::vector<WorkerLatency> overrides = {{1.0, 1e6}, {5.0, 2.0}};
  ShiftedExpModel model(1e-3, 100.0, overrides);
  for (std::size_t worker = 0; worker < 2; ++worker) {
    const double sampled =
        model.sample_compute_seconds({worker, 0, 3.0}, model_rng);
    const double legacy =
        stats::ShiftedExponential::for_load(overrides[worker].compute_shift,
                                            overrides[worker].compute_straggle,
                                            3.0)
            .sample(legacy_rng);
    EXPECT_DOUBLE_EQ(sampled, legacy);
  }
}

TEST(ShiftedExpModel, ExplicitFactoryMatchesTheDefaultPathBitForBit) {
  // A config with no factory and one whose factory builds the same
  // ShiftedExpModel must produce identical traces: the refactor's
  // "default == paper's law" claim, checked through the full simulator.
  stats::Rng rng_a(11), rng_b(11);
  core::SchemeConfig config{20, 20, 5, false};
  auto scheme_a = core::SchemeRegistry::instance().create("bcc", config, rng_a);
  auto scheme_b = core::SchemeRegistry::instance().create("bcc", config, rng_b);

  ClusterConfig implicit;
  implicit.compute_straggle = 50.0;
  ClusterConfig explicit_factory = implicit;
  explicit_factory.latency_model = [](std::size_t) {
    return std::make_unique<ShiftedExpModel>(1e-3, 50.0);
  };

  const auto run_a = simulate_run(*scheme_a, implicit, 20, rng_a);
  const auto run_b = simulate_run(*scheme_b, explicit_factory, 20, rng_b);
  ASSERT_EQ(run_a.iterations.size(), run_b.iterations.size());
  for (std::size_t t = 0; t < run_a.iterations.size(); ++t) {
    EXPECT_DOUBLE_EQ(run_a.iterations[t].total_time,
                     run_b.iterations[t].total_time);
    EXPECT_EQ(run_a.iterations[t].workers_heard,
              run_b.iterations[t].workers_heard);
  }
}

TEST(MakeLatencyModel, DefaultsToShiftedExp) {
  const auto model = make_latency_model(ClusterConfig{}, 4);
  EXPECT_EQ(model->name(), "shifted_exp");
}

// --- ParetoModel ----------------------------------------------------------

TEST(ParetoModel, MomentsMatchClosedForm) {
  // Pareto(scale = 2e-3 * 5, shape = 3): finite mean and variance.
  ParetoModel model(/*scale_per_unit=*/2e-3, /*shape=*/3.0);
  const stats::Pareto reference{0.01, 3.0};
  stats::Rng rng(101);
  stats::OnlineStats s;
  for (int i = 0; i < 200000; ++i) {
    const double x = model.sample_compute_seconds({0, 0, 5.0}, rng);
    ASSERT_GE(x, reference.scale);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), reference.mean(), 3e-4);
  EXPECT_NEAR(s.variance(), reference.variance(), 5e-5);
}

TEST(ParetoModel, SamplesPassAKsTestAgainstTheirCdf) {
  ParetoModel model(1e-3, 1.5);
  const stats::Pareto reference{4e-3, 1.5};  // load 4
  stats::Rng rng(103);
  std::vector<double> samples(4000);
  for (auto& x : samples) {
    x = model.sample_compute_seconds({1, 2, 4.0}, rng);
  }
  const double ks = stats::ks_distance(
      samples, [&reference](double t) { return reference.cdf(t); });
  // 95% acceptance line for n = 4000 is 1.36/sqrt(n) ~ 0.0215.
  EXPECT_LT(ks, 0.025);
}

// --- WeibullModel ---------------------------------------------------------

TEST(WeibullModel, MomentsMatchClosedForm) {
  WeibullModel model(/*shape=*/1.5, /*scale_per_unit=*/1e-2);
  const stats::Weibull reference{1.5, 0.02};  // load 2
  stats::Rng rng(107);
  stats::OnlineStats s;
  for (int i = 0; i < 200000; ++i) {
    s.add(model.sample_compute_seconds({0, 0, 2.0}, rng));
  }
  EXPECT_NEAR(s.mean(), reference.mean(), 2e-4);
  EXPECT_NEAR(s.variance(), reference.variance(), 2e-5);
}

TEST(WeibullModel, SamplesPassAKsTestAgainstTheirCdf) {
  WeibullModel model(0.7, 2e-3);
  const stats::Weibull reference{0.7, 2e-2};  // load 10
  stats::Rng rng(109);
  std::vector<double> samples(4000);
  for (auto& x : samples) {
    x = model.sample_compute_seconds({3, 1, 10.0}, rng);
  }
  const double ks = stats::ks_distance(
      samples, [&reference](double t) { return reference.cdf(t); });
  EXPECT_LT(ks, 0.025);
}

// --- BimodalSlowdownModel -------------------------------------------------

TEST(BimodalSlowdownModel, MixtureMeanMatchesClosedForm) {
  const double p = 0.2, s_factor = 5.0, a = 1e-3, mu = 2.0, load = 4.0;
  BimodalSlowdownModel model(a, mu, p, s_factor);
  stats::Rng rng(113);
  stats::OnlineStats s;
  for (int i = 0; i < 200000; ++i) {
    s.add(model.sample_compute_seconds({0, 0, load}, rng));
  }
  const double base_mean = a * load + load / mu;
  EXPECT_NEAR(s.mean(), (1.0 + p * (s_factor - 1.0)) * base_mean, 0.05);
}

TEST(BimodalSlowdownModel, SamplesPassAKsTestAgainstTheMixtureCdf) {
  const double p = 0.3, s_factor = 10.0, load = 2.0;
  BimodalSlowdownModel model(1e-3, 1.0, p, s_factor);
  const auto base = stats::ShiftedExponential::for_load(1e-3, 1.0, load);
  stats::Rng rng(127);
  std::vector<double> samples(4000);
  for (auto& x : samples) {
    x = model.sample_compute_seconds({0, 0, load}, rng);
  }
  // X = B with prob 1-p, s*B with prob p: F(t) = (1-p)F_B(t) + pF_B(t/s).
  const double ks = stats::ks_distance(samples, [&](double t) {
    return (1.0 - p) * base.cdf(t) + p * base.cdf(t / s_factor);
  });
  EXPECT_LT(ks, 0.025);
}

TEST(BimodalSlowdownModel, ZeroProbabilityDegeneratesToShiftedExp) {
  stats::Rng rng_a(5), rng_b(5);
  BimodalSlowdownModel bimodal(1e-3, 10.0, 0.0, 7.0);
  ShiftedExpModel base(1e-3, 10.0);
  for (int i = 0; i < 50; ++i) {
    // The Bernoulli(0) draw consumes one uniform; mirror it exactly.
    (void)rng_b.bernoulli(0.0);
    EXPECT_DOUBLE_EQ(bimodal.sample_compute_seconds({0, 0, 3.0}, rng_a),
                     base.sample_compute_seconds({0, 0, 3.0}, rng_b));
  }
}

// --- MarkovStragglerModel -------------------------------------------------

TEST(MarkovStragglerModel, StationaryFractionAndPersistenceMatchTheChain) {
  const std::size_t n = 400;
  const double p_enter = 0.05, p_exit = 0.25;
  MarkovStragglerModel model(n, 1e-3, 1.0, 10.0, p_enter, p_exit);
  stats::Rng rng(131);

  std::size_t slow_observations = 0, total = 0;
  std::size_t slow_to_slow = 0, slow_previous = 0;
  std::vector<char> previous(n, 0);
  const std::size_t iterations = 500;
  for (std::size_t t = 0; t < iterations; ++t) {
    model.begin_iteration(t, rng);
    const auto& states = model.slow_states();
    ASSERT_EQ(states.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      total += 1;
      slow_observations += states[i] != 0;
      if (t > 0 && previous[i] != 0) {
        slow_previous += 1;
        slow_to_slow += states[i] != 0;
      }
      previous[i] = states[i];
    }
  }
  const double stationary = p_enter / (p_enter + p_exit);
  EXPECT_NEAR(static_cast<double>(slow_observations) /
                  static_cast<double>(total),
              stationary, 0.01);
  // Persistence: P(slow at t+1 | slow at t) = 1 - p_exit, far above the
  // stationary fraction — slowness is correlated across iterations.
  EXPECT_NEAR(static_cast<double>(slow_to_slow) /
                  static_cast<double>(slow_previous),
              1.0 - p_exit, 0.02);
}

TEST(MarkovStragglerModel, SlowWorkersDrawInflatedLatencies) {
  // p_enter = 1, p_exit ~ 0: every worker is slow from the first
  // iteration on, so every draw is slow_factor * shifted-exp.
  const double slow_factor = 10.0;
  MarkovStragglerModel model(4, 1e-3, 1.0, slow_factor, 1.0, 1e-9);
  stats::Rng rng(137);
  model.begin_iteration(0, rng);
  stats::Rng mirror = rng;  // states drawn; draws now mirror shifted-exp
  ShiftedExpModel base(1e-3, 1.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(model.sample_compute_seconds({i, 0, 2.0}, rng),
                     slow_factor *
                         base.sample_compute_seconds({i, 0, 2.0}, mirror));
  }
}

TEST(MarkovStragglerModel, PersistenceRaisesRunVariabilityOverBursty) {
  // Same marginal slow fraction (1/6), but markov holds workers slow for
  // 1/p_exit = 4 consecutive iterations: per-iteration totals should be
  // more variable than the memoryless bimodal equivalent.
  stats::Rng rng_markov(139), rng_bimodal(139);
  core::SchemeConfig config{30, 30, 1, false};
  auto scheme_m =
      core::SchemeRegistry::instance().create("uncoded", config, rng_markov);
  auto scheme_b =
      core::SchemeRegistry::instance().create("uncoded", config, rng_bimodal);

  ClusterConfig markov;
  markov.latency_model = [](std::size_t n) {
    return std::make_unique<MarkovStragglerModel>(n, 1e-3, 1.0, 20.0,
                                                  1.0 / 20.0, 0.25);
  };
  ClusterConfig bimodal;
  bimodal.latency_model = [](std::size_t) {
    return std::make_unique<BimodalSlowdownModel>(1e-3, 1.0, 1.0 / 6.0,
                                                  20.0);
  };

  const auto run_m = simulate_run(*scheme_m, markov, 300, rng_markov);
  const auto run_b = simulate_run(*scheme_b, bimodal, 300, rng_bimodal);
  stats::OnlineStats totals_m, totals_b;
  for (const auto& it : run_m.iterations) {
    totals_m.add(it.total_time);
  }
  for (const auto& it : run_b.iterations) {
    totals_b.add(it.total_time);
  }
  // Uncoded waits for the max: with ~5 slow workers expected either way,
  // per-iteration means are comparable but not the correlation structure.
  // This is a smoke-level statistical assertion, not a sharp bound.
  EXPECT_GT(totals_m.mean(), 0.0);
  EXPECT_GT(totals_b.mean(), 0.0);
  EXPECT_GT(run_m.total_time, run_b.total_time * 0.5);
}

// --- TraceReplayModel -----------------------------------------------------

class TraceFile {
 public:
  explicit TraceFile(const std::string& text,
                     const std::string& name = "latency_trace_test.csv")
      : path_(name) {
    std::ofstream out(path_);
    out << text;
  }
  ~TraceFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(TraceReplayModel, ReplaysRowsAndWrapsAround) {
  TraceFile file("# per-worker seconds\n0.01,0.02,0.03\n\n0.04,0.05,0.06\n");
  TraceReplayModel model(file.path(), 3);
  EXPECT_EQ(model.num_rows(), 2u);
  stats::Rng rng(1);
  EXPECT_DOUBLE_EQ(model.sample_compute_seconds({0, 0, 5.0}, rng), 0.01);
  EXPECT_DOUBLE_EQ(model.sample_compute_seconds({2, 0, 5.0}, rng), 0.03);
  EXPECT_DOUBLE_EQ(model.sample_compute_seconds({1, 1, 5.0}, rng), 0.05);
  // Iteration 2 wraps back to row 0; the load is ignored.
  EXPECT_DOUBLE_EQ(model.sample_compute_seconds({0, 2, 99.0}, rng), 0.01);
  // No randomness consumed: the stream is untouched.
  stats::Rng fresh(1);
  EXPECT_EQ(rng.next_u64(), fresh.next_u64());
}

TEST(TraceReplayModel, RejectsMalformedTraces) {
  EXPECT_THROW(TraceReplayModel("does_not_exist.csv", 2),
               std::invalid_argument);
  {
    TraceFile wrong_width("0.01,0.02\n", "trace_wrong_width.csv");
    EXPECT_THROW(TraceReplayModel(wrong_width.path(), 3),
                 std::invalid_argument);
  }
  {
    TraceFile junk("0.01,banana,0.03\n", "trace_junk.csv");
    EXPECT_THROW(TraceReplayModel(junk.path(), 3), std::invalid_argument);
  }
  {
    TraceFile negative("0.01,-0.5,0.03\n", "trace_negative.csv");
    EXPECT_THROW(TraceReplayModel(negative.path(), 3),
                 std::invalid_argument);
  }
  {
    TraceFile empty("# only a comment\n\n", "trace_empty.csv");
    EXPECT_THROW(TraceReplayModel(empty.path(), 3), std::invalid_argument);
  }
  {
    // std::stod parses "inf"/"nan"; an infinite latency would poison the
    // run totals, so the parser must reject non-finite values too.
    TraceFile infinite("0.01,inf,0.03\n", "trace_inf.csv");
    EXPECT_THROW(TraceReplayModel(infinite.path(), 3),
                 std::invalid_argument);
    TraceFile nan_value("0.01,nan,0.03\n", "trace_nan.csv");
    EXPECT_THROW(TraceReplayModel(nan_value.path(), 3),
                 std::invalid_argument);
  }
}

TEST(SimulateIteration, NonFiniteModelDrawsAreRejected) {
  // A broken user model returning +inf must trip the simulator's sample
  // sanity check, not silently produce total_time=inf / comm_time=nan.
  class InfiniteModel final : public LatencyModel {
   public:
    std::string_view name() const override { return "infinite"; }
    double sample_compute_seconds(const LatencyContext&,
                                  stats::Rng&) override {
      return std::numeric_limits<double>::infinity();
    }
  };
  stats::Rng rng(41);
  core::SchemeConfig config{3, 3, 1, false};
  auto scheme = core::SchemeRegistry::instance().create("uncoded", config, rng);
  ClusterConfig cluster;
  cluster.latency_model = [](std::size_t) {
    return std::make_unique<InfiniteModel>();
  };
  EXPECT_THROW(simulate_iteration(*scheme, cluster, rng),
               coupon::AssertionError);
}

TEST(TraceReplayModel, DrivesTheSimulatorDeterministically) {
  TraceFile file("0.2,0.01,0.01,0.01\n0.01,0.2,0.01,0.01\n",
                 "trace_sim_test.csv");
  stats::Rng rng(17);
  core::SchemeConfig config{4, 4, 1, false};
  auto scheme = core::SchemeRegistry::instance().create("uncoded", config, rng);
  ClusterConfig cluster;
  const std::string path = file.path();
  cluster.latency_model = [path](std::size_t n) {
    return std::make_unique<TraceReplayModel>(path, n);
  };
  const auto run = simulate_run(*scheme, cluster, 4, rng);
  ASSERT_EQ(run.iterations.size(), 4u);
  // Uncoded waits for the slowest worker: 0.2 s every iteration, from a
  // different worker in alternating rows.
  for (const auto& it : run.iterations) {
    EXPECT_TRUE(it.recovered);
    EXPECT_DOUBLE_EQ(it.compute_time, 0.2);
  }
}

// --- ClusterConfig validation ---------------------------------------------

ClusterConfig valid_cluster() {
  ClusterConfig c;
  c.compute_shift = 1e-3;
  c.compute_straggle = 100.0;
  return c;
}

TEST(ValidateClusterConfig, AcceptsTheDefaults) {
  EXPECT_NO_THROW(validate_cluster_config(ClusterConfig{}, 8));
  EXPECT_NO_THROW(validate_cluster_config(valid_cluster(), 8));
}

TEST(ValidateClusterConfig, RejectsOutOfRangeKnobs) {
  auto drop_high = valid_cluster();
  drop_high.drop_probability = 1.5;
  EXPECT_THROW(validate_cluster_config(drop_high, 4), coupon::AssertionError);

  auto drop_negative = valid_cluster();
  drop_negative.drop_probability = -0.1;
  EXPECT_THROW(validate_cluster_config(drop_negative, 4),
               coupon::AssertionError);

  auto negative_shift = valid_cluster();
  negative_shift.compute_shift = -1e-3;
  EXPECT_THROW(validate_cluster_config(negative_shift, 4),
               coupon::AssertionError);

  auto zero_straggle = valid_cluster();
  zero_straggle.compute_straggle = 0.0;
  EXPECT_THROW(validate_cluster_config(zero_straggle, 4),
               coupon::AssertionError);

  auto negative_transfer = valid_cluster();
  negative_transfer.unit_transfer_seconds = -1.0;
  EXPECT_THROW(validate_cluster_config(negative_transfer, 4),
               coupon::AssertionError);

  auto negative_broadcast = valid_cluster();
  negative_broadcast.broadcast_seconds = -1.0;
  EXPECT_THROW(validate_cluster_config(negative_broadcast, 4),
               coupon::AssertionError);

  auto bad_override = valid_cluster();
  bad_override.worker_overrides.assign(4, WorkerLatency{1e-3, 1.0});
  bad_override.worker_overrides[2].compute_straggle = 0.0;
  EXPECT_THROW(validate_cluster_config(bad_override, 4),
               coupon::AssertionError);
}

TEST(ValidateClusterConfig, SimulatorRejectsBadConfigsBeforeSampling) {
  stats::Rng rng(23);
  core::SchemeConfig config{4, 4, 1, false};
  auto scheme = core::SchemeRegistry::instance().create("uncoded", config, rng);
  auto cluster = valid_cluster();
  cluster.drop_probability = 2.0;
  EXPECT_THROW(simulate_iteration(*scheme, cluster, rng),
               coupon::AssertionError);
  EXPECT_THROW(simulate_run(*scheme, cluster, 3, rng),
               coupon::AssertionError);
}

TEST(ValidateClusterConfig, NullFactoryResultIsRejected) {
  auto cluster = valid_cluster();
  cluster.latency_model = [](std::size_t) {
    return std::unique_ptr<LatencyModel>();
  };
  EXPECT_THROW(make_latency_model(cluster, 4), coupon::AssertionError);
}

// --- model parameter validation -------------------------------------------

TEST(LatencyModels, ConstructorsRejectBadParameters) {
  EXPECT_THROW(ShiftedExpModel(-1.0, 1.0), coupon::AssertionError);
  EXPECT_THROW(ShiftedExpModel(1.0, 0.0), coupon::AssertionError);
  EXPECT_THROW(ParetoModel(0.0, 1.5), coupon::AssertionError);
  EXPECT_THROW(ParetoModel(1e-3, 0.0), coupon::AssertionError);
  EXPECT_THROW(WeibullModel(0.0, 1e-3), coupon::AssertionError);
  EXPECT_THROW(WeibullModel(1.0, 0.0), coupon::AssertionError);
  EXPECT_THROW(BimodalSlowdownModel(1e-3, 1.0, 1.5, 10.0),
               coupon::AssertionError);
  EXPECT_THROW(BimodalSlowdownModel(1e-3, 1.0, 0.1, 0.5),
               coupon::AssertionError);
  EXPECT_THROW(MarkovStragglerModel(4, 1e-3, 1.0, 10.0, 0.1, 0.0),
               coupon::AssertionError);
  EXPECT_THROW(MarkovStragglerModel(4, 1e-3, 1.0, 0.5, 0.1, 0.2),
               coupon::AssertionError);
}

}  // namespace
}  // namespace coupon::simulate
