// Statistical gates for the gradient-coding scheme families (gc_cyclic,
// sgc, gc_nested) against theory.hpp, the analytic oracle, and the
// paper's baselines:
//
//   * the closed forms themselves (thresholds, ladder sizes, the sgc
//     estimator's scale and variance factor);
//   * exactness in simulation: every iteration's K equals n - r + 1 and
//     L equals K * (units per message), for all three schemes, under a
//     drop-free shifted-exp cluster — deterministic, so the gate is
//     1e-9, not statistical;
//   * E[T] against theory.hpp's Renyi order-statistic formula on a
//     transfer-free cluster (T = X_(n-r+1) there), at 5 standard errors;
//   * E[T]/E[K] against the analytic oracle across shifted-exp, pareto,
//     and markov compute laws (12x sem for markov: cross-iteration
//     correlation widens the sample mean's effective sem);
//   * sgc's timing-equivalence to cyclic repetition: same wait quota,
//     same one-unit messages, hence bitwise-identical iteration traces
//     at matched seeds — sgc buys its approximate decode with ZERO
//     timing overhead over the exact algebraic scheme;
//   * the convergence claim: under heavy-tailed stragglers, sgc reaches
//     the target loss in less simulated time than uncoded at matched
//     seeds, and its records are stamped approximate_recovery.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "analytic/predictor.hpp"
#include "core/gc_nested.hpp"
#include "core/scheme_registry.hpp"
#include "core/theory.hpp"
#include "driver/driver.hpp"
#include "simulate/cluster_sim.hpp"
#include "simulate/experiment.hpp"
#include "simulate/latency_model.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"

namespace {

namespace theory = coupon::core::theory;

std::unique_ptr<coupon::core::Scheme> make_scheme(const std::string& name,
                                                  std::size_t n, std::size_t m,
                                                  std::size_t r,
                                                  std::uint64_t seed) {
  coupon::core::SchemeConfig config;
  config.num_workers = n;
  config.num_units = m;
  config.load = r;
  coupon::stats::Rng rng(seed);
  return coupon::core::SchemeRegistry::instance().create(name, config, rng);
}

coupon::simulate::RunReport run_traced(const coupon::core::Scheme& scheme,
                                       const coupon::simulate::ClusterConfig& c,
                                       std::size_t iterations,
                                       std::uint64_t seed) {
  coupon::stats::Rng rng(seed);
  coupon::simulate::RunOptions options;
  options.iterations = iterations;
  options.record_trace = true;
  return coupon::simulate::simulate_run(scheme, c, options, rng);
}

coupon::simulate::ClusterConfig shifted_exp_cluster() {
  coupon::simulate::ClusterConfig cluster;
  cluster.compute_shift = 1e-3;
  cluster.compute_straggle = 50.0;
  cluster.unit_transfer_seconds = 2e-3;
  cluster.broadcast_seconds = 1e-4;
  return cluster;
}

// --- the closed forms -------------------------------------------------------

TEST(GcTheory, ThresholdsMatchTheSchemesAndEqSeven) {
  // All three families wait for n - r + 1 workers — the same count as
  // Eq. 7's worst-case coded bound, reached by construction instead of
  // in the worst case.
  for (const std::size_t n : {6u, 12u, 24u}) {
    for (const std::size_t r : {1u, 2u, 3u}) {
      if (n % r != 0) {
        continue;
      }
      const double expected = static_cast<double>(n - r + 1);
      EXPECT_DOUBLE_EQ(theory::k_gc_cyclic(n, r), expected);
      EXPECT_DOUBLE_EQ(theory::k_sgc(n, r), expected);
      EXPECT_DOUBLE_EQ(theory::k_gc_nested(n, r), expected);
      EXPECT_DOUBLE_EQ(theory::k_cyclic_repetition(n, r), expected);

      for (const char* name : {"gc_cyclic", "sgc", "gc_nested"}) {
        const auto scheme = make_scheme(name, n, n, r, 5);
        const auto threshold = scheme->expected_recovery_threshold();
        ASSERT_TRUE(threshold.has_value()) << name;
        EXPECT_DOUBLE_EQ(*threshold, expected) << name;
      }
    }
  }
}

TEST(GcTheory, NestedLadderSizeCountsTheDivisors) {
  EXPECT_EQ(theory::gc_nested_levels(1), 1u);
  EXPECT_EQ(theory::gc_nested_levels(3), 2u);   // {1, 3}
  EXPECT_EQ(theory::gc_nested_levels(4), 3u);   // {1, 2, 4}
  EXPECT_EQ(theory::gc_nested_levels(6), 4u);   // {1, 2, 3, 6}
  EXPECT_EQ(theory::gc_nested_levels(12), 6u);  // {1, 2, 3, 4, 6, 12}

  const auto scheme = make_scheme("gc_nested", 12, 12, 6, 1);
  const auto* nested =
      dynamic_cast<const coupon::core::GcNestedScheme*>(scheme.get());
  ASSERT_NE(nested, nullptr);
  EXPECT_EQ(nested->widths(),
            (std::vector<std::size_t>{1, 2, 3, 6}));
  EXPECT_DOUBLE_EQ(scheme->message_units(0), 4.0);
}

TEST(GcTheory, SgcScaleAndVarianceFactorClosedForms) {
  // scale = n / (r k); variance factor = scale^2 * k (n - k) / (n - 1).
  EXPECT_DOUBLE_EQ(theory::sgc_decode_scale(12, 3, 10), 12.0 / 30.0);
  EXPECT_DOUBLE_EQ(theory::sgc_estimator_variance_factor(12, 3, 10),
                   (12.0 / 30.0) * (12.0 / 30.0) * 10.0 * 2.0 / 11.0);
  // Full participation (k = n, r = n) is the exact mean: scale 1/..,
  // variance exactly zero.
  EXPECT_DOUBLE_EQ(theory::sgc_decode_scale(8, 8, 8), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(theory::sgc_estimator_variance_factor(8, 8, 8), 0.0);
}

// --- exactness in simulation ------------------------------------------------

TEST(GcSimulation, EveryIterationWaitsForExactlyTheThreshold) {
  constexpr std::size_t kN = 12, kR = 3, kIterations = 2000;
  const struct {
    const char* name;
    double units_per_message;
  } cases[] = {
      {"gc_cyclic", 3.0},  // r raw unit gradients per message
      {"sgc", 1.0},        // one pre-summed aggregate
      {"gc_nested", 2.0},  // d(3) = |{1, 3}| ladder components
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const auto scheme = make_scheme(c.name, kN, kN, kR, 17);
    EXPECT_DOUBLE_EQ(scheme->message_units(0), c.units_per_message);
    const auto report =
        run_traced(*scheme, shifted_exp_cluster(), kIterations, 0x6C);
    EXPECT_EQ(report.failures, 0u);
    ASSERT_EQ(report.iterations.size(), kIterations);
    const double threshold = theory::k_gc_cyclic(kN, kR);
    for (const auto& it : report.iterations) {
      ASSERT_EQ(static_cast<double>(it.workers_heard), threshold);
      ASSERT_DOUBLE_EQ(it.units_received, threshold * c.units_per_message);
    }
  }
}

TEST(GcSimulation, MeanTimeMatchesTheRenyiOrderStatisticFormula) {
  // With negligible transfer and no broadcast, an iteration lasts exactly
  // until the (n - r + 1)-th compute completion: E[T] is theory.hpp's
  // Renyi harmonic form for the k-th order statistic of n shifted
  // exponentials at load r.
  constexpr std::size_t kN = 12, kR = 3, kIterations = 30000;
  const double a = 1e-3, mu = 50.0;
  coupon::simulate::ClusterConfig cluster;
  cluster.compute_shift = a;
  cluster.compute_straggle = mu;
  cluster.unit_transfer_seconds = 1e-12;
  cluster.broadcast_seconds = 0.0;

  const double exact = theory::expected_kth_order_statistic_shifted_exp(
      a, mu, static_cast<double>(kR), kN, kN - kR + 1);
  for (const char* name : {"gc_cyclic", "sgc", "gc_nested"}) {
    SCOPED_TRACE(name);
    const auto scheme = make_scheme(name, kN, kN, kR, 23);
    const auto report =
        run_traced(*scheme, cluster, kIterations, 0x7E0);
    coupon::stats::OnlineStats time;
    for (const auto& it : report.iterations) {
      time.add(it.total_time);
    }
    EXPECT_NEAR(time.mean(), exact, 5.0 * time.sem() + 1e-9);
  }
}

// --- the analytic oracle ----------------------------------------------------

TEST(GcOracle, ExactSchemesMatchSimulationAcrossLatencyModels) {
  constexpr std::size_t kN = 12, kR = 3;
  struct LawCase {
    const char* tag;
    coupon::simulate::ClusterConfig cluster;
    double sem_z;
    std::size_t iterations;
  };
  std::vector<LawCase> laws;
  laws.push_back({"shifted_exp", shifted_exp_cluster(), 5.0, 20000});
  {
    coupon::simulate::ClusterConfig pareto;
    pareto.unit_transfer_seconds = 1e-3;
    pareto.latency_model = [](std::size_t) {
      return std::make_unique<coupon::simulate::ParetoModel>(2e-3, 2.5);
    };
    laws.push_back({"pareto", pareto, 5.0, 20000});
  }
  {
    // Stationary marginal is exact; correlation across iterations only
    // widens the sample mean's effective sem (see analytic_oracle_test).
    coupon::simulate::ClusterConfig markov;
    markov.unit_transfer_seconds = 1e-3;
    markov.latency_model = [](std::size_t n) {
      return std::make_unique<coupon::simulate::MarkovStragglerModel>(
          n, 1e-3, 50.0, 10.0, 0.05, 0.25);
    };
    laws.push_back({"markov", markov, 12.0, 30000});
  }

  for (const char* name : {"gc_cyclic", "gc_nested"}) {
    const auto scheme = make_scheme(name, kN, kN, kR, 7);
    for (const auto& law : laws) {
      SCOPED_TRACE(std::string(name) + " / " + law.tag);
      std::string reason;
      coupon::analytic::PredictOptions options;
      options.quantiles = false;
      const auto prediction =
          coupon::analytic::predict(*scheme, law.cluster, options, &reason);
      ASSERT_TRUE(prediction.has_value()) << reason;
      EXPECT_DOUBLE_EQ(prediction->expected_workers,
                       theory::k_gc_cyclic(kN, kR));

      const auto report =
          run_traced(*scheme, law.cluster, law.iterations, 0x6A7E);
      coupon::stats::OnlineStats time, workers;
      for (const auto& it : report.iterations) {
        time.add(it.total_time);
        workers.add(static_cast<double>(it.workers_heard));
      }
      EXPECT_NEAR(time.mean(), prediction->expected_time,
                  law.sem_z * time.sem() + 1e-9);
      EXPECT_NEAR(workers.mean(), prediction->expected_workers, 1e-9);
    }
  }
}

TEST(GcOracle, SgcIsRefusedWithTheStochasticDecodeReason) {
  // sgc's iteration time HAS a threshold law, but an E[T] ranking that
  // ignores the decode noise's convergence cost would mislead the
  // auto-tuner — the model must refuse with an explanation, not emit a
  // profile.
  const auto scheme = make_scheme("sgc", 12, 12, 3, 7);
  std::string reason;
  coupon::analytic::PredictOptions options;
  options.quantiles = false;
  EXPECT_FALSE(
      coupon::analytic::predict(*scheme, shifted_exp_cluster(), options,
                                &reason)
          .has_value());
  EXPECT_NE(reason.find("stochastic"), std::string::npos) << reason;
}

// --- sgc vs the baselines ---------------------------------------------------

TEST(GcSimulation, SgcTimingIsBitwiseIdenticalToCyclicRepetition) {
  // Identical wait quota (n - r + 1), identical one-unit messages,
  // identical per-worker compute load: at matched seeds the two schemes
  // consume the same latency draws and stop at the same arrival, so the
  // traces agree bit for bit. sgc's approximate decode costs nothing in
  // iteration time relative to the exact algebraic baseline.
  constexpr std::size_t kN = 12, kR = 3, kIterations = 500;
  const auto sgc = make_scheme("sgc", kN, kN, kR, 31);
  const auto cr = make_scheme("cr", kN, kN, kR, 37);
  EXPECT_DOUBLE_EQ(sgc->message_units(0), cr->message_units(0));

  const auto cluster = shifted_exp_cluster();
  const auto sgc_report = run_traced(*sgc, cluster, kIterations, 0xBEEF);
  const auto cr_report = run_traced(*cr, cluster, kIterations, 0xBEEF);
  ASSERT_EQ(sgc_report.iterations.size(), cr_report.iterations.size());
  for (std::size_t t = 0; t < kIterations; ++t) {
    ASSERT_EQ(sgc_report.iterations[t].total_time,
              cr_report.iterations[t].total_time)
        << "iteration " << t;
    ASSERT_EQ(sgc_report.iterations[t].workers_heard,
              cr_report.iterations[t].workers_heard);
  }
}

TEST(GcConvergence, SgcBeatsUncodedToTargetUnderHeavyStragglers) {
  // The scheme's reason to exist: under compute-dominated heavy-tailed
  // stragglers (Pareto alpha = 1.2, infinite variance), uncoded pays
  // E[max of n] ~ n^{1/alpha} per iteration while sgc pays r times the
  // (n - r + 1)-th order statistic, which stays bounded — the tail
  // excision buys several times what the r-fold compute costs. The noisy
  // decode slows per-iteration progress; the time-to-target comparison
  // nets the two effects at matched seeds. (The stock heavy_tail
  // scenario keeps the EC2 comm-dominated calibration, where per-
  // iteration times barely differ and the decode noise wins instead —
  // hence the compute-dominated override.)
  auto cluster = std::make_shared<coupon::simulate::ClusterConfig>();
  cluster->unit_transfer_seconds = 1e-5;
  cluster->broadcast_seconds = 1e-5;
  cluster->latency_model = [](std::size_t) {
    return std::make_unique<coupon::simulate::ParetoModel>(
        /*scale_per_unit=*/2e-3, /*shape=*/1.2);
  };

  coupon::driver::ExperimentConfig config;
  config.scheme = "sgc";
  config.scenario = "heavy_tail";
  config.cluster_override = cluster;
  config.runtime = "sim";
  config.train = true;
  config.num_workers = 10;
  config.num_units = 10;
  config.load = 3;
  config.iterations = 400;
  config.seed = 20260808;
  config.features = 8;
  config.examples_per_unit = 5;
  config.optimizer = "gd";
  config.learning_rate = 0.5;
  config.lr_decay = 0.05;
  config.target_loss = 0.35;
  const auto sgc = coupon::driver::run_experiment(config);

  auto uncoded_config = config;
  uncoded_config.scheme = "uncoded";
  const auto uncoded = coupon::driver::run_experiment(uncoded_config);

  ASSERT_TRUE(sgc.time_to_target.has_value())
      << "sgc never reached the target loss";
  ASSERT_TRUE(uncoded.time_to_target.has_value())
      << "uncoded never reached the target loss";
  EXPECT_LT(*sgc.time_to_target, *uncoded.time_to_target);

  // The approximate-recovery stamp: every applied sgc update rode on a
  // stochastic decode; uncoded records stay unstamped.
  EXPECT_TRUE(sgc.approximate_recovery);
  EXPECT_EQ(sgc.approximate_iterations, sgc.iterations_run);
  EXPECT_FALSE(uncoded.approximate_recovery);
  EXPECT_EQ(uncoded.approximate_iterations, 0u);
}

}  // namespace
