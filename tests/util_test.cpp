// Tests for the util module: assertions, tables, CLI flags, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/util.hpp"

namespace coupon {
namespace {

// --- assertions -------------------------------------------------------------

TEST(Assert, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(COUPON_ASSERT(1 + 1 == 2));
}

TEST(Assert, FailingConditionThrowsAssertionError) {
  EXPECT_THROW(COUPON_ASSERT(false), AssertionError);
}

TEST(Assert, MessageCarriesExpressionAndLocation) {
  try {
    COUPON_ASSERT(2 < 1);
    FAIL() << "expected throw";
  } catch (const AssertionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Assert, StreamedMessageIsIncluded) {
  try {
    const int r = 7;
    COUPON_ASSERT_MSG(r == 3, "load was " << r);
    FAIL() << "expected throw";
  } catch (const AssertionError& e) {
    EXPECT_NE(std::string(e.what()).find("load was 7"), std::string::npos);
  }
}

// --- tables -----------------------------------------------------------------

TEST(AsciiTable, RendersHeadersAndRows) {
  AsciiTable t({"scheme", "K"});
  t.add_row({"BCC", "11"});
  t.add_row({"uncoded", "50"});
  const std::string s = t.render();
  EXPECT_NE(s.find("scheme"), std::string::npos);
  EXPECT_NE(s.find("BCC"), std::string::npos);
  EXPECT_NE(s.find("50"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(AsciiTable, RejectsRaggedRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), AssertionError);
}

TEST(AsciiTable, ColumnsPadToWidestCell) {
  AsciiTable t({"x"});
  t.add_row({"wide-cell-content"});
  const std::string s = t.render();
  // Header row must be padded to the same width as the data row.
  const auto first_line_end = s.find('\n');
  const auto second_line_end = s.find('\n', first_line_end + 1);
  const auto third_line_end = s.find('\n', second_line_end + 1);
  EXPECT_EQ(first_line_end, second_line_end - first_line_end - 1
                ? first_line_end
                : first_line_end);
  // All rendered lines have equal length.
  std::size_t prev = 0;
  std::size_t expected_len = std::string::npos;
  for (std::size_t pos = s.find('\n'); pos != std::string::npos;
       prev = pos + 1, pos = s.find('\n', prev)) {
    const std::size_t len = pos - prev;
    if (expected_len == std::string::npos) {
      expected_len = len;
    }
    EXPECT_EQ(len, expected_len);
  }
  (void)third_line_end;
}

TEST(AsciiTable, SeparatorAddsRule) {
  AsciiTable t({"a"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.render();
  // 5 horizontal rules: top, under header, separator, bottom... count '+'
  // lines instead of exact layout.
  std::size_t rules = 0;
  std::size_t prev = 0;
  for (std::size_t pos = s.find('\n'); pos != std::string::npos;
       prev = pos + 1, pos = s.find('\n', prev)) {
    if (s[prev] == '+') {
      ++rules;
    }
  }
  EXPECT_EQ(rules, 4u);
}

TEST(FormatHelpers, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(FormatHelpers, FormatPercent) {
  EXPECT_EQ(format_percent(0.854, 1), "85.4%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

// --- CLI flags ---------------------------------------------------------------

TEST(CliFlags, ParsesTypedValues) {
  CliFlags flags;
  flags.add_int("n", 10, "workers")
      .add_double("rate", 0.5, "learning rate")
      .add_bool("verbose", false, "noise")
      .add_string("scheme", "bcc", "scheme name");
  const char* argv[] = {"prog",          "--n=50",       "--rate", "0.25",
                        "--verbose",     "--scheme=cr"};
  ASSERT_TRUE(flags.parse(6, argv));
  EXPECT_EQ(flags.get_int("n"), 50);
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 0.25);
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_string("scheme"), "cr");
}

TEST(CliFlags, DefaultsSurviveWhenUnset) {
  CliFlags flags;
  flags.add_int("n", 10, "workers");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.get_int("n"), 10);
}

TEST(CliFlags, RejectsUnknownFlag) {
  CliFlags flags;
  flags.add_int("n", 10, "workers");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, RejectsBadValue) {
  CliFlags flags;
  flags.add_int("n", 10, "workers");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, RejectsMissingValue) {
  CliFlags flags;
  flags.add_int("n", 10, "workers");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, HelpReturnsFalse) {
  CliFlags flags;
  flags.add_int("n", 10, "workers");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(flags.parse(2, argv));
}

TEST(CliFlags, BoolExplicitValues) {
  CliFlags flags;
  flags.add_bool("x", true, "x");
  const char* argv[] = {"prog", "--x=false"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_FALSE(flags.get_bool("x"));
}

TEST(CliFlags, WrongTypeAccessAsserts) {
  CliFlags flags;
  flags.add_int("n", 10, "workers");
  EXPECT_THROW(flags.get_double("n"), AssertionError);
  EXPECT_THROW(flags.get_int("missing"), AssertionError);
}

TEST(CliFlags, UsageListsAllFlags) {
  CliFlags flags;
  flags.add_int("alpha", 1, "first").add_string("beta", "z", "second");
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("--beta"), std::string::npos);
  EXPECT_NE(usage.find("second"), std::string::npos);
}


// --- CSV writer -----------------------------------------------------------------

TEST(CsvWriter, PlainFieldsAreUnquoted) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({"a", "b", "1.5"});
  EXPECT_EQ(os.str(), "a,b,1.5\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, QuotesFieldsWithSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("has\nnewline"), "\"has\nnewline\"");
}

TEST(CsvWriter, EmptyRowIsBlankLine) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.row({});
  EXPECT_EQ(os.str(), "\n");
}

// --- thread pool --------------------------------------------------------------

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SizeIsAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ParallelFor, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(
      pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; },
      /*serial_threshold=*/16);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SerialFallbackBelowThreshold) {
  ThreadPool pool(4);
  // Range below the threshold runs inline; correctness is the contract.
  std::vector<int> hits(10, 0);
  parallel_for(
      pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; },
      /*serial_threshold=*/1024);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ParallelForChunks, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  parallel_for_chunks(
      pool, 10, 110,
      [&](std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        chunks.emplace_back(lo, hi);
      },
      /*serial_threshold=*/1);
  std::sort(chunks.begin(), chunks.end());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 110u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST(ParallelFor, ExceptionInBodyPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(
                   pool, 0, 10000,
                   [](std::size_t i) {
                     if (i == 5000) {
                       throw std::runtime_error("body failed");
                     }
                   },
                   /*serial_threshold=*/1),
               std::runtime_error);
}

// --- timer --------------------------------------------------------------------

TEST(WallTimer, MeasuresNonNegativeMonotonicTime) {
  WallTimer timer;
  const double a = timer.seconds();
  const double b = timer.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  timer.reset();
  EXPECT_GE(timer.seconds(), 0.0);
  EXPECT_GE(timer.millis(), 0.0);
}

// --- registry name diagnostics ----------------------------------------------

TEST(EditDistance, BasicProperties) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("bcc", "bfc"), 1u);       // substitution
  EXPECT_EQ(edit_distance("cr", "cri"), 1u);        // insertion
  EXPECT_EQ(edit_distance("uncoded", "uncode"), 1u);  // deletion
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  // Symmetry.
  EXPECT_EQ(edit_distance("heavy_tail", "heavytail"),
            edit_distance("heavytail", "heavy_tail"));
}

TEST(NearestName, SuggestsOnlyPlausibleTypos) {
  const std::vector<std::string> choices = {"uncoded", "fr", "cr", "bcc",
                                            "simple_random"};
  EXPECT_EQ(nearest_name("bfc", choices), "bcc");
  EXPECT_EQ(nearest_name("uncodedd", choices), "uncoded");
  EXPECT_EQ(nearest_name("simple_randm", choices), "simple_random");
  // Too far from everything: no suggestion.
  EXPECT_EQ(nearest_name("zzz", choices), "");
  EXPECT_EQ(nearest_name("mpi", choices), "");
  // Ties resolve to registration order.
  EXPECT_EQ(nearest_name("br", {"fr", "cr"}), "fr");
}

TEST(UnknownNameMessage, IncludesDidYouMeanWhenClose) {
  const std::vector<std::string> choices = {"shifted_exp", "hetero",
                                            "lossy"};
  const std::string close =
      unknown_name_message("scenario", "shifted_exq", choices);
  EXPECT_NE(close.find("unknown scenario 'shifted_exq'"),
            std::string::npos);
  EXPECT_NE(close.find("did you mean 'shifted_exp'?"), std::string::npos);
  EXPECT_NE(close.find("choices: shifted_exp|hetero|lossy"),
            std::string::npos);

  const std::string far =
      unknown_name_message("scenario", "qqqqqq", choices);
  EXPECT_EQ(far.find("did you mean"), std::string::npos);
  EXPECT_NE(far.find("choices:"), std::string::npos);
}

// --- logging -----------------------------------------------------------------

TEST(Logger, LevelFiltering) {
  Logger& log = Logger::instance();
  const LogLevel old = log.level();
  log.set_level(LogLevel::kError);
  EXPECT_EQ(log.level(), LogLevel::kError);
  // Writing below the threshold must be a no-op (no crash, no output check
  // needed — the contract is simply that it is safe).
  log_debug() << "suppressed";
  log.set_level(old);
}

}  // namespace
}  // namespace coupon
