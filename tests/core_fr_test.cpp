// Deep tests for the fractional repetition scheme: block-replicated
// placement, worst-case straggler tolerance, and the early-finish
// property the paper's footnote 2 points out.

#include <gtest/gtest.h>

#include "core/fractional_repetition.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"
#include "opt/logistic.hpp"
#include "stats/rng.hpp"

namespace coupon::core {
namespace {

// Builds an int64 meta vector inline (std::span cannot bind a brace list).
std::vector<std::int64_t> mv(std::initializer_list<std::int64_t> v) {
  return std::vector<std::int64_t>(v);
}

TEST(Fr, RequiresDivisibility) {
  EXPECT_THROW(FractionalRepetitionScheme(10, 3), AssertionError);
  EXPECT_NO_THROW(FractionalRepetitionScheme(12, 3));
}

TEST(Fr, BlocksAreContiguousAndReplicatedRTimes) {
  FractionalRepetitionScheme scheme(12, 3);  // 4 blocks of 3 units
  EXPECT_EQ(scheme.num_blocks(), 4u);
  std::vector<std::size_t> replicas(4, 0);
  for (std::size_t i = 0; i < 12; ++i) {
    const std::size_t b = scheme.block_of_worker(i);
    ++replicas[b];
    const auto& g = scheme.placement().worker(i);
    ASSERT_EQ(g.size(), 3u);
    for (std::size_t t = 0; t < 3; ++t) {
      EXPECT_EQ(g[t], b * 3 + t);
    }
  }
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(replicas[b], 3u);  // one replica per group
  }
}

TEST(Fr, EarlyFinishWithOneWorkerPerBlock) {
  // CR with the same load would need n - s = 10 workers; FR finishes with
  // one worker per block = 4.
  FractionalRepetitionScheme scheme(12, 3);
  auto collector = scheme.make_collector();
  for (std::size_t block = 0; block < 4; ++block) {
    EXPECT_FALSE(collector->ready());
    // Worker `block` holds block `block` (group 0).
    collector->offer(block, scheme.message_meta(block), {});
  }
  EXPECT_TRUE(collector->ready());
  EXPECT_EQ(collector->workers_heard(), 4u);
}

TEST(Fr, ToleratesWorstCaseStragglers) {
  // s = r - 1 = 2 stragglers hitting the same block leave one replica.
  FractionalRepetitionScheme scheme(12, 3);
  // Workers holding block 0 are {0, 4, 8}; straggle 0 and 4.
  auto collector = scheme.make_collector();
  for (std::size_t i = 0; i < 12; ++i) {
    if (i == 0 || i == 4) {
      continue;
    }
    collector->offer(i, scheme.message_meta(i), {});
  }
  EXPECT_TRUE(collector->ready());
}

TEST(Fr, ReplicaOfSeenBlockIsDiscarded) {
  FractionalRepetitionScheme scheme(12, 3);
  auto collector = scheme.make_collector();
  EXPECT_TRUE(collector->offer(0, mv({0}), {}));   // block 0, group 0
  EXPECT_FALSE(collector->offer(4, mv({0}), {}));  // block 0, group 1
  EXPECT_EQ(collector->workers_heard(), 2u);
}

TEST(Fr, DecodedGradientMatchesSerial) {
  stats::Rng rng(41);
  data::SyntheticConfig dconf;
  dconf.num_features = 4;
  const auto prob = data::generate_logreg(8, dconf, rng);
  PerExampleSource source(prob.dataset);
  FractionalRepetitionScheme scheme(8, 2);  // 4 blocks of 2

  std::vector<double> w(4);
  for (auto& v : w) {
    v = rng.normal();
  }
  std::vector<double> serial(4);
  opt::logistic_gradient(prob.dataset, w, serial);
  linalg::scal(8.0, serial);

  // Deliver replicas from mixed groups, including duplicates.
  auto collector = scheme.make_collector();
  for (std::size_t i : {4u, 0u, 1u, 5u, 2u, 7u}) {
    if (collector->ready()) {
      break;
    }
    const auto msg = scheme.encode(i, source, w);
    collector->offer(i, msg.meta, msg.payload);
  }
  ASSERT_TRUE(collector->ready());
  std::vector<double> decoded(4);
  collector->decode_sum(decoded);
  EXPECT_LT(linalg::max_abs_diff(decoded, serial), 1e-10);
}

TEST(Fr, AverageThresholdBeatsCyclicRepetitionWorstCase) {
  // Empirically the FR master finishes well before n - r + 1 workers when
  // arrivals are uniformly random — the footnote-2 observation.
  stats::Rng rng(43);
  const std::size_t n = 20, r = 4;  // 5 blocks, CR threshold would be 17
  FractionalRepetitionScheme scheme(n, r);
  double total_heard = 0.0;
  const int trials = 500;
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = i;
  }
  for (int t = 0; t < trials; ++t) {
    rng.shuffle(order);
    auto collector = scheme.make_collector();
    for (std::size_t i : order) {
      if (collector->ready()) {
        break;
      }
      collector->offer(i, scheme.message_meta(i), {});
    }
    ASSERT_TRUE(collector->ready());
    total_heard += static_cast<double>(collector->workers_heard());
  }
  const double mean_k = total_heard / trials;
  EXPECT_LT(mean_k, 17.0 - 2.0);  // clearly below the CR threshold
  EXPECT_GE(mean_k, 5.0);         // needs at least one worker per block
}

TEST(Fr, LoadOneIsUncodedLike) {
  FractionalRepetitionScheme scheme(6, 1);
  EXPECT_EQ(scheme.num_blocks(), 6u);
  auto collector = scheme.make_collector();
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_FALSE(collector->ready());
    collector->offer(i, scheme.message_meta(i), {});
  }
  EXPECT_TRUE(collector->ready());
}

}  // namespace
}  // namespace coupon::core
