#pragma once

/// \file scheme_test_fixture.hpp
/// The shared scheme-contract fixture used by the registry-wide test
/// suites (core_scheme_conformance_test, core_collector_reset_test):
/// one (n=12, m=12, r=3) logistic problem, every registered scheme built
/// from it by name, per-worker messages cached, and the unit-ordered
/// serial gradient sums the decodes are checked against. Iterating
/// `SchemeRegistry::instance().names()` over this fixture is what makes
/// the contract automatic: a newly registered scheme is covered by every
/// suite without editing any test.

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/gradient_source.hpp"
#include "core/scheme_registry.hpp"
#include "data/batching.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace coupon::core::test_fixture {

// n = 12, m = 12, r = 3 satisfies every registered capability constraint:
// m == n (CR, FR, GC family), r | n (FR, nested GC), n >= ceil(m/r) (BCC).
constexpr std::size_t kWorkers = 12;
constexpr std::size_t kUnits = 12;
constexpr std::size_t kLoad = 3;
constexpr std::size_t kExamplesPerUnit = 2;
constexpr std::size_t kDim = 5;
constexpr std::size_t kTrials = 12;

struct SchemeFixture {
  std::unique_ptr<Scheme> scheme;
  std::vector<comm::Message> messages;  // encode(i) cached per worker
  /// Per-unit gradients g_u at the fixture's query point, each computed
  /// into a zeroed buffer via `unit_gradient` — the bitwise values that
  /// per-unit-shipping encodes (simple_random, gc_cyclic) carry.
  std::vector<std::vector<double>> unit_grads;
  /// The unit-ordered serial reference: out = 0; out += g_0; ...;
  /// out += g_{m-1} (one axpy per unit). Slot-decoding schemes that sum
  /// per-unit slots in unit order reproduce this bit-for-bit.
  std::vector<double> serial_sum;
};

inline SchemeFixture build_fixture(const std::string& name) {
  SchemeConfig config;
  config.num_workers = kWorkers;
  config.num_units = kUnits;
  config.load = kLoad;

  stats::Rng rng(0xC0FFEE);
  SchemeFixture fixture;
  fixture.scheme = SchemeRegistry::instance().create(name, config, rng);

  data::SyntheticConfig dconf;
  dconf.num_features = kDim;
  const auto problem =
      data::generate_logreg(kUnits * kExamplesPerUnit, dconf, rng);
  data::BatchPartition partition(kUnits * kExamplesPerUnit,
                                 kExamplesPerUnit);
  GroupedBatchSource source(problem.dataset, partition);

  std::vector<double> w(dconf.num_features);
  for (std::size_t j = 0; j < w.size(); ++j) {
    w[j] = 0.1 * static_cast<double>(j + 1);
  }
  fixture.messages.reserve(kWorkers);
  for (std::size_t i = 0; i < kWorkers; ++i) {
    fixture.messages.push_back(fixture.scheme->encode(i, source, w));
  }
  fixture.unit_grads.assign(kUnits, std::vector<double>(kDim, 0.0));
  fixture.serial_sum.assign(kDim, 0.0);
  for (std::size_t u = 0; u < kUnits; ++u) {
    source.unit_gradient(u, w, fixture.unit_grads[u]);
    linalg::axpy(1.0, fixture.unit_grads[u], fixture.serial_sum);
  }
  return fixture;
}

/// Feeds both collectors the same offer sequence, asserting identical
/// observable behavior after every single offer.
inline void expect_identical_trajectories(const SchemeFixture& fixture,
                                          Collector& fresh, Collector& reused,
                                          const std::vector<std::size_t>& order,
                                          bool with_payloads) {
  std::vector<double> sum_fresh(kDim), sum_reused(kDim);
  for (const std::size_t worker : order) {
    const auto& msg = fixture.messages[worker];
    const std::span<const double> payload =
        with_payloads ? std::span<const double>(msg.payload)
                      : std::span<const double>();
    const bool kept_fresh = fresh.offer(worker, msg.meta, payload);
    const bool kept_reused = reused.offer(worker, msg.meta, payload);
    EXPECT_EQ(kept_fresh, kept_reused) << "worker " << worker;
    EXPECT_EQ(fresh.ready(), reused.ready()) << "worker " << worker;
    EXPECT_EQ(fresh.workers_heard(), reused.workers_heard());
    EXPECT_DOUBLE_EQ(fresh.units_received(), reused.units_received());
    if (with_payloads && fresh.supports_partial_decode()) {
      const std::size_t units_fresh = fresh.decode_partial_sum(sum_fresh);
      const std::size_t units_reused = reused.decode_partial_sum(sum_reused);
      EXPECT_EQ(units_fresh, units_reused);
      EXPECT_EQ(sum_fresh, sum_reused);  // bitwise: same op order
    }
  }
  ASSERT_EQ(fresh.ready(), reused.ready());
  if (with_payloads && fresh.ready()) {
    fresh.decode_sum(sum_fresh);
    reused.decode_sum(sum_reused);
    EXPECT_EQ(sum_fresh, sum_reused);  // bitwise: same op order
  }
}

}  // namespace coupon::core::test_fixture
