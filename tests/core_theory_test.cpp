// Tests for the closed-form characterizations of Theorem 1, Lemma 2, and
// the prior-art comparisons (Eqs. 2-8), validated against Monte Carlo.

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.hpp"
#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"

namespace coupon::core::theory {
namespace {

TEST(Harmonic, ExactSmallValues) {
  EXPECT_DOUBLE_EQ(harmonic(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(5), 137.0 / 60.0, 1e-14);
  EXPECT_NEAR(harmonic(10), 2.9289682539682538, 1e-12);
}

TEST(Harmonic, ApproximationConvergesFromAbove) {
  for (std::size_t t : {10u, 100u, 1000u, 10000u}) {
    const double exact = harmonic(t);
    const auto td = static_cast<double>(t);
    const double approx = harmonic_approx(td);
    EXPECT_NEAR(approx, exact, 1.0 / (8.0 * td * td) + 1e-9) << "t=" << t;
  }
}

TEST(BccBatches, CeilingDivision) {
  EXPECT_EQ(bcc_batches(100, 10), 10u);
  EXPECT_EQ(bcc_batches(101, 10), 11u);
  EXPECT_EQ(bcc_batches(10, 100), 1u);
  EXPECT_EQ(bcc_batches(1, 1), 1u);
}

TEST(KBcc, MatchesEq2) {
  // m = 100, r = 10: K_BCC = 10 * H_10.
  EXPECT_NEAR(k_bcc(100, 10), 10.0 * harmonic(10), 1e-12);
  // r = m: a single batch, K = 1.
  EXPECT_DOUBLE_EQ(k_bcc(100, 100), 1.0);
}

TEST(Theorem1, LowerBoundNeverExceedsBcc) {
  for (std::size_t m : {10u, 50u, 100u, 1000u}) {
    for (std::size_t r = 1; r <= m; r = r * 2 + 1) {
      EXPECT_LE(k_lower_bound(m, r), k_bcc(m, r) + 1e-12)
          << "m=" << m << " r=" << r;
    }
  }
}

TEST(Theorem1, BccWithinLogFactorOfLowerBound) {
  // Eq. 3: K_BCC <= ceil(K*) * H_{ceil(m/r)}.
  for (std::size_t m : {60u, 100u, 500u}) {
    for (std::size_t r : {2u, 5u, 10u, 20u}) {
      const double lower = k_lower_bound(m, r);
      const double upper =
          std::ceil(lower) * harmonic(bcc_batches(m, r));
      EXPECT_LE(k_bcc(m, r), upper + 1e-9) << "m=" << m << " r=" << r;
    }
  }
}

TEST(KCyclicRepetition, MatchesEq7) {
  EXPECT_DOUBLE_EQ(k_cyclic_repetition(100, 10), 91.0);
  EXPECT_DOUBLE_EQ(k_cyclic_repetition(50, 10), 41.0);
  EXPECT_DOUBLE_EQ(k_cyclic_repetition(10, 10), 1.0);
}

TEST(Fig2, BccBeatsCrInTheOperatingRegime) {
  // Fig. 2 (m = n = 100): BCC sits below CR for moderate-to-large r, and
  // everything sits above the lower bound.
  const std::size_t m = 100;
  for (std::size_t r : {5u, 10u, 20u, 50u}) {
    EXPECT_LT(k_bcc(m, r), k_cyclic_repetition(m, r)) << "r=" << r;
    EXPECT_GE(k_bcc(m, r), k_lower_bound(m, r));
    EXPECT_GE(k_cyclic_repetition(m, r), k_lower_bound(m, r));
  }
  // For tiny r the coupon log factor makes BCC worse — the regime the
  // paper's plot starts above.
  EXPECT_GT(k_bcc(m, 2), k_cyclic_repetition(m, 2));
}

TEST(KSimpleRandom, ApproximationForm) {
  EXPECT_NEAR(k_simple_random_approx(100, 10),
              10.0 * std::log(100.0), 1e-12);
  EXPECT_NEAR(l_simple_random_approx(100), 100.0 * std::log(100.0), 1e-12);
}

TEST(LBcc, EqualsKBcc) {
  EXPECT_DOUBLE_EQ(l_bcc(100, 10), k_bcc(100, 10));
}

TEST(CouponCollector, ExpectedDrawsIsNHn) {
  EXPECT_DOUBLE_EQ(coupon_expected_draws(1), 1.0);
  EXPECT_NEAR(coupon_expected_draws(10), 10.0 * harmonic(10), 1e-12);
}

TEST(CouponCollector, MonteCarloMatchesExpectation) {
  stats::Rng rng(1);
  for (std::size_t types : {2u, 5u, 20u}) {
    const double mc = mc_coupon_draws(types, 4000, rng);
    const double exact = coupon_expected_draws(types);
    EXPECT_NEAR(mc, exact, 0.05 * exact) << "types=" << types;
  }
}

TEST(CouponCollector, SingleDrawIsAtLeastTypes) {
  stats::Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    EXPECT_GE(coupon_draws_once(7, rng), 7u);
  }
}

TEST(Lemma2, BoundHoldsEmpirically) {
  // Pr(M >= (1+eps) m log m) <= m^{-eps}; validate with slack for MC noise.
  stats::Rng rng(3);
  const std::size_t m = 20;
  const int trials = 20000;
  for (double eps : {0.1, 0.5, 1.0}) {
    const double cutoff =
        (1.0 + eps) * static_cast<double>(m) * std::log(static_cast<double>(m));
    int exceed = 0;
    for (int t = 0; t < trials; ++t) {
      if (static_cast<double>(coupon_draws_once(m, rng)) >= cutoff) {
        ++exceed;
      }
    }
    const double empirical = static_cast<double>(exceed) / trials;
    const double bound = lemma2_tail_bound(m, eps);
    EXPECT_LE(empirical, bound + 3.0 * std::sqrt(bound / trials) + 1e-3)
        << "eps=" << eps;
  }
}

TEST(Lemma2, BoundIsMonotoneInEps) {
  EXPECT_GT(lemma2_tail_bound(50, 0.1), lemma2_tail_bound(50, 0.5));
  EXPECT_DOUBLE_EQ(lemma2_tail_bound(50, 0.0), 1.0);
}

TEST(SimpleRandomMc, BracketedByBoundAndApproximation) {
  // The exact expectation of the group-draw coupon process lies between
  // the lower bound m/r and the (m/r) log m i.i.d. approximation.
  stats::Rng rng(4);
  const std::size_t m = 50, r = 5;
  const double mc = mc_simple_random_threshold(m, r, 2000, rng);
  EXPECT_GE(mc, k_lower_bound(m, r));
  EXPECT_LE(mc, 1.2 * k_simple_random_approx(m, r));
}

TEST(SimpleRandomMc, MonotoneDecreasingInLoad) {
  stats::Rng rng(5);
  const std::size_t m = 40;
  double prev = 1e300;
  for (std::size_t r : {2u, 5u, 10u, 20u}) {
    const double mc = mc_simple_random_threshold(m, r, 1500, rng);
    EXPECT_LT(mc, prev) << "r=" << r;
    prev = mc;
  }
}

TEST(FractionalRepetitionMc, BelowWorstCaseAboveBlockCount) {
  stats::Rng rng(6);
  const std::size_t n = 20, r = 4;
  const double mc = mc_fractional_repetition_threshold(n, r, 2000, rng);
  EXPECT_GE(mc, static_cast<double>(n / r));
  EXPECT_LT(mc, k_cyclic_repetition(n, r));
}

TEST(ExpectedMaxShiftedExponential, MatchesMonteCarlo) {
  stats::Rng rng(7);
  const double a = 2.0, mu = 3.0, load = 4.0;
  const std::size_t n = 20;
  const double analytic = expected_max_shifted_exponential(a, mu, load, n);
  EXPECT_DOUBLE_EQ(analytic, a * load + load / mu * harmonic(n));

  const auto dist = stats::ShiftedExponential::for_load(a, mu, load);
  stats::OnlineStats mc;
  for (int trial = 0; trial < 20000; ++trial) {
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, dist.sample(rng));
    }
    mc.add(worst);
  }
  EXPECT_NEAR(mc.mean(), analytic, 5.0 * mc.sem());
}

TEST(ExpectedMaxPareto, MatchesMonteCarloAndGrowsPolynomially) {
  stats::Rng rng(11);
  const double scale = 0.5, alpha = 3.0;
  const std::size_t n = 20;
  const double analytic = expected_max_pareto(scale, alpha, n);

  const stats::Pareto dist{scale, alpha};
  stats::OnlineStats mc;
  for (int trial = 0; trial < 40000; ++trial) {
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      worst = std::max(worst, dist.sample(rng));
    }
    mc.add(worst);
  }
  EXPECT_NEAR(mc.mean(), analytic, 5.0 * mc.sem());

  // Polynomial growth: E[max of n] ~ n^{1/alpha}, so quadrupling n scales
  // the max by ~4^{1/3} — far faster than the H_n increment of Eq. 15.
  const double ratio =
      expected_max_pareto(scale, alpha, 4 * n) / analytic;
  EXPECT_NEAR(ratio, std::pow(4.0, 1.0 / alpha), 0.02);
  EXPECT_THROW(expected_max_pareto(scale, 1.0, n), coupon::AssertionError);
}


TEST(CouponCollector, VarianceMatchesMonteCarlo) {
  stats::Rng rng(8);
  const std::size_t types = 10;
  const double analytic = coupon_draws_variance(types);
  stats::OnlineStats mc;
  for (int t = 0; t < 40000; ++t) {
    mc.add(static_cast<double>(coupon_draws_once(types, rng)));
  }
  EXPECT_NEAR(mc.variance(), analytic, 0.06 * analytic);
  EXPECT_NEAR(mc.mean(), coupon_expected_draws(types), 4.0 * mc.sem());
}

TEST(CouponCollector, VarianceClosedFormSmallCases) {
  // N = 1: deterministic single draw.
  EXPECT_DOUBLE_EQ(coupon_draws_variance(1), 0.0);
  // N = 2: M = 1 + Geometric(1/2); Var = (1-p)/p^2 = 2.
  EXPECT_DOUBLE_EQ(coupon_draws_variance(2), 2.0);
}

TEST(Theory, DegenerateArgumentsAssert) {
  EXPECT_THROW(k_bcc(0, 1), coupon::AssertionError);
  EXPECT_THROW(k_bcc(1, 0), coupon::AssertionError);
  EXPECT_THROW(k_cyclic_repetition(5, 6), coupon::AssertionError);
  EXPECT_THROW(harmonic_approx(0.0), coupon::AssertionError);
  EXPECT_THROW(lemma2_tail_bound(0, 0.5), coupon::AssertionError);
}

}  // namespace
}  // namespace coupon::core::theory
