// Deep tests for the simple randomized baseline: per-example placement,
// per-unit deduplication at the master, and the communication-load
// blow-up (Eq. 6) that motivates BCC.

#include <gtest/gtest.h>

#include <set>

#include "core/simple_random.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"
#include "opt/logistic.hpp"
#include "stats/rng.hpp"

namespace coupon::core {
namespace {

// Builds an int64 meta vector inline (std::span cannot bind a brace list).
std::vector<std::int64_t> mv(std::initializer_list<std::int64_t> v) {
  return std::vector<std::int64_t>(v);
}

TEST(SimpleRandom, EachWorkerHoldsRDistinctUnits) {
  stats::Rng rng(1);
  SimpleRandomScheme scheme(30, 20, 6, rng);
  for (std::size_t i = 0; i < 30; ++i) {
    const auto& g = scheme.placement().worker(i);
    EXPECT_EQ(g.size(), 6u);
    std::set<std::size_t> distinct(g.begin(), g.end());
    EXPECT_EQ(distinct.size(), 6u);
    for (std::size_t u : g) {
      EXPECT_LT(u, 20u);
    }
  }
  EXPECT_EQ(scheme.computational_load(), 6u);
}

TEST(SimpleRandom, MessageUnitsEqualLoad) {
  stats::Rng rng(2);
  SimpleRandomScheme scheme(10, 15, 4, rng);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(scheme.message_units(i), 4.0);
    EXPECT_EQ(scheme.message_meta(i).size(), 4u);
  }
}

TEST(SimpleRandom, CommunicationLoadIsLoadTimesWorkersHeard) {
  // Each heard worker contributes r gradient units to L whether or not
  // its units were fresh — the Eq. 6 blow-up.
  stats::Rng rng(3);
  SimpleRandomScheme scheme(200, 12, 3, rng);
  auto collector = scheme.make_collector();
  for (std::size_t i = 0; i < 200 && !collector->ready(); ++i) {
    collector->offer(i, scheme.message_meta(i), {});
  }
  ASSERT_TRUE(collector->ready());
  EXPECT_DOUBLE_EQ(collector->units_received(),
                   3.0 * static_cast<double>(collector->workers_heard()));
}

TEST(SimpleRandom, OfferWithAllUnitsAlreadyCoveredIsNotKept) {
  stats::Rng rng(4);
  SimpleRandomScheme scheme(5, 4, 2, rng);
  auto collector = scheme.make_collector();
  EXPECT_TRUE(collector->offer(0, mv({0, 1}), {}));
  EXPECT_TRUE(collector->offer(1, mv({2, 1}), {}));   // unit 2 fresh
  EXPECT_FALSE(collector->offer(2, mv({0, 2}), {}));  // nothing fresh
  EXPECT_FALSE(collector->ready());               // unit 3 missing
  EXPECT_TRUE(collector->offer(3, mv({3, 0}), {}));
  EXPECT_TRUE(collector->ready());
  EXPECT_EQ(collector->workers_heard(), 4u);
  EXPECT_DOUBLE_EQ(collector->units_received(), 8.0);
}

TEST(SimpleRandom, DecodeKeepsFirstGradientPerUnit) {
  stats::Rng rng(5);
  data::SyntheticConfig dconf;
  dconf.num_features = 4;
  const auto prob = data::generate_logreg(6, dconf, rng);
  PerExampleSource source(prob.dataset);
  // Large n so the fixed seed covers all units with near certainty.
  SimpleRandomScheme scheme(60, 6, 2, rng);

  std::vector<double> w(4);
  for (auto& v : w) {
    v = rng.normal();
  }
  std::vector<double> serial(4);
  opt::logistic_gradient(prob.dataset, w, serial);
  linalg::scal(6.0, serial);

  auto collector = scheme.make_collector();
  for (std::size_t i = 0; i < 60 && !collector->ready(); ++i) {
    const auto msg = scheme.encode(i, source, w);
    collector->offer(i, msg.meta, msg.payload);
  }
  ASSERT_TRUE(collector->ready());
  std::vector<double> decoded(4);
  collector->decode_sum(decoded);
  EXPECT_LT(linalg::max_abs_diff(decoded, serial), 1e-10);
}

TEST(SimpleRandom, PayloadConcatenatesPerUnitGradients) {
  stats::Rng rng(6);
  data::SyntheticConfig dconf;
  dconf.num_features = 3;
  const auto prob = data::generate_logreg(5, dconf, rng);
  PerExampleSource source(prob.dataset);
  SimpleRandomScheme scheme(4, 5, 2, rng);
  const std::vector<double> w = {0.5, -0.5, 0.25};

  const auto msg = scheme.encode(0, source, w);
  ASSERT_EQ(msg.payload.size(), 6u);
  ASSERT_EQ(msg.meta.size(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    std::vector<double> expected(3);
    opt::partial_gradient(prob.dataset,
                          static_cast<std::size_t>(msg.meta[k]), w, expected);
    const std::span<const double> slice(msg.payload.data() + k * 3, 3);
    EXPECT_LT(linalg::max_abs_diff(slice, expected), 1e-13);
  }
}

TEST(SimpleRandom, InvalidLoadAsserts) {
  stats::Rng rng(7);
  EXPECT_THROW(SimpleRandomScheme(5, 4, 0, rng), AssertionError);
  EXPECT_THROW(SimpleRandomScheme(5, 4, 5, rng), AssertionError);
}

TEST(SimpleRandom, FullLoadMakesEveryWorkerSufficient) {
  stats::Rng rng(8);
  SimpleRandomScheme scheme(5, 4, 4, rng);  // r = m: one worker covers all
  auto collector = scheme.make_collector();
  collector->offer(0, scheme.message_meta(0), {});
  EXPECT_TRUE(collector->ready());
  EXPECT_EQ(collector->workers_heard(), 1u);
}

}  // namespace
}  // namespace coupon::core
