// Pins the PR's bitwise-equivalence contracts (DESIGN.md §12):
//
//   * `Scheme::encode_into` produces byte-identical messages to `encode`
//     for every registered scheme, including when the out-message is
//     reused across workers (the allocation-free path's buffer reuse);
//   * encoding through a `CachedGradientSource` changes no bytes;
//   * `Scheme::encode_group` names only workers whose messages really
//     are bitwise identical;
//   * a `SimulatedProvider` with the cached encode path produces the
//     exact training trajectory (weights, loss history, clock) of the
//     legacy fresh-encode-per-arrival path.

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "core/core.hpp"
#include "data/batching.hpp"
#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "opt/least_squares.hpp"
#include "opt/optimizer.hpp"
#include "opt/schedule.hpp"
#include "stats/rng.hpp"

namespace coupon {
namespace {

constexpr const char* kAllSchemes[] = {"uncoded",   "bcc", "simple_random",
                                       "cr",        "fr",  "gc_cyclic",
                                       "sgc",       "gc_nested"};

core::SchemeConfig test_scheme_config() {
  core::SchemeConfig config;
  config.num_workers = 24;
  config.num_units = 24;
  config.load = 4;
  return config;
}

data::SyntheticProblem test_problem(std::uint64_t seed) {
  data::SyntheticConfig dconf;
  dconf.num_features = 12;
  stats::Rng rng(seed);
  return data::generate_linreg(/*num_examples=*/24, dconf,
                               /*noise_stddev=*/0.2, rng);
}

std::vector<double> random_point(std::size_t dim, stats::Rng& rng) {
  std::vector<double> w(dim);
  for (double& v : w) {
    v = rng.normal();
  }
  return w;
}

void expect_bitwise_equal(std::span<const double> a, std::span<const double> b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty()) {
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what;
  }
}

TEST(EncodeInto, MatchesEncodeBytesForEverySchemeAndSeed) {
  const data::SyntheticProblem problem = test_problem(0xE0C0DE);
  const core::LeastSquaresExampleSource source(problem.dataset);
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    stats::Rng w_rng(seed * 1000 + 7);
    const std::vector<double> w = random_point(source.dim(), w_rng);
    for (const char* kind : kAllSchemes) {
      stats::Rng build_rng(seed);
      const auto scheme = core::SchemeRegistry::instance().create(
          kind, test_scheme_config(), build_rng);
      // One reused out-message across all workers: stale meta/payload from
      // the previous worker must never leak into the next encode.
      comm::Message reused;
      for (std::size_t worker = 0; worker < scheme->num_workers(); ++worker) {
        const comm::Message reference = scheme->encode(worker, source, w);
        scheme->encode_into(worker, source, w, reused);
        EXPECT_EQ(reused.meta, reference.meta)
            << kind << " worker " << worker;
        expect_bitwise_equal(reused.payload, reference.payload, kind);
      }
    }
  }
}

TEST(EncodeInto, CachedSourceChangesNoBytes) {
  const data::SyntheticProblem problem = test_problem(0xCAC4ED);
  const core::LeastSquaresExampleSource raw(problem.dataset);
  const core::CachedGradientSource cached(raw);
  stats::Rng w_rng(99);
  const std::vector<double> w = random_point(raw.dim(), w_rng);
  for (const char* kind : kAllSchemes) {
    stats::Rng build_rng(5);
    const auto scheme = core::SchemeRegistry::instance().create(
        kind, test_scheme_config(), build_rng);
    comm::Message via_cache;
    for (std::size_t worker = 0; worker < scheme->num_workers(); ++worker) {
      const comm::Message reference = scheme->encode(worker, raw, w);
      scheme->encode_into(worker, cached, w, via_cache);
      EXPECT_EQ(via_cache.meta, reference.meta) << kind;
      expect_bitwise_equal(via_cache.payload, reference.payload, kind);
    }
  }
}

TEST(EncodeGroup, NamesOnlyBitwiseIdenticalMessages) {
  const data::SyntheticProblem problem = test_problem(0x96057);
  const core::LeastSquaresExampleSource source(problem.dataset);
  stats::Rng w_rng(17);
  const std::vector<double> w = random_point(source.dim(), w_rng);
  for (const char* kind : kAllSchemes) {
    stats::Rng build_rng(21);
    const auto scheme = core::SchemeRegistry::instance().create(
        kind, test_scheme_config(), build_rng);
    const std::size_t num_groups = scheme->num_encode_groups();
    std::vector<comm::Message> first_in_group(num_groups);
    std::vector<bool> seen(num_groups, false);
    for (std::size_t worker = 0; worker < scheme->num_workers(); ++worker) {
      const auto group = scheme->encode_group(worker);
      if (!group) {
        continue;
      }
      ASSERT_LT(*group, num_groups) << kind;
      const comm::Message msg = scheme->encode(worker, source, w);
      if (!seen[*group]) {
        seen[*group] = true;
        first_in_group[*group] = msg;
        continue;
      }
      EXPECT_EQ(msg.meta, first_in_group[*group].meta) << kind;
      expect_bitwise_equal(msg.payload, first_in_group[*group].payload, kind);
    }
    if (num_groups == 0) {
      for (std::size_t worker = 0; worker < scheme->num_workers(); ++worker) {
        EXPECT_FALSE(scheme->encode_group(worker).has_value()) << kind;
      }
    }
  }
}

/// Counts inner calls so the memoization scope is observable.
class CountingSource final : public core::UnitGradientSource {
 public:
  CountingSource(std::size_t units, std::size_t dim)
      : units_(units), dim_(dim) {}

  std::size_t num_units() const override { return units_; }
  std::size_t dim() const override { return dim_; }
  std::size_t num_examples() const override { return units_; }

  void unit_gradient(std::size_t unit, std::span<const double> w,
                     std::span<double> out) const override {
    ++unit_calls;
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<double>(unit) + 0.5 * static_cast<double>(i) + w[0];
    }
  }

  void accumulate_unit_gradient(std::size_t unit, std::span<const double> w,
                                std::span<double> out) const override {
    ++accumulate_calls;
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += static_cast<double>(unit) + 0.5 * static_cast<double>(i) + w[0];
    }
  }

  mutable std::size_t unit_calls = 0;
  mutable std::size_t accumulate_calls = 0;

 private:
  std::size_t units_;
  std::size_t dim_;
};

TEST(CachedGradientSource, ComputesEachUnitOncePerIteration) {
  const CountingSource inner(/*units=*/6, /*dim=*/4);
  core::CachedGradientSource cache(inner);
  const std::vector<double> w = {1.25, 0.0, 0.0, 0.0};
  std::vector<double> out(4);
  std::vector<double> scratch(4);

  cache.begin_iteration();
  cache.unit_gradient(3, w, out);
  EXPECT_EQ(inner.unit_calls, 1u);
  const std::vector<double> first = out;
  cache.unit_gradient(3, w, out);
  EXPECT_EQ(inner.unit_calls, 1u);  // served from the slab
  expect_bitwise_equal(out, first, "cached repeat");

  // The view must alias the slab (no scratch write) and match the bits.
  std::fill(scratch.begin(), scratch.end(), -7.0);
  const std::span<const double> view = cache.unit_gradient_view(3, w, scratch);
  EXPECT_EQ(inner.unit_calls, 1u);
  expect_bitwise_equal(view, first, "cached view");
  EXPECT_EQ(scratch[0], -7.0);  // scratch untouched

  // Distinct units are distinct cache rows.
  cache.unit_gradient(5, w, out);
  EXPECT_EQ(inner.unit_calls, 2u);

  // A new iteration invalidates every row.
  cache.begin_iteration();
  cache.unit_gradient(3, w, out);
  EXPECT_EQ(inner.unit_calls, 3u);
}

TEST(CachedGradientSource, AccumulateDelegatesUncached) {
  // Accumulate-style encoders fold examples into running sums whose FP
  // association order the golden traces pin — the cache must pass those
  // calls straight through every time.
  const CountingSource inner(/*units=*/4, /*dim=*/3);
  core::CachedGradientSource cache(inner);
  const std::vector<double> w = {0.5, 0.0, 0.0};
  std::vector<double> out(3, 0.0);

  cache.begin_iteration();
  cache.accumulate_unit_gradient(2, w, out);
  cache.accumulate_unit_gradient(2, w, out);
  EXPECT_EQ(inner.accumulate_calls, 2u);
  EXPECT_EQ(inner.unit_calls, 0u);
}

TEST(ProviderCache, CachedPathMatchesLegacyTrajectoryBitwise) {
  // Full training runs, cache_encode on vs off: same scheme, same seeds,
  // same cluster. The trajectories — every weight, every loss point, the
  // simulated clock — must match bit for bit for every scheme.
  const data::SyntheticProblem problem = test_problem(0x7247);
  const core::LeastSquaresExampleSource source(problem.dataset);
  simulate::ClusterConfig cluster;
  cluster.compute_shift = 1e-3;
  cluster.compute_straggle = 10.0;
  cluster.unit_transfer_seconds = 2e-3;
  cluster.broadcast_seconds = 1e-4;
  cluster.drop_probability = 0.1;  // exercise failure iterations too

  const data::Dataset* dataset = &problem.dataset;
  for (const char* kind : kAllSchemes) {
    stats::Rng build_rng(33);
    const auto scheme = core::SchemeRegistry::instance().create(
        kind, test_scheme_config(), build_rng);

    auto run = [&](bool cache_encode) {
      stats::Rng rng(0xF00D);
      engine::ProviderOptions popts;
      popts.cache_encode = cache_encode;
      engine::SimulatedProvider provider(*scheme, source, cluster, rng, popts);
      engine::TrainingEngine protocol(*scheme, source, provider);
      opt::NesterovGradient optimizer(
          source.dim(), opt::LearningRateSchedule::constant(0.05));
      engine::TrainOptions options;
      options.iterations = 40;
      options.on_failure = engine::FailurePolicy::kSkipUpdate;
      options.loss_fn = [dataset](std::span<const double> w) {
        return opt::squared_loss(*dataset, w);
      };
      options.record_loss_history = true;
      return protocol.train(optimizer, options);
    };

    const engine::TrainReport cached = run(/*cache_encode=*/true);
    const engine::TrainReport legacy = run(/*cache_encode=*/false);
    expect_bitwise_equal(cached.weights, legacy.weights, kind);
    EXPECT_EQ(cached.elapsed_seconds, legacy.elapsed_seconds) << kind;
    EXPECT_EQ(cached.failed_iterations, legacy.failed_iterations) << kind;
    ASSERT_EQ(cached.loss_history.size(), legacy.loss_history.size()) << kind;
    for (std::size_t i = 0; i < cached.loss_history.size(); ++i) {
      EXPECT_EQ(cached.loss_history[i].loss, legacy.loss_history[i].loss)
          << kind << " iteration " << i;
      EXPECT_EQ(cached.loss_history[i].seconds,
                legacy.loss_history[i].seconds)
          << kind << " iteration " << i;
    }
  }
}

// The base-class defaults are bypassed by every in-tree override, but
// they are the contract out-of-tree schemes and sources rely on
// (encode_into's doc promises the forward-to-encode fallback, and
// accumulate_units_gradient's doc promises exact equivalence with the
// per-unit loop). Qualified calls pin each default against its
// overridden fast path.

TEST(BaseClassDefaults, SchemeEncodeIntoForwardsToEncode) {
  const data::SyntheticProblem problem = test_problem(0xBA5EDEF);
  const core::LeastSquaresExampleSource source(problem.dataset);
  stats::Rng rng(41);
  for (const char* name : {"bcc", "gc_cyclic"}) {
    stats::Rng build_rng(7);
    const auto scheme = core::SchemeRegistry::instance().create(
        name, test_scheme_config(), build_rng);
    const std::vector<double> w = random_point(source.dim(), rng);
    for (std::size_t worker : {std::size_t{0}, std::size_t{5}}) {
      const comm::Message direct = scheme->encode(worker, source, w);
      comm::Message via_default;
      via_default.payload.assign(3, -1.0);  // dirty slot: must be replaced
      scheme->core::Scheme::encode_into(worker, source, w, via_default);
      EXPECT_EQ(direct.meta, via_default.meta) << name;
      expect_bitwise_equal(direct.payload, via_default.payload, name);
    }
  }
}

TEST(BaseClassDefaults, AccumulateUnitsGradientLoopMatchesOverrides) {
  const data::SyntheticProblem problem = test_problem(0xACCDEF);
  stats::Rng rng(43);
  const std::vector<double> w = random_point(12, rng);
  const std::vector<std::size_t> units = {3, 4, 5, 9, 0, 17};

  const core::LeastSquaresExampleSource ls(problem.dataset);
  const data::BatchPartition partition(problem.dataset.num_examples(), 4);
  const core::GroupedBatchSource grouped(problem.dataset, partition);
  const core::UnitGradientSource* sources[] = {&ls, &grouped};
  for (const core::UnitGradientSource* source : sources) {
    std::vector<std::size_t> used;
    for (const std::size_t unit : units) {
      if (unit < source->num_units()) {
        used.push_back(unit);
      }
    }
    std::vector<double> fast(source->dim(), 0.25);
    std::vector<double> loop(source->dim(), 0.25);
    source->accumulate_units_gradient(used, w, fast);
    source->core::UnitGradientSource::accumulate_units_gradient(used, w, loop);
    expect_bitwise_equal(fast, loop, "units loop vs override");

    // The per-unit accumulate itself must match unit_gradient + add.
    std::vector<double> acc(source->dim(), 0.0);
    std::vector<double> fresh(source->dim());
    source->accumulate_unit_gradient(used.front(), w, acc);
    source->unit_gradient(used.front(), w, fresh);
    expect_bitwise_equal(acc, fresh, "accumulate into zeros vs overwrite");
  }
}

TEST(BaseClassDefaults, UnitGradientViewComputesIntoScratch) {
  const data::SyntheticProblem problem = test_problem(0x51DEDEF);
  const core::LeastSquaresExampleSource source(problem.dataset);
  stats::Rng rng(47);
  const std::vector<double> w = random_point(source.dim(), rng);
  std::vector<double> scratch(source.dim(), -7.0);
  const std::span<const double> view =
      source.core::UnitGradientSource::unit_gradient_view(2, w, scratch);
  EXPECT_EQ(view.data(), scratch.data());
  std::vector<double> fresh(source.dim());
  source.unit_gradient(2, w, fresh);
  expect_bitwise_equal(view, fresh, "default view vs unit_gradient");
}

}  // namespace
}  // namespace coupon

