// Golden-trace regression: a canonical 2-scheme x 2-scenario sweep must
// reproduce tests/golden/sweep_2x2.jsonl byte for byte.
//
// The golden file was captured from the pre-LatencyModel-refactor binary
// (`coupon_run --sweep --schemes bcc,cr --scenarios shifted_exp,lossy
// --workers 20 --units 20 --load 4 --iterations 40 --seed 9 --threads 1`),
// so this test pins two claims at once: the ShiftedExpModel extraction
// left the simulated traces bit-identical, and future changes keep sweep
// output deterministic. Numbers are rendered with %.17g (exact double
// round-trip); our own xoshiro-based samplers make the draws
// platform-independent, and CI's glibc libm pins exp/log rounding.
//
// If this test fails after an *intentional* change to the simulator's
// draw sequence, regenerate the file with the coupon_run invocation
// above and say so loudly in the commit message.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "driver/driver.hpp"
#include "driver/sweep.hpp"

namespace driver = coupon::driver;

namespace {

driver::SweepPlan golden_plan() {
  driver::SweepPlan plan;
  plan.base.num_workers = 20;
  plan.base.num_units = 20;
  plan.base.load = 4;
  plan.base.iterations = 40;
  plan.base.seed = 9;
  plan.schemes = {"bcc", "cr"};
  plan.scenarios = {"shifted_exp", "lossy"};
  return plan;
}

/// The convergence golden: a small training sweep (real gradients over
/// simulated time) captured from the engine that introduced the feature
/// (`coupon_run --sweep --train --schemes bcc,uncoded --scenarios
/// shifted_exp,no_stragglers --workers_axis 8 --loads 2 --iterations_axis
/// 12 --seeds 5 --features 6 --examples_per_unit 4 --target_loss 0.6
/// --loss_history --threads 1 --jsonl tests/golden/convergence_2x2.jsonl`).
/// Pins the whole train path: synthetic data draw, placement, kernel
/// arrival order, decode arithmetic, optimizer steps, loss rendering.
driver::SweepPlan convergence_plan() {
  driver::SweepPlan plan;
  plan.base.train = true;
  plan.base.record_trace = false;  // sweep mode runs trace-free
  plan.base.record_loss_history = true;
  plan.base.target_loss = 0.6;
  plan.base.num_workers = 8;
  plan.base.num_units = 8;
  plan.base.load = 2;
  plan.base.iterations = 12;
  plan.base.seed = 5;
  plan.base.features = 6;
  plan.base.examples_per_unit = 4;
  plan.schemes = {"bcc", "uncoded"};
  plan.scenarios = {"shifted_exp", "no_stragglers"};
  return plan;
}

/// The gradient-coding golden: the same canonical sweep shape as
/// golden_plan over the exact-recovery GC family (captured from the
/// engine that introduced the schemes: `coupon_run --sweep --schemes
/// gc_cyclic,gc_nested --scenarios shifted_exp,lossy --workers 20
/// --units 20 --loads 4 --iterations 40 --seed 9 --threads 1 --jsonl
/// tests/golden/gc_sweep.jsonl`). Pins the cyclic-window placement, the
/// deterministic n - r + 1 readiness rule (recovery_threshold is exactly
/// 17 in every row), and the per-message unit accounting (r = 4 raw
/// units for gc_cyclic, d(4) = 3 ladder components for gc_nested).
driver::SweepPlan gc_plan() {
  driver::SweepPlan plan;
  plan.base.num_workers = 20;
  plan.base.num_units = 20;
  plan.base.load = 4;
  plan.base.iterations = 40;
  plan.base.seed = 9;
  plan.schemes = {"gc_cyclic", "gc_nested"};
  plan.scenarios = {"shifted_exp", "lossy"};
  return plan;
}

std::string run_plan_to_jsonl(const driver::SweepPlan& plan,
                              std::size_t threads) {
  std::ostringstream os;
  driver::JsonlSink sink(os);
  driver::SweepOptions options;
  options.threads = threads;
  options.sink = &sink;
  driver::run_sweep(plan, options);
  return os.str();
}

std::string read_golden(const std::string& file) {
  const std::string path = std::string(COUPON_GOLDEN_DIR) + "/" + file;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

TEST(GoldenTrace, SerialSweepIsByteIdenticalToTheCheckedInGolden) {
  const std::string golden = read_golden("sweep_2x2.jsonl");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(run_plan_to_jsonl(golden_plan(), /*threads=*/1), golden)
      << "sweep output drifted from tests/golden/sweep_2x2.jsonl — the "
         "simulator's RNG draw sequence changed";
}

TEST(GoldenTrace, ParallelSweepMatchesTheGoldenToo) {
  // The parallel path streams in cell order and seeds per cell, so it
  // must hit the same bytes.
  EXPECT_EQ(run_plan_to_jsonl(golden_plan(), /*threads=*/4),
            read_golden("sweep_2x2.jsonl"));
}

TEST(GoldenGcSweep, SerialGcSweepIsByteIdenticalToTheCheckedInGolden) {
  const std::string golden = read_golden("gc_sweep.jsonl");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(run_plan_to_jsonl(gc_plan(), /*threads=*/1), golden)
      << "sweep output drifted from tests/golden/gc_sweep.jsonl — the "
         "gradient-coding placements, readiness rule, or the simulator's "
         "RNG draw sequence changed";
}

TEST(GoldenGcSweep, ParallelGcSweepMatchesTheGoldenToo) {
  EXPECT_EQ(run_plan_to_jsonl(gc_plan(), /*threads=*/4),
            read_golden("gc_sweep.jsonl"));
}

TEST(GoldenConvergence, SerialTrainingSweepIsByteIdentical) {
  const std::string golden = read_golden("convergence_2x2.jsonl");
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(run_plan_to_jsonl(convergence_plan(), /*threads=*/1), golden)
      << "training-sweep output drifted from "
         "tests/golden/convergence_2x2.jsonl — the data draw, placement, "
         "arrival order, decode arithmetic, or optimizer changed";
}

TEST(GoldenConvergence, ParallelTrainingSweepMatchesTheGoldenToo) {
  EXPECT_EQ(run_plan_to_jsonl(convergence_plan(), /*threads=*/4),
            read_golden("convergence_2x2.jsonl"));
}
