// Golden-trace regression: a canonical 2-scheme x 2-scenario sweep must
// reproduce tests/golden/sweep_2x2.jsonl byte for byte.
//
// The golden file was captured from the pre-LatencyModel-refactor binary
// (`coupon_run --sweep --schemes bcc,cr --scenarios shifted_exp,lossy
// --workers 20 --units 20 --load 4 --iterations 40 --seed 9 --threads 1`),
// so this test pins two claims at once: the ShiftedExpModel extraction
// left the simulated traces bit-identical, and future changes keep sweep
// output deterministic. Numbers are rendered with %.17g (exact double
// round-trip); our own xoshiro-based samplers make the draws
// platform-independent, and CI's glibc libm pins exp/log rounding.
//
// If this test fails after an *intentional* change to the simulator's
// draw sequence, regenerate the file with the coupon_run invocation
// above and say so loudly in the commit message.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "driver/driver.hpp"
#include "driver/sweep.hpp"

namespace driver = coupon::driver;

namespace {

driver::SweepPlan golden_plan() {
  driver::SweepPlan plan;
  plan.base.num_workers = 20;
  plan.base.num_units = 20;
  plan.base.load = 4;
  plan.base.iterations = 40;
  plan.base.seed = 9;
  plan.schemes = {"bcc", "cr"};
  plan.scenarios = {"shifted_exp", "lossy"};
  return plan;
}

std::string run_plan_to_jsonl(std::size_t threads) {
  std::ostringstream os;
  driver::JsonlSink sink(os);
  driver::SweepOptions options;
  options.threads = threads;
  options.sink = &sink;
  driver::run_sweep(golden_plan(), options);
  return os.str();
}

std::string read_golden() {
  const std::string path =
      std::string(COUPON_GOLDEN_DIR) + "/sweep_2x2.jsonl";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

TEST(GoldenTrace, SerialSweepIsByteIdenticalToTheCheckedInGolden) {
  const std::string golden = read_golden();
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(run_plan_to_jsonl(/*threads=*/1), golden)
      << "sweep output drifted from tests/golden/sweep_2x2.jsonl — the "
         "simulator's RNG draw sequence changed";
}

TEST(GoldenTrace, ParallelSweepMatchesTheGoldenToo) {
  // The parallel path streams in cell order and seeds per cell, so it
  // must hit the same bytes.
  EXPECT_EQ(run_plan_to_jsonl(/*threads=*/4), read_golden());
}
