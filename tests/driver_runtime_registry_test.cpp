// Tests for the open runtime registry: built-in coverage, alias lookup,
// capability flags, duplicate rejection, unknown-name diagnostics, and
// the single-call extension contract.

#include <gtest/gtest.h>

#include <stdexcept>

#include "driver/runtime_registry.hpp"

namespace coupon::driver {
namespace {

TEST(RuntimeRegistry, BuiltinsRegisteredInPresentationOrder) {
  const auto names = RuntimeRegistry::instance().names();
  const std::vector<std::string> expected = {"sim", "threaded", "process"};
  ASSERT_GE(names.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(names[i], expected[i]);
  }
  EXPECT_EQ(RuntimeRegistry::instance().choices().substr(0, 12),
            "sim|threaded");
}

TEST(RuntimeRegistry, EveryBuiltinIsConstructibleAndSelfNamed) {
  for (const auto& name : RuntimeRegistry::instance().names()) {
    auto runtime = RuntimeRegistry::instance().create(name);
    ASSERT_NE(runtime, nullptr) << name;
    EXPECT_EQ(runtime->name(), name);
  }
}

TEST(RuntimeRegistry, AliasLookupFindsCanonicalEntry) {
  const auto& registry = RuntimeRegistry::instance();
  const RuntimeEntry* by_alias = registry.find("simulated");
  ASSERT_NE(by_alias, nullptr);
  EXPECT_EQ(by_alias->name, "sim");
  EXPECT_EQ(registry.find("simulate"), registry.find("sim"));
  EXPECT_EQ(registry.find("thread"), registry.find("threaded"));
  EXPECT_EQ(registry.find("threads"), registry.find("threaded"));
  EXPECT_EQ(registry.find("processes"), registry.find("process"));
  EXPECT_EQ(registry.find("proc"), registry.find("process"));
  // Lookups are case-sensitive and exact.
  EXPECT_EQ(registry.find("SIM"), nullptr);
  EXPECT_EQ(registry.find(""), nullptr);
  EXPECT_EQ(registry.find("mpi"), nullptr);
}

TEST(RuntimeRegistry, CreateReturnsNullptrOnUnknownName) {
  // The long-standing make_runtime contract: no throw, callers print
  // unknown_message themselves.
  EXPECT_EQ(RuntimeRegistry::instance().create("mpi"), nullptr);
}

TEST(RuntimeRegistry, UnknownNameDiagnosticSuggestsNearestRuntime) {
  const std::string message =
      RuntimeRegistry::instance().unknown_message("proces");
  EXPECT_NE(message.find("did you mean 'process'?"), std::string::npos)
      << message;
  EXPECT_NE(message.find("choices"), std::string::npos);
  EXPECT_NE(message.find("sim|threaded|process"), std::string::npos);
  // A name far from every registered runtime gets no suggestion.
  const std::string far =
      RuntimeRegistry::instance().unknown_message("zzzzz");
  EXPECT_EQ(far.find("did you mean"), std::string::npos) << far;
}

TEST(RuntimeRegistry, CapabilityFlagsMatchTheRuntimes) {
  const auto& registry = RuntimeRegistry::instance();
  const auto& sim = registry.find("sim")->caps;
  EXPECT_FALSE(sim.computes_gradients);
  EXPECT_TRUE(sim.simulated_clock);
  EXPECT_TRUE(sim.honours_cluster_override);
  EXPECT_TRUE(sim.honours_sim_only_scenarios);
  EXPECT_FALSE(sim.honours_elasticity);
  EXPECT_FALSE(sim.spawns_processes);

  const auto& threaded = registry.find("threaded")->caps;
  EXPECT_TRUE(threaded.computes_gradients);
  EXPECT_FALSE(threaded.simulated_clock);
  EXPECT_FALSE(threaded.honours_sim_only_scenarios);
  EXPECT_TRUE(threaded.honours_elasticity);
  EXPECT_FALSE(threaded.spawns_processes);

  const auto& process = registry.find("process")->caps;
  EXPECT_TRUE(process.computes_gradients);
  EXPECT_FALSE(process.simulated_clock);
  EXPECT_FALSE(process.honours_sim_only_scenarios);
  EXPECT_TRUE(process.honours_elasticity);
  EXPECT_TRUE(process.spawns_processes);
}

TEST(RuntimeRegistry, DuplicateNamesAndAliasesRejected) {
  auto& registry = RuntimeRegistry::instance();
  RuntimeEntry entry;
  entry.factory = [] { return std::make_unique<SimulatedRuntime>(); };

  entry.name = "sim";  // canonical-name collision
  EXPECT_THROW(registry.add(entry), std::invalid_argument);

  entry.name = "threads";  // collides with an existing alias
  EXPECT_THROW(registry.add(entry), std::invalid_argument);

  entry.name = "fresh_runtime";
  entry.aliases = {"process"};  // alias collides with a canonical name
  EXPECT_THROW(registry.add(entry), std::invalid_argument);

  entry.aliases = {};
  entry.name = "";  // unnamed
  EXPECT_THROW(registry.add(entry), std::invalid_argument);

  entry.name = "fresh_runtime";
  entry.factory = nullptr;  // no factory
  EXPECT_THROW(registry.add(entry), std::invalid_argument);
}

TEST(RuntimeRegistry, SingleRegistrationCallAddsASelectableRuntime) {
  // The extension contract: one registration call (no if/else ladder or
  // name-table edits) and the runtime is selectable by name or alias
  // like any built-in, including through make_runtime.
  auto& registry = RuntimeRegistry::instance();
  if (registry.find("test_sim_clone") == nullptr) {
    RuntimeRegistration registration(
        {.name = "test_sim_clone",
         .aliases = {"test_sc"},
         .description = "the simulator under a new name (test runtime)",
         .caps = {.simulated_clock = true},
         .factory = [] { return std::make_unique<SimulatedRuntime>(); }});
  }
  auto runtime = registry.create("test_sc");
  ASSERT_NE(runtime, nullptr);
  EXPECT_EQ(runtime->name(), "sim");
  ASSERT_NE(make_runtime("test_sim_clone"), nullptr);
}

}  // namespace
}  // namespace coupon::driver
