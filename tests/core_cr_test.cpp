// Deep tests for cyclic-repetition gradient coding: coding-matrix
// structure, universal decodability over straggler patterns (the
// worst-case guarantee of Tandon et al.), and exact gradient recovery.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/cyclic_repetition.hpp"
#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"
#include "opt/logistic.hpp"
#include "stats/rng.hpp"

namespace coupon::core {
namespace {

// Builds an int64 meta vector inline (std::span cannot bind a brace list).
std::vector<std::int64_t> mv(std::initializer_list<std::int64_t> v) {
  return std::vector<std::int64_t>(v);
}

/// Checks that sum_w coeffs[w] * B_row(workers[w]) == all-ones.
void expect_combination_is_ones(const CyclicRepetitionScheme& scheme,
                                std::span<const std::size_t> workers,
                                std::span<const double> coeffs,
                                double tol = 1e-6) {
  const std::size_t n = scheme.num_workers();
  std::vector<double> combo(n, 0.0);
  for (std::size_t k = 0; k < workers.size(); ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      combo[j] += coeffs[k] * scheme.coding_matrix()(workers[k], j);
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(combo[j], 1.0, tol) << "unit " << j;
  }
}

class CrConstructionTest : public ::testing::TestWithParam<
                               std::pair<std::size_t, std::size_t>> {};

TEST_P(CrConstructionTest, SupportIsCyclicWindow) {
  const auto [n, r] = GetParam();
  stats::Rng rng(7 * n + r);
  CyclicRepetitionScheme scheme(n, r, rng);
  const auto& b = scheme.coding_matrix();
  for (std::size_t i = 0; i < n; ++i) {
    // Leading coefficient is 1 by construction (or identity when r = 1).
    EXPECT_DOUBLE_EQ(b(i, i), 1.0);
    std::vector<bool> in_window(n, false);
    for (std::size_t t = 0; t < r; ++t) {
      in_window[(i + t) % n] = true;
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_window[j]) {
        EXPECT_DOUBLE_EQ(b(i, j), 0.0)
            << "row " << i << " col " << j << " outside window";
      }
    }
  }
}

TEST_P(CrConstructionTest, PlacementMatchesSupport) {
  const auto [n, r] = GetParam();
  stats::Rng rng(11 * n + r);
  CyclicRepetitionScheme scheme(n, r, rng);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& g = scheme.placement().worker(i);
    ASSERT_EQ(g.size(), r);
    for (std::size_t t = 0; t < r; ++t) {
      EXPECT_EQ(g[t], (i + t) % n);
    }
  }
}

TEST_P(CrConstructionTest, DecodableFromAnyRandomSubset) {
  const auto [n, r] = GetParam();
  stats::Rng rng(13 * n + r);
  CyclicRepetitionScheme scheme(n, r, rng);
  const std::size_t s = scheme.stragglers_tolerated();
  for (int trial = 0; trial < 20; ++trial) {
    const auto workers = rng.sample_without_replacement(n, n - s);
    const auto coeffs = scheme.decoding_coefficients(workers);
    ASSERT_TRUE(coeffs.has_value()) << "trial " << trial;
    expect_combination_is_ones(scheme, workers, *coeffs);
  }
}

TEST_P(CrConstructionTest, DecodableUnderAdversarialConsecutiveStragglers) {
  // Consecutive stragglers maximally overlap the cyclic windows — the
  // stress case for the construction.
  const auto [n, r] = GetParam();
  stats::Rng rng(17 * n + r);
  CyclicRepetitionScheme scheme(n, r, rng);
  const std::size_t s = scheme.stragglers_tolerated();
  for (std::size_t start = 0; start < n; ++start) {
    std::vector<std::size_t> workers;
    for (std::size_t i = 0; i < n; ++i) {
      // Straggle workers start, start+1, ..., start+s-1 (mod n).
      const std::size_t offset = (i + n - start) % n;
      if (offset >= s) {
        workers.push_back(i);
      }
    }
    ASSERT_EQ(workers.size(), n - s);
    const auto coeffs = scheme.decoding_coefficients(workers);
    ASSERT_TRUE(coeffs.has_value()) << "straggler run at " << start;
    expect_combination_is_ones(scheme, workers, *coeffs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrConstructionTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{6, 3},
                      std::pair<std::size_t, std::size_t>{10, 4},
                      std::pair<std::size_t, std::size_t>{12, 1},
                      std::pair<std::size_t, std::size_t>{15, 5},
                      std::pair<std::size_t, std::size_t>{20, 10},
                      std::pair<std::size_t, std::size_t>{30, 7}));

TEST(Cr, LoadOneDegeneratesToIdentity) {
  stats::Rng rng(1);
  CyclicRepetitionScheme scheme(8, 1, rng);
  EXPECT_EQ(scheme.coding_matrix(), linalg::Matrix::identity(8));
  EXPECT_EQ(scheme.stragglers_tolerated(), 0u);
  EXPECT_DOUBLE_EQ(*scheme.expected_recovery_threshold(), 8.0);
}

TEST(Cr, RecoveryThresholdIsNMinusRPlusOne) {
  stats::Rng rng(2);
  CyclicRepetitionScheme scheme(50, 10, rng);
  EXPECT_DOUBLE_EQ(*scheme.expected_recovery_threshold(), 41.0);
}

TEST(Cr, TooFewWorkersCannotDecode) {
  stats::Rng rng(3);
  CyclicRepetitionScheme scheme(10, 4, rng);
  const auto workers = rng.sample_without_replacement(10, 6);  // < n - s = 7
  EXPECT_FALSE(scheme.decoding_coefficients(workers).has_value());
}

TEST(Cr, CollectorReadyExactlyAtThreshold) {
  stats::Rng rng(4);
  CyclicRepetitionScheme scheme(10, 4, rng);  // needs 7
  auto collector = scheme.make_collector();
  for (std::size_t i = 0; i < 6; ++i) {
    collector->offer(i, scheme.message_meta(i), {});
    EXPECT_FALSE(collector->ready());
  }
  collector->offer(9, scheme.message_meta(9), {});
  EXPECT_TRUE(collector->ready());
  EXPECT_EQ(collector->workers_heard(), 7u);
}

TEST(Cr, DuplicateWorkerDoesNotAdvanceReadiness) {
  stats::Rng rng(5);
  CyclicRepetitionScheme scheme(6, 3, rng);  // needs 4
  auto collector = scheme.make_collector();
  EXPECT_TRUE(collector->offer(0, mv({0}), {}));
  EXPECT_FALSE(collector->offer(0, mv({0}), {}));  // duplicate delivery
  EXPECT_EQ(collector->workers_heard(), 2u);   // counted toward K
  collector->offer(1, mv({1}), {});
  collector->offer(2, mv({2}), {});
  EXPECT_FALSE(collector->ready());
  collector->offer(3, mv({3}), {});
  EXPECT_TRUE(collector->ready());
}

class CrDecodeGradientTest : public ::testing::TestWithParam<
                                 std::pair<std::size_t, std::size_t>> {};

TEST_P(CrDecodeGradientTest, DecodedGradientMatchesSerialForRandomStragglers) {
  const auto [n, r] = GetParam();
  stats::Rng rng(23 * n + r);
  data::SyntheticConfig dconf;
  dconf.num_features = 6;
  const auto prob = data::generate_logreg(n, dconf, rng);
  PerExampleSource source(prob.dataset);
  CyclicRepetitionScheme scheme(n, r, rng);

  std::vector<double> w(6);
  for (auto& v : w) {
    v = rng.normal();
  }
  std::vector<double> serial(6);
  opt::logistic_gradient(prob.dataset, w, serial);
  linalg::scal(static_cast<double>(n), serial);

  for (int trial = 0; trial < 5; ++trial) {
    auto survivors = rng.sample_without_replacement(
        n, n - scheme.stragglers_tolerated());
    auto collector = scheme.make_collector();
    for (std::size_t i : survivors) {
      const auto msg = scheme.encode(i, source, w);
      collector->offer(i, msg.meta, msg.payload);
    }
    ASSERT_TRUE(collector->ready());
    std::vector<double> decoded(6);
    collector->decode_sum(decoded);
    EXPECT_LT(linalg::max_abs_diff(decoded, serial),
              1e-6 * (1.0 + linalg::max_abs(serial)))
        << "n=" << n << " r=" << r << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrDecodeGradientTest,
    ::testing::Values(std::pair<std::size_t, std::size_t>{6, 2},
                      std::pair<std::size_t, std::size_t>{8, 3},
                      std::pair<std::size_t, std::size_t>{12, 4},
                      std::pair<std::size_t, std::size_t>{16, 8}));

TEST(Cr, EncodeAppliesCodingCoefficients) {
  stats::Rng rng(31);
  data::SyntheticConfig dconf;
  dconf.num_features = 3;
  const auto prob = data::generate_logreg(5, dconf, rng);
  PerExampleSource source(prob.dataset);
  CyclicRepetitionScheme scheme(5, 2, rng);
  const std::vector<double> w = {0.2, -0.1, 0.05};

  const auto msg = scheme.encode(1, source, w);  // units 1 and 2
  std::vector<double> g1(3), g2(3), expected(3, 0.0);
  opt::partial_gradient(prob.dataset, 1, w, g1);
  opt::partial_gradient(prob.dataset, 2, w, g2);
  linalg::axpy(scheme.coding_matrix()(1, 1), g1, expected);
  linalg::axpy(scheme.coding_matrix()(1, 2), g2, expected);
  EXPECT_LT(linalg::max_abs_diff(msg.payload, expected), 1e-12);
}


TEST(Cr, PartialDecodeIsUnsupported) {
  stats::Rng rng(6);
  CyclicRepetitionScheme scheme(6, 3, rng);
  auto collector = scheme.make_collector();
  EXPECT_FALSE(collector->supports_partial_decode());
  std::vector<double> out(4);
  EXPECT_THROW(collector->decode_partial_sum(out), AssertionError);
}

TEST(Cr, InvalidLoadAsserts) {
  stats::Rng rng(1);
  EXPECT_THROW(CyclicRepetitionScheme(5, 0, rng), AssertionError);
  EXPECT_THROW(CyclicRepetitionScheme(5, 6, rng), AssertionError);
}

}  // namespace
}  // namespace coupon::core
