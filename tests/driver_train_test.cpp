// Driver-level tests of the convergence experiment path: the simulated
// runtime's --train mode (TrainingEngine over the simulated provider),
// the new ExperimentConfig training knobs, the convergence fields on
// RunRecord and their conditional sink rendering, and training sweeps'
// serial == parallel bit-identity.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "driver/driver.hpp"
#include "driver/sweep.hpp"

namespace driver = coupon::driver;

namespace {

driver::ExperimentConfig small_train_config() {
  driver::ExperimentConfig config;
  config.scheme = "bcc";
  config.scenario = "shifted_exp";
  config.runtime = "sim";
  config.train = true;
  config.num_workers = 10;
  config.num_units = 10;
  config.load = 2;
  config.iterations = 12;
  config.seed = 123;
  config.features = 8;
  config.examples_per_unit = 5;
  return config;
}

std::string to_jsonl(const driver::RunRecord& record) {
  std::ostringstream os;
  driver::JsonlSink(os).write(record);
  return os.str();
}

}  // namespace

TEST(DriverTrain, SimulatedTrainingRecordCarriesConvergenceFields) {
  const auto record = driver::run_experiment(small_train_config());
  EXPECT_EQ(record.runtime, "sim");
  EXPECT_TRUE(record.trace.empty());  // training records carry no latency trace
  EXPECT_GT(record.total_time, 0.0);
  EXPECT_GT(record.recovery_threshold, 0.0);
  EXPECT_EQ(record.failures, 0u);
  EXPECT_EQ(record.iterations_run, 12u);
  ASSERT_TRUE(record.final_loss.has_value());
  ASSERT_TRUE(record.train_accuracy.has_value());
  EXPECT_GE(*record.train_accuracy, 0.0);
  EXPECT_LE(*record.train_accuracy, 1.0);
  // Phase decomposition is real on simulated time.
  EXPECT_NEAR(record.total_time, record.comm_time + record.compute_time,
              1e-9);
}

TEST(DriverTrain, TrainingIsDeterministicInSeedAndSensitiveToIt) {
  const auto config = small_train_config();
  const auto a = driver::run_experiment(config);
  const auto b = driver::run_experiment(config);
  EXPECT_EQ(to_jsonl(a), to_jsonl(b));

  auto other = config;
  other.seed = 321;
  EXPECT_NE(to_jsonl(a), to_jsonl(driver::run_experiment(other)));
}

TEST(DriverTrain, SimAndThreadedReachTheSameModelFromTheSameSeed) {
  // Same seed => same synthetic dataset and placement on both
  // substrates; with the order-independent uncoded decode the final
  // loss must agree exactly, simulated seconds vs wall clock aside.
  auto config = small_train_config();
  config.scheme = "uncoded";
  config.scenario = "no_stragglers";
  const auto sim = driver::run_experiment(config);

  config.runtime = "threaded";
  config.train = false;  // threaded always trains; the flag is sim-only
  const auto threaded = driver::run_experiment(config);

  ASSERT_TRUE(sim.final_loss && threaded.final_loss);
  EXPECT_EQ(*sim.final_loss, *threaded.final_loss);
  EXPECT_EQ(*sim.train_accuracy, *threaded.train_accuracy);
}

TEST(DriverTrain, TargetLossAndLossHistoryFlowThrough) {
  auto config = small_train_config();
  config.record_loss_history = true;
  // From w = 0 the logistic loss starts at log 2; any progress crosses
  // a target just below it.
  config.target_loss = 0.69;
  const auto record = driver::run_experiment(config);
  ASSERT_EQ(record.loss_history.size(), record.iterations_run);
  ASSERT_TRUE(record.time_to_target.has_value());
  EXPECT_LE(*record.time_to_target, record.total_time);

  auto stopping = config;
  stopping.stop_at_target = true;
  const auto stopped = driver::run_experiment(stopping);
  EXPECT_LT(stopped.iterations_run, stopping.iterations);
  ASSERT_TRUE(stopped.time_to_target.has_value());
  EXPECT_DOUBLE_EQ(*stopped.time_to_target, *record.time_to_target);
}

TEST(DriverTrain, LeastSquaresObjectiveAndOptimizerKnobs) {
  auto config = small_train_config();
  config.objective = "least_squares";
  config.optimizer = "gd";
  config.learning_rate = 0.05;
  config.lr_decay = 0.1;
  const auto record = driver::run_experiment(config);
  ASSERT_TRUE(record.final_loss.has_value());
  EXPECT_FALSE(record.train_accuracy.has_value());  // regression objective

  config.objective = "bogus";
  EXPECT_THROW(driver::run_experiment(config), std::invalid_argument);
  config.objective = "least_squares";
  config.optimizer = "bogus";
  EXPECT_THROW(driver::run_experiment(config), std::invalid_argument);
}

TEST(DriverTrain, JsonlEmitsConvergenceFieldsOnlyForTrainingRecords) {
  auto config = small_train_config();
  config.record_loss_history = true;
  config.target_loss = 0.69;
  const std::string trained = to_jsonl(driver::run_experiment(config));
  EXPECT_NE(trained.find("\"iterations_run\":"), std::string::npos);
  EXPECT_NE(trained.find("\"time_to_target\":"), std::string::npos);
  EXPECT_NE(trained.find("\"loss_history\":[{\"seconds\":"),
            std::string::npos);

  // Timing-only records keep the pre-engine schema byte-for-byte (also
  // pinned by the golden trace test).
  config = small_train_config();
  config.train = false;
  const std::string timing = to_jsonl(driver::run_experiment(config));
  EXPECT_EQ(timing.find("\"iterations_run\""), std::string::npos);
  EXPECT_EQ(timing.find("\"time_to_target\""), std::string::npos);
  EXPECT_EQ(timing.find("\"loss_history\""), std::string::npos);
}

TEST(DriverTrain, SummaryCsvHasTheTimeToTargetColumn) {
  const auto& header = driver::summary_csv_header();
  EXPECT_EQ(header.back(), "time_to_target");

  auto config = small_train_config();
  config.target_loss = 0.69;
  const auto record = driver::run_experiment(config);
  std::ostringstream os;
  driver::CsvSummarySink sink(os);
  sink.write(record);
  // Header + row; the row's last field is non-empty.
  const std::string text = os.str();
  const auto last_newline = text.rfind('\n', text.size() - 2);
  const std::string row = text.substr(last_newline + 1);
  EXPECT_NE(row.rfind(','), row.size() - 2);  // non-empty trailing field
}

TEST(DriverTrain, TrainingSweepIsBitIdenticalSerialVsParallel) {
  driver::SweepPlan plan;
  plan.base = small_train_config();
  plan.base.record_loss_history = true;
  plan.base.target_loss = 0.69;
  plan.schemes = {"bcc", "uncoded"};
  plan.scenarios = {"shifted_exp", "no_stragglers"};
  plan.seeds = {1, 2};

  auto run_to_jsonl = [&](std::size_t threads) {
    std::ostringstream os;
    driver::JsonlSink sink(os);
    driver::SweepOptions options;
    options.threads = threads;
    options.sink = &sink;
    driver::run_sweep(plan, options);
    return os.str();
  };
  const std::string serial = run_to_jsonl(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_to_jsonl(4));
}

TEST(DriverTrain, BatchedTrainingSweepIsBitIdenticalToSequential) {
  // sim_batch > 1 routes train cells through BatchedTrainKernel
  // (run_simulated_train_batch); sim_batch = 1 runs every cell through
  // SimulatedRuntime::run. The sink bytes must be identical — lockstep
  // batching is invisible in the records.
  driver::SweepPlan plan;
  plan.base = small_train_config();
  plan.base.record_loss_history = true;
  plan.schemes = {"bcc", "gc_cyclic", "sgc"};
  plan.seeds = {1, 2, 3, 4};

  auto run_to_jsonl = [&](std::size_t sim_batch) {
    std::ostringstream os;
    driver::JsonlSink sink(os);
    driver::SweepOptions options;
    options.threads = 1;
    options.sink = &sink;
    options.sim_batch = sim_batch;
    driver::run_sweep(plan, options);
    return os.str();
  };
  const std::string sequential = run_to_jsonl(1);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, run_to_jsonl(8));
}

TEST(DriverTrain, ThreadedRecordAlsoCarriesTheNewFields) {
  auto config = small_train_config();
  config.runtime = "threaded";
  config.train = false;
  config.scenario = "no_stragglers";
  config.record_loss_history = true;
  config.num_workers = 4;
  config.num_units = 4;
  config.iterations = 3;
  const auto record = driver::run_experiment(config);
  EXPECT_EQ(record.iterations_run, 3u);
  EXPECT_EQ(record.loss_history.size(), 3u);
  // Wall-clock timestamps are strictly increasing here too.
  EXPECT_GT(record.loss_history[2].seconds, record.loss_history[0].seconds);
}

TEST(DriverTrain, CoupledFlagsRejectedCleanly) {
  // --train is a simulated-runtime mode; the threaded runtime trains
  // unconditionally and must not silently reinterpret the flag.
  auto config = small_train_config();
  config.runtime = "threaded";
  config.scenario = "no_stragglers";
  config.train = true;  // ignored by design: threaded always trains
  const auto record = driver::run_experiment(config);
  ASSERT_TRUE(record.final_loss.has_value());
}

