// Pins the DESIGN.md §7 allocation budget: once an `IterationKernel` is
// warm, the steady-state iteration loop performs ZERO heap allocations —
// for every built-in scheme, with drops enabled, and through the
// simulate_run aggregation path (traces off).
//
// Mechanism: this binary replaces the global allocation functions with
// counting wrappers (legal per [replacement.functions]); the tests read
// the counter around a measured region. The replacement covers the plain,
// sized, nothrow, and aligned flavors so no call slips past the counter.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/core.hpp"
#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "opt/optimizer.hpp"
#include "opt/schedule.hpp"
#include "simulate/simulate.hpp"
#include "stats/rng.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size, std::size_t align) {
  ++g_allocations;
  void* p = align <= alignof(std::max_align_t)
                ? std::malloc(size)
                // aligned_alloc requires size to be a multiple of align.
                : std::aligned_alloc(align, (size + align - 1) / align * align);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return counted_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace coupon::simulate {
namespace {

ClusterConfig alloc_test_cluster() {
  ClusterConfig c;
  c.compute_shift = 1e-3;
  c.compute_straggle = 100.0;
  c.unit_transfer_seconds = 2e-3;
  c.broadcast_seconds = 1e-4;
  return c;
}

/// Steady-state allocation count of `iterations` kernel runs after
/// `warmup` warm-up runs (warm-up lets reusable buffers — the arrival
/// scratch, the CR collector's kept-worker list — reach capacity).
std::size_t steady_state_allocations(const core::Scheme& scheme,
                                     const ClusterConfig& cluster,
                                     std::size_t warmup,
                                     std::size_t iterations) {
  const auto model = make_latency_model(cluster, scheme.num_workers());
  IterationKernel kernel(scheme, cluster);
  stats::Rng rng(0xA110C);
  double checksum = 0.0;
  for (std::size_t t = 0; t < warmup; ++t) {
    checksum += kernel.run(*model, t, rng).total_time;
  }
  const std::size_t before = g_allocations.load();
  for (std::size_t t = warmup; t < warmup + iterations; ++t) {
    checksum += kernel.run(*model, t, rng).total_time;
  }
  const std::size_t after = g_allocations.load();
  EXPECT_GE(checksum, 0.0);  // keep the loop observable
  return after - before;
}

TEST(AllocationFree, EverySchemeRunsIterationsWithoutAllocating) {
  core::SchemeConfig config;
  config.num_workers = 24;
  config.num_units = 24;
  config.load = 4;
  stats::Rng build_rng(7);
  for (const char* kind :
       {"uncoded", "bcc", "simple_random", "cr", "fr"}) {
    const auto scheme =
        core::SchemeRegistry::instance().create(kind, config, build_rng);
    EXPECT_EQ(steady_state_allocations(*scheme, alloc_test_cluster(),
                                       /*warmup=*/3, /*iterations=*/200),
              0u)
        << scheme->name();
  }
}

TEST(AllocationFree, DropsAndCoverageFailuresStayAllocationFree) {
  // Drops exercise the lost-message path; with n barely above B, BCC
  // iterations routinely drain without recovery — the failure path must
  // be as clean as the happy path.
  core::SchemeConfig config;
  config.num_workers = 8;
  config.num_units = 8;
  config.load = 2;
  stats::Rng build_rng(11);
  auto cluster = alloc_test_cluster();
  cluster.drop_probability = 0.3;
  const auto scheme = core::SchemeRegistry::instance().create("bcc", config,
                                        build_rng);
  EXPECT_EQ(steady_state_allocations(*scheme, cluster, /*warmup=*/3,
                                     /*iterations=*/300),
            0u);
}

TEST(AllocationFree, LargeNSelectionPathStaysAllocationFree) {
  // The million-worker regime's representative: n = 1e5 with threshold
  // selection engaged (start_prefix << n). nth_element, the prefix sort,
  // and the geometric extensions must all run inside the preallocated
  // arrival arena — any per-iteration allocation at this n is the
  // difference between the kernel scaling and not.
  core::SchemeConfig config;
  config.num_workers = 100'000;
  config.num_units = 100'000;
  config.load = 40;
  stats::Rng build_rng(17);
  const auto scheme =
      core::SchemeRegistry::instance().create("bcc", config, build_rng);
  {
    IterationKernel probe(*scheme, alloc_test_cluster());
    ASSERT_LT(probe.start_prefix(), scheme->num_workers());
  }
  EXPECT_EQ(steady_state_allocations(*scheme, alloc_test_cluster(),
                                     /*warmup=*/2, /*iterations=*/20),
            0u);
}

TEST(AllocationFree, BatchedKernelSteadyStateOnlyAllocatesSetup) {
  // Same bound technique as the simulate_run test: a fresh BatchedKernel
  // run at 10 iterations and one at 500 must allocate identically — the
  // flat arenas are carved at construction, the lockstep loop reuses
  // them. (Traces off; per-cell trace vectors are the documented
  // exception.)
  auto count_batched_run = [](std::size_t iterations) {
    core::SchemeConfig config;
    config.num_workers = 64;
    config.num_units = 64;
    config.load = 4;
    std::vector<std::unique_ptr<core::Scheme>> schemes;
    std::vector<BatchedCell> cells;
    const ClusterConfig cluster = alloc_test_cluster();
    for (std::uint64_t seed : {21u, 22u, 23u, 24u}) {
      stats::Rng rng(seed);
      schemes.push_back(
          core::SchemeRegistry::instance().create("bcc", config, rng));
      BatchedCell cell;
      cell.scheme = schemes.back().get();
      cell.config = &cluster;
      cell.rng = rng;
      cell.options.iterations = iterations;
      cell.options.record_trace = false;
      cells.push_back(cell);
    }
    const std::size_t before = g_allocations.load();
    const auto reports = BatchedKernel(std::move(cells)).run();
    const std::size_t after = g_allocations.load();
    EXPECT_EQ(reports.size(), 4u);
    EXPECT_EQ(reports[0].workers_heard.count(), iterations);
    return after - before;
  };

  const std::size_t setup_cost = count_batched_run(10);
  EXPECT_EQ(count_batched_run(500), setup_cost);
}

TEST(AllocationFree, SimulateRunWithoutTraceOnlyAllocatesSetup) {
  // The full simulate_run path: model + kernel construction allocate, the
  // iteration loop must not. Bound the whole call by the cost of a
  // 1-iteration run — any per-iteration allocation would scale the count
  // with the iteration count and blow past the bound.
  core::SchemeConfig config;
  config.num_workers = 24;
  config.num_units = 24;
  config.load = 4;
  stats::Rng build_rng(13);
  const auto scheme =
      core::SchemeRegistry::instance().create("bcc", config, build_rng);

  auto count_run = [&](std::size_t iterations) {
    stats::Rng rng(99);
    RunOptions options;
    options.iterations = iterations;
    options.record_trace = false;
    const std::size_t before = g_allocations.load();
    const auto run =
        simulate_run(*scheme, alloc_test_cluster(), options, rng);
    const std::size_t after = g_allocations.load();
    EXPECT_EQ(run.workers_heard.count(), iterations);
    return after - before;
  };

  const std::size_t setup_cost = count_run(1);
  // 500x the iterations, identical allocation count: all setup, no
  // steady-state allocations. (The CR-style first-iteration capacity
  // growth is scheme-dependent; BCC's count is exactly flat.)
  EXPECT_EQ(count_run(500), setup_cost);
}

/// Steady-state allocation count of a real training run (DESIGN.md §12):
/// warm-up steps let the provider's encode buffers, the collector slots,
/// and the CR decode workspace reach capacity, then every subsequent
/// `TrainLoop::step` — encode, collect, decode, optimizer update — must
/// allocate nothing. Loss evaluation stays off: the budget covers the
/// training path itself.
std::size_t steady_state_train_allocations(const core::Scheme& scheme,
                                           const core::UnitGradientSource& source,
                                           const ClusterConfig& cluster,
                                           engine::FailurePolicy on_failure,
                                           std::size_t warmup,
                                           std::size_t iterations) {
  stats::Rng rng(0x7341A);
  engine::SimulatedProvider provider(scheme, source, cluster, rng);
  opt::GradientDescent optimizer(source.dim(),
                                 opt::LearningRateSchedule::constant(0.05));
  engine::TrainOptions options;
  options.iterations = warmup + iterations;
  options.on_failure = on_failure;
  engine::TrainLoop loop(scheme, source, provider, optimizer, options);
  for (std::size_t t = 0; t < warmup; ++t) {
    loop.step();
  }
  const std::size_t before = g_allocations.load();
  for (std::size_t t = 0; t < iterations; ++t) {
    loop.step();
  }
  const std::size_t after = g_allocations.load();
  EXPECT_TRUE(loop.done());
  return after - before;
}

TEST(AllocationFree, EverySchemeTrainsIterationsWithoutAllocating) {
  // The full training path for every registered scheme: real gradients
  // through the cached source, scheme encode via encode_into, collector
  // decode, GD update. n = m = 24, r = 4 satisfies every scheme's
  // structural constraints (m == n for the repetition/gc family, r | n
  // for FR and gc_nested).
  core::SchemeConfig config;
  config.num_workers = 24;
  config.num_units = 24;
  config.load = 4;
  data::SyntheticConfig dconf;
  dconf.num_features = 12;
  stats::Rng data_rng(0xDA7A);
  const data::SyntheticProblem problem =
      data::generate_linreg(config.num_units, dconf, /*noise_stddev=*/0.2,
                            data_rng);
  const core::LeastSquaresExampleSource source(problem.dataset);
  stats::Rng build_rng(7);
  for (const char* kind : {"uncoded", "bcc", "simple_random", "cr", "fr",
                           "gc_cyclic", "sgc", "gc_nested"}) {
    const auto scheme =
        core::SchemeRegistry::instance().create(kind, config, build_rng);
    EXPECT_EQ(steady_state_train_allocations(
                  *scheme, source, alloc_test_cluster(),
                  engine::FailurePolicy::kSkipUpdate,
                  /*warmup=*/3, /*iterations=*/100),
              0u)
        << scheme->name();
  }
}

TEST(AllocationFree, TrainingWithDropsAndPartialDecodeStaysAllocationFree) {
  // Message drops force coverage failures; kApplyPartial drives the
  // decode_partial_sum branch (and the skipped-update branch on empty
  // iterations). Both must match the happy path's zero budget.
  core::SchemeConfig config;
  config.num_workers = 8;
  config.num_units = 8;
  config.load = 2;
  data::SyntheticConfig dconf;
  dconf.num_features = 12;
  stats::Rng data_rng(0xD609);
  const data::SyntheticProblem problem =
      data::generate_linreg(config.num_units, dconf, /*noise_stddev=*/0.2,
                            data_rng);
  const core::LeastSquaresExampleSource source(problem.dataset);
  auto cluster = alloc_test_cluster();
  cluster.drop_probability = 0.3;
  stats::Rng build_rng(11);
  const auto scheme =
      core::SchemeRegistry::instance().create("bcc", config, build_rng);
  for (const auto policy : {engine::FailurePolicy::kSkipUpdate,
                            engine::FailurePolicy::kApplyPartial}) {
    EXPECT_EQ(steady_state_train_allocations(*scheme, source, cluster, policy,
                                             /*warmup=*/3, /*iterations=*/200),
              0u);
  }
}

TEST(AllocationFree, BatchedTrainKernelSteadyStateOnlyAllocatesSetup) {
  // BatchedTrainKernel's lockstep loop inherits TrainLoop's budget: a
  // fresh kernel run at 5 iterations and one at 100 must allocate
  // identically (the C x p arena, providers, and collectors are built at
  // construction; warm-up growth is bounded by the first iterations,
  // which both runs share).
  core::SchemeConfig config;
  config.num_workers = 24;
  config.num_units = 24;
  config.load = 4;
  data::SyntheticConfig dconf;
  dconf.num_features = 12;
  stats::Rng data_rng(0xBA7C);
  const data::SyntheticProblem problem =
      data::generate_linreg(config.num_units, dconf, /*noise_stddev=*/0.2,
                            data_rng);
  const core::LeastSquaresExampleSource source(problem.dataset);
  const auto cluster =
      std::make_shared<const ClusterConfig>(alloc_test_cluster());

  auto count_batched_train = [&](std::size_t iterations) {
    std::vector<std::unique_ptr<core::Scheme>> schemes;
    std::vector<std::unique_ptr<opt::IterativeOptimizer>> optimizers;
    std::vector<engine::BatchedTrainCell> cells;
    for (std::uint64_t seed : {31u, 32u, 33u, 34u}) {
      stats::Rng rng(seed);
      schemes.push_back(
          core::SchemeRegistry::instance().create("bcc", config, rng));
      optimizers.push_back(std::make_unique<opt::GradientDescent>(
          dconf.num_features, opt::LearningRateSchedule::constant(0.05)));
      engine::BatchedTrainCell cell;
      cell.scheme = schemes.back().get();
      cell.source = &source;
      cell.cluster = cluster;
      cell.rng = rng;
      cell.optimizer = optimizers.back().get();
      cell.options.iterations = iterations;
      cells.push_back(std::move(cell));
    }
    const std::size_t before = g_allocations.load();
    const auto reports = engine::BatchedTrainKernel(std::move(cells)).run();
    const std::size_t after = g_allocations.load();
    EXPECT_EQ(reports.size(), 4u);
    EXPECT_EQ(reports[0].iterations_run, iterations);
    return after - before;
  };

  const std::size_t setup_cost = count_batched_train(5);
  EXPECT_EQ(count_batched_train(100), setup_cost);
}

}  // namespace
}  // namespace coupon::simulate
