// Tests for the experiment-driver layer: the scenario registry, runtime
// factory, config plumbing (including the cluster carry-through fix),
// and the RunRecord-producing entry points with their CSV/JSONL sinks.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "driver/driver.hpp"
#include "simulate/experiment.hpp"

namespace driver = coupon::driver;

TEST(ScenarioRegistry, EveryListedScenarioIsConstructible) {
  for (const auto& name : driver::scenario_names()) {
    const auto* entry = driver::ScenarioRegistry::instance().find(name);
    ASSERT_NE(entry, nullptr) << name;
    if (!entry->builder) {
      // Parameterized-only entries (trace:<path>) need an argument.
      EXPECT_FALSE(driver::make_scenario(name, 40).has_value()) << name;
      continue;
    }
    const auto scenario = driver::make_scenario(name, 40);
    ASSERT_TRUE(scenario.has_value()) << name;
    EXPECT_EQ(scenario->name, name);
    EXPECT_FALSE(scenario->description.empty());
  }
  EXPECT_FALSE(driver::make_scenario("bogus", 40).has_value());
}

TEST(ScenarioRegistry, BuildThrowsOnUnknownNameListingChoices) {
  try {
    driver::ScenarioRegistry::instance().build("bogus", 10);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("bogus"), std::string::npos);
    EXPECT_NE(message.find("shifted_exp"), std::string::npos);
    EXPECT_NE(message.find("no_stragglers"), std::string::npos);
  }
}

TEST(ScenarioRegistry, DuplicateAndMalformedRegistrationsRejected) {
  auto& registry = driver::ScenarioRegistry::instance();
  driver::ScenarioEntry dup;
  dup.name = "shifted_exp";
  dup.builder = [](std::size_t) { return driver::Scenario{}; };
  EXPECT_THROW(registry.add(dup), std::invalid_argument);

  driver::ScenarioEntry unnamed;
  unnamed.builder = [](std::size_t) { return driver::Scenario{}; };
  EXPECT_THROW(registry.add(unnamed), std::invalid_argument);

  driver::ScenarioEntry no_builder;
  no_builder.name = "no_builder_scenario";
  EXPECT_THROW(registry.add(no_builder), std::invalid_argument);
}

TEST(ScenarioRegistry, UnknownNameDiagnosticSuggestsNearestScenario) {
  const std::string message =
      driver::ScenarioRegistry::instance().unknown_message("shifted_exq");
  EXPECT_NE(message.find("did you mean 'shifted_exp'?"), std::string::npos)
      << message;
  const std::string far =
      driver::ScenarioRegistry::instance().unknown_message("qqqqqqqq");
  EXPECT_EQ(far.find("did you mean"), std::string::npos) << far;
}

TEST(ScenarioRegistry, LatencyModelScenariosBuildTheirModels) {
  // Each new-model scenario's cluster carries a latency_model factory
  // producing the advertised model type.
  const struct {
    const char* scenario;
    const char* model;
  } expectations[] = {{"heavy_tail", "pareto"},
                      {"weibull", "weibull"},
                      {"bursty", "bimodal"},
                      {"markov", "markov"}};
  for (const auto& expected : expectations) {
    const auto scenario =
        driver::ScenarioRegistry::instance().build(expected.scenario, 16);
    EXPECT_TRUE(scenario.sim_only) << expected.scenario;
    ASSERT_TRUE(static_cast<bool>(scenario.cluster.latency_model))
        << expected.scenario;
    const auto model =
        coupon::simulate::make_latency_model(scenario.cluster, 16);
    EXPECT_EQ(model->name(), expected.model) << expected.scenario;
  }
}

TEST(ScenarioRegistry, LatencyModelScenariosRunEndToEnd) {
  for (const char* scenario : {"heavy_tail", "weibull", "bursty", "markov"}) {
    driver::ExperimentConfig config;
    config.scenario = scenario;
    config.num_workers = 12;
    config.num_units = 12;
    config.load = 3;
    config.iterations = 6;
    const auto record = driver::run_experiment(config);
    EXPECT_EQ(record.scenario, scenario);
    EXPECT_EQ(record.trace.size(), 6u) << scenario;
    EXPECT_GT(record.total_time, 0.0) << scenario;
    EXPECT_EQ(record.failures, 0u) << scenario;
  }
}

TEST(ScenarioRegistry, ParameterizedTraceScenarioResolvesAndRuns) {
  auto& registry = driver::ScenarioRegistry::instance();
  // Bare selection of a parameterized entry: resolvable? no; build throws
  // with the usage hint instead of "unknown".
  EXPECT_EQ(registry.resolve("trace"), nullptr);
  try {
    registry.build("trace", 4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("trace:<arg>"), std::string::npos)
        << e.what();
  }
  // An argument on a non-parameterized scenario stays unknown.
  EXPECT_EQ(registry.resolve("lossy:0.5"), nullptr);
  EXPECT_THROW(registry.build("lossy:0.5", 4), std::invalid_argument);

  // The real thing: write a trace, select it as trace:<path>, run it.
  const std::string path = "driver_trace_scenario_test.csv";
  {
    std::ofstream out(path);
    out << "0.05,0.01,0.01,0.01\n";
  }
  ASSERT_NE(registry.resolve("trace:" + path), nullptr);
  driver::ExperimentConfig config;
  config.scheme = "uncoded";
  config.scenario = "trace:" + path;
  config.num_workers = 4;
  config.num_units = 4;
  config.load = 1;
  config.iterations = 3;
  const auto record = driver::run_experiment(config);
  EXPECT_EQ(record.scenario, "trace:" + path);
  ASSERT_EQ(record.trace.size(), 3u);
  for (const auto& it : record.trace) {
    EXPECT_DOUBLE_EQ(it.compute_time, 0.05);  // the slowest trace column
  }
  std::remove(path.c_str());

  // A missing trace file surfaces as a clear error at run time.
  driver::ExperimentConfig missing = config;
  missing.scenario = "trace:no_such_file.csv";
  EXPECT_THROW(driver::run_experiment(missing), std::invalid_argument);
}

TEST(ScenarioRegistry, RegisteredScenarioIsRunnable) {
  // The open-registry contract: one add() call, no switch edits, and the
  // scenario is selectable by every driver entry point.
  auto& registry = driver::ScenarioRegistry::instance();
  if (registry.find("test_instant_network") == nullptr) {
    registry.add({.name = "test_instant_network",
                  .description = "shifted_exp with a free master link",
                  .sim_only = true,
                  .builder = [](std::size_t) {
                    auto s = driver::ScenarioRegistry::instance().build(
                        "shifted_exp", 0);
                    s.cluster.unit_transfer_seconds = 0.0;
                    return s;
                  },
                  .param_builder = {}});
  }
  driver::ExperimentConfig config;
  config.scenario = "test_instant_network";
  config.num_workers = 10;
  config.num_units = 10;
  config.load = 2;
  config.iterations = 4;
  const auto record = driver::run_experiment(config);
  EXPECT_EQ(record.scenario, "test_instant_network");
  EXPECT_EQ(record.trace.size(), 4u);
  EXPECT_DOUBLE_EQ(record.comm_time, 0.0);  // the free link, observably
}

TEST(ScenarioRegistry, ShiftedExpMatchesEc2Calibration) {
  const auto scenario = driver::make_scenario("shifted_exp", 50);
  ASSERT_TRUE(scenario.has_value());
  const auto ec2 = coupon::simulate::ec2_cluster();
  EXPECT_DOUBLE_EQ(scenario->cluster.compute_shift, ec2.compute_shift);
  EXPECT_DOUBLE_EQ(scenario->cluster.compute_straggle, ec2.compute_straggle);
  EXPECT_DOUBLE_EQ(scenario->cluster.unit_transfer_seconds,
                   ec2.unit_transfer_seconds);
}

TEST(ScenarioRegistry, HeteroScenarioBuildsPerWorkerOverrides) {
  const std::size_t n = 40;
  const auto scenario = driver::make_scenario("hetero", n);
  ASSERT_TRUE(scenario.has_value());
  ASSERT_EQ(scenario->cluster.worker_overrides.size(), n);
  std::size_t fast = 0;
  for (const auto& w : scenario->cluster.worker_overrides) {
    if (w.compute_straggle > 1.0) {
      ++fast;
    }
  }
  EXPECT_EQ(fast, n / 20);  // 5% fast workers
  // Tiny clusters still get at least one fast worker.
  const auto tiny = driver::make_scenario("hetero", 3);
  ASSERT_TRUE(tiny.has_value());
  ASSERT_EQ(tiny->cluster.worker_overrides.size(), 3u);
  EXPECT_GT(tiny->cluster.worker_overrides.back().compute_straggle, 1.0);
}

TEST(ScenarioRegistry, ScenarioKnobsDifferFromBaseline) {
  const auto base = driver::make_scenario("shifted_exp", 20);
  const auto lossy = driver::make_scenario("lossy", 20);
  const auto fast = driver::make_scenario("fast_network", 20);
  const auto calm = driver::make_scenario("no_stragglers", 20);
  ASSERT_TRUE(base && lossy && fast && calm);
  EXPECT_GT(lossy->cluster.drop_probability, 0.0);
  EXPECT_LT(fast->cluster.unit_transfer_seconds,
            base->cluster.unit_transfer_seconds);
  EXPECT_FALSE(calm->straggler.enabled);
  EXPECT_TRUE(base->straggler.enabled);
}

TEST(RuntimeFactory, SpellingsAndNames) {
  ASSERT_NE(driver::make_runtime("sim"), nullptr);
  EXPECT_EQ(driver::make_runtime("simulated")->name(), "sim");
  EXPECT_EQ(driver::make_runtime("threaded")->name(), "threaded");
  EXPECT_EQ(driver::make_runtime("threads")->name(), "threaded");
  EXPECT_EQ(driver::make_runtime("process")->name(), "process");
  EXPECT_EQ(driver::make_runtime("processes")->name(), "process");
  EXPECT_EQ(driver::make_runtime("proc")->name(), "process");
  EXPECT_EQ(driver::make_runtime("mpi"), nullptr);
  EXPECT_EQ(driver::runtime_names().size(), 3u);
  EXPECT_NE(driver::runtime_choices().find("sim"), std::string::npos);
  EXPECT_NE(driver::runtime_choices().find("process"), std::string::npos);
}

TEST(Driver, ConfigFromSimScenarioCopiesParametersAndCluster) {
  auto scenario = coupon::simulate::ec2_scenario_two();
  scenario.cluster.drop_probability = 0.25;  // a caller customization
  const auto config = driver::config_from_sim_scenario(scenario);
  EXPECT_EQ(config.num_workers, scenario.num_workers);
  EXPECT_EQ(config.num_units, scenario.num_units);
  EXPECT_EQ(config.load, scenario.load);
  EXPECT_EQ(config.iterations, scenario.iterations);
  EXPECT_EQ(config.seed, scenario.seed);
  // The footgun fix: the customized cluster is carried, not discarded.
  ASSERT_NE(config.cluster_override, nullptr);
  EXPECT_DOUBLE_EQ(config.cluster_override->drop_probability, 0.25);
}

TEST(Driver, ClusterOverrideReachesTheSimulator) {
  // drop_probability = 1 loses every message: with the override honoured,
  // every iteration fails; if it were silently discarded, none would.
  auto scenario = coupon::simulate::ec2_scenario_one();
  scenario.num_workers = 10;
  scenario.num_units = 10;
  scenario.load = 2;
  scenario.iterations = 6;
  scenario.cluster.drop_probability = 1.0;
  auto config = driver::config_from_sim_scenario(scenario);
  config.scheme = "uncoded";
  const auto record = driver::run_experiment(config);
  EXPECT_EQ(record.failures, config.iterations);
}

TEST(Driver, ClusterOverrideRejectedByThreadedRuntime) {
  auto config = driver::config_from_sim_scenario(
      coupon::simulate::ec2_scenario_one());
  config.runtime = "threaded";
  EXPECT_THROW(driver::run_experiment(config), std::invalid_argument);
}

namespace {

driver::ExperimentConfig small_sim_config() {
  driver::ExperimentConfig config;
  config.scheme = "bcc";
  config.scenario = "shifted_exp";
  config.runtime = "sim";
  config.num_workers = 10;
  config.num_units = 10;
  config.load = 2;
  config.iterations = 7;
  config.seed = 123;
  return config;
}

}  // namespace

TEST(Driver, RecordTraceOffSkipsTheTraceButKeepsTheSummaryBitIdentical) {
  // Summary-only consumers disable trace recording; nothing in the
  // summary may change (storage is gated, the draw sequence is not).
  auto config = small_sim_config();
  const auto with_trace = driver::run_experiment(config);
  config.record_trace = false;
  const auto without_trace = driver::run_experiment(config);

  EXPECT_EQ(with_trace.trace.size(), config.iterations);
  EXPECT_TRUE(without_trace.trace.empty());

  std::ostringstream a, b;
  driver::CsvSummarySink(a).write(with_trace);
  driver::CsvSummarySink(b).write(without_trace);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Driver, SimulatedRunEmitsOneTraceEntryPerIteration) {
  const auto config = small_sim_config();
  const auto record = driver::run_experiment(config);
  EXPECT_EQ(record.trace.size(), config.iterations);
  EXPECT_EQ(record.scheme, "bcc");
  EXPECT_EQ(record.scheme_display, "BCC");
  EXPECT_EQ(record.runtime, "sim");
  EXPECT_EQ(record.seed, config.seed);
  EXPECT_GT(record.total_time, 0.0);
  EXPECT_GT(record.recovery_threshold, 0.0);
  EXPECT_FALSE(record.final_loss.has_value());  // no model on the simulator
}

TEST(Driver, AliasSelectionCanonicalizesTheRecord) {
  auto config = small_sim_config();
  config.scheme = "batched_coupon_collection";
  const auto record = driver::run_experiment(config);
  EXPECT_EQ(record.scheme, "bcc");
}

TEST(Driver, SimulatedRunIsDeterministicInSeed) {
  const auto config = small_sim_config();
  const auto a = driver::run_experiment(config);
  const auto b = driver::run_experiment(config);
  std::ostringstream csv_a, csv_b;
  driver::CsvTraceSink(csv_a).write(a);
  driver::CsvTraceSink(csv_b).write(b);
  EXPECT_EQ(csv_a.str(), csv_b.str());

  auto other = config;
  other.seed = 321;
  const auto c = driver::run_experiment(other);
  std::ostringstream csv_c;
  driver::CsvTraceSink(csv_c).write(c);
  EXPECT_NE(csv_a.str(), csv_c.str());
}

TEST(Driver, ThreadedRunReportsModelQuality) {
  driver::ExperimentConfig config;
  config.scheme = "bcc";
  config.runtime = "threaded";
  config.num_workers = 4;
  config.num_units = 4;
  config.load = 2;
  config.iterations = 3;
  config.features = 6;
  config.examples_per_unit = 5;
  const auto record = driver::run_experiment(config);
  EXPECT_EQ(record.runtime, "threaded");
  EXPECT_TRUE(record.trace.empty());  // wall-clock phases not separable
  EXPECT_GT(record.total_time, 0.0);
  ASSERT_TRUE(record.final_loss.has_value());
  ASSERT_TRUE(record.train_accuracy.has_value());
  EXPECT_GE(*record.train_accuracy, 0.0);
  EXPECT_LE(*record.train_accuracy, 1.0);
}

TEST(Driver, UnknownNamesThrowListingChoices) {
  auto config = small_sim_config();
  config.scenario = "bogus";
  EXPECT_THROW(driver::run_experiment(config), std::invalid_argument);

  config = small_sim_config();
  config.scheme = "bogus";
  try {
    driver::run_experiment(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("uncoded"), std::string::npos);
  }

  config = small_sim_config();
  config.runtime = "mpi";
  EXPECT_THROW(driver::run_experiment(config), std::invalid_argument);
}

TEST(Driver, SimOnlyScenarioRejectedUnderThreadedRuntime) {
  for (const std::string name : {"hetero", "lossy", "fast_network"}) {
    auto config = small_sim_config();
    config.scenario = name;
    config.runtime = "threaded";
    EXPECT_THROW(driver::run_experiment(config), std::invalid_argument)
        << name;
  }
  // The same scenarios remain runnable on the simulator.
  auto config = small_sim_config();
  config.scenario = "lossy";
  EXPECT_EQ(driver::run_experiment(config).trace.size(), config.iterations);
}

TEST(Sinks, TraceHeaderExtendsIterationCsvHeader) {
  const auto& header = driver::trace_csv_header();
  const auto& trace = coupon::simulate::iteration_csv_header();
  ASSERT_EQ(header.size(), trace.size() + 3);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(header[i + 3], trace[i]);
  }
}

TEST(Sinks, TraceCsvEmitsHeaderPlusOneRowPerIteration) {
  const auto record = driver::run_experiment(small_sim_config());
  std::ostringstream os;
  driver::CsvTraceSink sink(os);
  sink.write(record);
  std::size_t lines = 0;
  for (char c : os.str()) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, record.trace.size() + 1);
  EXPECT_EQ(os.str().substr(0, 6), "scheme");
}

TEST(Sinks, SummaryCsvEmitsOneRowPerRecord) {
  const auto record = driver::run_experiment(small_sim_config());
  std::ostringstream os;
  driver::CsvSummarySink sink(os);
  sink.write(record);
  sink.write(record);
  std::size_t lines = 0;
  for (char c : os.str()) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, 3u);  // header + 2 records
}

TEST(Sinks, JsonlEmitsOneObjectPerRecordWithNullModelFields) {
  const auto record = driver::run_experiment(small_sim_config());
  std::ostringstream os;
  driver::JsonlSink sink(os);
  sink.write(record);
  const std::string line = os.str();
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '\n');
  EXPECT_NE(line.find("\"scheme\":\"bcc\""), std::string::npos);
  EXPECT_NE(line.find("\"final_loss\":null"), std::string::npos);
  EXPECT_EQ(line.find("\"trace\""), std::string::npos);

  std::ostringstream with_trace;
  driver::JsonlSink(with_trace, /*include_trace=*/true).write(record);
  EXPECT_NE(with_trace.str().find("\"trace\":[{"), std::string::npos);
}

TEST(Sinks, TeeFansOutToAllSinks) {
  const auto record = driver::run_experiment(small_sim_config());
  std::ostringstream a, b;
  driver::CsvSummarySink sink_a(a);
  driver::JsonlSink sink_b(b);
  driver::TeeSink tee({&sink_a, &sink_b});
  tee.write(record);
  EXPECT_FALSE(a.str().empty());
  EXPECT_FALSE(b.str().empty());
}

TEST(Sinks, WriteRecordsToPathRejectsUnwritableFile) {
  EXPECT_FALSE(driver::write_records_to_path(
      "/nonexistent-dir/x.csv", {}, driver::RecordFormat::kSummaryCsv));
}
