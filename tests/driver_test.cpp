// Tests for the experiment-driver layer: name registries, scenario
// construction, config plumbing, and the CSV-producing entry points.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "driver/driver.hpp"
#include "simulate/experiment.hpp"

namespace driver = coupon::driver;
using coupon::core::SchemeKind;

TEST(Registry, SchemeNamesRoundTrip) {
  for (SchemeKind kind :
       {SchemeKind::kUncoded, SchemeKind::kBcc, SchemeKind::kSimpleRandom,
        SchemeKind::kCyclicRepetition, SchemeKind::kFractionalRepetition}) {
    const auto parsed = driver::parse_scheme(driver::scheme_cli_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(Registry, SchemeAliasesAndUnknowns) {
  EXPECT_EQ(driver::parse_scheme("cyclic_repetition"),
            SchemeKind::kCyclicRepetition);
  EXPECT_EQ(driver::parse_scheme("srs"), SchemeKind::kSimpleRandom);
  EXPECT_FALSE(driver::parse_scheme("").has_value());
  EXPECT_FALSE(driver::parse_scheme("BCC").has_value());  // case-sensitive
  EXPECT_FALSE(driver::parse_scheme("bogus").has_value());
}

TEST(Registry, RuntimeSpellings) {
  EXPECT_EQ(driver::parse_runtime("sim"), driver::RuntimeKind::kSimulated);
  EXPECT_EQ(driver::parse_runtime("simulated"),
            driver::RuntimeKind::kSimulated);
  EXPECT_EQ(driver::parse_runtime("threaded"),
            driver::RuntimeKind::kThreaded);
  EXPECT_EQ(driver::parse_runtime("threads"), driver::RuntimeKind::kThreaded);
  EXPECT_FALSE(driver::parse_runtime("mpi").has_value());
  EXPECT_EQ(driver::runtime_name(driver::RuntimeKind::kSimulated), "sim");
  EXPECT_EQ(driver::runtime_name(driver::RuntimeKind::kThreaded), "threaded");
}

TEST(Registry, EveryListedScenarioIsConstructible) {
  for (const auto& name : driver::scenario_names()) {
    const auto scenario = driver::make_scenario(name, 40);
    ASSERT_TRUE(scenario.has_value()) << name;
    EXPECT_EQ(scenario->name, name);
    EXPECT_FALSE(scenario->description.empty());
  }
  EXPECT_FALSE(driver::make_scenario("bogus", 40).has_value());
}

TEST(Registry, ShiftedExpMatchesEc2Calibration) {
  const auto scenario = driver::make_scenario("shifted_exp", 50);
  ASSERT_TRUE(scenario.has_value());
  const auto ec2 = coupon::simulate::ec2_cluster();
  EXPECT_DOUBLE_EQ(scenario->cluster.compute_shift, ec2.compute_shift);
  EXPECT_DOUBLE_EQ(scenario->cluster.compute_straggle, ec2.compute_straggle);
  EXPECT_DOUBLE_EQ(scenario->cluster.unit_transfer_seconds,
                   ec2.unit_transfer_seconds);
}

TEST(Registry, HeteroScenarioBuildsPerWorkerOverrides) {
  const std::size_t n = 40;
  const auto scenario = driver::make_scenario("hetero", n);
  ASSERT_TRUE(scenario.has_value());
  ASSERT_EQ(scenario->cluster.worker_overrides.size(), n);
  std::size_t fast = 0;
  for (const auto& w : scenario->cluster.worker_overrides) {
    if (w.compute_straggle > 1.0) {
      ++fast;
    }
  }
  EXPECT_EQ(fast, n / 20);  // 5% fast workers
  // Tiny clusters still get at least one fast worker.
  const auto tiny = driver::make_scenario("hetero", 3);
  ASSERT_TRUE(tiny.has_value());
  ASSERT_EQ(tiny->cluster.worker_overrides.size(), 3u);
  EXPECT_GT(tiny->cluster.worker_overrides.back().compute_straggle, 1.0);
}

TEST(Registry, ScenarioKnobsDifferFromBaseline) {
  const auto base = driver::make_scenario("shifted_exp", 20);
  const auto lossy = driver::make_scenario("lossy", 20);
  const auto fast = driver::make_scenario("fast_network", 20);
  const auto calm = driver::make_scenario("no_stragglers", 20);
  ASSERT_TRUE(base && lossy && fast && calm);
  EXPECT_GT(lossy->cluster.drop_probability, 0.0);
  EXPECT_LT(fast->cluster.unit_transfer_seconds,
            base->cluster.unit_transfer_seconds);
  EXPECT_FALSE(calm->straggler.enabled);
  EXPECT_TRUE(base->straggler.enabled);
}

TEST(Driver, ConfigFromSimScenarioCopiesParameters) {
  const auto scenario = coupon::simulate::ec2_scenario_two();
  const auto config = driver::config_from_sim_scenario(scenario);
  EXPECT_EQ(config.num_workers, scenario.num_workers);
  EXPECT_EQ(config.num_units, scenario.num_units);
  EXPECT_EQ(config.load, scenario.load);
  EXPECT_EQ(config.iterations, scenario.iterations);
  EXPECT_EQ(config.seed, scenario.seed);
}

namespace {

driver::ExperimentConfig small_sim_config() {
  driver::ExperimentConfig config;
  config.scheme = SchemeKind::kBcc;
  config.scenario = "shifted_exp";
  config.runtime = driver::RuntimeKind::kSimulated;
  config.num_workers = 10;
  config.num_units = 10;
  config.load = 2;
  config.iterations = 7;
  config.seed = 123;
  return config;
}

}  // namespace

TEST(Driver, SimulatedRunEmitsOneRowPerIteration) {
  const auto config = small_sim_config();
  const auto result = driver::run_experiment(config);
  EXPECT_EQ(result.rows.size(), config.iterations);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.size(), result.header.size());
  }
  EXPECT_GT(result.summary.total_time, 0.0);
  EXPECT_GT(result.summary.recovery_threshold, 0.0);
  EXPECT_EQ(result.summary.kind, SchemeKind::kBcc);
}

TEST(Driver, SimulatedRunIsDeterministicInSeed) {
  const auto config = small_sim_config();
  const auto a = driver::run_experiment(config);
  const auto b = driver::run_experiment(config);
  EXPECT_EQ(a.rows, b.rows);
  auto other = config;
  other.seed = 321;
  const auto c = driver::run_experiment(other);
  EXPECT_NE(a.rows, c.rows);
}

TEST(Driver, ThreadedRunEmitsSummaryRow) {
  driver::ExperimentConfig config;
  config.scheme = SchemeKind::kBcc;
  config.runtime = driver::RuntimeKind::kThreaded;
  config.num_workers = 4;
  config.num_units = 4;
  config.load = 2;
  config.iterations = 3;
  config.features = 6;
  config.examples_per_unit = 5;
  const auto result = driver::run_experiment(config);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].size(), result.header.size());
  EXPECT_GT(result.summary.total_time, 0.0);
}

TEST(Driver, UnknownScenarioThrows) {
  auto config = small_sim_config();
  config.scenario = "bogus";
  EXPECT_THROW(driver::run_experiment(config), std::invalid_argument);
}

TEST(Driver, SimOnlyScenarioRejectedUnderThreadedRuntime) {
  for (const std::string name : {"hetero", "lossy", "fast_network"}) {
    auto config = small_sim_config();
    config.scenario = name;
    config.runtime = driver::RuntimeKind::kThreaded;
    EXPECT_THROW(driver::run_experiment(config), std::invalid_argument)
        << name;
  }
  // The same scenarios remain runnable on the simulator.
  auto config = small_sim_config();
  config.scenario = "lossy";
  EXPECT_EQ(driver::run_experiment(config).rows.size(), config.iterations);
}

TEST(Driver, SimTraceHeaderExtendsIterationCsvHeader) {
  const auto result = driver::run_experiment(small_sim_config());
  const auto& trace = coupon::simulate::iteration_csv_header();
  ASSERT_EQ(result.header.size(), trace.size() + 3);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(result.header[i + 3], trace[i]);
  }
}

TEST(Driver, WriteCsvEmitsHeaderPlusRows) {
  const auto result = driver::run_experiment(small_sim_config());
  std::ostringstream os;
  driver::write_csv(os, result);
  std::size_t lines = 0;
  for (char c : os.str()) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, result.rows.size() + 1);
  EXPECT_EQ(os.str().substr(0, 6), "scheme");
}

TEST(Driver, SchemeComparisonMatchesRunScenario) {
  // The driver's comparison path must reproduce simulate::run_scenario
  // exactly for the same parameters (same RNG-split discipline).
  auto scenario = coupon::simulate::ec2_scenario_one();
  scenario.iterations = 5;
  const std::vector<SchemeKind> kinds = {SchemeKind::kUncoded,
                                         SchemeKind::kBcc};
  const auto direct = coupon::simulate::run_scenario(scenario, kinds);

  auto config = driver::config_from_sim_scenario(scenario);
  config.scenario = "shifted_exp";
  const auto via_driver = driver::run_scheme_comparison(config, kinds);

  ASSERT_EQ(direct.size(), via_driver.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].scheme, via_driver[i].scheme);
    EXPECT_DOUBLE_EQ(direct[i].total_time, via_driver[i].total_time);
    EXPECT_DOUBLE_EQ(direct[i].recovery_threshold,
                     via_driver[i].recovery_threshold);
  }
}

TEST(Driver, ComparisonCsvPathRejectsUnwritableFile) {
  EXPECT_FALSE(
      driver::write_comparison_csv_to_path("/nonexistent-dir/x.csv", {}));
}
