// Tests for the optimizers and the logistic loss/gradient kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.hpp"
#include "linalg/vector_ops.hpp"
#include "opt/opt.hpp"
#include "stats/rng.hpp"
#include "util/assert.hpp"

namespace coupon::opt {
namespace {

data::Dataset tiny_dataset() {
  data::Dataset d;
  d.x = {{1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.5}, {0.5, -1.0}};
  d.y = {1.0, -1.0, 1.0, -1.0};
  return d;
}

// --- numerics ------------------------------------------------------------------

TEST(Sigmoid, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-15);
  EXPECT_NEAR(sigmoid(-2.0), 1.0 - sigmoid(2.0), 1e-15);
}

TEST(Sigmoid, StableAtExtremes) {
  EXPECT_NEAR(sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(sigmoid(710.0)));
  EXPECT_FALSE(std::isnan(sigmoid(-710.0)));
}

TEST(Log1pExp, StableAtExtremes) {
  EXPECT_NEAR(log1p_exp(0.0), std::log(2.0), 1e-15);
  EXPECT_NEAR(log1p_exp(1000.0), 1000.0, 1e-9);
  EXPECT_NEAR(log1p_exp(-1000.0), 0.0, 1e-12);
}

// --- gradients ------------------------------------------------------------------

TEST(LogisticGradient, MatchesFiniteDifferences) {
  const auto d = tiny_dataset();
  const std::vector<double> w = {0.3, -0.7};
  std::vector<double> grad(2);
  logistic_gradient(d, w, grad);

  const double eps = 1e-6;
  for (std::size_t c = 0; c < 2; ++c) {
    std::vector<double> wp = w, wm = w;
    wp[c] += eps;
    wm[c] -= eps;
    const double fd =
        (logistic_loss(d, wp) - logistic_loss(d, wm)) / (2.0 * eps);
    EXPECT_NEAR(grad[c], fd, 1e-8);
  }
}

TEST(PartialGradientSum, SumOfPartialsEqualsFullTimesM) {
  stats::Rng rng(3);
  data::SyntheticConfig config;
  config.num_features = 8;
  const auto prob = data::generate_logreg(25, config, rng);
  std::vector<double> w(8);
  for (auto& v : w) {
    v = rng.normal();
  }
  std::vector<double> full(8), sum(8, 0.0), one(8);
  logistic_gradient(prob.dataset, w, full);
  for (std::size_t j = 0; j < 25; ++j) {
    partial_gradient(prob.dataset, j, w, one);
    linalg::axpy(1.0, one, sum);
  }
  linalg::scal(1.0 / 25.0, sum);
  EXPECT_LT(linalg::max_abs_diff(full, sum), 1e-12);
}

TEST(PartialGradientSum, AccumulateFlagAdds) {
  const auto d = tiny_dataset();
  const std::vector<double> w = {0.1, 0.2};
  const std::vector<std::size_t> idx = {0, 2};
  std::vector<double> a(2), b(2, 0.0);
  partial_gradient_sum(d, idx, w, a, /*accumulate=*/false);
  partial_gradient_sum(d, idx, w, b, /*accumulate=*/true);
  partial_gradient_sum(d, idx, w, b, /*accumulate=*/true);
  EXPECT_NEAR(b[0], 2.0 * a[0], 1e-14);
  EXPECT_NEAR(b[1], 2.0 * a[1], 1e-14);
}

TEST(PartialGradientSum, EmptyIndexSetGivesZero) {
  const auto d = tiny_dataset();
  const std::vector<double> w = {1.0, 1.0};
  std::vector<double> out = {5.0, 5.0};
  partial_gradient_sum(d, {}, w, out, /*accumulate=*/false);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(Accuracy, PerfectAndWorstCase) {
  data::Dataset d;
  d.x = {{1.0}, {-1.0}};
  d.y = {1.0, -1.0};
  const std::vector<double> w_good = {1.0};
  const std::vector<double> w_bad = {-1.0};
  EXPECT_DOUBLE_EQ(accuracy(d, w_good), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(d, w_bad), 0.0);
}

// --- schedules ------------------------------------------------------------------

TEST(Schedule, ConstantIsFlat) {
  const auto s = LearningRateSchedule::constant(0.5);
  EXPECT_DOUBLE_EQ(s.at(0), 0.5);
  EXPECT_DOUBLE_EQ(s.at(1000), 0.5);
}

TEST(Schedule, InverseTimeDecays) {
  const auto s = LearningRateSchedule::inverse_time(1.0, 0.5);
  EXPECT_DOUBLE_EQ(s.at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(2), 0.5);
  EXPECT_GT(s.at(10), 0.0);
  EXPECT_LT(s.at(10), s.at(9));
}

TEST(Schedule, RejectsBadParameters) {
  EXPECT_THROW(LearningRateSchedule::constant(0.0), coupon::AssertionError);
  EXPECT_THROW(LearningRateSchedule::inverse_time(1.0, -1.0),
               coupon::AssertionError);
}

// --- optimizers -----------------------------------------------------------------

TEST(GradientDescent, SingleStepIsWMinusMuGrad) {
  GradientDescent gd(2, LearningRateSchedule::constant(0.1));
  const std::vector<double> grad = {1.0, -2.0};
  gd.apply_gradient(grad);
  EXPECT_DOUBLE_EQ(gd.weights()[0], -0.1);
  EXPECT_DOUBLE_EQ(gd.weights()[1], 0.2);
  EXPECT_EQ(gd.iteration(), 1u);
}

TEST(GradientDescent, QueryPointIsCurrentIterate) {
  GradientDescent gd(2, LearningRateSchedule::constant(0.1));
  EXPECT_EQ(gd.query_point().data(), gd.weights().data());
}

TEST(NesterovGradient, FirstStepMatchesPlainGd) {
  // beta_0 = 0, so the first Nesterov step equals a GD step from w_0 = 0.
  NesterovGradient nag(2, LearningRateSchedule::constant(0.1));
  GradientDescent gd(2, LearningRateSchedule::constant(0.1));
  const std::vector<double> grad = {1.0, 2.0};
  nag.apply_gradient(grad);
  gd.apply_gradient(grad);
  EXPECT_DOUBLE_EQ(nag.weights()[0], gd.weights()[0]);
  EXPECT_DOUBLE_EQ(nag.weights()[1], gd.weights()[1]);
  // Lookahead v_1 = w_1 + 0*(w_1 - w_0) = w_1 for t=0... beta_1 = 1/4 at
  // the next step; just confirm the query point moved with the iterate.
  EXPECT_DOUBLE_EQ(nag.query_point()[0], nag.weights()[0]);
}

TEST(NesterovGradient, LookaheadDiffersAfterTwoSteps) {
  NesterovGradient nag(1, LearningRateSchedule::constant(0.1));
  const std::vector<double> g = {1.0};
  nag.apply_gradient(g);
  nag.apply_gradient(g);
  // w_2 = v_1 - 0.1, v_2 = w_2 + (1/4)(w_2 - w_1) != w_2.
  EXPECT_NE(nag.query_point()[0], nag.weights()[0]);
}

TEST(Train, GdConvergesOnLogisticProblem) {
  stats::Rng rng(5);
  data::SyntheticConfig config;
  config.num_features = 10;
  const auto prob = data::generate_logreg(200, config, rng);
  GradientDescent gd(10, LearningRateSchedule::constant(1.0));
  const auto oracle = make_logistic_oracle(prob.dataset);
  std::function<double(std::span<const double>)> loss =
      [&](std::span<const double> w) {
        return logistic_loss(prob.dataset, w);
      };
  const auto result = train(gd, oracle, 50, &loss);
  ASSERT_EQ(result.loss_history.size(), 50u);
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
  // Loss is convex: the trace should be (weakly) decreasing throughout
  // at this conservative step size.
  for (std::size_t t = 1; t < result.loss_history.size(); ++t) {
    EXPECT_LE(result.loss_history[t], result.loss_history[t - 1] + 1e-12);
  }
}

TEST(Train, NesterovReachesLowerLossThanGdInFewIterations) {
  stats::Rng rng(7);
  data::SyntheticConfig config;
  config.num_features = 10;
  const auto prob = data::generate_logreg(200, config, rng);
  const auto oracle = make_logistic_oracle(prob.dataset);

  GradientDescent gd(10, LearningRateSchedule::constant(0.5));
  NesterovGradient nag(10, LearningRateSchedule::constant(0.5));
  const auto r_gd = train(gd, oracle, 40);
  const auto r_nag = train(nag, oracle, 40);
  EXPECT_LE(logistic_loss(prob.dataset, r_nag.weights),
            logistic_loss(prob.dataset, r_gd.weights) + 1e-9);
}

TEST(Train, ZeroIterationsReturnsInitialWeights) {
  GradientDescent gd(3, LearningRateSchedule::constant(0.1));
  const auto oracle = [](std::span<const double>, std::span<double> g) {
    linalg::fill(g, 1.0);
  };
  const auto result = train(gd, oracle, 0);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.weights, std::vector<double>(3, 0.0));
}

TEST(Optimizer, GradientDimensionMismatchAsserts) {
  GradientDescent gd(3, LearningRateSchedule::constant(0.1));
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(gd.apply_gradient(bad), coupon::AssertionError);
}


// --- squared loss ----------------------------------------------------------------

TEST(SquaredLoss, GradientMatchesFiniteDifferences) {
  stats::Rng rng(11);
  data::SyntheticConfig config;
  config.num_features = 6;
  const auto prob = data::generate_linreg(30, config, 0.3, rng);
  std::vector<double> w(6);
  for (auto& v : w) {
    v = rng.normal();
  }
  std::vector<double> grad(6);
  squared_gradient(prob.dataset, w, grad);
  const double eps = 1e-6;
  for (std::size_t c = 0; c < 6; ++c) {
    std::vector<double> wp = w, wm = w;
    wp[c] += eps;
    wm[c] -= eps;
    const double fd =
        (squared_loss(prob.dataset, wp) - squared_loss(prob.dataset, wm)) /
        (2.0 * eps);
    EXPECT_NEAR(grad[c], fd, 1e-6);
  }
}

TEST(SquaredLoss, ZeroAtNoiselessOptimum) {
  stats::Rng rng(13);
  data::SyntheticConfig config;
  config.num_features = 4;
  const auto prob = data::generate_linreg(20, config, 0.0, rng);
  EXPECT_NEAR(squared_loss(prob.dataset, prob.w_star), 0.0, 1e-20);
  std::vector<double> grad(4);
  squared_gradient(prob.dataset, prob.w_star, grad);
  EXPECT_LT(linalg::max_abs(grad), 1e-10);
}

TEST(SquaredLoss, GdRecoversNoiselessWeights) {
  stats::Rng rng(17);
  data::SyntheticConfig config;
  config.num_features = 5;
  const auto prob = data::generate_linreg(100, config, 0.0, rng);
  GradientDescent gd(5, LearningRateSchedule::constant(0.2));
  const GradientOracle oracle = [&](std::span<const double> w,
                                    std::span<double> g) {
    squared_gradient(prob.dataset, w, g);
  };
  const auto result = train(gd, oracle, 200);
  EXPECT_LT(linalg::max_abs_diff(result.weights, prob.w_star), 1e-3);
}

TEST(SquaredLoss, PartialSumAccumulates) {
  stats::Rng rng(19);
  data::SyntheticConfig config;
  config.num_features = 3;
  const auto prob = data::generate_linreg(8, config, 0.1, rng);
  const std::vector<double> w = {0.5, -0.5, 1.0};
  const std::vector<std::size_t> idx = {1, 4};
  std::vector<double> once(3), twice(3, 0.0);
  squared_partial_gradient_sum(prob.dataset, idx, w, once, false);
  squared_partial_gradient_sum(prob.dataset, idx, w, twice, true);
  squared_partial_gradient_sum(prob.dataset, idx, w, twice, true);
  EXPECT_NEAR(twice[0], 2.0 * once[0], 1e-13);
  EXPECT_NEAR(twice[2], 2.0 * once[2], 1e-13);
}

// --- heavy ball and AdaGrad -------------------------------------------------------

TEST(HeavyBall, ZeroMomentumMatchesPlainGd) {
  HeavyBallGradient hb(2, LearningRateSchedule::constant(0.1), 0.0);
  GradientDescent gd(2, LearningRateSchedule::constant(0.1));
  const std::vector<double> g = {1.0, -3.0};
  for (int t = 0; t < 4; ++t) {
    hb.apply_gradient(g);
    gd.apply_gradient(g);
  }
  EXPECT_DOUBLE_EQ(hb.weights()[0], gd.weights()[0]);
  EXPECT_DOUBLE_EQ(hb.weights()[1], gd.weights()[1]);
}

TEST(HeavyBall, MomentumAccumulatesVelocity) {
  HeavyBallGradient hb(1, LearningRateSchedule::constant(0.1), 0.5);
  const std::vector<double> g = {1.0};
  hb.apply_gradient(g);  // v = -0.1, w = -0.1
  hb.apply_gradient(g);  // v = -0.15, w = -0.25
  EXPECT_NEAR(hb.weights()[0], -0.25, 1e-15);
  EXPECT_EQ(hb.iteration(), 2u);
}

TEST(HeavyBall, RejectsInvalidMomentum) {
  EXPECT_THROW(HeavyBallGradient(2, LearningRateSchedule::constant(0.1), 1.0),
               coupon::AssertionError);
  EXPECT_THROW(
      HeavyBallGradient(2, LearningRateSchedule::constant(0.1), -0.1),
      coupon::AssertionError);
}

TEST(AdaGrad, FirstStepIsNormalizedGradient) {
  AdaGrad ada(2, LearningRateSchedule::constant(0.5), 1e-12);
  const std::vector<double> g = {4.0, -0.25};
  ada.apply_gradient(g);
  // w -= mu * g / (|g| + eps) elementwise => both coords move by ~mu.
  EXPECT_NEAR(ada.weights()[0], -0.5, 1e-9);
  EXPECT_NEAR(ada.weights()[1], 0.5, 1e-9);
}

TEST(AdaGrad, StepsShrinkOnRepeatedGradients) {
  AdaGrad ada(1, LearningRateSchedule::constant(1.0));
  const std::vector<double> g = {2.0};
  ada.apply_gradient(g);
  const double step1 = -ada.weights()[0];
  ada.apply_gradient(g);
  const double step2 = -ada.weights()[0] - step1;
  EXPECT_GT(step1, step2);
  EXPECT_GT(step2, 0.0);
}

TEST(AdaGrad, ConvergesOnLogisticProblem) {
  stats::Rng rng(23);
  data::SyntheticConfig config;
  config.num_features = 8;
  const auto prob = data::generate_logreg(150, config, rng);
  AdaGrad ada(8, LearningRateSchedule::constant(0.5));
  const auto oracle = make_logistic_oracle(prob.dataset);
  const auto result = train(ada, oracle, 80);
  EXPECT_LT(logistic_loss(prob.dataset, result.weights),
            logistic_loss(prob.dataset, std::vector<double>(8, 0.0)));
}

}  // namespace
}  // namespace coupon::opt
